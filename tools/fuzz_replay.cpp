// fuzz_replay — run corpus entries through the fuzz targets' loaders.
//
//   fuzz_replay <target> <file-or-dir>... [options]
//     --expect-ok       fail (exit 1) if any input is rejected
//     --expect-reject   fail (exit 1) if any input parses
//     --mutate <n>      additionally run n seeded mutations of the corpus
//     --seed <s>        mutation seed (default 1)
//
// <target> is network | solution | faults | delta. Directories are expanded
// (sorted, non-recursive). Each input prints one line: the file, whether
// it parsed, and the diagnostic otherwise. The crash property is
// implicit: if a loader crashes, this process dies and the caller (CI or
// tools/minimize_crash.py) sees the signal. Exit codes: 0 all
// expectations met, 1 an expectation failed, 2 usage, 3 unreadable
// input.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "verify/fuzz.h"

namespace {

using namespace mdg;

int usage() {
  std::cerr << "usage: fuzz_replay <network|solution|faults|delta> "
               "<file-or-dir>... [--expect-ok|--expect-reject] "
               "[--mutate <n> --seed <s>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const auto target = verify::fuzz_target_from_string(argv[1]);
  if (!target.has_value()) {
    std::cerr << "unknown fuzz target '" << argv[1] << "'\n";
    return usage();
  }

  std::vector<std::filesystem::path> inputs;
  bool expect_ok = false;
  bool expect_reject = false;
  std::size_t mutations = 0;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect-ok") {
      expect_ok = true;
    } else if (arg == "--expect-reject") {
      expect_reject = true;
    } else if (arg == "--mutate" && i + 1 < argc) {
      mutations = std::stoull(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage();
    } else if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> entries;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          entries.push_back(entry.path());
        }
      }
      std::sort(entries.begin(), entries.end());
      inputs.insert(inputs.end(), entries.begin(), entries.end());
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (expect_ok && expect_reject) {
    std::cerr << "--expect-ok and --expect-reject are mutually exclusive\n";
    return usage();
  }
  if (inputs.empty()) {
    std::cerr << "no inputs\n";
    return usage();
  }

  std::vector<std::string> corpus;
  bool expectations_met = true;
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      std::cerr << "cannot read '" << path.string() << "'\n";
      return 3;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.push_back(buf.str());
    const core::Status status = verify::fuzz_one(*target, corpus.back());
    std::cout << path.string() << ": "
              << (status.is_ok() ? "ok" : status.to_string()) << '\n';
    if (expect_ok && !status.is_ok()) {
      expectations_met = false;
    }
    if (expect_reject && status.is_ok()) {
      expectations_met = false;
    }
  }

  if (mutations > 0) {
    const verify::FuzzStats stats =
        verify::fuzz_corpus(*target, corpus, seed, mutations);
    std::cout << "mutations: " << mutations << " executed, " << stats.accepted
              << " accepted, " << stats.rejected << " rejected, "
              << stats.unique_outcomes << " distinct outcomes\n";
  }
  return expectations_met ? 0 : 1;
}

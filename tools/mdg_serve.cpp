// mdg_serve — the planning daemon (docs/SERVE.md).
//
//   mdg_serve run --stdio [--cache N] [--report path [--report-every N]]
//                 [--max-frame-bytes N] [--obs]
//   mdg_serve run --port P [--workers N] [--backlog N] [--cache N] ...
//   mdg_serve make-transcript --net net.txt --out requests.bin
//
// `run --stdio` serves a single connection on stdin/stdout — the mode
// CI's serve-smoke job and the transcript tests use. `run --port`
// listens on 127.0.0.1:P with the bounded admission queue and worker
// pool. `make-transcript` writes the deterministic scripted request
// sequence the golden-reply test replays (ping, a plan, the identical
// plan again — an exact cache hit — stats, a malformed payload, and
// shutdown).
//
// Exit codes:
//   0  clean shutdown (EOF or shutdown frame)
//   1  unexpected internal failure
//   2  usage error
//   3  unrecoverable protocol error on the stdio stream (one error
//      reply is emitted before exiting)
#include <fstream>
#include <iostream>

#include "mdg.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace mdg;

int cmd_run(Flags& flags) {
  const bool stdio = flags.get_bool("stdio", false);
  const long long port = flags.get_int("port", 0);
  serve::ServerOptions options;
  options.engine.cache_capacity =
      static_cast<std::size_t>(flags.get_int("cache", 256));
  options.workers = static_cast<std::size_t>(flags.get_int("workers", 0));
  options.backlog = static_cast<std::size_t>(flags.get_int("backlog", 64));
  options.max_payload_bytes = static_cast<std::uint32_t>(flags.get_int(
      "max-frame-bytes",
      static_cast<long long>(serve::kDefaultMaxPayloadBytes)));
  options.report_path = flags.get_string("report", "");
  options.report_every =
      static_cast<std::size_t>(flags.get_int("report-every", 0));
  const bool obs_on = flags.get_bool("obs", false);
  flags.finish();
  if (stdio == (port > 0)) {
    std::cerr << "usage: mdg_serve run (--stdio | --port P)\n";
    return 2;
  }
  if (obs_on || !options.report_path.empty()) {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  serve::Server server(options);
  if (stdio) {
    return server.serve_stdio(std::cin, std::cout);
  }
  auto result = server.serve_tcp(static_cast<std::uint16_t>(port));
  if (!result.is_ok()) {
    std::cerr << "error: " << result.status().to_string() << "\n";
    return 1;
  }
  return result.value();
}

int cmd_make_transcript(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string out_path = flags.get_string("out", "requests.bin");
  flags.finish();
  auto network = io::try_load_network(net_path);
  if (!network.is_ok()) {
    std::cerr << "error: " << network.status().to_string() << "\n";
    return 3;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out.good()) {
    std::cerr << "error: cannot open '" << out_path << "' for writing\n";
    return 3;
  }
  serve::PlanRequestOptions plan;
  const std::string plan_payload =
      serve::build_plan_request(plan, network.value());
  std::uint32_t id = 1;
  serve::write_frame(out, {serve::FrameType::kPing, id++, 0, {}});
  serve::write_frame(out,
                     {serve::FrameType::kPlanRequest, id++, 0, plan_payload});
  // The identical request again: must come back as an exact cache hit
  // with byte-identical payload.
  serve::write_frame(out,
                     {serve::FrameType::kPlanRequest, id++, 0, plan_payload});
  serve::write_frame(out, {serve::FrameType::kStatsRequest, id++, 0, {}});
  // A well-framed but malformed payload: the server must answer with a
  // protocol error reply and keep serving.
  serve::write_frame(out, {serve::FrameType::kPlanRequest, id++, 0,
                           "mdg-request 1\nop plan\ngarbage\n"});
  serve::write_frame(out, {serve::FrameType::kShutdown, id++, 0, {}});
  if (!out.good()) {
    std::cerr << "error: failed writing '" << out_path << "'\n";
    return 1;
  }
  std::cout << "Wrote " << out_path << " (" << (id - 1) << " frames)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mdg_serve <run|make-transcript> [flags]\n";
    return 2;
  }
  const std::string command = argv[1];
  try {
    Flags flags(argc - 1, argv + 1);
    if (command == "run") {
      return cmd_run(flags);
    }
    if (command == "make-transcript") {
      return cmd_make_transcript(flags);
    }
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  } catch (const mdg::PreconditionError& error) {
    std::cerr << "usage error: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

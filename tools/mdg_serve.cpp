// mdg_serve — the planning daemon (docs/SERVE.md).
//
//   mdg_serve run --stdio [--cache N] [--report path [--report-every N]]
//                 [--max-frame-bytes N] [--snapshot path] [--obs]
//   mdg_serve run --port P [--workers N] [--backlog N] [--cache N]
//                 [--snapshot path] [--read-timeout-ms N]
//                 [--write-timeout-ms N] [--max-conn-bytes N]
//                 [--brownout-enter N] [--brownout-exit N]
//                 [--retry-after-ms N] ...
//   mdg_serve client --port P --in requests.bin [--digest path]
//                 [--retries N] [--connect-timeout-ms N]
//                 [--read-timeout-ms N] [--seed X] [--require-all]
//   mdg_serve make-transcript --net net.txt --out requests.bin [--chaos]
//
// `run --stdio` serves a single connection on stdin/stdout — the mode
// CI's serve-smoke job and the transcript tests use. `run --port`
// listens on 127.0.0.1:P with the admission-controlled queue and
// worker pool; SIGTERM/SIGINT request a graceful drain (finish
// in-flight work, shed new work with typed replies, write the cache
// snapshot, exit 0). `client` replays a request file against a running
// daemon through the retry/backoff helper and emits one digest line
// per request — the chaos harness compares these digests across clean,
// faulty, and restarted runs. `make-transcript` writes the
// deterministic scripted request sequence the golden-reply test
// replays; `--chaos` writes the time-independent variant the chaos
// harness replays (no stats frame — counters vary across runs — and no
// shutdown, so the same file can be replayed repeatedly).
//
// Exit codes:
//   0  clean shutdown (EOF, shutdown frame, or drain)
//   1  unexpected internal failure (or, for `client --require-all`,
//      any request left unanswered)
//   2  usage error
//   3  unrecoverable protocol error on the stdio stream (one error
//      reply is emitted before exiting)
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

#include "mdg.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/plan_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace mdg;

extern "C" void mdg_serve_on_signal(int) { serve::request_drain(); }

void install_drain_handler() {
#if defined(__unix__) || defined(__APPLE__)
  // No SA_RESTART: the signal must interrupt a blocking accept() with
  // EINTR so the serve loop observes the drain flag promptly.
  struct sigaction action {};
  action.sa_handler = mdg_serve_on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
#endif
}

int cmd_run(Flags& flags) {
  const bool stdio = flags.get_bool("stdio", false);
  const long long port = flags.get_int("port", 0);
  serve::ServerOptions options;
  options.engine.cache_capacity =
      static_cast<std::size_t>(flags.get_int("cache", 256));
  options.workers = static_cast<std::size_t>(flags.get_int("workers", 0));
  options.backlog = static_cast<std::size_t>(flags.get_int("backlog", 64));
  options.admission.brownout_enter =
      static_cast<std::size_t>(flags.get_int("brownout-enter", 0));
  options.admission.brownout_exit =
      static_cast<std::size_t>(flags.get_int("brownout-exit", 0));
  options.admission.retry_after_base_ms =
      static_cast<std::uint32_t>(flags.get_int("retry-after-ms", 50));
  options.max_payload_bytes = static_cast<std::uint32_t>(flags.get_int(
      "max-frame-bytes",
      static_cast<long long>(serve::kDefaultMaxPayloadBytes)));
  options.read_timeout_ms =
      static_cast<std::uint32_t>(flags.get_int("read-timeout-ms", 30000));
  options.write_timeout_ms =
      static_cast<std::uint32_t>(flags.get_int("write-timeout-ms", 10000));
  options.max_conn_bytes =
      static_cast<std::uint64_t>(flags.get_int("max-conn-bytes", 0));
  options.snapshot_path = flags.get_string("snapshot", "");
  options.report_path = flags.get_string("report", "");
  options.report_every =
      static_cast<std::size_t>(flags.get_int("report-every", 0));
  const bool obs_on = flags.get_bool("obs", false);
  flags.finish();
  if (stdio == (port > 0)) {
    std::cerr << "usage: mdg_serve run (--stdio | --port P)\n";
    return 2;
  }
  if (obs_on || !options.report_path.empty()) {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::instance().reset();
  }
  install_drain_handler();
  serve::Server server(options);
  // Crash recovery: a loadable snapshot warms the cache; a missing,
  // stale, torn, or corrupted one cold-starts with a diagnostic. A bad
  // snapshot must NEVER fail the boot.
  if (!options.snapshot_path.empty()) {
    auto restored = server.load_snapshot();
    if (restored.is_ok()) {
      if (restored.value() > 0) {
        std::cerr << "mdg_serve: restored " << restored.value()
                  << " cache entries from '" << options.snapshot_path
                  << "'\n";
      }
    } else if (restored.status().code() != core::StatusCode::kNotFound) {
      std::cerr << "mdg_serve: snapshot ignored (cold start): "
                << restored.status().to_string() << "\n";
    }
  }
  if (stdio) {
    return server.serve_stdio(std::cin, std::cout);
  }
  auto result = server.serve_tcp(static_cast<std::uint16_t>(port));
  if (!result.is_ok()) {
    std::cerr << "error: " << result.status().to_string() << "\n";
    return 1;
  }
  return result.value();
}

/// Replays a request file against a daemon, one digest line per
/// request:
///   id <N> ok fnv <16-hex of reply payload>   plan/delta/... replies
///   id <N> pong                               ping replies
///   id <N> error                              semantic errors (final)
///   id <N> skipped                            no answer after retries
/// Digest lines hash only the payload — the header's cache-outcome
/// flags legitimately differ between a cold run and a warm restart,
/// the payload bytes must not.
int cmd_client(Flags& flags) {
  const long long port = flags.get_int("port", 0);
  const std::string in_path = flags.get_string("in", "");
  const std::string digest_path = flags.get_string("digest", "");
  serve::TcpClientOptions client_options;
  client_options.connect_timeout_ms =
      static_cast<std::uint32_t>(flags.get_int("connect-timeout-ms", 2000));
  client_options.read_timeout_ms =
      static_cast<std::uint32_t>(flags.get_int("read-timeout-ms", 20000));
  client_options.write_timeout_ms = client_options.read_timeout_ms;
  serve::RetryPolicy policy;
  policy.max_attempts =
      static_cast<std::size_t>(flags.get_int("retries", 5));
  policy.base_backoff_ms =
      static_cast<std::uint32_t>(flags.get_int("base-backoff-ms", 20));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0x5eed));
  const bool require_all = flags.get_bool("require-all", false);
  flags.finish();
  if (port <= 0 || in_path.empty()) {
    std::cerr << "usage: mdg_serve client --port P --in requests.bin\n";
    return 2;
  }
  std::ifstream in(in_path, std::ios::binary);
  if (!in.good()) {
    std::cerr << "error: cannot open '" << in_path << "'\n";
    return 2;
  }
  std::ostringstream digest;
  serve::TcpClient client(static_cast<std::uint16_t>(port), client_options);
  const Rng base_rng(seed);
  std::size_t unanswered = 0;
  std::size_t frame_index = 0;
  while (true) {
    auto frame = serve::read_frame(in);
    if (!frame.is_ok()) {
      std::cerr << "error: bad request file: "
                << frame.status().to_string() << "\n";
      return 2;
    }
    if (!frame.value().has_value()) {
      break;  // end of request file
    }
    const serve::Frame request = std::move(**frame);
    Rng rng = base_rng.fork(frame_index++);
    auto result = serve::call_with_retry(client, request, policy, rng);
    if (!result.is_ok()) {
      digest << "id " << request.id << " skipped\n";
      std::cerr << "mdg_serve client: request " << request.id << ": "
                << result.status().to_string() << "\n";
      ++unanswered;
      continue;
    }
    const serve::Frame& reply = result->reply;
    if (reply.type == serve::FrameType::kPong) {
      digest << "id " << request.id << " pong\n";
    } else if (reply.type == serve::FrameType::kReplyError) {
      digest << "id " << request.id << " error\n";
    } else {
      digest << "id " << request.id << " ok fnv " << std::hex
             << std::setw(16) << std::setfill('0')
             << serve::fnv1a64(reply.payload) << std::dec
             << std::setfill(' ') << "\n";
    }
  }
  if (digest_path.empty()) {
    std::cout << digest.str();
  } else {
    std::ofstream out(digest_path, std::ios::trunc);
    out << digest.str();
    if (!out.good()) {
      std::cerr << "error: failed writing '" << digest_path << "'\n";
      return 1;
    }
  }
  if (require_all && unanswered > 0) {
    std::cerr << "error: " << unanswered
              << " request(s) unanswered after retries\n";
    return 1;
  }
  return 0;
}

int cmd_make_transcript(Flags& flags) {
  const std::string net_path = flags.get_string("net", "net.txt");
  const std::string out_path = flags.get_string("out", "requests.bin");
  const bool chaos = flags.get_bool("chaos", false);
  flags.finish();
  auto network = io::try_load_network(net_path);
  if (!network.is_ok()) {
    std::cerr << "error: " << network.status().to_string() << "\n";
    return 3;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out.good()) {
    std::cerr << "error: cannot open '" << out_path << "' for writing\n";
    return 3;
  }
  std::uint32_t id = 1;
  if (chaos) {
    // The chaos replay set: byte-deterministic requests only (no
    // stats — its counters depend on history; no deadline — anytime
    // truncation is time-dependent; no shutdown — the file is replayed
    // against one daemon repeatedly). Repeats exercise the cache.
    serve::PlanRequestOptions plain;
    serve::PlanRequestOptions capped;
    capped.max_load = 6;
    const std::string plan_plain =
        serve::build_plan_request(plain, network.value());
    const std::string plan_capped =
        serve::build_plan_request(capped, network.value());
    serve::write_frame(out, {serve::FrameType::kPing, id++, 0, {}});
    serve::write_frame(out,
                       {serve::FrameType::kPlanRequest, id++, 0, plan_plain});
    serve::write_frame(out,
                       {serve::FrameType::kPlanRequest, id++, 0, plan_capped});
    serve::write_frame(out,
                       {serve::FrameType::kPlanRequest, id++, 0, plan_plain});
    serve::write_frame(out,
                       {serve::FrameType::kPlanRequest, id++, 0, plan_capped});
    serve::write_frame(out, {serve::FrameType::kPing, id++, 0, {}});
  } else {
    serve::PlanRequestOptions plan;
    const std::string plan_payload =
        serve::build_plan_request(plan, network.value());
    serve::write_frame(out, {serve::FrameType::kPing, id++, 0, {}});
    serve::write_frame(
        out, {serve::FrameType::kPlanRequest, id++, 0, plan_payload});
    // The identical request again: must come back as an exact cache hit
    // with byte-identical payload.
    serve::write_frame(
        out, {serve::FrameType::kPlanRequest, id++, 0, plan_payload});
    serve::write_frame(out, {serve::FrameType::kStatsRequest, id++, 0, {}});
    // A well-framed but malformed payload: the server must answer with
    // a protocol error reply and keep serving.
    serve::write_frame(out, {serve::FrameType::kPlanRequest, id++, 0,
                             "mdg-request 1\nop plan\ngarbage\n"});
    serve::write_frame(out, {serve::FrameType::kShutdown, id++, 0, {}});
  }
  if (!out.good()) {
    std::cerr << "error: failed writing '" << out_path << "'\n";
    return 1;
  }
  std::cout << "Wrote " << out_path << " (" << (id - 1) << " frames)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mdg_serve <run|client|make-transcript> [flags]\n";
    return 2;
  }
  const std::string command = argv[1];
  try {
    Flags flags(argc - 1, argv + 1);
    if (command == "run") {
      return cmd_run(flags);
    }
    if (command == "client") {
      return cmd_client(flags);
    }
    if (command == "make-transcript") {
      return cmd_make_transcript(flags);
    }
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  } catch (const mdg::PreconditionError& error) {
    std::cerr << "usage error: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

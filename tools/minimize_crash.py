#!/usr/bin/env python3
"""Greedy delta-debugging minimizer for fuzz crash inputs.

Usage:
    tools/minimize_crash.py <network|solution|faults> <crash-file> \
        [--replay build/tools/fuzz_replay] [--out minimized.txt]

Re-runs the replay binary on candidate reductions of <crash-file> and
keeps any reduction that still crashes (the replay process dying on a
signal; a clean rejection with exit 0/1 is NOT a crash). Two passes are
alternated until a fixed point: drop contiguous line blocks (halving
block sizes), then drop contiguous character spans. Deterministic — no
randomness — so a given crash always minimizes to the same bytes.
"""

import argparse
import pathlib
import subprocess
import sys
import tempfile

CLEAN_EXITS = {0, 1, 2, 3}  # replay verdicts; anything else is a crash


def crashes(replay: str, target: str, data: bytes) -> bool:
    with tempfile.NamedTemporaryFile(suffix=".txt") as handle:
        handle.write(data)
        handle.flush()
        try:
            proc = subprocess.run(
                [replay, target, handle.name],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                timeout=30,
                check=False,
            )
        except subprocess.TimeoutExpired:
            return True  # hangs count as crashes for minimization
        return proc.returncode not in CLEAN_EXITS


def minimize_blocks(data: list[bytes], check) -> list[bytes]:
    """ddmin over a list of chunks: try dropping ever-smaller blocks."""
    block = max(len(data) // 2, 1)
    while block >= 1:
        changed = True
        while changed:
            changed = False
            i = 0
            while i < len(data):
                candidate = data[:i] + data[i + block:]
                if candidate != data and check(candidate):
                    data = candidate
                    changed = True
                else:
                    i += block
        if block == 1:
            break
        block //= 2
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("target", choices=["network", "solution", "faults"])
    parser.add_argument("crash_file", type=pathlib.Path)
    parser.add_argument("--replay", default="build/tools/fuzz_replay")
    parser.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args()

    original = args.crash_file.read_bytes()
    if not crashes(args.replay, args.target, original):
        print("input does not crash the replay binary; nothing to minimize",
              file=sys.stderr)
        return 1

    # Pass 1: whole lines. Pass 2: characters. Repeat until stable.
    data = original
    while True:
        before = data
        lines = data.splitlines(keepends=True)
        lines = minimize_blocks(
            lines, lambda c: crashes(args.replay, args.target, b"".join(c)))
        data = b"".join(lines)
        chars = [bytes([b]) for b in data]
        chars = minimize_blocks(
            chars, lambda c: crashes(args.replay, args.target, b"".join(c)))
        data = b"".join(chars)
        if data == before:
            break

    out = args.out or args.crash_file.with_suffix(".min")
    out.write_bytes(data)
    print(f"minimized {len(original)} -> {len(data)} bytes: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// report_diff — compare two RunReports, or validate one against the
// checked-in schema. The regression gate of the experiment workflow
// (docs/HANDBOOK.md):
//
//   report_diff old.json new.json [--time-factor 1.5]
//               [--time-floor-ms 5.0] [--quality-factor 1.02]
//     Flags a *time* regression when a stage (or the whole run) got
//     slower than old * time-factor and the new time is above the noise
//     floor, and a *quality* regression when the tour got longer than
//     old * quality-factor or polling points increased beyond the same
//     factor. Exit 1 when anything is flagged.
//
//   report_diff --schema tools/report_schema.json report.json
//     Validates the report against a minimal JSON-Schema subset (type /
//     required / properties / items / const). Exit 1 on violations —
//     the CI step that keeps report consumers honest.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace mdg;

obs::JsonValue load_json(const std::string& path) {
  std::ifstream in(path);
  MDG_REQUIRE(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return obs::JsonValue::parse(buffer.str());
}

/// Minimal JSON-Schema subset validator: type, required, properties,
/// items, const (strings). Records one message per violation.
void validate(const obs::JsonValue& schema, const obs::JsonValue& value,
              const std::string& path, std::vector<std::string>& errors) {
  const std::string where = path.empty() ? "$" : path;
  if (schema.contains("type")) {
    const std::string& type = schema.at("type").as_string();
    const bool ok =
        (type == "object" && value.is_object()) ||
        (type == "array" && value.is_array()) ||
        (type == "string" && value.is_string()) ||
        (type == "boolean" && value.is_bool()) ||
        (type == "number" && value.is_number()) ||
        (type == "integer" && value.is_number() &&
         value.as_double() == std::floor(value.as_double()));
    if (!ok) {
      errors.push_back(where + ": expected " + type);
      return;
    }
  }
  if (schema.contains("const")) {
    if (!value.is_string() ||
        value.as_string() != schema.at("const").as_string()) {
      errors.push_back(where + ": must equal \"" +
                       schema.at("const").as_string() + "\"");
    }
  }
  if (schema.contains("required") && value.is_object()) {
    const obs::JsonValue& required = schema.at("required");
    for (std::size_t i = 0; i < required.size(); ++i) {
      const std::string& key = required.at(i).as_string();
      if (!value.contains(key)) {
        errors.push_back(where + ": missing required key \"" + key + "\"");
      }
    }
  }
  if (schema.contains("properties") && value.is_object()) {
    for (const auto& [key, sub] : schema.at("properties").members()) {
      if (value.contains(key)) {
        validate(sub, value.at(key), where + "." + key, errors);
      }
    }
  }
  if (schema.contains("items") && value.is_array()) {
    const obs::JsonValue& item_schema = schema.at("items");
    for (std::size_t i = 0; i < value.size(); ++i) {
      validate(item_schema, value.at(i),
               where + "[" + std::to_string(i) + "]", errors);
    }
  }
}

int run_validate(const std::string& schema_path,
                 const std::string& report_path) {
  const obs::JsonValue schema = load_json(schema_path);
  const obs::JsonValue report = load_json(report_path);
  std::vector<std::string> errors;
  validate(schema, report, "", errors);
  if (errors.empty()) {
    // Also exercise the typed parser so schema and struct stay aligned.
    (void)obs::RunReport::from_json(report);
    std::cout << report_path << ": valid (schema " << schema_path << ")\n";
    return 0;
  }
  std::cerr << report_path << ": " << errors.size()
            << " schema violation(s)\n";
  for (const std::string& error : errors) {
    std::cerr << "  " << error << "\n";
  }
  return 1;
}

const obs::RunReport::StageTiming* find_stage(const obs::RunReport& report,
                                              const std::string& name) {
  for (const auto& stage : report.timings) {
    if (stage.name == name) {
      return &stage;
    }
  }
  return nullptr;
}

int run_diff(const std::string& old_path, const std::string& new_path,
             double time_factor, double time_floor_ms,
             double quality_factor) {
  const obs::RunReport old_report = obs::RunReport::load(old_path);
  const obs::RunReport new_report = obs::RunReport::load(new_path);
  bool regressed = false;

  Table table("report_diff: " + old_path + " -> " + new_path, 2);
  table.set_header({"metric", "old", "new", "ratio", "flag"});
  const auto ratio_of = [](double old_value, double new_value) {
    return old_value > 0.0 ? new_value / old_value : 0.0;
  };

  // Quality.
  {
    const double r = ratio_of(old_report.tour_length, new_report.tour_length);
    const bool bad = old_report.tour_length > 0.0 && r > quality_factor;
    regressed = regressed || bad;
    table.add_row({std::string("tour_length (m)"), old_report.tour_length,
                   new_report.tour_length, r,
                   std::string(bad ? "QUALITY REGRESSION" : "")});
  }
  {
    const double old_pp = static_cast<double>(old_report.polling_points);
    const double new_pp = static_cast<double>(new_report.polling_points);
    const double r = ratio_of(old_pp, new_pp);
    const bool bad = old_pp > 0.0 && r > quality_factor;
    regressed = regressed || bad;
    table.add_row({std::string("polling_points"), old_pp, new_pp, r,
                   std::string(bad ? "QUALITY REGRESSION" : "")});
  }

  // End-to-end and per-stage time.
  const auto time_row = [&](const std::string& label, double old_ms,
                            double new_ms) {
    const double r = ratio_of(old_ms, new_ms);
    const bool bad =
        old_ms > 0.0 && new_ms >= time_floor_ms && r > time_factor;
    regressed = regressed || bad;
    table.add_row({label, old_ms, new_ms, r,
                   std::string(bad ? "TIME REGRESSION" : "")});
  };
  time_row("wall_ms", old_report.wall_ms, new_report.wall_ms);
  for (const auto& stage : old_report.timings) {
    const obs::RunReport::StageTiming* fresh =
        find_stage(new_report, stage.name);
    if (fresh != nullptr) {
      time_row(stage.name + " (ms)", stage.total_ms, fresh->total_ms);
    } else {
      table.add_row({stage.name + " (ms)", stage.total_ms, 0.0, 0.0,
                     std::string("stage removed")});
    }
  }
  for (const auto& stage : new_report.timings) {
    if (find_stage(old_report, stage.name) == nullptr) {
      table.add_row({stage.name + " (ms)", 0.0, stage.total_ms, 0.0,
                     std::string("stage added")});
    }
  }

  table.print(std::cout);
  if (old_report.git_describe != new_report.git_describe) {
    std::cout << "builds: " << old_report.git_describe << " -> "
              << new_report.git_describe << "\n";
  }
  std::cout << (regressed ? "REGRESSED\n" : "ok\n");
  return regressed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mdg::Flags flags(argc, argv);
    const std::string schema = flags.get_string("schema", "");
    const double time_factor = flags.get_double("time-factor", 1.5);
    const double time_floor_ms = flags.get_double("time-floor-ms", 5.0);
    const double quality_factor = flags.get_double("quality-factor", 1.02);
    flags.finish();
    const auto& args = flags.positional();
    if (!schema.empty()) {
      if (args.size() != 1) {
        std::cerr << "usage: " << flags.program_name()
                  << " --schema <schema.json> <report.json>\n";
        return 2;
      }
      return run_validate(schema, args[0]);
    }
    if (args.size() != 2) {
      std::cerr << "usage: " << flags.program_name()
                << " <old.json> <new.json> [--time-factor F]"
                   " [--time-floor-ms MS] [--quality-factor F]\n"
                << "       " << flags.program_name()
                << " --schema <schema.json> <report.json>\n";
      return 2;
    }
    return run_diff(args[0], args[1], time_factor, time_floor_ms,
                    quality_factor);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

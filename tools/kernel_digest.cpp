// kernel_digest — bit-determinism fingerprint of the numeric kernels.
//
//   kernel_digest [--big-n N]
//
// Prints one "<probe> <fnv64-hex>" line per probe: neighbour lists
// (ids and hexfloat distances), nearest-neighbour construction, the
// sequential and partitioned improvement engines (tour order plus
// hexfloat length), and the full plan -> canonical-bytes pipeline for
// every heuristic planner — across all nine verification generator
// families plus one larger uniform instance (--big-n, default 20000)
// that gives the batch distance kernels long vector runs.
//
// The output is a pure function of the code: CI's native-parity job
// runs this binary from the default build and from an -DMDG_NATIVE=ON
// build and requires byte-identical output, which is what pins the
// "SIMD never changes a plan" contract (DESIGN.md). Any future digest
// change must come from an intentional algorithm change.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/neighbor_lists.h"
#include "util/flags.h"
#include "verify/canonical.h"
#include "verify/generate.h"
#include "verify/oracle.h"

namespace {

using namespace mdg;

/// FNV-1a 64-bit over a byte string — stable, dependency-free.
std::uint64_t fnv64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void emit(const std::string& probe, const std::string& bytes) {
  std::printf("%s %016llx\n", probe.c_str(),
              static_cast<unsigned long long>(fnv64(bytes)));
}

/// Exact text form of a double (hexfloat round-trips every bit).
void put_double(std::ostringstream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a,", v);
  out << buf;
}

void put_order(std::ostringstream& out, const std::vector<std::size_t>& v) {
  for (const std::size_t x : v) {
    out << x << ',';
  }
}

std::vector<geom::Point> tour_points(const net::SensorNetwork& network) {
  std::vector<geom::Point> pts{network.sink()};
  pts.insert(pts.end(), network.positions().begin(),
             network.positions().end());
  return pts;
}

void digest_tsp_kernels(const std::string& label,
                        std::span<const geom::Point> pts) {
  {
    std::ostringstream out;
    const tsp::NeighborLists nbrs(pts, 12);
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (const std::size_t b : nbrs.of(a)) {
        out << b << ',';
      }
      for (const double d : nbrs.dist_of(a)) {
        put_double(out, d);
      }
    }
    emit(label + ".neighbors", out.str());
  }
  const tsp::Tour nn = tsp::nearest_neighbor(pts);
  {
    std::ostringstream out;
    put_order(out, nn.order());
    emit(label + ".construct", out.str());
  }
  if (pts.size() >= 8) {
    // Sequential engine and partitioned engine, each forced on with
    // cutoffs low enough to exercise the machinery at harness sizes.
    tsp::ImproveOptions seq;
    seq.full_scan_below = 0;
    seq.partition_above = 0;
    tsp::Tour seq_tour = nn;
    tsp::improve(seq_tour, pts, seq);
    std::ostringstream out;
    put_order(out, seq_tour.order());
    put_double(out, seq_tour.length(pts));
    emit(label + ".improve_seq", out.str());

    tsp::ImproveOptions part;
    part.full_scan_below = 0;
    part.partition_above = 1;
    part.partition_shard_target =
        std::max<std::size_t>(std::size_t{16}, pts.size() / 4);
    tsp::Tour part_tour = nn;
    tsp::improve(part_tour, pts, part);
    std::ostringstream pout;
    put_order(pout, part_tour.order());
    put_double(pout, part_tour.length(pts));
    emit(label + ".improve_partitioned", pout.str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::size_t big_n =
      static_cast<std::size_t>(flags.get_int("big-n", 20000));
  flags.finish();

  // Every generator family at harness size: kernels plus the full
  // plan -> canonical-bytes pipeline of each heuristic planner.
  for (const verify::GeneratorFamily family : verify::all_families()) {
    const std::string name = verify::to_string(family);
    const net::SensorNetwork network = verify::generate_network(family, 7);
    const std::vector<geom::Point> pts = tour_points(network);
    digest_tsp_kernels(name, pts);
    const core::ShdgpInstance instance(network);
    for (const auto& planner : verify::heuristic_planners()) {
      const core::ShdgpSolution solution = planner->plan(instance);
      emit(name + ".plan." + planner->name(),
           verify::canonical_plan_bytes(instance, solution));
    }
  }

  // One larger uniform instance: long contiguous runs through the batch
  // kernels and a real multi-shard partitioned improve.
  if (big_n > 0) {
    verify::GeneratorOptions options;
    options.sensors = big_n;
    options.side = 20.0 * std::sqrt(static_cast<double>(big_n));
    options.range = 30.0;
    const net::SensorNetwork network =
        verify::generate_network(verify::GeneratorFamily::kUniform, 11,
                                 options);
    const std::vector<geom::Point> pts = tour_points(network);
    digest_tsp_kernels("uniform_big", pts);
  }
  return 0;
}

// repro — replay a generated instance through plan -> verify.
//
//   repro <generator> <seed> [sensors [side [range]]]
//   repro --delta <net.txt> <sol.txt> <delta.txt>
//   repro --relay-parity <greedy-out.txt> <relay-out.txt>
//
// The failure hints printed by the harness suites ("reproduce:
// build/tools/repro <generator> <seed>") land here. Without an explicit
// size the tool replays both harness shapes: the small differential-
// oracle instance (10 sensors) and the property-sweep instance (150
// sensors). For every heuristic planner it re-runs the independent
// invariant checker and the TSP lower-bound check; planning is repeated
// and the two canonical plan serializations compared line by line — any
// nondeterminism prints a canonical-report diff. Exit 0 iff everything
// holds, 1 on any verification failure, 2 on usage errors.
//
// The --delta mode replays a churn stream: the delta file is applied to
// the plan twice from the same starting point and the repaired plans
// must agree byte for byte (canonical encoding) and pass the invariant
// checker. Exit 3 when an input file is unreadable or malformed.
//
// The --relay-parity mode is the d=1 byte-identity gate: it plans every
// legacy generator family x seeds 1..3 with both GreedyCoverPlanner and
// RelayHopPlanner (default budget d = 1) and dumps the two canonical
// serializations to the given files, one section per instance. CI runs
// `cmp` over the two dumps; the tool also compares in-process and exits
// 1 naming the first diverging instance.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/greedy_cover_planner.h"
#include "core/relay_hop_planner.h"
#include "io/delta_io.h"
#include "io/serialize.h"
#include "verify/canonical.h"
#include "verify/check.h"
#include "verify/generate.h"
#include "verify/oracle.h"

namespace {

using namespace mdg;

int usage() {
  std::cerr << "usage: repro <generator> <seed> [sensors [side [range]]]\n"
            << "       repro --delta <net.txt> <sol.txt> <delta.txt>\n"
            << "       repro --relay-parity <greedy-out.txt> <relay-out.txt>\n"
            << "generators:";
  for (verify::GeneratorFamily family : verify::all_families()) {
    std::cerr << ' ' << verify::to_string(family);
  }
  std::cerr << '\n';
  return 2;
}

/// Line-by-line diff of two canonical serializations (prints every
/// differing line pair; the canonical format is line-oriented).
void print_canonical_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  for (;;) {
    const bool more_a = static_cast<bool>(std::getline(sa, la));
    const bool more_b = static_cast<bool>(std::getline(sb, lb));
    if (!more_a && !more_b) {
      break;
    }
    ++line;
    if (!more_a) {
      std::cout << "  line " << line << ": + " << lb << '\n';
    } else if (!more_b) {
      std::cout << "  line " << line << ": - " << la << '\n';
    } else if (la != lb) {
      std::cout << "  line " << line << ": - " << la << '\n'
                << "  line " << line << ": + " << lb << '\n';
    }
  }
}

bool replay(verify::GeneratorFamily family, std::uint64_t seed,
            const verify::GeneratorOptions& options) {
  bool ok = true;
  const net::SensorNetwork network =
      verify::generate_network(family, seed, options);
  const core::ShdgpInstance instance(network);
  std::cout << "instance " << verify::to_string(family) << " seed " << seed
            << ": " << network.size() << " sensors, field "
            << options.side << ", range " << options.range << '\n';

  for (const auto& planner : verify::heuristic_planners()) {
    const core::ShdgpSolution solution = planner->plan(instance);
    const core::Status invariants = verify::check_solution(instance, solution);
    const core::Status bound =
        verify::check_tour_lower_bound(instance, solution);
    // Replan and compare canonical bytes: any divergence is
    // nondeterminism in the planner.
    const core::ShdgpSolution again = planner->plan(instance);
    const std::string canon_a = verify::canonical_plan_bytes(instance, solution);
    const std::string canon_b = verify::canonical_plan_bytes(instance, again);
    const bool deterministic = canon_a == canon_b;
    const bool pass = invariants.is_ok() && bound.is_ok() && deterministic;
    ok = ok && pass;
    std::cout << "  " << (pass ? "PASS" : "FAIL") << ' ' << planner->name()
              << " length " << solution.tour_length << " stops "
              << solution.polling_points.size() << '\n';
    if (!invariants.is_ok()) {
      std::cout << "    invariants: " << invariants.to_string() << '\n';
    }
    if (!bound.is_ok()) {
      std::cout << "    lower bound: " << bound.to_string() << '\n';
    }
    if (!deterministic) {
      std::cout << "    nondeterministic plan; canonical diff:\n";
      print_canonical_diff(canon_a, canon_b);
    }
  }

  if (network.size() <= verify::OracleOptions{}.exact_sensor_limit) {
    const verify::OracleReport report = verify::run_differential(instance);
    const core::Status status = report.status();
    ok = ok && status.is_ok();
    std::cout << "  " << (status.is_ok() ? "PASS" : "FAIL")
              << " differential oracle";
    if (report.exact_available) {
      std::cout << " (exact optimum " << report.exact_length << ")";
    }
    std::cout << '\n';
    if (!status.is_ok()) {
      std::cout << "    " << status.to_string() << '\n';
    }
  }
  return ok;
}

/// --delta mode: determinism and invariants of incremental replanning.
/// The same delta applied twice from the same state must yield byte-
/// identical repaired plans, and the result must satisfy every SHDGP
/// invariant against the post-delta instance.
int replay_delta(const std::string& net_path, const std::string& sol_path,
                 const std::string& delta_path) {
  const auto network = io::try_load_network(net_path);
  if (!network.is_ok()) {
    std::cerr << network.status().to_string() << '\n';
    return 3;
  }
  const auto solution = io::try_load_solution(sol_path);
  if (!solution.is_ok()) {
    std::cerr << solution.status().to_string() << '\n';
    return 3;
  }
  const auto delta = io::try_load_delta(delta_path);
  if (!delta.is_ok()) {
    std::cerr << delta.status().to_string() << '\n';
    return 3;
  }
  std::cout << "delta replay: " << delta->ops.size() << " op(s) on "
            << network->size() << " sensors\n";

  bool ok = true;
  std::string first_bytes;
  for (int run = 0; run < 2; ++run) {
    core::DynamicInstance dyn(*network);
    core::ShdgpSolution repaired = *solution;
    const auto result = core::apply_delta(dyn, *delta, repaired);
    if (!result.is_ok()) {
      std::cerr << "apply_delta: " << result.status().to_string() << '\n';
      return 3;
    }
    const core::Status invariants =
        verify::check_solution(dyn.instance(), repaired);
    const std::string bytes =
        verify::canonical_plan_bytes(dyn.instance(), repaired);
    if (run == 0) {
      first_bytes = bytes;
      std::cout << "  " << (invariants.is_ok() ? "PASS" : "FAIL")
                << " invariants after repair (" << result->damaged
                << " damaged, +" << result->pps_added << "/-"
                << result->pps_removed << " stops"
                << (result->full_replan
                        ? ", full replan: " + result->full_replan_reason
                        : std::string())
                << ")\n";
      if (!invariants.is_ok()) {
        std::cout << "    " << invariants.to_string() << '\n';
      }
      ok = ok && invariants.is_ok();
    } else {
      const bool deterministic = bytes == first_bytes;
      std::cout << "  " << (deterministic ? "PASS" : "FAIL")
                << " repair determinism\n";
      if (!deterministic) {
        print_canonical_diff(first_bytes, bytes);
      }
      ok = ok && deterministic && invariants.is_ok();
    }
  }
  std::cout << (ok ? "OK" : "FAILED") << '\n';
  return ok ? 0 : 1;
}

/// --relay-parity mode: the d=1 byte-identity anchor across every
/// legacy generator family and seeds 1..3, on both harness shapes.
int relay_parity(const std::string& greedy_path, const std::string& relay_path) {
  std::ofstream greedy_out(greedy_path);
  std::ofstream relay_out(relay_path);
  if (!greedy_out.good() || !relay_out.good()) {
    std::cerr << "cannot open output files\n";
    return 3;
  }
  const verify::GeneratorOptions shapes[] = {
      {.sensors = 10, .side = 90.0, .range = 22.0},
      {.sensors = 150, .side = 200.0, .range = 30.0},
  };
  bool ok = true;
  std::size_t instances = 0;
  for (verify::GeneratorFamily family : verify::legacy_families()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      for (const verify::GeneratorOptions& options : shapes) {
        const net::SensorNetwork network =
            verify::generate_network(family, seed, options);
        const core::ShdgpInstance instance(network);
        const core::ShdgpSolution greedy =
            core::GreedyCoverPlanner().plan(instance);
        const core::ShdgpSolution relay =
            core::RelayHopPlanner().plan(instance);
        const std::string greedy_bytes =
            verify::canonical_plan_bytes(instance, greedy);
        const std::string relay_bytes =
            verify::canonical_plan_bytes(instance, relay);
        std::ostringstream header;
        header << "# " << verify::to_string(family) << " seed " << seed
               << " sensors " << options.sensors << '\n';
        greedy_out << header.str() << greedy_bytes;
        relay_out << header.str() << relay_bytes;
        ++instances;
        if (greedy_bytes != relay_bytes) {
          if (ok) {
            std::cout << "FAIL d=1 parity: " << verify::to_string(family)
                      << " seed " << seed << " sensors " << options.sensors
                      << '\n';
            print_canonical_diff(greedy_bytes, relay_bytes);
          }
          ok = false;
        }
      }
    }
  }
  greedy_out.flush();
  relay_out.flush();
  if (!greedy_out.good() || !relay_out.good()) {
    std::cerr << "failed writing output files\n";
    return 3;
  }
  std::cout << instances << " instance(s) -> " << greedy_path << " / "
            << relay_path << '\n'
            << (ok ? "OK" : "FAILED") << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5 && std::string(argv[1]) == "--delta") {
    return replay_delta(argv[2], argv[3], argv[4]);
  }
  if (argc == 4 && std::string(argv[1]) == "--relay-parity") {
    return relay_parity(argv[2], argv[3]);
  }
  if (argc < 3 || argc > 6) {
    return usage();
  }
  const auto family = verify::family_from_string(argv[1]);
  if (!family.has_value()) {
    std::cerr << "unknown generator '" << argv[1] << "'\n";
    return usage();
  }
  std::uint64_t seed = 0;
  try {
    seed = std::stoull(argv[2]);
  } catch (...) {
    std::cerr << "seed must be an unsigned integer, got '" << argv[2] << "'\n";
    return usage();
  }

  bool ok = true;
  if (argc > 3) {
    verify::GeneratorOptions options;
    try {
      options.sensors = std::stoull(argv[3]);
      if (argc > 4) {
        options.side = std::stod(argv[4]);
      }
      if (argc > 5) {
        options.range = std::stod(argv[5]);
      }
    } catch (...) {
      std::cerr << "bad size arguments\n";
      return usage();
    }
    ok = replay(*family, seed, options);
  } else {
    // The two shapes the harness suites print this hint for.
    ok = replay(*family, seed, {.sensors = 10, .side = 90.0, .range = 22.0});
    ok = replay(*family, seed, {.sensors = 150, .side = 200.0, .range = 30.0}) &&
         ok;
  }
  std::cout << (ok ? "OK" : "FAILED") << '\n';
  return ok ? 0 : 1;
}

// chaos_proxy — a seeded protocol-level fault injector for mdg_serve
// (docs/SERVE.md §Operations).
//
//   chaos_proxy --listen P --upstream Q [--fault F] [--rate R]
//               [--seed X] [--stall-ms N]
//
// Sits between a client and a daemon on loopback and injects faults
// into the client->server frame stream, chosen deterministically from
// Rng streams (`Rng(seed).fork(connection_index)`), so a failing chaos
// run reproduces from its seed. Fault classes (--fault):
//
//   none        pass-through (baseline sanity)
//   truncate    forward only a prefix of the frame, then sever the
//               connection (mid-frame disconnect)
//   stall       hold the frame for --stall-ms before forwarding
//               (slowloris; exercises the server's read deadline)
//   corrupt     flip one byte of the serialized frame (header or
//               payload) and forward it
//   disconnect  drop the frame and sever the connection
//   reorder     hold a frame and forward it after the next one (or
//               after --stall-ms when no second frame shows up, which
//               keeps sequential request/reply clients live)
//
// Faults are applied only client->server: the server must survive
// malformed input, while replies relay verbatim so the harness can
// gate surviving requests on byte-identical digests. The
// server->client direction is a raw byte pump.
//
// Each injected fault also severs or perturbs exactly one connection —
// the retry client reconnects through the proxy, so a sweep ends with
// every surviving request answered and the daemon still serving.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mdg.h"
#include "serve/protocol.h"
#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <istream>

#include "serve/fd_stream.h"

namespace {

using namespace mdg;

std::atomic<bool> g_stop{false};

extern "C" void chaos_on_signal(int) { g_stop.store(true); }

enum class Fault { kNone, kTruncate, kStall, kCorrupt, kDisconnect, kReorder };

std::optional<Fault> parse_fault(const std::string& name) {
  if (name == "none") return Fault::kNone;
  if (name == "truncate") return Fault::kTruncate;
  if (name == "stall") return Fault::kStall;
  if (name == "corrupt") return Fault::kCorrupt;
  if (name == "disconnect") return Fault::kDisconnect;
  if (name == "reorder") return Fault::kReorder;
  return std::nullopt;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t w = ::write(fd, data + written, size - written);
    if (w <= 0) {
      return false;
    }
    written += static_cast<std::size_t>(w);
  }
  return true;
}

/// server->client: raw byte pump, no interpretation.
void pump_raw(int from_fd, int to_fd) {
  char buf[1 << 12];
  while (true) {
    const ssize_t n = ::read(from_fd, buf, sizeof(buf));
    if (n <= 0 || !write_all(to_fd, buf, static_cast<std::size_t>(n))) {
      break;
    }
  }
  ::shutdown(to_fd, SHUT_WR);
  ::shutdown(from_fd, SHUT_RD);
}

struct ProxyConfig {
  Fault fault = Fault::kNone;
  double rate = 0.0;
  std::uint32_t stall_ms = 500;
};

/// client->server: frame-aware pump with fault injection. Returns when
/// either side goes away or an injected fault severs the connection.
void pump_frames(int client_fd, int server_fd, const ProxyConfig& config,
                 Rng rng) {
  serve::FdStreambuf in_buf(client_fd);
  std::istream in(&in_buf);
  std::optional<std::string> held;  // reorder buffer
  const auto flush_held = [&] {
    if (held.has_value()) {
      write_all(server_fd, held->data(), held->size());
      held.reset();
    }
  };
  while (true) {
    auto frame = serve::read_frame(in);
    if (!frame.is_ok()) {
      break;  // client sent garbage; sever
    }
    if (!frame.value().has_value()) {
      if (in_buf.timed_out() && held.has_value()) {
        // No second frame arrived inside the reorder window; deliver
        // the held one so a sequential client stays live.
        flush_held();
        in.clear();
        continue;
      }
      break;  // client closed
    }
    std::string bytes = serve::frame_bytes(**frame);
    const bool inject = config.fault != Fault::kNone && rng.chance(config.rate);
    if (!inject) {
      flush_held();
      if (!write_all(server_fd, bytes.data(), bytes.size())) {
        break;
      }
      continue;
    }
    switch (config.fault) {
      case Fault::kNone:
        break;
      case Fault::kTruncate: {
        // At least one byte, strictly less than the whole frame.
        const std::size_t cut = 1 + rng.index(bytes.size() - 1);
        write_all(server_fd, bytes.data(), cut);
        ::shutdown(server_fd, SHUT_WR);
        return;
      }
      case Fault::kStall: {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config.stall_ms));
        flush_held();
        if (!write_all(server_fd, bytes.data(), bytes.size())) {
          return;
        }
        break;
      }
      case Fault::kCorrupt: {
        bytes[rng.index(bytes.size())] ^=
            static_cast<char>(1 + rng.index(255));
        flush_held();
        write_all(server_fd, bytes.data(), bytes.size());
        // The server will answer a stream-level error and drop; sever
        // our side too so the client's retry reconnects cleanly.
        return;
      }
      case Fault::kDisconnect:
        return;  // drop the frame on the floor and sever
      case Fault::kReorder: {
        if (held.has_value()) {
          // Second frame arrived: deliver it before the held one.
          if (!write_all(server_fd, bytes.data(), bytes.size())) {
            return;
          }
          flush_held();
        } else {
          held = std::move(bytes);
        }
        break;
      }
    }
  }
  flush_held();
  ::shutdown(server_fd, SHUT_WR);
  ::shutdown(client_fd, SHUT_RD);
}

int connect_upstream(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int run_proxy(Flags& flags) {
  const long long listen_port = flags.get_int("listen", 0);
  const long long upstream_port = flags.get_int("upstream", 0);
  const std::string fault_name = flags.get_string("fault", "none");
  ProxyConfig config;
  config.rate = flags.get_double("rate", 0.3);
  config.stall_ms =
      static_cast<std::uint32_t>(flags.get_int("stall-ms", 500));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0xc4a05));
  flags.finish();
  const auto fault = parse_fault(fault_name);
  if (listen_port <= 0 || upstream_port <= 0 || !fault.has_value()) {
    std::cerr << "usage: chaos_proxy --listen P --upstream Q "
                 "[--fault none|truncate|stall|corrupt|disconnect|reorder] "
                 "[--rate R] [--seed X] [--stall-ms N]\n";
    return 2;
  }
  config.fault = *fault;

  struct sigaction action {};
  action.sa_handler = chaos_on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt accept()
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "error: socket() failed\n";
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(listen_port));
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    std::cerr << "error: cannot listen on 127.0.0.1:" << listen_port << "\n";
    ::close(listen_fd);
    return 1;
  }
  std::cerr << "chaos_proxy: 127.0.0.1:" << listen_port << " -> 127.0.0.1:"
            << upstream_port << " fault=" << fault_name
            << " rate=" << config.rate << " seed=" << seed << "\n";

  const Rng base_rng(seed);
  std::vector<std::thread> pumps;
  std::uint64_t connection_index = 0;
  while (!g_stop.load()) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (g_stop.load() || errno != EINTR) {
        break;
      }
      continue;
    }
    const int server_fd =
        connect_upstream(static_cast<std::uint16_t>(upstream_port));
    if (server_fd < 0) {
      std::cerr << "chaos_proxy: upstream connect failed\n";
      ::close(client_fd);
      continue;
    }
    if (config.fault == Fault::kReorder) {
      // Bound the reorder hold so a held frame with no successor is
      // delivered after stall-ms instead of deadlocking the client.
      timeval tv{};
      tv.tv_sec = config.stall_ms / 1000;
      tv.tv_usec = static_cast<suseconds_t>((config.stall_ms % 1000) * 1000);
      ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    Rng rng = base_rng.fork(connection_index++);
    pumps.emplace_back([client_fd, server_fd, config, rng] {
      std::thread downstream([client_fd, server_fd] {
        pump_raw(server_fd, client_fd);
      });
      pump_frames(client_fd, server_fd, config, rng);
      downstream.join();
      ::close(client_fd);
      ::close(server_fd);
    });
  }
  ::close(listen_fd);
  for (std::thread& pump : pumps) {
    pump.join();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mdg::Flags flags(argc, argv);
    return run_proxy(flags);
  } catch (const mdg::PreconditionError& error) {
    std::cerr << "usage error: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

#else  // !POSIX

int main() {
  std::cerr << "chaos_proxy requires POSIX sockets\n";
  return 2;
}

#endif

// libFuzzer entry point for bounded-relay (version-2) solution files:
// parse, relay accessors, write->read round-trip (built with
// -DMDG_FUZZ=ON under Clang; seed corpus tests/harness/corpus/relay).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "verify/fuzz.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  (void)mdg::verify::fuzz_one(
      mdg::verify::FuzzTarget::kRelayPlan,
      std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}

// libFuzzer entry point for io::try_read_delta (built with
// -DMDG_FUZZ=ON under Clang; seed corpus tests/harness/corpus/delta).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "verify/fuzz.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  (void)mdg::verify::fuzz_one(
      mdg::verify::FuzzTarget::kDelta,
      std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}

// libFuzzer entry point for the MDG1 frame parser (serve::read_frame
// plus the typed request-payload parsers; built with -DMDG_FUZZ=ON
// under Clang; seed corpus tests/harness/corpus/serve).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "verify/fuzz.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  (void)mdg::verify::fuzz_one(
      mdg::verify::FuzzTarget::kFrame,
      std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}

// Malformed-input robustness: every try_* loader must return a Status —
// never throw, never abort — on truncated, corrupt, or semantically
// invalid files (the untrusted-boundary contract of docs/FAULTS.md).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/serialize.h"
#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::io {
namespace {

const char* const kValidNetwork =
    "mdg-network 2\n"
    "field 0 0 100 100\n"
    "sink 50 50\n"
    "range 20\n"
    "radio 5e-08 1e-10 1.3e-15 4000\n"
    "sensors 2\n"
    "10 10\n"
    "20 20\n";

const char* const kValidSolution =
    "mdg-solution 1\n"
    "planner greedy\n"
    "tour-length 123.5\n"
    "optimal 0\n"
    "polling 2\n"
    "5 10 10\n"
    "7 20 20\n"
    "assignment 2\n"
    "0\n"
    "1\n"
    "tour 3\n"
    "0\n"
    "2\n"
    "1\n";

core::StatusOr<net::SensorNetwork> parse_network(
    const std::string& text, const LoadOptions& options = {}) {
  std::istringstream in(text);
  return try_read_network(in, options);
}

core::StatusOr<core::ShdgpSolution> parse_solution(
    const std::string& text, const LoadOptions& options = {}) {
  std::istringstream in(text);
  return try_read_solution(in, options);
}

TEST(SerializeRobustnessTest, ValidNetworkStillLoads) {
  const auto result = parse_network(kValidNetwork);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->size(), 2u);
  EXPECT_DOUBLE_EQ(result->range(), 20.0);
}

TEST(SerializeRobustnessTest, GeneratedNetworkRoundTrips) {
  Rng rng(17);
  const net::SensorNetwork network =
      net::make_uniform_network(40, 150.0, 25.0, rng);
  std::ostringstream out;
  write_network(out, network);
  const auto result = parse_network(out.str());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->size(), network.size());
}

TEST(SerializeRobustnessTest, TruncatedNetworkIsDataLoss) {
  const std::string text(kValidNetwork);
  // Chop the file at a handful of points; every prefix must yield a
  // clean Status (data_loss once the header parses).
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, std::size_t{20},
                          text.size() / 2, text.size() - 3}) {
    const auto result = parse_network(text.substr(0, cut));
    ASSERT_FALSE(result.is_ok()) << "cut at " << cut;
    EXPECT_TRUE(result.status().code() == core::StatusCode::kDataLoss ||
                result.status().code() == core::StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << result.status().to_string();
  }
}

TEST(SerializeRobustnessTest, WrongMagicIsInvalid) {
  const auto result = parse_network("mdg-banana 2\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(SerializeRobustnessTest, NonNumericTokenIsInvalid) {
  const auto result = parse_network(
      "mdg-network 2\nfield 0 0 100 100\nsink 50 50\nrange banana\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(SerializeRobustnessTest, NanTokensAreRejectedNotAborted) {
  // however "nan"/"inf" surface (failed extraction or a semantic check),
  // the contract is a Status, not a crash.
  EXPECT_FALSE(parse_network("mdg-network 2\nfield 0 0 nan 100\n").is_ok());
  EXPECT_FALSE(
      parse_network("mdg-network 2\nfield 0 0 100 100\nsink inf 50\n")
          .is_ok());
}

TEST(SerializeRobustnessTest, ZeroOrNegativeRangeIsInvalid) {
  for (const char* range : {"0", "-5"}) {
    const auto result = parse_network(
        std::string("mdg-network 2\nfield 0 0 100 100\nsink 50 50\nrange ") +
        range + "\nradio 5e-08 1e-10 1.3e-15 4000\nsensors 0\n");
    ASSERT_FALSE(result.is_ok()) << "range " << range;
    EXPECT_NE(result.status().message().find("range"), std::string::npos);
  }
}

TEST(SerializeRobustnessTest, InvertedFieldIsInvalid) {
  const auto result = parse_network("mdg-network 2\nfield 0 0 -100 100\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("field"), std::string::npos);
}

TEST(SerializeRobustnessTest, OutOfFieldSensorIsInvalid) {
  const auto result = parse_network(
      "mdg-network 2\nfield 0 0 100 100\nsink 50 50\nrange 20\n"
      "radio 5e-08 1e-10 1.3e-15 4000\nsensors 1\n500 500\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("outside"), std::string::npos);
}

TEST(SerializeRobustnessTest, DuplicateSensorPositionIsInvalid) {
  const auto result = parse_network(
      "mdg-network 2\nfield 0 0 100 100\nsink 50 50\nrange 20\n"
      "radio 5e-08 1e-10 1.3e-15 4000\nsensors 2\n10 10\n10 10\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(SerializeRobustnessTest, ImplausibleSensorCountIsInvalid) {
  const auto result = parse_network(
      "mdg-network 2\nfield 0 0 100 100\nsink 50 50\nrange 20\n"
      "radio 5e-08 1e-10 1.3e-15 4000\nsensors 99999999999\n");
  ASSERT_FALSE(result.is_ok());
}

TEST(SerializeRobustnessTest, FailFastOffCollectsEveryProblem) {
  const auto result = parse_network(
      "mdg-network 2\nfield 0 0 100 100\nsink 50 50\nrange 20\n"
      "radio 5e-08 1e-10 1.3e-15 4000\nsensors 3\n500 500\n10 10\n10 10\n",
      LoadOptions{.fail_fast = false});
  ASSERT_FALSE(result.is_ok());
  const std::string message = result.status().message();
  EXPECT_NE(message.find("outside"), std::string::npos);
  EXPECT_NE(message.find("duplicate"), std::string::npos);
}

TEST(SerializeRobustnessTest, MissingNetworkFileIsNotFound) {
  const auto result = try_load_network("/nonexistent/net.txt");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kNotFound);
}

TEST(SerializeRobustnessTest, ThrowingReaderSignalsPrecondition) {
  std::istringstream in("mdg-network 2\nfield 0 0 nan 100\n");
  EXPECT_THROW((void)read_network(in), mdg::PreconditionError);
}

TEST(SerializeRobustnessTest, ValidSolutionStillLoads) {
  const auto result = parse_solution(kValidSolution);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->planner, "greedy");
  EXPECT_EQ(result->polling_points.size(), 2u);
  EXPECT_EQ(result->tour.size(), 3u);
}

TEST(SerializeRobustnessTest, TruncatedSolutionIsCleanStatus) {
  const std::string text(kValidSolution);
  for (std::size_t cut :
       {std::size_t{10}, text.size() / 2, text.size() - 2}) {
    const auto result = parse_solution(text.substr(0, cut));
    ASSERT_FALSE(result.is_ok()) << "cut at " << cut;
  }
}

TEST(SerializeRobustnessTest, NonPermutationTourIsInvalid) {
  std::string text(kValidSolution);
  // Visit stop 0 twice instead of finishing with 1.
  text.replace(text.rfind("1\n"), 2, "0\n");
  const auto result = parse_solution(text);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("twice"), std::string::npos);
}

TEST(SerializeRobustnessTest, TourIndexOutOfRangeIsInvalid) {
  std::string text(kValidSolution);
  text.replace(text.rfind("2\n"), 2, "9\n");
  const auto result = parse_solution(text);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);
}

TEST(SerializeRobustnessTest, AssignmentSlotPastPollingCountIsInvalid) {
  std::string text(kValidSolution);
  text.replace(text.find("assignment 2\n0\n"), 15, "assignment 2\n5\n");
  const auto result = parse_solution(text);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("slot"), std::string::npos);
}

TEST(SerializeRobustnessTest, TourSizeMismatchIsInvalid) {
  const auto result = parse_solution(
      "mdg-solution 1\nplanner -\ntour-length 0\noptimal 0\n"
      "polling 2\n5 10 10\n7 20 20\nassignment 0\ntour 2\n0\n1\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("tour size"), std::string::npos);
}

TEST(SerializeRobustnessTest, NegativeTourLengthIsInvalid) {
  const auto result = parse_solution(
      "mdg-solution 1\nplanner -\ntour-length -3\noptimal 0\n"
      "polling 0\nassignment 0\ntour 0\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("tour-length"), std::string::npos);
}

}  // namespace
}  // namespace mdg::io

// Scene-level SVG coverage: obstacles, paths, range disks, connectivity.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/spanning_tour_planner.h"
#include "io/svg.h"
#include "route/obstacle_map.h"
#include "util/rng.h"

namespace mdg::io {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgSceneTest, ObstaclesRenderAsRects) {
  SvgCanvas canvas(geom::Aabb::square(100.0));
  const route::ObstacleMap map({geom::Aabb{{10.0, 10.0}, {30.0, 30.0}},
                                geom::Aabb{{50.0, 50.0}, {70.0, 90.0}}});
  canvas.draw_obstacles(map);
  // Background + 2 obstacles.
  EXPECT_EQ(count_occurrences(canvas.to_string(), "<rect"), 3u);
}

TEST(SvgSceneTest, PathRendersAsPolyline) {
  SvgCanvas canvas(geom::Aabb::square(100.0));
  const std::vector<geom::Point> path{
      {0.0, 0.0}, {50.0, 20.0}, {80.0, 90.0}};
  canvas.draw_path(path, "#123456");
  const std::string svg = canvas.to_string();
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 1u);
  EXPECT_NE(svg.find("#123456"), std::string::npos);
}

TEST(SvgSceneTest, DegeneratePathIsSkipped) {
  SvgCanvas canvas(geom::Aabb::square(100.0));
  canvas.draw_path({{1.0, 1.0}});
  EXPECT_EQ(count_occurrences(canvas.to_string(), "<polyline"), 0u);
}

TEST(SvgSceneTest, ConnectivityEdgesOptIn) {
  Rng rng(3);
  const net::SensorNetwork network =
      net::make_uniform_network(30, 80.0, 25.0, rng);
  SvgOptions with_edges;
  with_edges.draw_connectivity = true;
  SvgOptions without;
  without.draw_connectivity = false;
  SvgCanvas a(network.field(), with_edges);
  SvgCanvas b(network.field(), without);
  a.draw_network(network);
  b.draw_network(network);
  EXPECT_GT(count_occurrences(a.to_string(), "<line"),
            count_occurrences(b.to_string(), "<line"));
}

TEST(SvgSceneTest, RangeDisksOptIn) {
  Rng rng(5);
  const net::SensorNetwork network =
      net::make_uniform_network(40, 100.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  SvgOptions with_disks;
  with_disks.draw_range_disks = true;
  with_disks.draw_affiliations = false;
  SvgOptions without;
  without.draw_range_disks = false;
  without.draw_affiliations = false;
  SvgCanvas a(network.field(), with_disks);
  SvgCanvas b(network.field(), without);
  a.draw_solution(instance, solution);
  b.draw_solution(instance, solution);
  EXPECT_EQ(count_occurrences(a.to_string(), "<circle") -
                count_occurrences(b.to_string(), "<circle"),
            solution.polling_points.size());
}

}  // namespace
}  // namespace mdg::io

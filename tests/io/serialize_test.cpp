#include "io/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/greedy_cover_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::io {
namespace {

net::SensorNetwork sample_network(std::uint64_t seed = 3) {
  Rng rng(seed);
  return net::make_uniform_network(50, 120.0, 25.0, rng);
}

TEST(NetworkSerializeTest, RoundTripsExactly) {
  const net::SensorNetwork original = sample_network();
  std::stringstream buffer;
  write_network(buffer, original);
  const net::SensorNetwork restored = read_network(buffer);

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.sink(), original.sink());
  EXPECT_DOUBLE_EQ(restored.range(), original.range());
  EXPECT_DOUBLE_EQ(restored.radio().e_elec, original.radio().e_elec);
  EXPECT_EQ(restored.radio().packet_bits, original.radio().packet_bits);
  for (std::size_t s = 0; s < original.size(); ++s) {
    EXPECT_EQ(restored.position(s), original.position(s)) << "sensor " << s;
  }
  // Derived structures rebuilt identically.
  EXPECT_EQ(restored.connectivity().edge_count(),
            original.connectivity().edge_count());
  EXPECT_EQ(restored.components().count, original.components().count);
}

TEST(NetworkSerializeTest, TwoRayRadioRoundTrips) {
  Rng rng(21);
  net::RadioModel radio;
  radio.eps_mp = 0.0013e-12;
  const net::SensorNetwork original =
      net::make_uniform_network(10, 60.0, 20.0, rng, radio);
  std::stringstream buffer;
  write_network(buffer, original);
  const net::SensorNetwork restored = read_network(buffer);
  EXPECT_DOUBLE_EQ(restored.radio().eps_mp, 0.0013e-12);
}

TEST(NetworkSerializeTest, ReadsLegacyVersion1) {
  std::stringstream v1(
      "mdg-network 1\n"
      "field 0 0 10 10\n"
      "sink 5 5\n"
      "range 3\n"
      "radio 5e-08 1e-10 4000\n"
      "sensors 1\n"
      "2 2\n");
  const net::SensorNetwork network = read_network(v1);
  EXPECT_EQ(network.size(), 1u);
  EXPECT_DOUBLE_EQ(network.radio().eps_mp, 0.0);
  EXPECT_EQ(network.radio().packet_bits, 4000u);
}

TEST(NetworkSerializeTest, RejectsGarbage) {
  std::stringstream junk("this is not a network");
  EXPECT_THROW((void)read_network(junk), mdg::PreconditionError);
  std::stringstream wrong_version("mdg-network 9\n");
  EXPECT_THROW((void)read_network(wrong_version), mdg::PreconditionError);
  std::stringstream truncated("mdg-network 1\nfield 0 0 10 10\nsink 5");
  EXPECT_THROW((void)read_network(truncated), mdg::PreconditionError);
}

TEST(SolutionSerializeTest, RoundTripsAndRevalidates) {
  const net::SensorNetwork network = sample_network(7);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution original =
      core::GreedyCoverPlanner().plan(instance);

  std::stringstream buffer;
  write_solution(buffer, original);
  const core::ShdgpSolution restored = read_solution(buffer);

  EXPECT_EQ(restored.planner, original.planner);
  EXPECT_DOUBLE_EQ(restored.tour_length, original.tour_length);
  EXPECT_EQ(restored.polling_candidates, original.polling_candidates);
  EXPECT_EQ(restored.assignment, original.assignment);
  EXPECT_EQ(restored.tour.order(), original.tour.order());
  // The restored solution still satisfies every SHDGP invariant against
  // the original instance.
  EXPECT_NO_THROW(restored.validate(instance));
}

TEST(SolutionSerializeTest, EmptySolutionRoundTrips) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({}, field.center(), field, 3.0);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution original =
      core::GreedyCoverPlanner().plan(instance);
  std::stringstream buffer;
  write_solution(buffer, original);
  const core::ShdgpSolution restored = read_solution(buffer);
  EXPECT_TRUE(restored.polling_points.empty());
  EXPECT_NO_THROW(restored.validate(instance));
}

TEST(SolutionSerializeTest, OptimalFlagPreserved) {
  const net::SensorNetwork network = sample_network(9);
  const core::ShdgpInstance instance(network);
  core::ShdgpSolution solution = core::GreedyCoverPlanner().plan(instance);
  solution.provably_optimal = true;
  std::stringstream buffer;
  write_solution(buffer, solution);
  EXPECT_TRUE(read_solution(buffer).provably_optimal);
}

TEST(FileHelpersTest, SaveAndLoad) {
  const net::SensorNetwork network = sample_network(11);
  const std::string net_path = ::testing::TempDir() + "/mdg_net_test.txt";
  save_network(net_path, network);
  const net::SensorNetwork loaded = load_network(net_path);
  EXPECT_EQ(loaded.size(), network.size());

  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(instance);
  const std::string sol_path = ::testing::TempDir() + "/mdg_sol_test.txt";
  save_solution(sol_path, solution);
  const core::ShdgpSolution restored = load_solution(sol_path);
  EXPECT_NO_THROW(restored.validate(instance));

  EXPECT_THROW((void)load_network("/nonexistent/net.txt"),
               mdg::PreconditionError);
  EXPECT_THROW(save_network("/nonexistent-dir/x.txt", network),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::io

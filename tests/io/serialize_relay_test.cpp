// mdg-solution version 2: relay fields round-trip, and the version
// gate keeps every legacy single-hop solution at its exact v1 bytes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/solution.h"
#include "io/serialize.h"

namespace mdg {
namespace {

core::ShdgpSolution relay_solution() {
  core::ShdgpSolution solution;
  solution.planner = "relay-hop";
  solution.tour_length = 42.5;
  solution.relay_hops = 2;
  solution.polling_candidates = {0};
  solution.polling_points = {{10.0, 10.0}};
  solution.assignment = {0, 0};
  solution.tour = tsp::Tour({0, 1});
  solution.relay_paths = {{}, {0}};
  return solution;
}

TEST(SerializeRelayTest, RelayFieldsRoundTrip) {
  const core::ShdgpSolution original = relay_solution();
  const std::string bytes = io::to_text(original);
  EXPECT_EQ(bytes.rfind("mdg-solution 2", 0), 0u);
  EXPECT_NE(bytes.find("relay-hops 2"), std::string::npos);
  EXPECT_NE(bytes.find("relays 2"), std::string::npos);
  std::istringstream in(bytes);
  const auto parsed = io::try_read_solution(in);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().relay_hops, 2u);
  EXPECT_EQ(parsed.value().relay_paths, original.relay_paths);
  EXPECT_TRUE(parsed.value().uses_relays());
  EXPECT_EQ(parsed.value().relayed_sensor_count(), 1u);
  // Second round trip is byte-stable.
  EXPECT_EQ(io::to_text(parsed.value()), bytes);
}

TEST(SerializeRelayTest, LegacySolutionsKeepTheirVersionOneBytes) {
  core::ShdgpSolution legacy = relay_solution();
  legacy.relay_hops = 1;
  legacy.relay_paths.clear();
  const std::string bytes = io::to_text(legacy);
  EXPECT_EQ(bytes.rfind("mdg-solution 1", 0), 0u);
  EXPECT_EQ(bytes.find("relay-hops"), std::string::npos);
  EXPECT_EQ(bytes.find("relays"), std::string::npos);
}

TEST(SerializeRelayTest, NonDefaultBudgetForcesVersionTwoEvenWithoutPaths) {
  core::ShdgpSolution solution = relay_solution();
  solution.relay_paths.clear();  // budget 2, nothing actually relayed
  const std::string bytes = io::to_text(solution);
  EXPECT_EQ(bytes.rfind("mdg-solution 2", 0), 0u);
  EXPECT_NE(bytes.find("relays 0"), std::string::npos);
  std::istringstream in(bytes);
  const auto parsed = io::try_read_solution(in);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().relay_hops, 2u);
  EXPECT_FALSE(parsed.value().uses_relays());
}

TEST(SerializeRelayTest, CollectEverythingModeReportsEveryRelayProblem) {
  // relay id out of range AND a path over budget: fail-fast stops at
  // the first, collect-everything reports both.
  const std::string bytes =
      "mdg-solution 2\nplanner -\ntour-length 1\noptimal 0\nrelay-hops 2\n"
      "polling 1\n0 1 1\nassignment 2\n0\n0\ntour 2\n0\n1\n"
      "relays 2\n2 5 5\n1 9\n";
  std::istringstream fail_fast(bytes);
  const auto strict = io::try_read_solution(fail_fast, {.fail_fast = true});
  ASSERT_FALSE(strict.is_ok());
  std::istringstream collect(bytes);
  const auto lenient = io::try_read_solution(collect, {.fail_fast = false});
  ASSERT_FALSE(lenient.is_ok());
  EXPECT_GT(lenient.status().message().size(),
            strict.status().message().size());
}

}  // namespace
}  // namespace mdg

// mdg-delta text format: exact round-trips (max_digits10 doubles) and
// the untrusted-input contract shared with the rest of io/ — malformed
// text returns kInvalidArgument, truncation returns kDataLoss, never a
// crash (docs/FORMAT.md, docs/ERRORS.md).
#include "io/delta_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/delta.h"

namespace mdg::io {
namespace {

core::Delta sample_delta() {
  core::Delta delta;
  delta.ops.push_back(core::DeltaOp::add_sensor({12.5, 40.25}));
  delta.ops.push_back(core::DeltaOp::remove_sensor(3));
  delta.ops.push_back(core::DeltaOp::move_sensor(7, {99.5, 10.0}));
  delta.ops.push_back(core::DeltaOp::set_range(27.5));
  return delta;
}

TEST(DeltaIoTest, RoundTripsEveryOpKindExactly) {
  const core::Delta delta = sample_delta();
  std::istringstream in(to_text(delta));
  const auto parsed = try_read_delta(in);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->ops, delta.ops);
}

TEST(DeltaIoTest, RoundTripsIrrationalCoordinatesBitExactly) {
  // max_digits10 formatting: a delta written and re-read must compare
  // bit-equal, because canonical plan bytes hash the delta text.
  core::Delta delta;
  delta.ops.push_back(core::DeltaOp::add_sensor({1.0 / 3.0, 2.0 / 7.0}));
  delta.ops.push_back(core::DeltaOp::set_range(0.1 + 0.2));
  std::istringstream in(to_text(delta));
  const auto parsed = try_read_delta(in);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->ops, delta.ops);
  // And the re-serialized text is byte-identical (stable cache keys).
  EXPECT_EQ(to_text(*parsed), to_text(delta));
}

TEST(DeltaIoTest, EmptyDeltaRoundTrips) {
  std::istringstream in(to_text(core::Delta{}));
  const auto parsed = try_read_delta(in);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed->ops.empty());
}

TEST(DeltaIoTest, RejectsTheDocumentedCorruptions) {
  const struct {
    const char* name;
    const char* text;
    core::StatusCode expected;
  } kCases[] = {
      {"empty", "", core::StatusCode::kDataLoss},
      {"bad magic", "mdg-network 1\nops 0\n",
       core::StatusCode::kInvalidArgument},
      {"bad version", "mdg-delta 2\nops 0\n",
       core::StatusCode::kInvalidArgument},
      {"missing count", "mdg-delta 1\nops\n", core::StatusCode::kDataLoss},
      {"huge count", "mdg-delta 1\nops 10000001\nadd 1 2\n",
       core::StatusCode::kInvalidArgument},
      {"unknown op", "mdg-delta 1\nops 1\nsplit 3\n",
       core::StatusCode::kInvalidArgument},
      {"truncated op", "mdg-delta 1\nops 2\nadd 1 2\n",
       core::StatusCode::kDataLoss},
      {"nan move", "mdg-delta 1\nops 1\nmove 0 nan 4\n",
       core::StatusCode::kInvalidArgument},
      {"inf add", "mdg-delta 1\nops 1\nadd inf 0\n",
       core::StatusCode::kInvalidArgument},
      {"zero range", "mdg-delta 1\nops 1\nrange 0\n",
       core::StatusCode::kInvalidArgument},
      {"negative range", "mdg-delta 1\nops 1\nrange -5\n",
       core::StatusCode::kInvalidArgument},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    std::istringstream in(c.text);
    const auto parsed = try_read_delta(in);
    ASSERT_FALSE(parsed.is_ok());
    EXPECT_EQ(parsed.status().code(), c.expected)
        << parsed.status().to_string();
  }
}

TEST(DeltaIoTest, LoadFromMissingFileIsNotFound) {
  const auto parsed = try_load_delta("/nonexistent/delta.txt");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace mdg::io

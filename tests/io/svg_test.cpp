#include "io/svg.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/multi_collector.h"
#include "core/spanning_tour_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::io {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgCanvasTest, EmptyDocumentIsWellFormed) {
  const SvgCanvas canvas(geom::Aabb::square(100.0));
  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgCanvasTest, PrimitivesAppear) {
  SvgCanvas canvas(geom::Aabb::square(100.0));
  canvas.add_circle({50.0, 50.0}, 5.0, "#ff0000");
  canvas.add_line({0.0, 0.0}, {100.0, 100.0}, "#00ff00");
  canvas.add_rect({{10.0, 10.0}, {20.0, 20.0}}, "#0000ff");
  canvas.add_label({5.0, 5.0}, "hello");
  const std::string svg = canvas.to_string();
  EXPECT_EQ(count_occurrences(svg, "<circle"), 1u);
  EXPECT_EQ(count_occurrences(svg, "<line"), 1u);
  // One background rect plus ours.
  EXPECT_EQ(count_occurrences(svg, "<rect"), 2u);
  EXPECT_NE(svg.find("hello"), std::string::npos);
}

TEST(SvgCanvasTest, CoordinateMappingFlipsY) {
  SvgOptions options;
  options.pixels_per_meter = 1.0;
  options.padding_px = 0.0;
  SvgCanvas canvas(geom::Aabb::square(100.0), options);
  canvas.add_circle({0.0, 0.0}, 1.0, "#000000");  // bottom-left in metres
  const std::string svg = canvas.to_string();
  // Bottom-left maps to SVG (0, 100): y flipped.
  EXPECT_NE(svg.find("cx=\"0.00\" cy=\"100.00\""), std::string::npos);
}

TEST(SvgCanvasTest, NetworkAndSolutionRender) {
  Rng rng(3);
  const net::SensorNetwork network =
      net::make_uniform_network(40, 100.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);

  SvgOptions options;
  options.draw_affiliations = true;
  SvgCanvas canvas(network.field(), options);
  canvas.draw_network(network);
  canvas.draw_solution(instance, solution);
  const std::string svg = canvas.to_string();
  // 40 sensors + 2 sink rings + PP dots.
  EXPECT_GE(count_occurrences(svg, "<circle"),
            40u + 2u + solution.polling_points.size());
  // Affiliation spokes: one per sensor.
  EXPECT_GE(count_occurrences(svg, "<line"), 40u);
  EXPECT_GE(count_occurrences(svg, "<polyline"), 1u);
}

TEST(SvgCanvasTest, MultiTourUsesDistinctColors) {
  Rng rng(5);
  const net::SensorNetwork network =
      net::make_uniform_network(80, 150.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  const core::MultiTourPlan plan =
      core::MultiCollectorPlanner().split(instance, solution, 3);

  SvgCanvas canvas(network.field());
  canvas.draw_multi_tour(instance, plan);
  const std::string svg = canvas.to_string();
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);
  EXPECT_NE(svg.find("#2ca02c"), std::string::npos);
}

TEST(SvgCanvasTest, SaveWritesFile) {
  SvgCanvas canvas(geom::Aabb::square(10.0));
  canvas.add_circle({5.0, 5.0}, 1.0, "#000000");
  const std::string path = ::testing::TempDir() + "/mdg_svg_test.svg";
  canvas.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
}

TEST(SvgCanvasTest, SaveToBadPathThrows) {
  const SvgCanvas canvas(geom::Aabb::square(10.0));
  EXPECT_THROW(canvas.save("/nonexistent-dir/x.svg"), mdg::PreconditionError);
}

TEST(SvgCanvasTest, RejectsBadScale) {
  SvgOptions options;
  options.pixels_per_meter = 0.0;
  EXPECT_THROW(SvgCanvas(geom::Aabb::square(10.0), options),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::io

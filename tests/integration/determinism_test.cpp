// Results must not depend on how the work is scheduled: the bench
// harness runs trials through parallel_for with per-trial forked RNG
// streams, so the same seed must give bit-identical planner output
// whether the pool has 1, 2, or 8 workers.
#include <gtest/gtest.h>

#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "net/sensor_network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdg {
namespace {

constexpr std::size_t kTrials = 12;

// One full pipeline evaluation per trial: topology -> cover -> tour.
std::vector<double> run_with_threads(std::size_t threads) {
  const Rng base(2008);
  std::vector<double> lengths(kTrials, 0.0);
  ThreadPool pool(threads);
  parallel_for(pool, kTrials, [&](std::size_t t) {
    Rng rng = base.fork(t);
    const net::SensorNetwork network =
        net::make_uniform_network(120, 150.0, 25.0, rng);
    const core::ShdgpInstance instance(network);
    lengths[t] = core::GreedyCoverPlanner().plan(instance).tour_length;
  });
  return lengths;
}

TEST(DeterminismTest, PlannerPipelineBitIdenticalAcrossThreadCounts) {
  const std::vector<double> one = run_with_threads(1);
  const std::vector<double> two = run_with_threads(2);
  const std::vector<double> eight = run_with_threads(8);
  for (std::size_t t = 0; t < kTrials; ++t) {
    // Exact equality on purpose: schedule-independence means the same
    // floating-point operations in the same order, not "close".
    EXPECT_EQ(one[t], two[t]) << "trial " << t;
    EXPECT_EQ(one[t], eight[t]) << "trial " << t;
  }
}

TEST(DeterminismTest, RepeatedRunsIdenticalOnSamePool) {
  const std::vector<double> first = run_with_threads(4);
  const std::vector<double> second = run_with_threads(4);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace mdg

// Parameterized property sweep over the verify:: generator library
// (satellite of the verification harness): all five standard generator
// families x three seeds, every invariant re-checked by
// verify::check_solution. A failing test names its reproducer up front:
// run `build/tools/repro <generator> <seed>` to replay it outside gtest.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/spanning_tour_planner.h"
#include "cover/set_cover.h"
#include "tsp/lower_bound.h"
#include "verify/check.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;
using SweepParam = std::tuple<GeneratorFamily, std::uint64_t>;

class ShdgpSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto [family, seed] = GetParam();
    // Printed on any failure below: the exact command that replays this
    // instance through plan -> verify outside the test binary.
    repro_ = "reproduce: build/tools/repro " +
             std::string(verify::to_string(family)) + " " +
             std::to_string(seed);
  }

  net::SensorNetwork make_network() const {
    const auto [family, seed] = GetParam();
    return verify::generate_network(
        family, seed, {.sensors = 150, .side = 200.0, .range = 30.0});
  }

  std::string repro_;
};

TEST_P(ShdgpSweepTest, SolutionSatisfiesEveryInvariant) {
  SCOPED_TRACE(repro_);
  const net::SensorNetwork network = make_network();
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_NO_THROW(solution.validate(instance));
  // Independent second opinion through the harness checker.
  const core::Status status = verify::check_solution(instance, solution);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

TEST_P(ShdgpSweepTest, PollingPointsRespectScatteringBound) {
  SCOPED_TRACE(repro_);
  const net::SensorNetwork network = make_network();
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_GE(solution.polling_points.size(),
            cover::scattering_lower_bound(network));
  EXPECT_LE(solution.polling_points.size(), network.size());
}

TEST_P(ShdgpSweepTest, TourRespectsMstLowerBound) {
  SCOPED_TRACE(repro_);
  // Any closed tour over sink + polling points is at least their MST.
  const net::SensorNetwork network = make_network();
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  std::vector<geom::Point> stops{instance.sink()};
  stops.insert(stops.end(), solution.polling_points.begin(),
               solution.polling_points.end());
  EXPECT_GE(solution.tour_length, tsp::mst_lower_bound(stops) - 1e-9);
}

TEST_P(ShdgpSweepTest, UploadsAreWithinRange) {
  SCOPED_TRACE(repro_);
  const net::SensorNetwork network = make_network();
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_LE(solution.mean_upload_distance(instance), network.range());
}

INSTANTIATE_TEST_SUITE_P(
    Families, ShdgpSweepTest,
    ::testing::Combine(
        ::testing::ValuesIn(verify::standard_families().begin(),
                            verify::standard_families().end()),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3})),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(verify::to_string(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mdg

// Parameterized property sweep: SHDGP invariants across the full
// (N, Rs, deployment) evaluation grid the benches exercise.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/spanning_tour_planner.h"
#include "cover/set_cover.h"
#include "net/deployment.h"
#include "tsp/lower_bound.h"
#include "util/rng.h"

namespace mdg {
namespace {

enum class Deployment { kUniform, kGridJitter, kClusters, kIslands };

std::string deployment_name(Deployment d) {
  switch (d) {
    case Deployment::kUniform:
      return "uniform";
    case Deployment::kGridJitter:
      return "grid";
    case Deployment::kClusters:
      return "clusters";
    case Deployment::kIslands:
      return "islands";
  }
  return "unknown";
}

using SweepParam = std::tuple<std::size_t, double, Deployment>;

class ShdgpSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  net::SensorNetwork make_network(std::uint64_t seed) const {
    const auto [n, rs, deployment] = GetParam();
    Rng rng(seed);
    const auto field = geom::Aabb::square(200.0);
    std::vector<geom::Point> pts;
    switch (deployment) {
      case Deployment::kUniform:
        pts = net::deploy_uniform(n, field, rng);
        break;
      case Deployment::kGridJitter:
        pts = net::deploy_grid_jitter(n, field, 0.3, rng);
        break;
      case Deployment::kClusters:
        pts = net::deploy_gaussian_clusters(n, field, 4, 22.0, rng);
        break;
      case Deployment::kIslands:
        pts = net::deploy_two_islands(n, field, 0.35, rng);
        break;
    }
    return net::SensorNetwork(std::move(pts), field.center(), field, rs);
  }
};

TEST_P(ShdgpSweepTest, SolutionSatisfiesEveryInvariant) {
  const net::SensorNetwork network = make_network(1);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_NO_THROW(solution.validate(instance));
}

TEST_P(ShdgpSweepTest, PollingPointsRespectScatteringBound) {
  const net::SensorNetwork network = make_network(2);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_GE(solution.polling_points.size(),
            cover::scattering_lower_bound(network));
  EXPECT_LE(solution.polling_points.size(), network.size());
}

TEST_P(ShdgpSweepTest, TourRespectsMstLowerBound) {
  // Any closed tour over sink + polling points is at least their MST.
  const net::SensorNetwork network = make_network(3);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  std::vector<geom::Point> stops{instance.sink()};
  stops.insert(stops.end(), solution.polling_points.begin(),
               solution.polling_points.end());
  EXPECT_GE(solution.tour_length, tsp::mst_lower_bound(stops) - 1e-9);
}

TEST_P(ShdgpSweepTest, UploadsAreWithinRange) {
  const net::SensorNetwork network = make_network(4);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_LE(solution.mean_upload_distance(instance), network.range());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShdgpSweepTest,
    ::testing::Combine(::testing::Values(std::size_t{60}, std::size_t{150},
                                         std::size_t{300}),
                       ::testing::Values(20.0, 35.0, 50.0),
                       ::testing::Values(Deployment::kUniform,
                                         Deployment::kGridJitter,
                                         Deployment::kClusters,
                                         Deployment::kIslands)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_Rs" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_" + deployment_name(std::get<2>(info.param));
    });

}  // namespace
}  // namespace mdg

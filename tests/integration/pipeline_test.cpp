// End-to-end integration: deployment -> planning -> serialization ->
// simulation, crossing every module boundary the way the bench harness
// and a downstream user do.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "baselines/direct_visit.h"
#include "core/greedy_cover_planner.h"
#include "core/multi_collector.h"
#include "core/spanning_tour_planner.h"
#include "dist/election_planner.h"
#include "io/serialize.h"
#include "sim/mobile_sim.h"
#include "sim/multihop_sim.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdg {
namespace {

TEST(PipelineTest, PlanSerializeReloadSimulate) {
  Rng rng(42);
  const net::SensorNetwork network =
      net::make_uniform_network(120, 180.0, 28.0, rng);

  // Round-trip the network and the plan through text serialization.
  std::stringstream net_buffer;
  io::write_network(net_buffer, network);
  const net::SensorNetwork restored_net = io::read_network(net_buffer);
  const core::ShdgpInstance instance(restored_net);
  const core::ShdgpSolution plan =
      core::SpanningTourPlanner().plan(instance);

  std::stringstream sol_buffer;
  io::write_solution(sol_buffer, plan);
  const core::ShdgpSolution restored_plan = io::read_solution(sol_buffer);
  restored_plan.validate(instance);

  // The reloaded plan must simulate identically to the fresh one.
  sim::MobileCollectionSim fresh(instance, plan);
  sim::MobileCollectionSim reloaded(instance, restored_plan);
  sim::EnergyLedger l1(restored_net.size(), 0.5);
  sim::EnergyLedger l2(restored_net.size(), 0.5);
  const auto r1 = fresh.run_round(l1);
  const auto r2 = reloaded.run_round(l2);
  EXPECT_DOUBLE_EQ(r1.duration_s, r2.duration_s);
  EXPECT_EQ(r1.delivered, r2.delivered);
}

TEST(PipelineTest, SimulatedEnergyMatchesAnalyticUploadCost) {
  // The mobile round's per-sensor energy must equal exactly one packet
  // transmission over the sensor->PP distance — tying planner geometry,
  // radio model and simulator together.
  Rng rng(7);
  const net::SensorNetwork network =
      net::make_uniform_network(90, 150.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution plan =
      core::GreedyCoverPlanner().plan(instance);
  sim::MobileCollectionSim sim(instance, plan);
  sim::EnergyLedger ledger(network.size(), 0.5);
  const auto round = sim.run_round(ledger);
  for (std::size_t s = 0; s < network.size(); ++s) {
    const double expected = network.radio().tx_packet(geom::distance(
        network.position(s), plan.polling_points[plan.assignment[s]]));
    EXPECT_NEAR(round.round_energy[s], expected, 1e-15) << "sensor " << s;
  }
}

TEST(PipelineTest, FleetPlanRoundsMeetDeadlineInSimulation) {
  // collectors_for_deadline promises every subtour's round fits the
  // deadline; verify against simulated per-subtour rounds.
  Rng rng(13);
  const net::SensorNetwork network =
      net::make_uniform_network(200, 250.0, 30.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution plan =
      core::SpanningTourPlanner().plan(instance);

  const double deadline_s = 15.0 * 60.0;
  const double speed = 1.0;
  const double service = 2.0;
  const core::MultiCollectorPlanner splitter;
  const std::size_t k = splitter.collectors_for_deadline(
      instance, plan, deadline_s, speed, service);
  ASSERT_GT(k, 0u);
  const core::MultiTourPlan fleet = splitter.split(instance, plan, k);
  for (const core::Subtour& st : fleet.subtours) {
    const double round_time =
        st.length / speed + static_cast<double>(st.stops.size()) * service;
    EXPECT_LE(round_time, deadline_s + 1e-6);
  }
}

TEST(PipelineTest, EveryPlannerFeedsBothSimulators) {
  Rng rng(19);
  const net::SensorNetwork network =
      net::make_uniform_network(80, 140.0, 25.0, rng);
  const core::ShdgpInstance instance(network);

  const core::GreedyCoverPlanner greedy;
  const core::SpanningTourPlanner spanning;
  const baselines::DirectVisitPlanner direct;
  const dist::ElectionPlanner election;
  const std::vector<const core::Planner*> planners{&greedy, &spanning,
                                                   &direct, &election};
  for (const core::Planner* planner : planners) {
    const core::ShdgpSolution plan = planner->plan(instance);
    sim::MobileCollectionSim sim(instance, plan);
    sim::EnergyLedger ledger(network.size(), 0.5);
    const auto round = sim.run_round(ledger);
    EXPECT_EQ(round.delivered, network.size()) << planner->name();
  }

  // The multihop simulator runs on the same network object.
  sim::MultihopSim hop(network);
  sim::EnergyLedger hop_ledger(network.size(), 0.5);
  const auto hop_round = hop.run_round(hop_ledger);
  EXPECT_GT(hop_round.delivered, 0u);
}

TEST(PipelineTest, TradeoffHoldsOnAverage) {
  // The paper's central claim, end to end: mobile collection spends far
  // less worst-case sensor energy per round, multihop delivers far
  // faster. Averaged over topologies to be robust.
  RunningStats mobile_max_energy;
  RunningStats hop_max_energy;
  RunningStats mobile_latency;
  RunningStats hop_latency;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const net::SensorNetwork network =
        net::make_uniform_network(150, 200.0, 30.0, rng);
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution plan =
        core::SpanningTourPlanner().plan(instance);

    sim::MobileCollectionSim mobile(instance, plan);
    sim::EnergyLedger ml(network.size(), 0.5);
    const auto mr = mobile.run_round(ml);
    mobile_max_energy.add(*std::max_element(mr.round_energy.begin(),
                                            mr.round_energy.end()));
    mobile_latency.add(mr.duration_s);

    sim::MultihopSim hop(network);
    sim::EnergyLedger hl(network.size(), 0.5);
    const auto hr = hop.run_round(hl);
    hop_max_energy.add(*std::max_element(hr.round_energy.begin(),
                                         hr.round_energy.end()));
    hop_latency.add(hr.mean_latency_s);
  }
  EXPECT_LT(mobile_max_energy.mean() * 5.0, hop_max_energy.mean());
  EXPECT_GT(mobile_latency.mean(), hop_latency.mean() * 100.0);
}

}  // namespace
}  // namespace mdg

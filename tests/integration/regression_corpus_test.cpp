// Golden-instance regression tests over the pinned topologies in data/.
//
// Everything in this library is deterministic, so planner outputs on a
// fixed network are exact regression anchors: any change to the RNG,
// the geometry predicates, the TSP pipeline or a planner that shifts
// these numbers is either a deliberate algorithm change (update the
// anchors and say why) or a bug.
#include <gtest/gtest.h>

#include <string>

#include "core/exact_planner.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "io/serialize.h"

namespace mdg {
namespace {

std::string data_path(const std::string& name) {
  return std::string(MDG_DATA_DIR) + "/" + name;
}

TEST(RegressionCorpusTest, Small30Anchors) {
  const net::SensorNetwork network =
      io::load_network(data_path("small30.txt"));
  ASSERT_EQ(network.size(), 30u);
  EXPECT_EQ(network.components().count, 2u);

  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution greedy =
      core::GreedyCoverPlanner().plan(instance);
  EXPECT_NEAR(greedy.tour_length, 176.966965786, 1e-6);
  EXPECT_EQ(greedy.polling_points.size(), 6u);

  const core::ShdgpSolution spanning =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_NEAR(spanning.tour_length, 172.016795365, 1e-6);

  // On this instance the spanning-tour heuristic attains the proven
  // optimum.
  const core::ShdgpSolution exact = core::ExactPlanner().plan(instance);
  ASSERT_TRUE(exact.provably_optimal);
  EXPECT_NEAR(exact.tour_length, 172.016795365, 1e-6);
  EXPECT_EQ(exact.polling_points.size(), 6u);
  EXPECT_NEAR(spanning.tour_length, exact.tour_length, 1e-6);
}

TEST(RegressionCorpusTest, Uniform200Anchors) {
  const net::SensorNetwork network =
      io::load_network(data_path("uniform200.txt"));
  ASSERT_EQ(network.size(), 200u);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution spanning =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_NEAR(spanning.tour_length, 796.150494205, 1e-6);
  EXPECT_EQ(spanning.polling_points.size(), 22u);
  spanning.validate(instance);
}

}  // namespace
}  // namespace mdg

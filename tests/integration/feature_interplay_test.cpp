// Interplay of the optional features: capacity bounds, continuous
// refinement, visit schedules and fleet splitting composed on one plan.
#include <gtest/gtest.h>

#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/multi_collector.h"
#include "core/refine.h"
#include "core/visit_schedule.h"
#include "sim/fleet_sim.h"
#include "util/rng.h"

namespace mdg {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;

  explicit Fixture(std::uint64_t seed, std::size_t n = 140)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 180.0, 28.0, rng);
        }()),
        instance(network) {}
};

TEST(FeatureInterplayTest, RefineAfterCapacitatedPlanKeepsBothProperties) {
  const Fixture fx(1);
  core::GreedyCoverPlannerOptions options;
  options.max_pp_load = 6;
  core::ShdgpSolution solution =
      core::GreedyCoverPlanner(options).plan(fx.instance);
  const auto loads_before = solution.pp_loads();
  const double before = solution.tour_length;

  core::refine_polling_positions(fx.instance, solution);
  solution.validate(fx.instance);
  EXPECT_LE(solution.tour_length, before + 1e-9);
  // Refinement moves positions, never assignments: the load bound holds.
  EXPECT_EQ(solution.pp_loads(), loads_before);
  EXPECT_LE(solution.max_pp_load(), 6u);
}

TEST(FeatureInterplayTest, ScheduleOnRefinedPlanStaysConsistent) {
  const Fixture fx(2);
  core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(fx.instance);
  core::refine_polling_positions(fx.instance, solution);
  const core::VisitSchedule schedule(fx.instance, solution);
  EXPECT_EQ(schedule.stops().size(), solution.polling_points.size());
  EXPECT_GT(schedule.round_duration_s(), 0.0);
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    EXPECT_GT(schedule.duty_cycle(s), 0.0);
  }
}

TEST(FeatureInterplayTest, FleetOverRefinedPlanDeliversEverything) {
  const Fixture fx(3);
  core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(fx.instance);
  core::refine_polling_positions(fx.instance, solution);
  const core::MultiTourPlan plan =
      core::MultiCollectorPlanner().split(fx.instance, solution, 3);
  const sim::FleetSim fleet(fx.instance, solution, plan);
  sim::EnergyLedger ledger(fx.network.size(), 0.5);
  const sim::FleetRoundReport round = fleet.run_round(ledger);
  EXPECT_EQ(round.delivered, fx.network.size());
}

TEST(FeatureInterplayTest, RefinementImprovesTheFleetToo) {
  const Fixture fx(4, 200);
  core::ShdgpSolution raw = core::GreedyCoverPlanner().plan(fx.instance);
  core::ShdgpSolution refined = raw;
  core::refine_polling_positions(fx.instance, refined);
  const core::MultiCollectorPlanner splitter;
  const double raw_max =
      splitter.split(fx.instance, raw, 3).max_length;
  const double refined_max =
      splitter.split(fx.instance, refined, 3).max_length;
  // Shorter stops-to-stops geometry should carry through the split;
  // allow slack since the split heuristic is not monotone.
  EXPECT_LE(refined_max, raw_max * 1.05);
}

}  // namespace
}  // namespace mdg

// The acceptance bar for the parallel planning engine: the serialized
// plan — polling candidates, assignment, tour order, every coordinate
// byte — must be identical whether the pool runs 1, 2, or 8 workers.
// This exercises all three parallel layers at once: the sharded
// coverage build, the multi-start tour portfolio, and plan_many's batch
// fan-out.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "core/plan_many.h"
#include "core/tree_dominator_planner.h"
#include "io/serialize.h"
#include "net/sensor_network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdg {
namespace {

std::string plan_bytes(const core::ShdgpSolution& solution) {
  std::ostringstream out;
  io::write_solution(out, solution);
  return out.str();
}

struct Corpus {
  std::vector<net::SensorNetwork> networks;
  std::vector<core::ShdgpInstance> instances;
};

Corpus make_corpus() {
  Corpus corpus;
  const Rng base(7702);
  constexpr std::size_t kTrials = 5;
  corpus.networks.reserve(kTrials);  // instances bind by pointer
  for (std::size_t t = 0; t < kTrials; ++t) {
    Rng rng = base.fork(t);
    corpus.networks.push_back(
        net::make_uniform_network(80 + 40 * t, 180.0, 28.0, rng));
  }
  cover::CandidateOptions dense;
  dense.policy = cover::CandidatePolicy::kSensorSitesAndIntersections;
  for (const net::SensorNetwork& network : corpus.networks) {
    // Dense candidates so the bigger instances cross the parallel
    // coverage-build cutoff.
    corpus.instances.emplace_back(network, dense);
  }
  return corpus;
}

// Serialized plans for the whole corpus at a given worker count, via
// the batch front door with the multi-start portfolio enabled.
std::vector<std::string> corpus_bytes(const Corpus& corpus,
                                      std::size_t threads) {
  ScopedPlanningThreads scoped(threads);
  core::GreedyCoverPlannerOptions options;
  options.tsp_multi_starts = 4;
  const core::GreedyCoverPlanner planner(options);
  const std::vector<core::ShdgpSolution> plans =
      core::plan_many(planner, corpus.instances);
  std::vector<std::string> bytes;
  bytes.reserve(plans.size());
  for (const core::ShdgpSolution& plan : plans) {
    bytes.push_back(plan_bytes(plan));
  }
  return bytes;
}

TEST(PlanBytesDeterminismTest, FullEngineByteIdenticalAcrossThreadCounts) {
  const Corpus corpus = make_corpus();
  const std::vector<std::string> one = corpus_bytes(corpus, 1);
  const std::vector<std::string> two = corpus_bytes(corpus, 2);
  const std::vector<std::string> eight = corpus_bytes(corpus, 8);
  ASSERT_EQ(one.size(), corpus.instances.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], two[i]) << "instance " << i << " (2 threads)";
    EXPECT_EQ(one[i], eight[i]) << "instance " << i << " (8 threads)";
  }
}

TEST(PlanBytesDeterminismTest, MultiStartPortfolioThreadInvariant) {
  // Single instance, portfolio only: chains race inside one solve call.
  Rng rng(8101);
  const net::SensorNetwork network =
      net::make_uniform_network(150, 200.0, 25.0, rng);
  const core::ShdgpInstance instance(network);

  core::GreedyCoverPlannerOptions options;
  options.tsp_multi_starts = 8;
  const core::GreedyCoverPlanner planner(options);

  std::string reference;
  for (const std::size_t threads : {1, 3, 8}) {
    ScopedPlanningThreads scoped(threads);
    const std::string bytes = plan_bytes(planner.plan(instance));
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << threads << " threads";
    }
  }
}

TEST(PlanBytesDeterminismTest, PortfolioNeverWorseThanSingleStart) {
  // The portfolio includes the single-start chain as chain 0 and takes
  // the argmin, so it can only shorten the tour.
  Rng rng(8102);
  const net::SensorNetwork network =
      net::make_uniform_network(120, 180.0, 25.0, rng);
  const core::ShdgpInstance instance(network);

  const core::GreedyCoverPlanner single;
  core::GreedyCoverPlannerOptions multi_options;
  multi_options.tsp_multi_starts = 6;
  const core::GreedyCoverPlanner multi(multi_options);

  EXPECT_LE(multi.plan(instance).tour_length,
            single.plan(instance).tour_length + 1e-9);
}

TEST(PlanBytesDeterminismTest, TreeDominatorUnaffectedByThreadCount) {
  // A planner with no parallel phase must be trivially invariant too —
  // guards against accidental shared state in the pool plumbing.
  Rng rng(8103);
  const net::SensorNetwork network =
      net::make_uniform_network(90, 150.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const core::TreeDominatorPlanner planner;

  ScopedPlanningThreads one(1);
  const std::string serial = plan_bytes(planner.plan(instance));
  {
    ScopedPlanningThreads eight(8);
    EXPECT_EQ(plan_bytes(planner.plan(instance)), serial);
  }
}

}  // namespace
}  // namespace mdg

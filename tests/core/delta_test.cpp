#include "core/delta.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "util/rng.h"
#include "verify/canonical.h"
#include "verify/check.h"

namespace mdg::core {
namespace {

struct Fixture {
  net::SensorNetwork network;
  DynamicInstance dyn;
  ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 60, double side = 150.0,
                   double range = 25.0)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, side, range, rng);
        }()),
        dyn(network) {
    const ShdgpInstance instance(network);
    solution = GreedyCoverPlanner().plan(instance);
  }

  [[nodiscard]] std::string bytes() const {
    return verify::canonical_plan_bytes(dyn.instance(), solution);
  }

  void expect_valid() const {
    EXPECT_NO_THROW(solution.validate(dyn.instance()));
    EXPECT_TRUE(verify::check_solution(dyn.instance(), solution).is_ok());
  }
};

TEST(DeltaTest, EmptyDeltaIsByteIdenticalNoOp) {
  Fixture fx(41);
  const std::string before = fx.bytes();
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, Delta{}, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->ops_applied, 0u);
  EXPECT_EQ(result->damaged, 0u);
  EXPECT_FALSE(result->full_replan);
  EXPECT_EQ(fx.bytes(), before);
}

TEST(DeltaTest, AddSensorNearPollingPointJoinsWithoutNewStops) {
  Fixture fx(42);
  // Drop the new sensor right on top of an existing polling point: the
  // cheap re-affiliation layer must absorb it without growing the tour.
  const geom::Point at = fx.solution.polling_points.front();
  Delta delta;
  delta.ops.push_back(DeltaOp::add_sensor({at.x + 0.5, at.y + 0.5}));
  const std::size_t stops_before = fx.solution.polling_points.size();
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->damaged, 1u);
  EXPECT_EQ(result->pps_added, 0u);
  EXPECT_EQ(fx.solution.polling_points.size(), stops_before);
  EXPECT_EQ(fx.dyn.size(), 61u);
  fx.expect_valid();
}

TEST(DeltaTest, RemoteSensorGetsItsOwnPollingPoint) {
  // A sparse deployment in a big field: a far-corner addition cannot be
  // in range of anything and must spawn a polling point.
  Fixture fx(43, 20, 400.0, 20.0);
  Delta delta;
  delta.ops.push_back(DeltaOp::add_sensor({399.0, 399.0}));
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  if (!result->full_replan) {
    EXPECT_GE(result->pps_added, 1u);
  }
  fx.expect_valid();
}

TEST(DeltaTest, RemoveNonHostSensorKeepsPlanValid) {
  Fixture fx(44);
  // Find a sensor that does not host a polling point.
  std::vector<char> is_host(fx.dyn.size(), 0);
  for (std::size_t c : fx.solution.polling_candidates) {
    is_host[c] = 1;
  }
  std::size_t victim = fx.dyn.size();
  for (std::size_t s = 0; s < fx.dyn.size(); ++s) {
    if (!is_host[s]) {
      victim = s;
      break;
    }
  }
  ASSERT_LT(victim, fx.dyn.size());
  Delta delta;
  delta.ops.push_back(DeltaOp::remove_sensor(victim));
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(fx.dyn.size(), 59u);
  fx.expect_valid();
}

TEST(DeltaTest, RemoveHostRepairsItsAffiliates) {
  Fixture fx(45);
  const std::size_t host = fx.solution.polling_candidates.front();
  Delta delta;
  delta.ops.push_back(DeltaOp::remove_sensor(host));
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  if (!result->full_replan) {
    EXPECT_GE(result->pps_removed, 1u);
  }
  EXPECT_EQ(fx.dyn.size(), 59u);
  fx.expect_valid();
}

TEST(DeltaTest, MoveSensorAcrossTheFieldRepairs) {
  Fixture fx(46);
  Delta delta;
  delta.ops.push_back(DeltaOp::move_sensor(3, {1.0, 1.0}));
  delta.ops.push_back(DeltaOp::move_sensor(7, {149.0, 149.0}));
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(fx.dyn.position(3), (geom::Point{1.0, 1.0}));
  EXPECT_EQ(fx.dyn.position(7), (geom::Point{149.0, 149.0}));
  fx.expect_valid();
}

TEST(DeltaTest, ShrinkingRangeRepairsStrandedSensors) {
  Fixture fx(47);
  Delta delta;
  delta.ops.push_back(DeltaOp::set_range(15.0));
  DeltaOptions options;
  options.damage_dispatch_fraction = 1.0;  // force local repair
  const StatusOr<DeltaResult> result =
      apply_delta(fx.dyn, delta, fx.solution, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(fx.dyn.range(), 15.0);
  fx.expect_valid();
}

TEST(DeltaTest, GrowingRangeDamagesNothing) {
  Fixture fx(48);
  Delta delta;
  delta.ops.push_back(DeltaOp::set_range(40.0));
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->damaged, 0u);
  // A longer range strands nobody, but repair keeps the old (now
  // oversized) polling set while a fresh plan needs far fewer stops —
  // the ratio guard is expected to notice and adopt the fresh plan.
  if (result->full_replan) {
    EXPECT_EQ(result->full_replan_reason, "ratio");
  }
  fx.expect_valid();
}

TEST(DeltaTest, InvalidOpsLeaveEverythingUntouched) {
  Fixture fx(49);
  const std::string before = fx.bytes();
  const std::size_t n_before = fx.dyn.size();

  Delta bad_id;
  bad_id.ops.push_back(DeltaOp::remove_sensor(0));
  bad_id.ops.push_back(DeltaOp::remove_sensor(999));  // invalid: checked upfront
  EXPECT_EQ(apply_delta(fx.dyn, bad_id, fx.solution).status().code(),
            StatusCode::kInvalidArgument);

  Delta outside;
  outside.ops.push_back(DeltaOp::add_sensor({-5.0, 10.0}));
  EXPECT_EQ(apply_delta(fx.dyn, outside, fx.solution).status().code(),
            StatusCode::kInvalidArgument);

  Delta nan_pos;
  nan_pos.ops.push_back(
      DeltaOp::add_sensor({std::numeric_limits<double>::quiet_NaN(), 0.0}));
  EXPECT_EQ(apply_delta(fx.dyn, nan_pos, fx.solution).status().code(),
            StatusCode::kInvalidArgument);

  Delta bad_range;
  bad_range.ops.push_back(DeltaOp::set_range(-1.0));
  EXPECT_EQ(apply_delta(fx.dyn, bad_range, fx.solution).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(fx.dyn.size(), n_before);
  EXPECT_EQ(fx.bytes(), before);
}

TEST(DeltaTest, BatchIdsValidateAgainstTheRunningCount) {
  Fixture fx(50, 10);
  // Ten sensors: removing two leaves ids [0, 8); referencing id 8 after
  // the removals is invalid even though it existed before the batch.
  Delta delta;
  delta.ops.push_back(DeltaOp::remove_sensor(0));
  delta.ops.push_back(DeltaOp::remove_sensor(1));
  delta.ops.push_back(DeltaOp::move_sensor(8, {5.0, 5.0}));
  EXPECT_EQ(apply_delta(fx.dyn, delta, fx.solution).status().code(),
            StatusCode::kInvalidArgument);
  // An added sensor is addressable later in the same batch.
  Delta grow;
  grow.ops.push_back(DeltaOp::add_sensor({5.0, 5.0}));
  grow.ops.push_back(DeltaOp::move_sensor(10, {6.0, 6.0}));
  ASSERT_TRUE(apply_delta(fx.dyn, grow, fx.solution).is_ok());
  EXPECT_EQ(fx.dyn.position(10), (geom::Point{6.0, 6.0}));
  fx.expect_valid();
}

TEST(DeltaTest, MismatchedSolutionIsAPreconditionFailure) {
  Fixture fx(51);
  fx.solution.assignment.pop_back();
  Delta delta;
  delta.ops.push_back(DeltaOp::set_range(30.0));
  EXPECT_EQ(apply_delta(fx.dyn, delta, fx.solution).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeltaTest, HeavyDamageDispatchesToFullReplan) {
  Fixture fx(52);
  Delta delta;
  delta.ops.push_back(DeltaOp::move_sensor(0, {1.0, 1.0}));
  DeltaOptions options;
  options.damage_dispatch_fraction = 0.0;  // any damage trips the gate
  const StatusOr<DeltaResult> result =
      apply_delta(fx.dyn, delta, fx.solution, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result->full_replan);
  EXPECT_EQ(result->full_replan_reason, "damage");
  fx.expect_valid();
}

TEST(DeltaTest, FreeformPlanFallsBackToFullReplan) {
  Fixture fx(53);
  fx.solution.polling_candidates.front() = ShdgpSolution::kFreeformCandidate;
  Delta delta;
  delta.ops.push_back(DeltaOp::add_sensor({10.0, 10.0}));
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result->full_replan);
  EXPECT_EQ(result->full_replan_reason, "policy");
  fx.expect_valid();
}

TEST(DeltaTest, RatioGuardAdoptsTheFreshPlan) {
  Fixture fx(54);
  Delta delta;
  delta.ops.push_back(DeltaOp::move_sensor(0, {2.0, 2.0}));
  DeltaOptions options;
  options.force_ratio_check = true;
  options.max_repair_ratio = 0.0;  // no repaired tour can beat this
  const StatusOr<DeltaResult> result =
      apply_delta(fx.dyn, delta, fx.solution, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result->full_replan);
  EXPECT_EQ(result->full_replan_reason, "ratio");
  EXPECT_GT(result->repair_ratio, 0.0);
  fx.expect_valid();
}

TEST(DeltaTest, RepairStaysWithinTheRatioBound) {
  Fixture fx(55);
  Delta delta;
  delta.ops.push_back(DeltaOp::add_sensor({120.0, 10.0}));
  delta.ops.push_back(DeltaOp::remove_sensor(5));
  delta.ops.push_back(DeltaOp::move_sensor(9, {33.0, 140.0}));
  DeltaOptions options;
  options.force_ratio_check = true;
  const StatusOr<DeltaResult> result =
      apply_delta(fx.dyn, delta, fx.solution, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result->repair_ratio, 0.0);
  EXPECT_LE(result->repair_ratio, options.max_repair_ratio);
  fx.expect_valid();
}

TEST(DeltaTest, RepairIsDeterministicAcrossIdenticalRuns) {
  Delta delta;
  delta.ops.push_back(DeltaOp::add_sensor({100.0, 100.0}));
  delta.ops.push_back(DeltaOp::remove_sensor(2));
  delta.ops.push_back(DeltaOp::move_sensor(11, {75.0, 20.0}));
  delta.ops.push_back(DeltaOp::set_range(22.0));

  Fixture a(56);
  Fixture b(56);
  ASSERT_TRUE(apply_delta(a.dyn, delta, a.solution).is_ok());
  ASSERT_TRUE(apply_delta(b.dyn, delta, b.solution).is_ok());
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(DeltaTest, LongChurnStreamStaysValid) {
  Fixture fx(57);
  Rng rng(99);
  for (int round = 0; round < 25; ++round) {
    Delta delta;
    const std::size_t n = fx.dyn.size();
    switch (rng.next_u64() % 4) {
      case 0:
        delta.ops.push_back(DeltaOp::add_sensor(
            {rng.uniform(0.0, 150.0), rng.uniform(0.0, 150.0)}));
        break;
      case 1:
        if (n > 5) {
          delta.ops.push_back(DeltaOp::remove_sensor(rng.next_u64() % n));
        }
        break;
      case 2:
        delta.ops.push_back(DeltaOp::move_sensor(
            rng.next_u64() % n,
            {rng.uniform(0.0, 150.0), rng.uniform(0.0, 150.0)}));
        break;
      default:
        delta.ops.push_back(DeltaOp::set_range(rng.uniform(18.0, 32.0)));
        break;
    }
    const StatusOr<DeltaResult> result =
        apply_delta(fx.dyn, delta, fx.solution);
    ASSERT_TRUE(result.is_ok()) << "round " << round;
    fx.expect_valid();
  }
}

TEST(DeltaTest, RemovingEverySensorLeavesTheSinkOnlyPlan) {
  Fixture fx(58, 6);
  Delta delta;
  for (std::size_t i = 0; i < 6; ++i) {
    delta.ops.push_back(DeltaOp::remove_sensor(0));
  }
  const StatusOr<DeltaResult> result = apply_delta(fx.dyn, delta, fx.solution);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(fx.dyn.size(), 0u);
  EXPECT_TRUE(fx.solution.polling_points.empty());
  EXPECT_TRUE(fx.solution.assignment.empty());
  EXPECT_EQ(fx.solution.tour.size(), 1u);
  EXPECT_DOUBLE_EQ(fx.solution.tour_length, 0.0);
}

// --- DynamicInstance ------------------------------------------------------

TEST(DynamicInstanceTest, TracksChurnAgainstBruteForce) {
  Rng rng(7);
  net::SensorNetwork network = net::make_uniform_network(80, 200.0, 30.0, rng);
  DynamicInstance dyn(network);
  std::vector<geom::Point> mirror = network.positions();

  for (int round = 0; round < 60; ++round) {
    switch (rng.next_u64() % 3) {
      case 0: {
        const geom::Point p{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        dyn.add_sensor(p);
        mirror.push_back(p);
        break;
      }
      case 1: {
        if (mirror.size() > 1) {
          const std::size_t s = rng.next_u64() % mirror.size();
          dyn.remove_sensor(s);
          mirror[s] = mirror.back();
          mirror.pop_back();
        }
        break;
      }
      default: {
        const std::size_t s = rng.next_u64() % mirror.size();
        const geom::Point p{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
        dyn.move_sensor(s, p);
        mirror[s] = p;
        break;
      }
    }
    ASSERT_EQ(dyn.size(), mirror.size());
    const geom::Point probe{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
    std::vector<std::size_t> got;
    dyn.sensors_within(probe, dyn.range(), got);
    std::vector<std::size_t> want;
    for (std::size_t s = 0; s < mirror.size(); ++s) {
      if (geom::within_range(probe, mirror[s], dyn.range())) {
        want.push_back(s);
      }
    }
    ASSERT_EQ(got, want) << "round " << round;
  }
  for (std::size_t s = 0; s < mirror.size(); ++s) {
    EXPECT_EQ(dyn.position(s), mirror[s]);
  }
}

TEST(DynamicInstanceTest, MaterializedNetworkReflectsTheLatestState) {
  Rng rng(8);
  net::SensorNetwork network = net::make_uniform_network(30, 100.0, 20.0, rng);
  DynamicInstance dyn(network);
  EXPECT_EQ(dyn.network().size(), 30u);
  dyn.add_sensor({50.0, 50.0});
  dyn.set_range(25.0);
  EXPECT_EQ(dyn.network().size(), 31u);
  EXPECT_DOUBLE_EQ(dyn.network().range(), 25.0);
  EXPECT_EQ(dyn.instance().sensor_count(), 31u);
  // The instance's sensor-site candidates mirror sensor ids exactly.
  EXPECT_EQ(dyn.instance().coverage().candidate_count(), 31u);
}

}  // namespace
}  // namespace mdg::core

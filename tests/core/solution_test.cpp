#include "core/solution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

struct Fixture {
  net::SensorNetwork network;
  ShdgpInstance instance;

  explicit Fixture(std::uint64_t seed, std::size_t n = 80)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 120.0, 25.0, rng);
        }()),
        instance(network) {}
};

TEST(ShdgpSolutionTest, ValidSolutionPassesValidate) {
  const Fixture fx(1);
  const ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  EXPECT_NO_THROW(solution.validate(fx.instance));
}

TEST(ShdgpSolutionTest, ValidateCatchesBadAssignment) {
  const Fixture fx(2);
  ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  solution.assignment[0] = solution.polling_points.size();  // out of range
  EXPECT_THROW(solution.validate(fx.instance), mdg::InvariantError);
}

TEST(ShdgpSolutionTest, ValidateCatchesStaleLength) {
  const Fixture fx(3);
  ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  solution.tour_length += 10.0;
  EXPECT_THROW(solution.validate(fx.instance), mdg::InvariantError);
}

TEST(ShdgpSolutionTest, ValidateCatchesMismatchedParallelArrays) {
  const Fixture fx(4);
  ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  solution.polling_points.pop_back();
  EXPECT_THROW(solution.validate(fx.instance), mdg::InvariantError);
}

TEST(ShdgpSolutionTest, ValidateCatchesOutOfRangeSensor) {
  const Fixture fx(5);
  ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  // Move a polling point far away from its sensors but keep the
  // candidate id: position mismatch must be flagged.
  solution.polling_points[0] = {1e6, 1e6};
  EXPECT_THROW(solution.validate(fx.instance), mdg::InvariantError);
}

TEST(ShdgpSolutionTest, PpLoadAccounting) {
  const Fixture fx(6);
  const ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  const auto loads = solution.pp_loads();
  std::size_t total = 0;
  for (std::size_t load : loads) {
    total += load;
  }
  EXPECT_EQ(total, fx.network.size());
  EXPECT_EQ(solution.max_pp_load(),
            *std::max_element(loads.begin(), loads.end()));
  EXPECT_NEAR(solution.avg_pp_load(),
              static_cast<double>(fx.network.size()) /
                  static_cast<double>(solution.polling_points.size()),
              1e-12);
}

TEST(ShdgpSolutionTest, MeanUploadDistanceWithinRange) {
  const Fixture fx(7);
  const ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  const double mean = solution.mean_upload_distance(fx.instance);
  EXPECT_GE(mean, 0.0);
  EXPECT_LE(mean, fx.network.range());
}

TEST(ShdgpSolutionTest, TourCoordinatesStartAtSink) {
  const Fixture fx(8);
  const ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  const auto coords = solution.tour_coordinates(fx.instance);
  ASSERT_FALSE(coords.empty());
  EXPECT_EQ(coords.front(), fx.instance.sink());
  EXPECT_EQ(coords.size(), solution.polling_points.size() + 1);
}

TEST(RouteCollectorTest, LengthMatchesTour) {
  const Fixture fx(9);
  ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  route_collector(fx.instance, solution, tsp::TspEffort::kTwoOpt);
  std::vector<geom::Point> all{fx.instance.sink()};
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  EXPECT_NEAR(solution.tour_length, solution.tour.length(all), 1e-9);
}

}  // namespace
}  // namespace mdg::core

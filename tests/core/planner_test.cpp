// Cross-planner property suite: every SHDGP planner must produce feasible
// solutions on a sweep of topologies, including disconnected ones.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/direct_visit.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "core/tree_dominator_planner.h"
#include "dist/election_planner.h"
#include "cover/set_cover.h"
#include "net/deployment.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdg::core {
namespace {

struct PlannerCase {
  std::string name;
  std::function<std::unique_ptr<Planner>()> make;
};

class PlannerPropertyTest : public ::testing::TestWithParam<PlannerCase> {};

net::SensorNetwork uniform_net(std::size_t n, double side, double rs,
                               std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

TEST_P(PlannerPropertyTest, FeasibleOnUniformNetworks) {
  const auto planner = GetParam().make();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto network = uniform_net(100, 150.0, 25.0, seed);
    const ShdgpInstance instance(network);
    const ShdgpSolution solution = planner->plan(instance);
    EXPECT_NO_THROW(solution.validate(instance)) << "seed " << seed;
    EXPECT_FALSE(solution.polling_points.empty());
  }
}

TEST_P(PlannerPropertyTest, WorksOnDisconnectedDeployments) {
  const auto planner = GetParam().make();
  Rng rng(33);
  const auto field = geom::Aabb::square(200.0);
  auto pts = net::deploy_two_islands(80, field, 0.5, rng);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   20.0);
  ASSERT_GT(network.components().count, 1u);  // genuinely disconnected
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = planner->plan(instance);
  EXPECT_NO_THROW(solution.validate(instance));
}

TEST_P(PlannerPropertyTest, HandlesTinyNetworks) {
  const auto planner = GetParam().make();
  for (std::size_t n : {1u, 2u, 3u}) {
    const auto network = uniform_net(n, 50.0, 15.0, 7 + n);
    const ShdgpInstance instance(network);
    const ShdgpSolution solution = planner->plan(instance);
    EXPECT_NO_THROW(solution.validate(instance));
    EXPECT_GE(solution.polling_points.size(), 1u);
    EXPECT_LE(solution.polling_points.size(), n);
  }
}

TEST_P(PlannerPropertyTest, HandlesEmptyNetwork) {
  const auto planner = GetParam().make();
  const auto field = geom::Aabb::square(50.0);
  const net::SensorNetwork network({}, field.center(), field, 10.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = planner->plan(instance);
  EXPECT_NO_THROW(solution.validate(instance));
  EXPECT_TRUE(solution.polling_points.empty());
  EXPECT_DOUBLE_EQ(solution.tour_length, 0.0);
}

TEST_P(PlannerPropertyTest, TourVisitsEveryPollingPointOnce) {
  const auto planner = GetParam().make();
  const auto network = uniform_net(120, 180.0, 30.0, 17);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = planner->plan(instance);
  EXPECT_EQ(solution.tour.size(), solution.polling_points.size() + 1);
  EXPECT_TRUE(tsp::Tour::is_permutation(solution.tour.order()));
}

TEST_P(PlannerPropertyTest, AtLeastScatteringManyPollingPoints) {
  const auto planner = GetParam().make();
  const auto network = uniform_net(150, 250.0, 25.0, 23);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = planner->plan(instance);
  EXPECT_GE(solution.polling_points.size(),
            cover::scattering_lower_bound(network));
}

TEST_P(PlannerPropertyTest, DenseClusterCollapsesToOnePollingPoint) {
  // All sensors within one disk of radius Rs around some position: one
  // polling point must suffice (and good planners should find exactly 1).
  std::vector<geom::Point> pts;
  Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    pts.push_back({50.0 + rng.uniform(-5.0, 5.0),
                   50.0 + rng.uniform(-5.0, 5.0)});
  }
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   30.0);
  const ShdgpInstance instance(network);
  const auto planner = GetParam().make();
  const ShdgpSolution solution = planner->plan(instance);
  solution.validate(instance);
  if (GetParam().name != "direct_visit") {
    EXPECT_EQ(solution.polling_points.size(), 1u);
  }
}

TEST_P(PlannerPropertyTest, DeterministicAcrossRuns) {
  const auto planner = GetParam().make();
  const auto network = uniform_net(90, 140.0, 25.0, 51);
  const ShdgpInstance instance(network);
  const ShdgpSolution a = planner->plan(instance);
  const ShdgpSolution b = planner->plan(instance);
  EXPECT_EQ(a.polling_candidates, b.polling_candidates);
  EXPECT_DOUBLE_EQ(a.tour_length, b.tour_length);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlanners, PlannerPropertyTest,
    ::testing::Values(
        PlannerCase{"greedy_cover",
                    [] {
                      return std::unique_ptr<Planner>(
                          std::make_unique<GreedyCoverPlanner>());
                    }},
        PlannerCase{"spanning_tour",
                    [] {
                      return std::unique_ptr<Planner>(
                          std::make_unique<SpanningTourPlanner>());
                    }},
        PlannerCase{"direct_visit",
                    [] {
                      return std::unique_ptr<Planner>(
                          std::make_unique<baselines::DirectVisitPlanner>());
                    }},
        PlannerCase{"distributed_election",
                    [] {
                      return std::unique_ptr<Planner>(
                          std::make_unique<dist::ElectionPlanner>());
                    }},
        PlannerCase{"tree_dominator",
                    [] {
                      return std::unique_ptr<Planner>(
                          std::make_unique<TreeDominatorPlanner>());
                    }}),
    [](const ::testing::TestParamInfo<PlannerCase>& info) {
      return info.param.name;
    });

TEST(PlannerComparisonTest, ShdgTourMuchShorterThanDirectVisit) {
  // The paper's headline: single-hop polling tours are far shorter than
  // visiting every sensor.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto network = uniform_net(200, 200.0, 30.0, seed);
    const ShdgpInstance instance(network);
    const double shdg = SpanningTourPlanner().plan(instance).tour_length;
    const double direct =
        baselines::DirectVisitPlanner().plan(instance).tour_length;
    EXPECT_LT(shdg, direct * 0.75) << "seed " << seed;
  }
}

TEST(PlannerComparisonTest, LargerRangeShortensTour) {
  RunningStats small_rs;
  RunningStats large_rs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng_a(seed);
    Rng rng_b(seed);
    const auto net_small = net::make_uniform_network(150, 200.0, 20.0, rng_a);
    const auto net_large = net::make_uniform_network(150, 200.0, 45.0, rng_b);
    small_rs.add(
        SpanningTourPlanner().plan(ShdgpInstance(net_small)).tour_length);
    large_rs.add(
        SpanningTourPlanner().plan(ShdgpInstance(net_large)).tour_length);
  }
  EXPECT_LT(large_rs.mean(), small_rs.mean());
}

TEST(PlannerNamesTest, StableIdentifiers) {
  EXPECT_EQ(GreedyCoverPlanner().name(), "greedy-cover");
  EXPECT_EQ(SpanningTourPlanner().name(), "spanning-tour");
  EXPECT_EQ(baselines::DirectVisitPlanner().name(), "direct-visit");
}

}  // namespace
}  // namespace mdg::core

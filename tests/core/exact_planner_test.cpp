#include "core/exact_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

net::SensorNetwork small_net(std::size_t n, double side, double rs,
                             std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

TEST(ExactPlannerTest, FeasibleAndValidated) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto network = small_net(20, 70.0, 20.0, seed);
    const ShdgpInstance instance(network);
    const ShdgpSolution solution = ExactPlanner().plan(instance);
    EXPECT_NO_THROW(solution.validate(instance));
    EXPECT_TRUE(solution.provably_optimal);
  }
}

TEST(ExactPlannerTest, NeverWorseThanHeuristics) {
  // The defining property of the optimal solution.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto network = small_net(22, 70.0, 20.0, seed);
    const ShdgpInstance instance(network);
    const ShdgpSolution exact = ExactPlanner().plan(instance);
    ASSERT_TRUE(exact.provably_optimal);
    const ShdgpSolution greedy = GreedyCoverPlanner().plan(instance);
    const ShdgpSolution spanning = SpanningTourPlanner().plan(instance);
    EXPECT_LE(exact.tour_length, greedy.tour_length + 1e-6) << "seed " << seed;
    EXPECT_LE(exact.tour_length, spanning.tour_length + 1e-6)
        << "seed " << seed;
  }
}

TEST(ExactPlannerTest, SingleSensor) {
  const auto network = small_net(1, 30.0, 10.0, 3);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = ExactPlanner().plan(instance);
  solution.validate(instance);
  EXPECT_EQ(solution.polling_points.size(), 1u);
  // Tour = sink -> sensor -> sink.
  EXPECT_NEAR(solution.tour_length,
              2.0 * geom::distance(network.sink(), network.position(0)),
              1e-9);
}

TEST(ExactPlannerTest, EmptyNetwork) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({}, field.center(), field, 3.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = ExactPlanner().plan(instance);
  EXPECT_TRUE(solution.provably_optimal);
  EXPECT_TRUE(solution.polling_points.empty());
}

TEST(ExactPlannerTest, DenseClusterOptimumIsOnePoint) {
  std::vector<geom::Point> pts;
  Rng rng(5);
  for (int i = 0; i < 15; ++i) {
    pts.push_back({20.0 + rng.uniform(-3.0, 3.0),
                   20.0 + rng.uniform(-3.0, 3.0)});
  }
  const auto field = geom::Aabb::square(40.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   15.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = ExactPlanner().plan(instance);
  EXPECT_EQ(solution.polling_points.size(), 1u);
  EXPECT_TRUE(solution.provably_optimal);
}

TEST(ExactPlannerTest, RejectsOversizedNetworks) {
  const auto network = small_net(65, 200.0, 20.0, 7);
  const ShdgpInstance instance(network);
  EXPECT_THROW((void)ExactPlanner().plan(instance), mdg::PreconditionError);
}

TEST(ExactPlannerTest, NodeLimitReturnsIncumbent) {
  const auto network = small_net(25, 80.0, 18.0, 9);
  const ShdgpInstance instance(network);
  ExactPlannerOptions options;
  options.node_limit = 1;  // forces early exhaustion
  const ShdgpSolution solution = ExactPlanner(options).plan(instance);
  EXPECT_NO_THROW(solution.validate(instance));
  EXPECT_FALSE(solution.provably_optimal);
}

TEST(ExactPlannerTest, RichCandidateSetNeverHurts) {
  // Adding pair-intersection candidates can only shorten (or keep) the
  // optimal tour.
  const auto network = small_net(14, 60.0, 18.0, 11);
  const ShdgpInstance sites(network);
  cover::CandidateOptions rich_options;
  rich_options.policy =
      cover::CandidatePolicy::kSensorSitesAndIntersections;
  const ShdgpInstance rich(network, rich_options);
  const double sites_len = ExactPlanner().plan(sites).tour_length;
  const double rich_len = ExactPlanner().plan(rich).tour_length;
  EXPECT_LE(rich_len, sites_len + 1e-6);
}

TEST(ExactPlannerTest, OptionsValidation) {
  ExactPlannerOptions options;
  options.max_polling_points = 30;  // > kMaxExactTsp - 1
  const auto network = small_net(10, 50.0, 15.0, 13);
  const ShdgpInstance instance(network);
  EXPECT_THROW((void)ExactPlanner(options).plan(instance),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::core

#include "core/multi_collector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "core/spanning_tour_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

struct Fixture {
  net::SensorNetwork network;
  ShdgpInstance instance;
  ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 200,
                   double side = 250.0)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, side, 30.0, rng);
        }()),
        instance(network),
        solution(SpanningTourPlanner().plan(instance)) {}
};

std::multiset<std::pair<double, double>> stop_set(const MultiTourPlan& plan) {
  std::multiset<std::pair<double, double>> stops;
  for (const Subtour& st : plan.subtours) {
    for (const geom::Point& p : st.stops) {
      stops.insert({p.x, p.y});
    }
  }
  return stops;
}

class SplitCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitCountTest, PartitionIsExactAndLengthsConsistent) {
  const Fixture fx(1);
  const MultiCollectorPlanner splitter;
  const std::size_t k = GetParam();
  const MultiTourPlan plan = splitter.split(fx.instance, fx.solution, k);
  EXPECT_EQ(plan.collector_count(), k);

  // Every polling point appears in exactly one subtour.
  std::multiset<std::pair<double, double>> expected;
  for (const geom::Point& p : fx.solution.polling_points) {
    expected.insert({p.x, p.y});
  }
  EXPECT_EQ(stop_set(plan), expected);

  // Lengths add up and the max is the max.
  double total = 0.0;
  double max_len = 0.0;
  for (const Subtour& st : plan.subtours) {
    EXPECT_NEAR(st.length, subtour_length(fx.instance.sink(), st.stops),
                1e-9);
    total += st.length;
    max_len = std::max(max_len, st.length);
  }
  EXPECT_NEAR(plan.total_length, total, 1e-9);
  EXPECT_NEAR(plan.max_length, max_len, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KSweep, SplitCountTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 10u));

TEST(MultiCollectorTest, SingleCollectorMatchesOriginalTour) {
  const Fixture fx(2);
  MultiCollectorOptions options;
  options.reoptimize_subtours = false;
  options.rebalance_passes = 0;
  const MultiTourPlan plan =
      MultiCollectorPlanner(options).split(fx.instance, fx.solution, 1);
  EXPECT_NEAR(plan.max_length, fx.solution.tour_length, 1e-6);
}

TEST(MultiCollectorTest, MaxSubtourShrinksWithMoreCollectors) {
  const Fixture fx(3);
  const MultiCollectorPlanner splitter;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const MultiTourPlan plan = splitter.split(fx.instance, fx.solution, k);
    EXPECT_LE(plan.max_length, prev * 1.05 + 1e-9) << "k=" << k;
    prev = plan.max_length;
  }
  // And 8 collectors must be substantially better than 1.
  const double k1 = splitter.split(fx.instance, fx.solution, 1).max_length;
  const double k8 = splitter.split(fx.instance, fx.solution, 8).max_length;
  EXPECT_LT(k8, k1 * 0.5);
}

TEST(MultiCollectorTest, MaxLengthLowerBoundedByFarthestStop) {
  // Any subtour serving the farthest polling point is at least the
  // out-and-back distance.
  const Fixture fx(4);
  double c_max = 0.0;
  for (const geom::Point& p : fx.solution.polling_points) {
    c_max = std::max(c_max, geom::distance(fx.instance.sink(), p));
  }
  const MultiTourPlan plan =
      MultiCollectorPlanner().split(fx.instance, fx.solution, 5);
  EXPECT_GE(plan.max_length, 2.0 * c_max - 1e-9);
}

TEST(MultiCollectorTest, MoreCollectorsThanStops) {
  const Fixture fx(5, 15, 60.0);
  const std::size_t k = fx.solution.polling_points.size() + 3;
  const MultiTourPlan plan =
      MultiCollectorPlanner().split(fx.instance, fx.solution, k);
  EXPECT_EQ(plan.collector_count(), k);
  std::size_t empty = 0;
  for (const Subtour& st : plan.subtours) {
    if (st.stops.empty()) {
      ++empty;
      EXPECT_DOUBLE_EQ(st.length, 0.0);
    }
  }
  EXPECT_GE(empty, 3u);
  EXPECT_EQ(stop_set(plan).size(), fx.solution.polling_points.size());
}

TEST(MultiCollectorTest, EmptySolutionSplits) {
  const auto field = geom::Aabb::square(20.0);
  const net::SensorNetwork network({}, field.center(), field, 5.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = SpanningTourPlanner().plan(instance);
  const MultiTourPlan plan =
      MultiCollectorPlanner().split(instance, solution, 3);
  EXPECT_EQ(plan.collector_count(), 3u);
  EXPECT_DOUBLE_EQ(plan.max_length, 0.0);
}

TEST(MultiCollectorTest, RejectsZeroCollectors) {
  const Fixture fx(6, 30, 80.0);
  EXPECT_THROW(
      (void)MultiCollectorPlanner().split(fx.instance, fx.solution, 0),
      mdg::PreconditionError);
}

TEST(MultiCollectorTest, RebalancingNeverIncreasesMax) {
  const Fixture fx(7);
  MultiCollectorOptions raw;
  raw.rebalance_passes = 0;
  raw.reoptimize_subtours = false;
  MultiCollectorOptions balanced;
  balanced.rebalance_passes = 16;
  balanced.reoptimize_subtours = false;
  for (std::size_t k : {2u, 3u, 5u}) {
    const double before =
        MultiCollectorPlanner(raw).split(fx.instance, fx.solution, k)
            .max_length;
    const double after =
        MultiCollectorPlanner(balanced).split(fx.instance, fx.solution, k)
            .max_length;
    EXPECT_LE(after, before + 1e-9) << "k=" << k;
  }
}

TEST(CollectorsForDeadlineTest, MonotoneInDeadline) {
  const Fixture fx(8);
  const MultiCollectorPlanner splitter;
  const double speed = 1.0;
  const double service = 2.0;
  const std::size_t tight = splitter.collectors_for_deadline(
      fx.instance, fx.solution, 600.0, speed, service);
  const std::size_t loose = splitter.collectors_for_deadline(
      fx.instance, fx.solution, 3600.0, speed, service);
  ASSERT_GT(tight, 0u);
  ASSERT_GT(loose, 0u);
  EXPECT_LE(loose, tight);
}

TEST(CollectorsForDeadlineTest, GenerousDeadlineNeedsOne) {
  const Fixture fx(9, 50, 100.0);
  const std::size_t k = MultiCollectorPlanner().collectors_for_deadline(
      fx.instance, fx.solution, 1e9, 1.0, 1.0);
  EXPECT_EQ(k, 1u);
}

TEST(CollectorsForDeadlineTest, ImpossibleDeadlineReturnsZero) {
  const Fixture fx(10, 50, 200.0);
  const std::size_t k = MultiCollectorPlanner().collectors_for_deadline(
      fx.instance, fx.solution, 1.0, 0.5, 10.0);
  EXPECT_EQ(k, 0u);
}

TEST(CollectorsForDeadlineTest, ParameterValidation) {
  const Fixture fx(11, 20, 60.0);
  const MultiCollectorPlanner splitter;
  EXPECT_THROW((void)splitter.collectors_for_deadline(fx.instance,
                                                      fx.solution, 0.0, 1.0,
                                                      1.0),
               mdg::PreconditionError);
  EXPECT_THROW((void)splitter.collectors_for_deadline(fx.instance,
                                                      fx.solution, 10.0, 0.0,
                                                      1.0),
               mdg::PreconditionError);
  EXPECT_THROW((void)splitter.collectors_for_deadline(
                   fx.instance, fx.solution, 10.0, 1.0, -1.0),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::core

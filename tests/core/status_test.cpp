#include "core/status.h"

#include <gtest/gtest.h>

#include <string>

#include "util/assert.h"

namespace mdg::core {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_EQ(s, Status::ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::invalid_argument("bad range");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad range");
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::failed_precondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::data_loss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeName) {
  const std::string text = Status::not_found("net.txt").to_string();
  EXPECT_NE(text.find("not-found"), std::string::npos);
  EXPECT_NE(text.find("net.txt"), std::string::npos);
}

TEST(StatusTest, WithContextPrepends) {
  const Status s =
      Status::invalid_argument("bad token").with_context("net.txt");
  EXPECT_EQ(s.message(), "net.txt: bad token");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Context on OK is a no-op.
  EXPECT_TRUE(Status::ok().with_context("x").is_ok());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.status().is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> result = Status::data_loss("truncated");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(StatusOrTest, ValueOnErrorIsContractViolation) {
  StatusOr<int> result = Status::invalid_argument("nope");
  EXPECT_THROW((void)result.value(), PreconditionError);
}

TEST(StatusOrTest, OkStatusCannotPoseAsError) {
  EXPECT_THROW((StatusOr<int>(Status::ok())), PreconditionError);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace mdg::core

// Targeted tests for the combine/skip/substitute machinery (the generic
// feasibility suite lives in planner_test.cpp).
#include "core/spanning_tour_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace mdg::core {
namespace {

net::SensorNetwork uniform_net(std::size_t n, double side, double rs,
                               std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

ShdgpSolution plan_with(const ShdgpInstance& instance, bool combine,
                        bool skip, bool substitute) {
  SpanningTourPlannerOptions options;
  options.combine = combine;
  options.skip = skip;
  options.substitute = substitute;
  const ShdgpSolution solution =
      SpanningTourPlanner(options).plan(instance);
  solution.validate(instance);
  return solution;
}

TEST(SpanningTourAblationTest, EveryToggleComboIsFeasible) {
  const auto network = uniform_net(100, 150.0, 25.0, 3);
  const ShdgpInstance instance(network);
  for (bool combine : {false, true}) {
    for (bool skip : {false, true}) {
      for (bool substitute : {false, true}) {
        const ShdgpSolution s =
            plan_with(instance, combine, skip, substitute);
        EXPECT_FALSE(s.polling_points.empty());
      }
    }
  }
}

TEST(SpanningTourAblationTest, CombineOffDegeneratesToDirectVisit) {
  // Without combining, every sensor forms its own group: polling points
  // == one per sensor (modulo dedup of co-located candidates).
  const auto network = uniform_net(60, 120.0, 25.0, 5);
  const ShdgpInstance instance(network);
  const ShdgpSolution no_combine = plan_with(instance, false, false, false);
  EXPECT_EQ(no_combine.polling_points.size(), network.size());
}

TEST(SpanningTourAblationTest, CombineShrinksPollingSet) {
  const auto network = uniform_net(150, 180.0, 30.0, 7);
  const ShdgpInstance instance(network);
  const std::size_t without =
      plan_with(instance, false, false, false).polling_points.size();
  const std::size_t with =
      plan_with(instance, true, false, false).polling_points.size();
  EXPECT_LT(with, without / 2);
}

TEST(SpanningTourAblationTest, SkipNeverIncreasesPollingPoints) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto network = uniform_net(120, 160.0, 28.0, seed);
    const ShdgpInstance instance(network);
    const std::size_t without =
        plan_with(instance, true, false, false).polling_points.size();
    const std::size_t with =
        plan_with(instance, true, true, false).polling_points.size();
    EXPECT_LE(with, without) << "seed " << seed;
  }
}

TEST(SpanningTourAblationTest, FullPipelineShortensTourOnAverage) {
  RunningStats bare;
  RunningStats full;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto network = uniform_net(150, 200.0, 30.0, seed);
    const ShdgpInstance instance(network);
    bare.add(plan_with(instance, true, false, false).tour_length);
    full.add(plan_with(instance, true, true, true).tour_length);
  }
  EXPECT_LE(full.mean(), bare.mean() * 1.02);
}

TEST(SpanningTourPlannerTest, GroupsAreRangeFeasibleByConstruction) {
  // Each sensor's assigned PP must cover it — validate() checks this;
  // here we additionally check the tour has no repeated polling point.
  const auto network = uniform_net(130, 170.0, 26.0, 21);
  const ShdgpInstance instance(network);
  const ShdgpSolution s = plan_with(instance, true, true, true);
  std::vector<std::size_t> ids = s.polling_candidates;
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(SpanningTourPlannerTest, SubstitutePassesBounded) {
  SpanningTourPlannerOptions options;
  options.substitute_passes = 0;
  const auto network = uniform_net(80, 140.0, 25.0, 23);
  const ShdgpInstance instance(network);
  const ShdgpSolution s = SpanningTourPlanner(options).plan(instance);
  EXPECT_NO_THROW(s.validate(instance));
}

}  // namespace
}  // namespace mdg::core

#include "core/instance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mdg::core {
namespace {

TEST(ShdgpInstanceTest, WiresNetworkAndCoverage) {
  Rng rng(3);
  const net::SensorNetwork network =
      net::make_uniform_network(60, 100.0, 25.0, rng);
  const ShdgpInstance instance(network);
  EXPECT_EQ(&instance.network(), &network);
  EXPECT_EQ(instance.sensor_count(), 60u);
  EXPECT_EQ(instance.sink(), network.sink());
  EXPECT_EQ(instance.coverage().sensor_count(), 60u);
  EXPECT_EQ(instance.coverage().candidate_count(), 60u);  // sensor sites
}

TEST(ShdgpInstanceTest, CandidateOptionsArePlumbedThrough) {
  Rng rng(5);
  const net::SensorNetwork network =
      net::make_uniform_network(40, 100.0, 25.0, rng);
  cover::CandidateOptions options;
  options.policy = cover::CandidatePolicy::kSensorSitesAndGrid;
  options.grid_spacing = 25.0;
  const ShdgpInstance instance(network, options);
  EXPECT_EQ(instance.candidate_options().policy,
            cover::CandidatePolicy::kSensorSitesAndGrid);
  EXPECT_GT(instance.coverage().candidate_count(), 40u);
}

TEST(ShdgpInstanceTest, MultipleInstancesShareOneNetwork) {
  Rng rng(7);
  const net::SensorNetwork network =
      net::make_uniform_network(30, 80.0, 20.0, rng);
  const ShdgpInstance sites(network);
  cover::CandidateOptions grid;
  grid.policy = cover::CandidatePolicy::kGrid;
  grid.grid_spacing = 20.0;
  const ShdgpInstance gridded(network, grid);
  EXPECT_EQ(&sites.network(), &gridded.network());
  EXPECT_NE(sites.coverage().candidate_count(),
            gridded.coverage().candidate_count());
}

}  // namespace
}  // namespace mdg::core

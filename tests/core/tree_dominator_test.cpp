// Targeted tests for the tree-dominator planner (generic feasibility is
// covered by the cross-planner suite in planner_test.cpp).
#include "core/tree_dominator_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/exact_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

TEST(TreeDominatorTest, SelectionIsADominatingSet) {
  Rng rng(3);
  const net::SensorNetwork network =
      net::make_uniform_network(150, 180.0, 28.0, rng);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = TreeDominatorPlanner().plan(instance);
  solution.validate(instance);
  // Every sensor is a polling point or within range of one — and since
  // candidates are sensor sites, "within range" means graph-adjacent.
  for (std::size_t s = 0; s < network.size(); ++s) {
    const geom::Point pp = solution.polling_points[solution.assignment[s]];
    EXPECT_TRUE(geom::within_range(network.position(s), pp, network.range()));
  }
}

TEST(TreeDominatorTest, ChainPicksInteriorVertices) {
  // A 5-chain: deepest leaf promotes its parent, resolving 3 sensors at
  // once; the dominating set stays small.
  std::vector<geom::Point> pts{{10.0, 50.0}, {20.0, 50.0}, {30.0, 50.0},
                               {40.0, 50.0}, {50.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), {80.0, 50.0}, field,
                                   11.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = TreeDominatorPlanner().plan(instance);
  solution.validate(instance);
  EXPECT_LE(solution.polling_points.size(), 2u);
}

TEST(TreeDominatorTest, IsolatedSensorsPromoteThemselves) {
  std::vector<geom::Point> pts{{10.0, 10.0}, {90.0, 90.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   5.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = TreeDominatorPlanner().plan(instance);
  solution.validate(instance);
  EXPECT_EQ(solution.polling_points.size(), 2u);
}

TEST(TreeDominatorTest, NeverBeatsTheExactPlanner) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const net::SensorNetwork network =
        net::make_uniform_network(20, 70.0, 20.0, rng);
    const ShdgpInstance instance(network);
    const ShdgpSolution exact = ExactPlanner().plan(instance);
    ASSERT_TRUE(exact.provably_optimal);
    const ShdgpSolution heuristic = TreeDominatorPlanner().plan(instance);
    EXPECT_GE(heuristic.tour_length, exact.tour_length - 1e-6);
  }
}

TEST(TreeDominatorTest, RequiresSensorSiteCandidates) {
  Rng rng(7);
  const net::SensorNetwork network =
      net::make_uniform_network(30, 100.0, 30.0, rng);
  cover::CandidateOptions grid_only;
  grid_only.policy = cover::CandidatePolicy::kGrid;
  grid_only.grid_spacing = 15.0;
  const ShdgpInstance instance(network, grid_only);
  EXPECT_THROW((void)TreeDominatorPlanner().plan(instance),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::core

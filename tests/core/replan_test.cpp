#include "core/replan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/spanning_tour_planner.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

struct Fixture {
  net::SensorNetwork network;
  ShdgpInstance instance;

  explicit Fixture(std::uint64_t seed, std::size_t n = 60)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 150.0, 25.0, rng);
        }()),
        instance(network) {}
};

/// Every requested sensor must be within range of some recovery stop.
void expect_covers(const ShdgpInstance& instance, const RecoveryPlan& plan,
                   const std::vector<std::size_t>& unserved) {
  const double range = instance.network().range();
  for (std::size_t s : unserved) {
    if (std::find(plan.uncovered.begin(), plan.uncovered.end(), s) !=
        plan.uncovered.end()) {
      continue;
    }
    bool covered = false;
    for (const geom::Point& stop : plan.stops) {
      if (geom::within_range(instance.network().position(s), stop, range)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "sensor " << s << " not within range of any stop";
  }
}

TEST(ReplanTest, EmptyUnservedDrivesStraightHome) {
  Fixture fx(11);
  const geom::Point breakdown{10.0, 20.0};
  const RecoveryPlan plan = replan_remaining(fx.instance, breakdown, {});
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.stops.empty());
  EXPECT_DOUBLE_EQ(plan.length_m,
                   geom::distance(breakdown, fx.instance.sink()));
}

TEST(ReplanTest, CoversEveryRequestedSensor) {
  Fixture fx(12);
  std::vector<std::size_t> unserved;
  for (std::size_t s = 0; s < fx.instance.sensor_count(); s += 2) {
    unserved.push_back(s);
  }
  const geom::Point breakdown{75.0, 75.0};
  const RecoveryPlan plan = replan_remaining(fx.instance, breakdown, unserved);
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.uncovered.empty());
  expect_covers(fx.instance, plan, unserved);
  // Affiliation partitions exactly the requested sensors.
  std::set<std::size_t> served;
  for (const auto& group : plan.stop_sensors) {
    for (std::size_t s : group) {
      EXPECT_TRUE(served.insert(s).second) << "sensor served twice";
    }
  }
  EXPECT_EQ(served.size(), unserved.size());
}

TEST(ReplanTest, DuplicatesAreIgnored) {
  Fixture fx(13);
  const std::vector<std::size_t> unserved = {3, 3, 7, 7, 7, 12};
  const RecoveryPlan plan =
      replan_remaining(fx.instance, {0.0, 0.0}, unserved);
  std::size_t served = 0;
  for (const auto& group : plan.stop_sensors) {
    served += group.size();
  }
  EXPECT_EQ(served + plan.uncovered.size(), 3u);
}

TEST(ReplanTest, LengthIsStopsPlusReturnLeg) {
  Fixture fx(14);
  const geom::Point breakdown{30.0, 40.0};
  std::vector<std::size_t> unserved = {0, 1, 2, 3, 4};
  const RecoveryPlan plan = replan_remaining(fx.instance, breakdown, unserved);
  double length = 0.0;
  geom::Point cursor = breakdown;
  for (const geom::Point& stop : plan.stops) {
    length += geom::distance(cursor, stop);
    cursor = stop;
  }
  length += geom::distance(cursor, fx.instance.sink());
  EXPECT_NEAR(plan.length_m, length, 1e-9);
}

TEST(ReplanTest, DeterministicAcrossCalls) {
  Fixture fx(15);
  std::vector<std::size_t> unserved;
  for (std::size_t s = 0; s < fx.instance.sensor_count(); s += 3) {
    unserved.push_back(s);
  }
  const RecoveryPlan a = replan_remaining(fx.instance, {5.0, 5.0}, unserved);
  const RecoveryPlan b = replan_remaining(fx.instance, {5.0, 5.0}, unserved);
  ASSERT_EQ(a.stop_candidates, b.stop_candidates);
  ASSERT_EQ(a.stop_sensors, b.stop_sensors);
  EXPECT_DOUBLE_EQ(a.length_m, b.length_m);
}

TEST(ReplanTest, OutOfRangeSensorIsRejected) {
  Fixture fx(16);
  EXPECT_THROW((void)replan_remaining(fx.instance, {0.0, 0.0},
                                      {fx.instance.sensor_count()}),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::core

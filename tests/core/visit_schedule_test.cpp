#include "core/visit_schedule.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/spanning_tour_planner.h"
#include "sim/energy.h"
#include "sim/mobile_sim.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

struct Fixture {
  net::SensorNetwork network;
  ShdgpInstance instance;
  ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 100)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 160.0, 28.0, rng);
        }()),
        instance(network),
        solution(SpanningTourPlanner().plan(instance)) {}
};

TEST(VisitScheduleTest, ArrivalsAreMonotoneAlongTheTour) {
  const Fixture fx(1);
  const VisitSchedule schedule(fx.instance, fx.solution);
  double previous = 0.0;
  for (const StopVisit& visit : schedule.stops()) {
    EXPECT_GE(visit.arrival_s, previous);
    EXPECT_GE(visit.departure_s, visit.arrival_s);
    previous = visit.departure_s;
  }
  EXPECT_GT(schedule.round_duration_s(),
            schedule.stops().back().departure_s);
}

TEST(VisitScheduleTest, RoundDurationMatchesSimulator) {
  const Fixture fx(2);
  ScheduleConfig config;
  config.speed_m_per_s = 1.5;
  config.packet_upload_s = 0.1;
  const VisitSchedule schedule(fx.instance, fx.solution, config);

  sim::MobileSimConfig sim_config;
  sim_config.speed_m_per_s = 1.5;
  sim_config.packet_upload_s = 0.1;
  sim::MobileCollectionSim sim(fx.instance, fx.solution, sim_config);
  sim::EnergyLedger ledger(fx.network.size(), 0.5);
  const sim::MobileRoundReport round = sim.run_round(ledger);
  EXPECT_NEAR(schedule.round_duration_s(), round.duration_s, 1e-6);
}

TEST(VisitScheduleTest, EverySensorHasAWindowCoveringItsVisit) {
  const Fixture fx(3);
  const VisitSchedule schedule(fx.instance, fx.solution);
  for (const StopVisit& visit : schedule.stops()) {
    for (std::size_t s : visit.sensors) {
      EXPECT_LE(schedule.wake_time(s), visit.arrival_s);
      EXPECT_GE(schedule.sleep_time(s), visit.arrival_s);
      EXPECT_LT(schedule.wake_time(s), schedule.sleep_time(s));
    }
  }
}

TEST(VisitScheduleTest, DutyCycleIsTiny) {
  // The headline: sensors listen for seconds out of a ~15 minute round.
  const Fixture fx(4, 200);
  const VisitSchedule schedule(fx.instance, fx.solution);
  EXPECT_LT(schedule.average_duty_cycle(), 0.05);
  EXPECT_GT(schedule.average_duty_cycle(), 0.0);
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    EXPECT_LE(schedule.duty_cycle(s), 1.0);
    EXPECT_GT(schedule.duty_cycle(s), 0.0);
  }
}

TEST(VisitScheduleTest, GuardWidensWindows) {
  const Fixture fx(5);
  ScheduleConfig tight;
  tight.guard_s = 0.0;
  ScheduleConfig loose;
  loose.guard_s = 30.0;
  const VisitSchedule a(fx.instance, fx.solution, tight);
  const VisitSchedule b(fx.instance, fx.solution, loose);
  EXPECT_LT(a.average_duty_cycle(), b.average_duty_cycle());
}

TEST(VisitScheduleTest, KinematicsDelayArrivals) {
  const Fixture fx(6);
  ScheduleConfig ideal;
  ScheduleConfig sluggish;
  sluggish.accel_m_per_s2 = 0.2;
  const VisitSchedule fast(fx.instance, fx.solution, ideal);
  const VisitSchedule slow(fx.instance, fx.solution, sluggish);
  EXPECT_GT(slow.round_duration_s(), fast.round_duration_s());
  EXPECT_GE(slow.stops()[0].arrival_s, fast.stops()[0].arrival_s);
}

TEST(VisitScheduleTest, UploadSlotsAreSequential) {
  const Fixture fx(7);
  ScheduleConfig config;
  config.guard_s = 0.0;
  const VisitSchedule schedule(fx.instance, fx.solution, config);
  for (const StopVisit& visit : schedule.stops()) {
    for (std::size_t i = 0; i < visit.sensors.size(); ++i) {
      const std::size_t s = visit.sensors[i];
      EXPECT_NEAR(schedule.sleep_time(s),
                  visit.arrival_s +
                      static_cast<double>(i + 1) * config.packet_upload_s,
                  1e-9);
    }
  }
}

TEST(VisitScheduleTest, EmptyNetwork) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({}, field.center(), field, 3.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution solution = SpanningTourPlanner().plan(instance);
  const VisitSchedule schedule(instance, solution);
  EXPECT_TRUE(schedule.stops().empty());
  EXPECT_DOUBLE_EQ(schedule.average_duty_cycle(), 0.0);
}

TEST(VisitScheduleTest, ValidatesConfig) {
  const Fixture fx(8, 20);
  ScheduleConfig bad;
  bad.speed_m_per_s = 0.0;
  EXPECT_THROW(VisitSchedule(fx.instance, fx.solution, bad),
               mdg::PreconditionError);
  ScheduleConfig negative_guard;
  negative_guard.guard_s = -1.0;
  EXPECT_THROW(VisitSchedule(fx.instance, fx.solution, negative_guard),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::core

// plan_many is the batch front door used by the bench sweeps: it must
// return exactly what a serial planner.plan() loop returns, in order,
// at any thread count — plans are compared as serialized bytes, the
// strictest equality the toolchain offers.
#include "core/plan_many.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "core/spanning_tour_planner.h"
#include "io/serialize.h"
#include "net/sensor_network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdg::core {
namespace {

std::string plan_bytes(const ShdgpSolution& solution) {
  std::ostringstream out;
  io::write_solution(out, solution);
  return out.str();
}

// A corpus of independent instances; networks live alongside so the
// instances' internal pointers stay valid.
struct Corpus {
  std::vector<net::SensorNetwork> networks;
  std::vector<ShdgpInstance> instances;
};

Corpus make_corpus(std::size_t count) {
  Corpus corpus;
  corpus.networks.reserve(count);  // instances point into this vector
  const Rng base(515);
  for (std::size_t t = 0; t < count; ++t) {
    Rng rng = base.fork(t);
    corpus.networks.push_back(
        net::make_uniform_network(60 + 10 * t, 140.0, 25.0, rng));
  }
  for (const net::SensorNetwork& network : corpus.networks) {
    corpus.instances.emplace_back(network);
  }
  return corpus;
}

TEST(PlanManyTest, MatchesSerialLoopByteForByte) {
  const Corpus corpus = make_corpus(6);
  const GreedyCoverPlanner planner;

  std::vector<std::string> serial_bytes;
  for (const ShdgpInstance& instance : corpus.instances) {
    serial_bytes.push_back(plan_bytes(planner.plan(instance)));
  }

  for (const std::size_t threads : {1, 2, 8}) {
    ScopedPlanningThreads scoped(threads);
    const std::vector<ShdgpSolution> batch =
        plan_many(planner, corpus.instances);
    ASSERT_EQ(batch.size(), corpus.instances.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(plan_bytes(batch[i]), serial_bytes[i])
          << "instance " << i << " with " << threads << " threads";
    }
  }
}

TEST(PlanManyTest, WorksForEveryPlannerKind) {
  const Corpus corpus = make_corpus(3);
  const SpanningTourPlanner spanning;
  ScopedPlanningThreads scoped(4);
  const std::vector<ShdgpSolution> batch =
      plan_many(spanning, corpus.instances);
  ASSERT_EQ(batch.size(), corpus.instances.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(plan_bytes(batch[i]),
              plan_bytes(spanning.plan(corpus.instances[i])));
  }
}

TEST(PlanManyTest, EmptyBatchReturnsEmpty) {
  const GreedyCoverPlanner planner;
  EXPECT_TRUE(plan_many(planner, {}).empty());
}

TEST(PlanManyTest, SingleInstanceStaysSerialAndCorrect) {
  // Below the batch cutoff (2) plan_many must not even touch the pool.
  const Corpus corpus = make_corpus(1);
  const GreedyCoverPlanner planner;
  ScopedPlanningThreads scoped(8);
  const std::vector<ShdgpSolution> batch =
      plan_many(planner, corpus.instances);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(plan_bytes(batch[0]), plan_bytes(planner.plan(corpus.instances[0])));
}

}  // namespace
}  // namespace mdg::core

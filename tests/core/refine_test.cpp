#include "core/refine.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "io/serialize.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdg::core {
namespace {

struct Fixture {
  net::SensorNetwork network;
  ShdgpInstance instance;

  explicit Fixture(std::uint64_t seed, std::size_t n = 120)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 170.0, 28.0, rng);
        }()),
        instance(network) {}
};

TEST(RefineTest, NeverLengthensAndStaysValid) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Fixture fx(seed);
    ShdgpSolution solution = SpanningTourPlanner().plan(fx.instance);
    const double before = solution.tour_length;
    refine_polling_positions(fx.instance, solution);
    EXPECT_LE(solution.tour_length, before + 1e-9) << "seed " << seed;
    EXPECT_NO_THROW(solution.validate(fx.instance));
  }
}

TEST(RefineTest, ActuallyShortensTypicalTours) {
  RunningStats gain;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Fixture fx(seed);
    ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
    const double before = solution.tour_length;
    const std::size_t moves =
        refine_polling_positions(fx.instance, solution);
    gain.add((before - solution.tour_length) / before);
    if (moves > 0) {
      EXPECT_LT(solution.tour_length, before);
    }
  }
  EXPECT_GT(gain.mean(), 0.01);  // at least ~1% shorter on average
}

TEST(RefineTest, MovedPointsAreFreeform) {
  const Fixture fx(3);
  ShdgpSolution solution = SpanningTourPlanner().plan(fx.instance);
  const std::vector<geom::Point> original = solution.polling_points;
  const std::size_t moves = refine_polling_positions(fx.instance, solution);
  std::size_t freeform = 0;
  for (std::size_t i = 0; i < solution.polling_points.size(); ++i) {
    if (solution.polling_candidates[i] == ShdgpSolution::kFreeformCandidate) {
      ++freeform;
      EXPECT_NE(solution.polling_points[i], original[i]);
    } else {
      EXPECT_EQ(solution.polling_points[i], original[i]);
    }
  }
  EXPECT_GT(moves, 0u);
  EXPECT_GE(moves, freeform);  // a point can move in several passes
}

TEST(RefineTest, CoveragePreservedExactly) {
  const Fixture fx(5);
  ShdgpSolution solution = SpanningTourPlanner().plan(fx.instance);
  const std::vector<std::size_t> assignment = solution.assignment;
  refine_polling_positions(fx.instance, solution);
  EXPECT_EQ(solution.assignment, assignment);  // only positions move
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    EXPECT_TRUE(geom::within_range(
        fx.network.position(s),
        solution.polling_points[solution.assignment[s]],
        fx.network.range()));
  }
}

TEST(RefineTest, RefinedSolutionSerializes) {
  const Fixture fx(7, 60);
  ShdgpSolution solution = SpanningTourPlanner().plan(fx.instance);
  refine_polling_positions(fx.instance, solution);
  std::stringstream buffer;
  io::write_solution(buffer, solution);
  const ShdgpSolution restored = io::read_solution(buffer);
  EXPECT_NO_THROW(restored.validate(fx.instance));
  EXPECT_DOUBLE_EQ(restored.tour_length, solution.tour_length);
}

TEST(RefineTest, SingleSensorCollapsesTowardChord) {
  // One sensor, PP at its site; refinement slides the PP toward the
  // sink-sink chord (degenerate: the sink itself) up to the range edge.
  std::vector<geom::Point> pts{{80.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   20.0);
  const ShdgpInstance instance(network);
  ShdgpSolution solution = GreedyCoverPlanner().plan(instance);
  ASSERT_EQ(solution.polling_points.size(), 1u);
  ASSERT_NEAR(solution.tour_length, 60.0, 1e-9);  // out and back, 30 m away
  refine_polling_positions(instance, solution);
  // The PP slides to the range boundary: 10 m from the sink.
  EXPECT_NEAR(solution.tour_length, 20.0, 0.2);
  solution.validate(instance);
}

TEST(RefineTest, OptionsValidation) {
  const Fixture fx(9, 20);
  ShdgpSolution solution = GreedyCoverPlanner().plan(fx.instance);
  RefineOptions zero_passes;
  zero_passes.passes = 0;
  EXPECT_THROW(
      (void)refine_polling_positions(fx.instance, solution, zero_passes),
      mdg::PreconditionError);
  RefineOptions bad_tol;
  bad_tol.tolerance = 0.0;
  EXPECT_THROW(
      (void)refine_polling_positions(fx.instance, solution, bad_tol),
      mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::core

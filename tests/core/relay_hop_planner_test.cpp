// RelayHopPlanner: d-hop dominating-set planning over the k-hop
// closure, anchored at d = 1 to the legacy greedy-cover planner.
#include <gtest/gtest.h>

#include "core/greedy_cover_planner.h"
#include "core/planner_factory.h"
#include "core/relay_hop_planner.h"
#include "verify/canonical.h"
#include "verify/check.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

core::ShdgpSolution plan_depth(const core::ShdgpInstance& instance,
                               std::size_t d) {
  core::RelayHopPlannerOptions options;
  options.relay_hops = d;
  return core::RelayHopPlanner(options).plan(instance);
}

TEST(RelayHopPlannerTest, DefaultBudgetIsByteIdenticalToGreedy) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const net::SensorNetwork network =
        verify::generate_network(GeneratorFamily::kUniform, seed,
                                 {.sensors = 60, .side = 150.0, .range = 25.0});
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution relay = core::RelayHopPlanner().plan(instance);
    const core::ShdgpSolution greedy =
        core::GreedyCoverPlanner().plan(instance);
    EXPECT_EQ(verify::canonical_plan_bytes(instance, relay),
              verify::canonical_plan_bytes(instance, greedy));
    EXPECT_EQ(relay.relay_hops, 1u);
    EXPECT_FALSE(relay.uses_relays());
    EXPECT_EQ(relay.planner, "relay-hop");
  }
}

TEST(RelayHopPlannerTest, EveryDepthPassesTheInvariantChecker) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 4);
  const core::ShdgpInstance instance(network);
  for (std::size_t d = 0; d <= 3; ++d) {
    SCOPED_TRACE(d);
    const core::ShdgpSolution solution = plan_depth(instance, d);
    EXPECT_EQ(solution.relay_hops, d);
    EXPECT_TRUE(verify::check_solution(instance, solution).is_ok())
        << verify::check_solution(instance, solution).to_string();
    EXPECT_LE(solution.max_upload_hops(), std::max<std::size_t>(d, 1));
  }
}

TEST(RelayHopPlannerTest, DeeperBudgetNeverLengthensTheTour) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kUniform, 7,
                               {.sensors = 120, .side = 200.0, .range = 30.0});
  const core::ShdgpInstance instance(network);
  double prev = plan_depth(instance, 0).tour_length;
  for (std::size_t d = 1; d <= 3; ++d) {
    const double len = plan_depth(instance, d).tour_length;
    EXPECT_LE(len, prev) << "d=" << d;
    prev = len;
  }
}

TEST(RelayHopPlannerTest, DepthZeroNeverRelays) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kUniform, 5,
                               {.sensors = 30, .side = 100.0, .range = 25.0});
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = plan_depth(instance, 0);
  EXPECT_FALSE(solution.uses_relays());
  EXPECT_EQ(solution.relayed_sensor_count(), 0u);
  EXPECT_TRUE(verify::check_solution(instance, solution).is_ok());
}

TEST(RelayHopPlannerTest, ChainTopologyActuallyRelaysAtDepthTwo) {
  // A serpentine chain forces long tours at d = 1; a 2-hop budget lets
  // every other sensor forward through a neighbour, halving the stops.
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 2);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution d1 = plan_depth(instance, 1);
  const core::ShdgpSolution d2 = plan_depth(instance, 2);
  EXPECT_TRUE(d2.uses_relays());
  EXPECT_GT(d2.relayed_sensor_count(), 0u);
  EXPECT_LT(d2.polling_points.size(), d1.polling_points.size());
  EXPECT_LT(d2.tour_length, d1.tour_length);
}

TEST(RelayHopPlannerTest, FactoryBuildsTheRelayPlanner) {
  core::PlannerSpec spec;
  spec.name = "relay";
  spec.relay_hops = 2;
  auto planner = core::make_planner(spec);
  ASSERT_TRUE(planner.is_ok()) << planner.status().to_string();
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kUniform, 9,
                               {.sensors = 40, .side = 120.0, .range = 25.0});
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = planner.value()->plan(instance);
  EXPECT_EQ(solution.relay_hops, 2u);
  EXPECT_TRUE(verify::check_solution(instance, solution).is_ok());
}

TEST(RelayHopPlannerTest, PlanIsDeterministic) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 11);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution a = plan_depth(instance, 3);
  const core::ShdgpSolution b = plan_depth(instance, 3);
  EXPECT_EQ(verify::canonical_plan_bytes(instance, a),
            verify::canonical_plan_bytes(instance, b));
}

}  // namespace
}  // namespace mdg

// Cross-validation of the ExactPlanner against exhaustive enumeration.
//
// On tiny instances we can afford the ground truth: every subset of
// candidate polling points that covers all sensors, each routed exactly
// with Held-Karp. The branch-and-bound must match its optimum bit for
// bit.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/exact_planner.h"
#include "tsp/exact.h"
#include "util/rng.h"

namespace mdg::core {
namespace {

/// Exhaustive SHDGP optimum: minimum over all covering subsets of the
/// exact tour length through sink + subset.
double brute_force_optimum(const ShdgpInstance& instance) {
  const auto& matrix = instance.coverage();
  const auto& network = instance.network();
  const std::size_t m = matrix.candidate_count();
  const std::size_t n = network.size();
  double best = std::numeric_limits<double>::infinity();

  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << m); ++mask) {
    // Coverage check.
    std::vector<bool> covered(n, false);
    std::vector<geom::Point> stops{instance.sink()};
    for (std::size_t c = 0; c < m; ++c) {
      if (mask & (std::uint64_t{1} << c)) {
        stops.push_back(matrix.candidate(c));
        for (std::size_t s : matrix.covered_by(c)) {
          covered[s] = true;
        }
      }
    }
    bool feasible = true;
    for (std::size_t s = 0; s < n; ++s) {
      feasible = feasible && covered[s];
    }
    if (!feasible || stops.size() > tsp::kMaxExactTsp) {
      continue;
    }
    best = std::min(best, tsp::held_karp_length(stops));
  }
  return best;
}

TEST(BruteForceCrossCheckTest, ExactPlannerMatchesEnumeration) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const std::size_t n = 5 + seed % 4;  // 5..8 sensors
    const net::SensorNetwork network =
        net::make_uniform_network(n, 50.0, 18.0, rng);
    const ShdgpInstance instance(network);
    const ShdgpSolution exact = ExactPlanner().plan(instance);
    ASSERT_TRUE(exact.provably_optimal) << "seed " << seed;
    const double truth = brute_force_optimum(instance);
    EXPECT_NEAR(exact.tour_length, truth, 1e-6) << "seed " << seed;
  }
}

TEST(BruteForceCrossCheckTest, DisconnectedTinyInstance) {
  // Two sensors far apart: the optimum must visit both neighbourhoods.
  std::vector<geom::Point> pts{{5.0, 5.0}, {45.0, 45.0}};
  const auto field = geom::Aabb::square(50.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   8.0);
  const ShdgpInstance instance(network);
  const ShdgpSolution exact = ExactPlanner().plan(instance);
  EXPECT_NEAR(exact.tour_length, brute_force_optimum(instance), 1e-6);
  EXPECT_EQ(exact.polling_points.size(), 2u);
}

TEST(BruteForceCrossCheckTest, RicherCandidatesStillOptimal) {
  Rng rng(77);
  const net::SensorNetwork network =
      net::make_uniform_network(5, 50.0, 12.0, rng);
  cover::CandidateOptions options;
  options.policy = cover::CandidatePolicy::kSensorSitesAndIntersections;
  const ShdgpInstance instance(network, options);
  if (instance.coverage().candidate_count() <= 22) {
    const ShdgpSolution exact = ExactPlanner().plan(instance);
    ASSERT_TRUE(exact.provably_optimal);
    EXPECT_NEAR(exact.tour_length, brute_force_optimum(instance), 1e-6);
  } else {
    GTEST_SKIP() << "candidate set too large for enumeration";
  }
}

}  // namespace
}  // namespace mdg::core

#include "route/visibility.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/dijkstra.h"
#include "util/rng.h"

namespace mdg::route {
namespace {

TEST(ObstacleRouterTest, StraightLineWhenClear) {
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
  const ObstacleRouter router(map);
  const auto path = router.route({0.0, 0.0}, {5.0, 0.0});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->waypoints.size(), 2u);
  EXPECT_DOUBLE_EQ(path->length, 5.0);
}

TEST(ObstacleRouterTest, DetoursAroundBox) {
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
  const ObstacleRouter router(map, 0.5);
  const geom::Point a{5.0, 15.0};
  const geom::Point b{25.0, 15.0};
  const auto path = router.route(a, b);
  ASSERT_TRUE(path.has_value());
  // Longer than straight line, but bounded by going around the box.
  EXPECT_GT(path->length, geom::distance(a, b));
  EXPECT_LT(path->length, 40.0);
  EXPECT_GE(path->waypoints.size(), 3u);  // at least one corner bend
  // Every leg must be drivable.
  for (std::size_t i = 0; i + 1 < path->waypoints.size(); ++i) {
    EXPECT_FALSE(map.blocks(path->waypoints[i], path->waypoints[i + 1]));
  }
}

TEST(ObstacleRouterTest, DetourLengthIsTightForCenteredBox) {
  // Symmetric detour around a 10x10 box, endpoints on the midline 5 away
  // from either side, margin 0: shortest path hugs two corners.
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
  const ObstacleRouter router(map, 0.0);
  const auto path = router.route({5.0, 15.0}, {25.0, 15.0});
  ASSERT_TRUE(path.has_value());
  const double expected = 2.0 * std::sqrt(25.0 + 25.0) + 10.0;
  EXPECT_NEAR(path->length, expected, 1e-6);
}

TEST(ObstacleRouterTest, EndpointInsideObstacleFails) {
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
  const ObstacleRouter router(map);
  EXPECT_FALSE(router.route({15.0, 15.0}, {0.0, 0.0}).has_value());
  EXPECT_TRUE(std::isinf(router.distance({15.0, 15.0}, {0.0, 0.0})));
}

TEST(ObstacleRouterTest, SealedTargetUnreachable) {
  // Four boxes forming a closed courtyard around (15, 15).
  const ObstacleMap map({
      geom::Aabb{{10.0, 10.0}, {20.0, 12.0}},
      geom::Aabb{{10.0, 18.0}, {20.0, 20.0}},
      geom::Aabb{{10.0, 10.0}, {12.0, 20.0}},
      geom::Aabb{{18.0, 10.0}, {20.0, 20.0}},
  });
  const ObstacleRouter router(map, 0.25);
  const auto path = router.route({0.0, 0.0}, {15.0, 15.0});
  EXPECT_FALSE(path.has_value());
}

TEST(ObstacleRouterTest, MultiObstacleSlalom) {
  const ObstacleMap map({
      geom::Aabb{{10.0, 0.0}, {12.0, 30.0}},
      geom::Aabb{{20.0, 10.0}, {22.0, 40.0}},
  });
  const ObstacleRouter router(map, 0.5);
  const geom::Point a{0.0, 20.0};
  const geom::Point b{30.0, 20.0};
  const auto path = router.route(a, b);
  ASSERT_TRUE(path.has_value());
  for (std::size_t i = 0; i + 1 < path->waypoints.size(); ++i) {
    EXPECT_FALSE(map.blocks(path->waypoints[i], path->waypoints[i + 1]));
  }
  EXPECT_GT(path->length, 30.0);
}

TEST(ObstacleRouterTest, DistanceIsSymmetric) {
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}},
                         geom::Aabb{{30.0, 5.0}, {35.0, 25.0}}});
  const ObstacleRouter router(map, 0.5);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    geom::Point a{rng.uniform(0.0, 50.0), rng.uniform(0.0, 30.0)};
    geom::Point b{rng.uniform(0.0, 50.0), rng.uniform(0.0, 30.0)};
    if (map.inside_obstacle(a) || map.inside_obstacle(b)) {
      continue;
    }
    EXPECT_NEAR(router.distance(a, b), router.distance(b, a), 1e-6);
  }
}

TEST(ObstacleRouterTest, TriangleInequalityUnderDetourMetric) {
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
  const ObstacleRouter router(map, 0.5);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    geom::Point pts[3];
    bool ok = true;
    for (auto& p : pts) {
      p = {rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)};
      ok = ok && !map.inside_obstacle(p);
    }
    if (!ok) {
      continue;
    }
    EXPECT_LE(router.distance(pts[0], pts[2]),
              router.distance(pts[0], pts[1]) +
                  router.distance(pts[1], pts[2]) + 1e-6);
  }
}

TEST(ObstacleRouterTest, RouteSequenceConcatenates) {
  const ObstacleMap map({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
  const ObstacleRouter router(map, 0.5);
  const std::vector<geom::Point> stops{
      {0.0, 15.0}, {25.0, 15.0}, {0.0, 15.0}};
  const auto path = router.route_sequence(stops);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->waypoints.front(), stops.front());
  EXPECT_EQ(path->waypoints.back(), stops.back());
  EXPECT_NEAR(path->length,
              2.0 * router.distance({0.0, 15.0}, {25.0, 15.0}), 1e-6);
}

TEST(ObstacleRouterTest, BeatsFineGridPaths) {
  // The visibility path is exact for rectilinear obstacles (margin 0);
  // an 8-connected unit-grid path is a feasible upper bound, so the
  // router must never be longer.
  const ObstacleMap map({geom::Aabb{{8.0, 8.0}, {16.0, 22.0}},
                         geom::Aabb{{20.0, 0.0}, {24.0, 14.0}}});
  const ObstacleRouter router(map, 0.0);
  const geom::Point start{2.0, 15.0};
  const geom::Point goal{28.0, 5.0};

  // Build the grid graph over [0, 30]^2.
  constexpr int kSide = 31;
  const auto node = [](int x, int y) {
    return static_cast<std::size_t>(y * kSide + x);
  };
  std::vector<graph::Edge> edges;
  for (int y = 0; y < kSide; ++y) {
    for (int x = 0; x < kSide; ++x) {
      const geom::Point p{static_cast<double>(x), static_cast<double>(y)};
      const int dxs[] = {1, 0, 1, 1};
      const int dys[] = {0, 1, 1, -1};
      for (int k = 0; k < 4; ++k) {
        const int nx = x + dxs[k];
        const int ny = y + dys[k];
        if (nx < 0 || ny < 0 || nx >= kSide || ny >= kSide) {
          continue;
        }
        const geom::Point q{static_cast<double>(nx),
                            static_cast<double>(ny)};
        if (!map.blocks(p, q) && !map.inside_obstacle(p) &&
            !map.inside_obstacle(q)) {
          edges.push_back({node(x, y), node(nx, ny), geom::distance(p, q)});
        }
      }
    }
  }
  const graph::Graph grid(kSide * kSide, edges);
  const auto result = graph::dijkstra(grid, node(2, 15));
  const double grid_length = result.dist[node(28, 5)];
  ASSERT_TRUE(result.reachable(node(28, 5)));

  const double routed = router.distance(start, goal);
  EXPECT_LE(routed, grid_length + 1e-9);
  EXPECT_GE(routed, geom::distance(start, goal));  // and >= straight line
}

TEST(ObstacleRouterTest, EmptyMapIsEuclidean) {
  const ObstacleMap map;
  const ObstacleRouter router(map);
  EXPECT_DOUBLE_EQ(router.distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_EQ(router.waypoint_count(), 0u);
}

}  // namespace
}  // namespace mdg::route

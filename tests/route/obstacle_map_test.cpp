#include "route/obstacle_map.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace mdg::route {
namespace {

ObstacleMap one_box() {
  return ObstacleMap({geom::Aabb{{10.0, 10.0}, {20.0, 20.0}}});
}

TEST(ObstacleMapTest, InsideIsStrict) {
  const ObstacleMap map = one_box();
  EXPECT_TRUE(map.inside_obstacle({15.0, 15.0}));
  EXPECT_FALSE(map.inside_obstacle({10.0, 15.0}));  // boundary drivable
  EXPECT_FALSE(map.inside_obstacle({5.0, 5.0}));
}

TEST(ObstacleMapTest, BlocksStraightCrossing) {
  const ObstacleMap map = one_box();
  EXPECT_TRUE(map.blocks({0.0, 15.0}, {30.0, 15.0}));   // horizontal cut
  EXPECT_TRUE(map.blocks({15.0, 0.0}, {15.0, 30.0}));   // vertical cut
  EXPECT_TRUE(map.blocks({0.0, 0.0}, {30.0, 30.0}));    // diagonal cut
}

TEST(ObstacleMapTest, DoesNotBlockMisses) {
  const ObstacleMap map = one_box();
  EXPECT_FALSE(map.blocks({0.0, 0.0}, {30.0, 0.0}));
  EXPECT_FALSE(map.blocks({0.0, 25.0}, {30.0, 25.0}));
  EXPECT_FALSE(map.blocks({0.0, 0.0}, {5.0, 30.0}));
}

TEST(ObstacleMapTest, EdgeSlideIsAllowed) {
  const ObstacleMap map = one_box();
  // Sliding exactly along the obstacle's bottom edge.
  EXPECT_FALSE(map.blocks({0.0, 10.0}, {30.0, 10.0}));
  // Touching a corner diagonally.
  EXPECT_FALSE(map.blocks({0.0, 20.0}, {10.0, 30.0}));
}

TEST(ObstacleMapTest, SegmentEndingInsideBlocks) {
  const ObstacleMap map = one_box();
  EXPECT_TRUE(map.blocks({0.0, 15.0}, {15.0, 15.0}));
  EXPECT_TRUE(map.blocks({12.0, 12.0}, {18.0, 18.0}));  // fully inside
}

TEST(ObstacleMapTest, ShortSegmentsOutside) {
  const ObstacleMap map = one_box();
  EXPECT_FALSE(map.blocks({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_FALSE(map.blocks({25.0, 25.0}, {25.0, 25.0}));  // degenerate
}

TEST(ObstacleMapTest, WaypointsAreInflatedCorners) {
  const ObstacleMap map = one_box();
  const auto pts = map.waypoints(1.0);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (geom::Point{9.0, 9.0}));
  EXPECT_EQ(pts[2], (geom::Point{21.0, 21.0}));
  for (const auto& p : pts) {
    EXPECT_FALSE(map.inside_obstacle(p));
  }
}

TEST(ObstacleMapTest, OverlappingObstaclesDropBuriedCorners) {
  const ObstacleMap map({geom::Aabb{{0.0, 0.0}, {10.0, 10.0}},
                         geom::Aabb{{5.0, 5.0}, {15.0, 15.0}}});
  const auto pts = map.waypoints(0.5);
  // The corner of box B at (4.5, 4.5)... every corner inflated outward;
  // the inner corners buried in the other box are dropped.
  for (const auto& p : pts) {
    EXPECT_FALSE(map.inside_obstacle(p));
  }
  EXPECT_LT(pts.size(), 8u);
}

TEST(ObstacleMapTest, EmptyMapBlocksNothing) {
  const ObstacleMap map;
  EXPECT_FALSE(map.blocks({0.0, 0.0}, {100.0, 100.0}));
  EXPECT_FALSE(map.inside_obstacle({50.0, 50.0}));
  EXPECT_TRUE(map.waypoints(1.0).empty());
}

TEST(ObstacleMapTest, RejectsDegenerateObstacles) {
  EXPECT_THROW(ObstacleMap({geom::Aabb{{0.0, 0.0}, {0.0, 5.0}}}),
               mdg::PreconditionError);
}

TEST(RemoveCoveredPositionsTest, FiltersInteriorPoints) {
  const ObstacleMap map = one_box();
  const std::vector<geom::Point> pts{
      {15.0, 15.0}, {5.0, 5.0}, {10.0, 15.0}, {19.9, 19.9}};
  const auto kept = remove_covered_positions(pts, map);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], (geom::Point{5.0, 5.0}));
  EXPECT_EQ(kept[1], (geom::Point{10.0, 15.0}));
}

}  // namespace
}  // namespace mdg::route

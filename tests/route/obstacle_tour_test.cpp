#include "route/obstacle_tour.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/spanning_tour_planner.h"
#include "net/deployment.h"
#include "util/rng.h"

namespace mdg::route {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;
  core::ShdgpSolution solution;

  Fixture(const ObstacleMap& map, std::uint64_t seed, std::size_t n = 120,
          double side = 200.0)
      : network([&] {
          Rng rng(seed);
          const auto field = geom::Aabb::square(side);
          auto pts = remove_covered_positions(
              net::deploy_uniform(n, field, rng), map);
          return net::SensorNetwork(std::move(pts), field.center(), field,
                                    30.0);
        }()),
        instance(network),
        solution(core::SpanningTourPlanner().plan(instance)) {}
};

ObstacleMap campus_map() {
  return ObstacleMap({
      geom::Aabb{{40.0, 40.0}, {80.0, 70.0}},
      geom::Aabb{{120.0, 30.0}, {150.0, 90.0}},
      geom::Aabb{{60.0, 120.0}, {130.0, 150.0}},
  });
}

TEST(ObstacleTourTest, EmptyMapMatchesEuclideanLength) {
  const ObstacleMap map;
  const ObstacleRouter router(map);
  const Fixture fx(map, 1);
  const auto tour = plan_obstacle_tour(fx.instance, fx.solution, router);
  ASSERT_TRUE(tour.has_value());
  EXPECT_NEAR(tour->length, tour->euclidean_length, 1e-9);
  // The matrix pipeline (NN+2opt) may differ from the planner's kFull
  // tour, but both must visit the same stop set.
  EXPECT_EQ(tour->order.size(), fx.solution.polling_points.size() + 1);
}

TEST(ObstacleTourTest, DetoursNeverShorterThanEuclidean) {
  const ObstacleMap map = campus_map();
  const ObstacleRouter router(map, 0.5);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Fixture fx(map, seed);
    const auto tour = plan_obstacle_tour(fx.instance, fx.solution, router);
    ASSERT_TRUE(tour.has_value()) << "seed " << seed;
    EXPECT_GE(tour->length, tour->euclidean_length - 1e-9);
  }
}

TEST(ObstacleTourTest, PolylineIsDrivable) {
  const ObstacleMap map = campus_map();
  const ObstacleRouter router(map, 0.5);
  const Fixture fx(map, 5);
  const auto tour = plan_obstacle_tour(fx.instance, fx.solution, router);
  ASSERT_TRUE(tour.has_value());
  ASSERT_GE(tour->polyline.size(), 2u);
  EXPECT_EQ(tour->polyline.front(), fx.instance.sink());
  EXPECT_EQ(tour->polyline.back(), fx.instance.sink());
  for (std::size_t i = 0; i + 1 < tour->polyline.size(); ++i) {
    EXPECT_FALSE(map.blocks(tour->polyline[i], tour->polyline[i + 1]))
        << "leg " << i;
  }
  EXPECT_NEAR(geom::polyline_length(tour->polyline), tour->length, 1e-6);
}

TEST(ObstacleTourTest, StartsAtSink) {
  const ObstacleMap map = campus_map();
  const ObstacleRouter router(map, 0.5);
  const Fixture fx(map, 7);
  const auto tour = plan_obstacle_tour(fx.instance, fx.solution, router);
  ASSERT_TRUE(tour.has_value());
  EXPECT_EQ(tour->order.at(0), 0u);
}

TEST(ObstacleTourTest, UnreachableStopReturnsNullopt) {
  // Wall the sink into a courtyard so every polling point is unreachable.
  const ObstacleMap map({
      geom::Aabb{{80.0, 80.0}, {120.0, 85.0}},
      geom::Aabb{{80.0, 115.0}, {120.0, 120.0}},
      geom::Aabb{{80.0, 80.0}, {85.0, 120.0}},
      geom::Aabb{{115.0, 80.0}, {120.0, 120.0}},
  });
  const ObstacleRouter router(map, 0.25);
  // Deploy sensors outside the courtyard only.
  Rng rng(9);
  const auto field = geom::Aabb::square(200.0);
  std::vector<geom::Point> pts;
  for (const auto& p : net::deploy_uniform(100, field, rng)) {
    if (p.x < 70.0 || p.x > 130.0 || p.y < 70.0 || p.y > 130.0) {
      pts.push_back(p);
    }
  }
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   30.0);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  EXPECT_FALSE(plan_obstacle_tour(instance, solution, router).has_value());
}

}  // namespace
}  // namespace mdg::route

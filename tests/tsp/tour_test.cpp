#include "tsp/tour.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace mdg::tsp {
namespace {

const std::vector<geom::Point> kSquare{
    {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};

TEST(TourTest, IdentityTour) {
  const Tour t = Tour::identity(4);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.at(0), 0u);
  EXPECT_EQ(t.at(3), 3u);
  EXPECT_DOUBLE_EQ(t.length(kSquare), 4.0);
}

TEST(TourTest, EmptyTour) {
  const Tour t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.length(kSquare), 0.0);
}

TEST(TourTest, SinglePointTourHasZeroLength) {
  const Tour t = Tour::identity(1);
  const std::vector<geom::Point> one{{5.0, 5.0}};
  EXPECT_DOUBLE_EQ(t.length(one), 0.0);
}

TEST(TourTest, TwoPointTourIsOutAndBack) {
  const Tour t = Tour::identity(2);
  const std::vector<geom::Point> pts{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(t.length(pts), 10.0);
}

TEST(TourTest, CrossingOrderIsLonger) {
  const Tour crossing(std::vector<std::size_t>{0, 2, 1, 3});
  EXPECT_GT(crossing.length(kSquare), 4.0);
}

TEST(TourTest, RejectsNonPermutations) {
  EXPECT_THROW(Tour(std::vector<std::size_t>{0, 0, 1}), mdg::PreconditionError);
  EXPECT_THROW(Tour(std::vector<std::size_t>{0, 3}), mdg::PreconditionError);
}

TEST(TourTest, RotateToFront) {
  Tour t(std::vector<std::size_t>{2, 0, 3, 1});
  t.rotate_to_front(0);
  EXPECT_EQ(t.at(0), 0u);
  EXPECT_EQ(t.order(), (std::vector<std::size_t>{0, 3, 1, 2}));
  EXPECT_THROW(t.rotate_to_front(9), mdg::PreconditionError);
}

TEST(TourTest, RotationPreservesLength) {
  Tour t(std::vector<std::size_t>{0, 2, 1, 3});
  const double before = t.length(kSquare);
  t.rotate_to_front(1);
  EXPECT_DOUBLE_EQ(t.length(kSquare), before);
}

TEST(TourTest, ReverseSegment) {
  Tour t = Tour::identity(5);
  t.reverse_segment(1, 3);
  EXPECT_EQ(t.order(), (std::vector<std::size_t>{0, 3, 2, 1, 4}));
  EXPECT_THROW(t.reverse_segment(3, 1), mdg::PreconditionError);
  EXPECT_THROW(t.reverse_segment(0, 5), mdg::PreconditionError);
}

TEST(TourTest, NextPosWraps) {
  const Tour t = Tour::identity(3);
  EXPECT_EQ(t.next_pos(0), 1u);
  EXPECT_EQ(t.next_pos(2), 0u);
}

TEST(TourTest, ToPointsFollowsOrder) {
  const Tour t(std::vector<std::size_t>{0, 2, 1, 3});
  const auto pts = t.to_points(kSquare);
  EXPECT_EQ(pts[1], kSquare[2]);
  EXPECT_EQ(pts[3], kSquare[3]);
}

TEST(TourTest, LengthRejectsMissingPoints) {
  const Tour t = Tour::identity(5);
  EXPECT_THROW((void)t.length(kSquare), mdg::PreconditionError);
}

TEST(TourTest, IsPermutationHelper) {
  EXPECT_TRUE(Tour::is_permutation(std::vector<std::size_t>{2, 0, 1}));
  EXPECT_FALSE(Tour::is_permutation(std::vector<std::size_t>{1, 1}));
  EXPECT_TRUE(Tour::is_permutation(std::vector<std::size_t>{}));
}

}  // namespace
}  // namespace mdg::tsp

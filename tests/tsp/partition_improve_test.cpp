// Determinism and correctness of the partitioned parallel local search
// (tsp/partition.h). The core contract: plans are a pure function of the
// input — byte-identical tour orders at every MDG_THREADS setting —
// because the shard decomposition depends only on n and the merge order
// is canonical. These tests force the partitioned engine on at harness
// sizes (the production cutoff is 32768) across all nine verification
// generator families, including the degenerate ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "net/sensor_network.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "util/thread_pool.h"
#include "verify/generate.h"

namespace mdg::tsp {
namespace {

std::vector<geom::Point> tour_points(const net::SensorNetwork& network) {
  std::vector<geom::Point> pts{network.sink()};
  pts.insert(pts.end(), network.positions().begin(),
             network.positions().end());
  return pts;
}

// Forces the partitioned engine regardless of size: cutoff 1, shard
// target small enough that harness instances split into several shards.
ImproveOptions forced_partition_options(std::size_t n) {
  ImproveOptions options;
  options.full_scan_below = 0;
  options.partition_above = 1;
  options.partition_shard_target = std::max<std::size_t>(16, n / 4);
  return options;
}

void expect_valid_rotation_invariants(const Tour& tour,
                                      std::span<const geom::Point> pts,
                                      double initial_length,
                                      const char* label) {
  // Valid permutation of 0..n-1 with the depot still at position 0.
  const auto& order = tour.order();
  ASSERT_EQ(order.size(), pts.size()) << label;
  std::vector<bool> seen(order.size(), false);
  for (const std::size_t city : order) {
    ASSERT_LT(city, order.size()) << label;
    ASSERT_FALSE(seen[city]) << label << " duplicate city " << city;
    seen[city] = true;
  }
  ASSERT_EQ(order[0], 0u) << label << " depot moved";
  EXPECT_LE(tour.length(pts), initial_length) << label << " tour lengthened";
}

TEST(PartitionImproveTest, ByteIdenticalAcrossThreadCountsOnAllFamilies) {
  for (const verify::GeneratorFamily family : verify::all_families()) {
    const net::SensorNetwork network = verify::generate_network(family, 7);
    const std::vector<geom::Point> pts = tour_points(network);
    if (pts.size() < 8) {
      continue;  // kTiny corners; the dispatcher never partitions these
    }
    const Tour nn = nearest_neighbor(pts);
    const double nn_length = nn.length(pts);
    const ImproveOptions options = forced_partition_options(pts.size());

    std::vector<std::size_t> reference_order;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ScopedPlanningThreads scoped(threads);
      Tour tour = nn;
      const ImproveStats stats = improve(tour, pts, options);
      expect_valid_rotation_invariants(tour, pts, nn_length,
                                       verify::to_string(family));
      EXPECT_GE(stats.shards, 2u) << verify::to_string(family);
      EXPECT_GE(stats.rounds, 1u) << verify::to_string(family);
      if (threads == 1) {
        reference_order = tour.order();
      } else {
        EXPECT_EQ(tour.order(), reference_order)
            << verify::to_string(family) << " diverged at " << threads
            << " threads";
      }
    }
  }
}

TEST(PartitionImproveTest, DispatchesOnBothSidesOfTheCutoff) {
  verify::GeneratorOptions gen;
  gen.sensors = 220;
  const net::SensorNetwork network =
      verify::generate_network(verify::GeneratorFamily::kUniform, 13, gen);
  const std::vector<geom::Point> pts = tour_points(network);
  const Tour nn = nearest_neighbor(pts);
  const double nn_length = nn.length(pts);

  // Just above the cutoff: the partitioned engine runs (shards > 0).
  ImproveOptions below;
  below.full_scan_below = 0;
  below.partition_above = pts.size();
  below.partition_shard_target = 32;
  Tour partitioned = nn;
  const ImproveStats pstats = improve(partitioned, pts, below);
  EXPECT_GE(pstats.shards, 2u);
  EXPECT_GE(pstats.rounds, 1u);
  expect_valid_rotation_invariants(partitioned, pts, nn_length, "partitioned");

  // Just below the cutoff: the sequential engine runs (shards == 0).
  ImproveOptions above;
  above.full_scan_below = 0;
  above.partition_above = pts.size() + 1;
  above.partition_shard_target = 32;
  Tour sequential = nn;
  const ImproveStats sstats = improve(sequential, pts, above);
  EXPECT_EQ(sstats.shards, 0u);
  EXPECT_EQ(sstats.rounds, 0u);
  expect_valid_rotation_invariants(sequential, pts, nn_length, "sequential");
}

TEST(PartitionImproveTest, FallsBackWhenTooSmallToShard) {
  // partition_above below n but shard target so large that fewer than
  // two shards fit: the dispatcher must fall back to the sequential
  // engine rather than degenerate to a single frozen shard.
  verify::GeneratorOptions gen;
  gen.sensors = 60;
  const net::SensorNetwork network =
      verify::generate_network(verify::GeneratorFamily::kClusters, 5, gen);
  const std::vector<geom::Point> pts = tour_points(network);
  const Tour nn = nearest_neighbor(pts);

  ImproveOptions options;
  options.full_scan_below = 0;
  options.partition_above = 1;
  options.partition_shard_target = 4096;  // n / target < 2
  Tour tour = nn;
  const ImproveStats stats = improve(tour, pts, options);
  EXPECT_EQ(stats.shards, 0u);
  expect_valid_rotation_invariants(tour, pts, nn.length(pts), "fallback");
}

TEST(PartitionImproveTest, PolishRecoversSequentialQuality) {
  // The shard phase alone cannot fix structures spanning shards; the
  // composed engine (shards + sequential polish) must land within a few
  // percent of the pure sequential engine.
  verify::GeneratorOptions gen;
  gen.sensors = 600;
  gen.side = 500.0;
  const net::SensorNetwork network =
      verify::generate_network(verify::GeneratorFamily::kUniform, 29, gen);
  const std::vector<geom::Point> pts = tour_points(network);
  const Tour nn = nearest_neighbor(pts);

  ImproveOptions seq;
  seq.full_scan_below = 0;
  seq.partition_above = 0;
  Tour seq_tour = nn;
  improve(seq_tour, pts, seq);

  Tour part_tour = nn;
  improve(part_tour, pts, forced_partition_options(pts.size()));

  EXPECT_LE(part_tour.length(pts), seq_tour.length(pts) * 1.03);
}

}  // namespace
}  // namespace mdg::tsp

#include "tsp/lower_bound.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/deployment.h"
#include "tsp/exact.h"
#include "tsp/solve.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

TEST(MstLowerBoundTest, BelowOptimalTour) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto pts = net::deploy_uniform(10, geom::Aabb::square(100.0), rng);
    const double bound = mst_lower_bound(pts);
    const double opt = held_karp_length(pts);
    EXPECT_LE(bound, opt + 1e-9);
    EXPECT_GT(bound, 0.0);
  }
}

TEST(OneTreeBoundTest, SandwichedBetweenMstAndOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 7);
    const auto pts = net::deploy_uniform(12, geom::Aabb::square(100.0), rng);
    const double mst = mst_lower_bound(pts);
    const double one_tree = one_tree_lower_bound(pts);
    const double opt = held_karp_length(pts);
    EXPECT_LE(one_tree, opt * (1.0 + 1e-9)) << "seed " << seed;
    // The ascent should not be (much) worse than the MST bound.
    EXPECT_GE(one_tree, mst * 0.95);
  }
}

TEST(OneTreeBoundTest, TightOnSquare) {
  const std::vector<geom::Point> square{
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const double bound = one_tree_lower_bound(square);
  EXPECT_NEAR(bound, 4.0, 0.05);  // optimum is 4
}

TEST(OneTreeBoundTest, Degenerates) {
  EXPECT_DOUBLE_EQ(one_tree_lower_bound({}), 0.0);
  const std::vector<geom::Point> one{{2.0, 2.0}};
  EXPECT_DOUBLE_EQ(one_tree_lower_bound(one), 0.0);
  const std::vector<geom::Point> two{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(one_tree_lower_bound(two), 10.0);
}

TEST(OneTreeBoundTest, UsefulGapOnLargerInstances) {
  Rng rng(99);
  const auto pts = net::deploy_uniform(80, geom::Aabb::square(200.0), rng);
  const double bound = one_tree_lower_bound(pts);
  const TspResult heuristic = solve_tsp(pts, TspEffort::kFull);
  EXPECT_LE(bound, heuristic.length + 1e-9);
  // Held-Karp ascent is typically within ~15% of optimum; the heuristic
  // within a few percent — together the gap should be modest.
  EXPECT_GT(bound, heuristic.length * 0.75);
}

}  // namespace
}  // namespace mdg::tsp

#include "tsp/matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/deployment.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

DistanceMatrix euclidean_matrix(const std::vector<geom::Point>& pts) {
  DistanceMatrix d(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      d.set(i, j, geom::distance(pts[i], pts[j]));
    }
  }
  return d;
}

TEST(DistanceMatrixTest, SymmetricStorage) {
  DistanceMatrix d(3);
  d.set(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);
  EXPECT_THROW((void)d.at(3, 0), mdg::PreconditionError);
  EXPECT_THROW(d.set(0, 1, -1.0), mdg::PreconditionError);
}

TEST(DistanceMatrixTest, TourLengthMatchesEuclidean) {
  Rng rng(3);
  const auto pts = net::deploy_uniform(30, geom::Aabb::square(100.0), rng);
  const DistanceMatrix d = euclidean_matrix(pts);
  const Tour tour = Tour::identity(pts.size());
  EXPECT_NEAR(d.tour_length(tour), tour.length(pts), 1e-9);
}

TEST(MatrixNearestNeighborTest, AgreesWithEuclideanNN) {
  Rng rng(7);
  const auto pts = net::deploy_uniform(40, geom::Aabb::square(100.0), rng);
  const DistanceMatrix d = euclidean_matrix(pts);
  const Tour matrix_tour = nearest_neighbor_matrix(d);
  const Tour euclid_tour = nearest_neighbor(pts);
  EXPECT_EQ(matrix_tour.order(), euclid_tour.order());
}

TEST(MatrixTwoOptTest, NeverLengthens) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto pts = net::deploy_uniform(35, geom::Aabb::square(100.0), rng);
    const DistanceMatrix d = euclidean_matrix(pts);
    Tour tour = random_tour(pts.size(), rng);
    const double before = d.tour_length(tour);
    two_opt_matrix(tour, d);
    EXPECT_LE(d.tour_length(tour), before + 1e-9);
    EXPECT_TRUE(Tour::is_permutation(tour.order()));
    EXPECT_EQ(tour.at(0), 0u);
  }
}

TEST(MatrixSolveTest, MatchesEuclideanPipelineOnEuclideanMetric) {
  Rng rng(11);
  const auto pts = net::deploy_uniform(40, geom::Aabb::square(100.0), rng);
  const DistanceMatrix d = euclidean_matrix(pts);
  const Tour matrix_tour = solve_tsp_matrix(d);
  // Same algorithm, same metric: identical tours.
  Tour euclid_tour = nearest_neighbor(pts);
  two_opt(euclid_tour, pts);
  EXPECT_NEAR(d.tour_length(matrix_tour), euclid_tour.length(pts), 1e-9);
}

TEST(MatrixSolveTest, NonEuclideanMetricRespected) {
  // A 4-node metric where the "short" Euclidean edge is forbidden
  // (infinite): the solver must route around it.
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(1, 2, 1.0);
  d.set(2, 3, 1.0);
  d.set(3, 0, 1.0);
  d.set(0, 2, 100.0);
  d.set(1, 3, 100.0);
  const Tour tour = solve_tsp_matrix(d);
  EXPECT_NEAR(d.tour_length(tour), 4.0, 1e-9);
}

TEST(MatrixSolveTest, Degenerates) {
  EXPECT_TRUE(solve_tsp_matrix(DistanceMatrix(0)).empty());
  EXPECT_EQ(solve_tsp_matrix(DistanceMatrix(1)).size(), 1u);
  DistanceMatrix two(2);
  two.set(0, 1, 7.0);
  EXPECT_DOUBLE_EQ(two.tour_length(solve_tsp_matrix(two)), 14.0);
}

}  // namespace
}  // namespace mdg::tsp

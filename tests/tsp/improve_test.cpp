#include "tsp/improve.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/deployment.h"
#include "tsp/construct.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return net::deploy_uniform(n, geom::Aabb::square(100.0), rng);
}

TEST(TwoOptTest, UncrossesKnownCrossing) {
  // Square visited in crossing order 0,2,1,3 -> 2-opt must recover the
  // perimeter (length 4).
  const std::vector<geom::Point> square{
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  Tour t(std::vector<std::size_t>{0, 2, 1, 3});
  const ImproveStats stats = two_opt(t, square);
  EXPECT_DOUBLE_EQ(t.length(square), 4.0);
  EXPECT_GE(stats.moves, 1u);
  EXPECT_DOUBLE_EQ(stats.final_length, 4.0);
}

TEST(TwoOptTest, NeverLengthens) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto pts = random_points(50, seed);
    Rng rng(seed);
    Tour t = random_tour(pts.size(), rng);
    const double before = t.length(pts);
    two_opt(t, pts);
    EXPECT_LE(t.length(pts), before + 1e-9);
    EXPECT_TRUE(Tour::is_permutation(t.order()));
    EXPECT_EQ(t.at(0), 0u);
  }
}

TEST(TwoOptTest, SmallToursUntouched) {
  const std::vector<geom::Point> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  Tour t = Tour::identity(3);
  const ImproveStats stats = two_opt(t, pts);
  EXPECT_EQ(stats.moves, 0u);
}

TEST(TwoOptTest, LocalOptimumHasNoCrossings) {
  const auto pts = random_points(30, 77);
  Tour t = nearest_neighbor(pts);
  two_opt(t, pts);
  // Re-running finds nothing.
  const ImproveStats again = two_opt(t, pts);
  EXPECT_EQ(again.moves, 0u);
}

TEST(OrOptTest, RelocatesObviousOutlier) {
  // Points on a line but visited with 3 dragged out of order.
  const std::vector<geom::Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}};
  Tour t(std::vector<std::size_t>{0, 3, 1, 2, 4});
  or_opt(t, pts);
  EXPECT_DOUBLE_EQ(t.length(pts), 8.0);  // optimal out-and-back
}

TEST(OrOptTest, NeverLengthensAndKeepsDepot) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto pts = random_points(40, seed);
    Rng rng(seed + 50);
    Tour t = random_tour(pts.size(), rng);
    const double before = t.length(pts);
    or_opt(t, pts);
    EXPECT_LE(t.length(pts), before + 1e-9);
    EXPECT_TRUE(Tour::is_permutation(t.order()));
    EXPECT_EQ(t.at(0), 0u);
  }
}

TEST(NeighborTwoOptTest, NeverLengthensAndKeepsDepot) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto pts = random_points(120, seed);
    Rng rng(seed + 7);
    Tour t = random_tour(pts.size(), rng);
    const double before = t.length(pts);
    two_opt_neighbors(t, pts, 10);
    EXPECT_LE(t.length(pts), before + 1e-9);
    EXPECT_TRUE(Tour::is_permutation(t.order()));
    EXPECT_EQ(t.at(0), 0u);
  }
}

TEST(NeighborTwoOptTest, CloseToFullTwoOptQuality) {
  double neighbor_total = 0.0;
  double full_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(150, seed);
    Tour a = nearest_neighbor(pts);
    Tour b = a;
    two_opt_neighbors(a, pts, 12);
    two_opt(b, pts);
    neighbor_total += a.length(pts);
    full_total += b.length(pts);
  }
  // The restricted move set loses only a little quality — and since the
  // don't-look-bit engine scans both tour directions it occasionally
  // lands in *better* local optima than the full sweep, so the band is
  // two-sided rather than a near-equality.
  EXPECT_LT(neighbor_total, full_total * 1.10);
  EXPECT_GE(neighbor_total, full_total * 0.98);
}

TEST(NeighborTwoOptTest, UncrossesObviousCrossing) {
  const std::vector<geom::Point> square{
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  Tour t(std::vector<std::size_t>{0, 2, 1, 3});
  two_opt_neighbors(t, square, 3);
  EXPECT_DOUBLE_EQ(t.length(square), 4.0);
}

TEST(NeighborTwoOptTest, DegenerateInputs) {
  const auto pts = random_points(5, 3);
  Tour t = Tour::identity(5);
  const ImproveStats zero_k = two_opt_neighbors(t, pts, 0);
  EXPECT_EQ(zero_k.moves, 0u);
  Tour tiny = Tour::identity(3);
  const auto small_pts = random_points(3, 4);
  EXPECT_EQ(two_opt_neighbors(tiny, small_pts, 5).moves, 0u);
}

TEST(ImproveTest, CombinedNeverWorseThanTwoOptAlone) {
  // improve() runs the same 2-opt pass first, then keeps going — so it
  // can never lose to 2-opt alone. (No such relation holds vs Or-opt
  // alone: starting with 2-opt changes the local-search trajectory.)
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(60, seed);
    Tour a = nearest_neighbor(pts);
    Tour c = a;
    two_opt(a, pts);
    improve(c, pts);
    EXPECT_LE(c.length(pts), a.length(pts) + 1e-9);
  }
}

TEST(ImproveTest, StatsConsistent) {
  const auto pts = random_points(50, 3);
  Rng rng(3);
  Tour t = random_tour(pts.size(), rng);
  const ImproveStats stats = improve(t, pts);
  EXPECT_DOUBLE_EQ(stats.final_length, t.length(pts));
  EXPECT_LE(stats.final_length, stats.initial_length);
}

}  // namespace
}  // namespace mdg::tsp

#include "tsp/construct.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/mst.h"
#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return net::deploy_uniform(n, geom::Aabb::square(100.0), rng);
}

using Constructor = Tour (*)(std::span<const geom::Point>);

struct ConstructorCase {
  std::string name;
  Constructor fn;
};

class ConstructorTest : public ::testing::TestWithParam<ConstructorCase> {};

TEST_P(ConstructorTest, ProducesValidTourOnRandomInputs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (std::size_t n : {1u, 2u, 3u, 7u, 40u}) {
      const auto pts = random_points(n, seed * 100 + n);
      const Tour t = GetParam().fn(pts);
      EXPECT_EQ(t.size(), n);
      EXPECT_TRUE(Tour::is_permutation(t.order()));
      if (n > 0) {
        EXPECT_EQ(t.at(0), 0u) << "depot must stay at position 0";
      }
    }
  }
}

TEST_P(ConstructorTest, EmptyInput) {
  const Tour t = GetParam().fn({});
  EXPECT_TRUE(t.empty());
}

TEST_P(ConstructorTest, BeatsRandomOrderOnAverage) {
  double constructed = 0.0;
  double random = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(60, seed);
    constructed += GetParam().fn(pts).length(pts);
    Rng rng(seed + 999);
    random += random_tour(pts.size(), rng).length(pts);
  }
  EXPECT_LT(constructed, random * 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    AllConstructors, ConstructorTest,
    ::testing::Values(
        ConstructorCase{"nearest_neighbor",
                        [](std::span<const geom::Point> p) {
                          return nearest_neighbor(p);
                        }},
        ConstructorCase{"greedy_edge", greedy_edge},
        ConstructorCase{"cheapest_insertion", cheapest_insertion},
        ConstructorCase{"mst_preorder", mst_preorder},
        ConstructorCase{"christofides_greedy", christofides_greedy}),
    [](const ::testing::TestParamInfo<ConstructorCase>& info) {
      return info.param.name;
    });

TEST(NearestNeighborTest, FollowsGreedyChoice) {
  // Points on a line: NN from 0 visits them in order.
  const std::vector<geom::Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const Tour t = nearest_neighbor(pts);
  EXPECT_EQ(t.order(), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(NearestNeighborTest, CustomStartStillDepotFirst) {
  const std::vector<geom::Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const Tour t = nearest_neighbor(pts, 2);
  EXPECT_EQ(t.at(0), 2u);
  EXPECT_THROW((void)nearest_neighbor(pts, 4), mdg::PreconditionError);
}

TEST(MstPreorderTest, Within2xOfMstBound) {
  // Classic guarantee: preorder walk <= 2 * MST <= 2 * OPT.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(50, seed);
    const Tour t = mst_preorder(pts);
    const double mst = graph::euclidean_mst(pts).total_weight;
    EXPECT_LE(t.length(pts), 2.0 * mst + 1e-9);
  }
}

TEST(ChristofidesGreedyTest, BeatsMstPreorderOnAverage) {
  double christofides_total = 0.0;
  double preorder_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto pts = random_points(70, seed);
    christofides_total += christofides_greedy(pts).length(pts);
    preorder_total += mst_preorder(pts).length(pts);
  }
  EXPECT_LT(christofides_total, preorder_total);
}

TEST(ChristofidesGreedyTest, HandlesCollinearPoints) {
  const std::vector<geom::Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}};
  const Tour t = christofides_greedy(pts);
  EXPECT_TRUE(Tour::is_permutation(t.order()));
  EXPECT_DOUBLE_EQ(t.length(pts), 8.0);  // out and back is optimal
}

TEST(RandomTourTest, PermutationWithDepotFirst) {
  Rng rng(17);
  const Tour t = random_tour(20, rng);
  EXPECT_TRUE(Tour::is_permutation(t.order()));
  EXPECT_EQ(t.at(0), 0u);
}

}  // namespace
}  // namespace mdg::tsp

#include "tsp/solve.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/deployment.h"
#include "tsp/exact.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return net::deploy_uniform(n, geom::Aabb::square(100.0), rng);
}

class SolveEffortTest : public ::testing::TestWithParam<TspEffort> {};

TEST_P(SolveEffortTest, ValidTourAllSizes) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 10u, 30u}) {
    const auto pts = random_points(n, 42 + n);
    const TspResult r = solve_tsp(pts, GetParam());
    EXPECT_EQ(r.tour.size(), n);
    EXPECT_TRUE(Tour::is_permutation(r.tour.order()));
    EXPECT_NEAR(r.length, r.tour.length(pts), 1e-9);
    if (n > 0) {
      EXPECT_EQ(r.tour.at(0), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEfforts, SolveEffortTest,
                         ::testing::Values(TspEffort::kConstructionOnly,
                                           TspEffort::kTwoOpt,
                                           TspEffort::kFull,
                                           TspEffort::kExactIfSmall),
                         [](const ::testing::TestParamInfo<TspEffort>& info) {
                           switch (info.param) {
                             case TspEffort::kConstructionOnly:
                               return std::string("nn");
                             case TspEffort::kTwoOpt:
                               return std::string("two_opt");
                             case TspEffort::kFull:
                               return std::string("full");
                             case TspEffort::kExactIfSmall:
                               return std::string("exact");
                           }
                           return std::string("unknown");
                         });

TEST(SolveTest, EffortLadderMonotone) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(60, seed);
    const double nn =
        solve_tsp(pts, TspEffort::kConstructionOnly).length;
    const double two = solve_tsp(pts, TspEffort::kTwoOpt).length;
    const double full = solve_tsp(pts, TspEffort::kFull).length;
    EXPECT_LE(two, nn + 1e-9);
    EXPECT_LE(full, two + 1e-9);
  }
}

TEST(SolveTest, ExactFlagOnlyWhenProven) {
  const auto small = random_points(8, 3);
  const TspResult exact = solve_tsp(small, TspEffort::kExactIfSmall);
  EXPECT_TRUE(exact.exact);
  EXPECT_NEAR(exact.length, held_karp_length(small), 1e-9);

  const auto big = random_points(50, 3);
  const TspResult fallback = solve_tsp(big, TspEffort::kExactIfSmall);
  EXPECT_FALSE(fallback.exact);
}

TEST(SolveTest, HeuristicWithinReasonOfExact) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(12, seed * 3);
    const double opt = held_karp_length(pts);
    const double full = solve_tsp(pts, TspEffort::kFull).length;
    EXPECT_LE(full, opt * 1.15 + 1e-9) << "seed " << seed;
    EXPECT_GE(full, opt - 1e-9);
  }
}

TEST(SolveTest, TinyInstancesAreExact) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    const auto pts = random_points(n, 5);
    EXPECT_TRUE(solve_tsp(pts, TspEffort::kFull).exact || n > 3);
  }
}

TEST(SolveTest, EffortNames) {
  EXPECT_EQ(to_string(TspEffort::kConstructionOnly), "nn");
  EXPECT_EQ(to_string(TspEffort::kTwoOpt), "nn+2opt");
  EXPECT_EQ(to_string(TspEffort::kFull), "full");
  EXPECT_EQ(to_string(TspEffort::kExactIfSmall), "exact-if-small");
}

}  // namespace
}  // namespace mdg::tsp

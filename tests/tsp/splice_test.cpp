// Localized tour splicing primitives behind core::apply_delta: cheapest
// insertion position, insert, remove, and the windowed local search
// that polishes the splice neighbourhood.
#include "tsp/splice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/deployment.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

double order_length(const std::vector<std::size_t>& order,
                    std::span<const geom::Point> points) {
  if (order.size() < 2) {
    return 0.0;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    total += geom::distance(points[order[i]],
                            points[order[(i + 1) % order.size()]]);
  }
  return total;
}

/// Brute-force oracle: try every insertion slot, keep the earliest
/// cheapest one (the documented tie rule).
std::size_t brute_cheapest(const std::vector<std::size_t>& order,
                           std::span<const geom::Point> points,
                           std::size_t city) {
  std::size_t best = 0;
  double best_len = 0.0;
  bool first = true;
  for (std::size_t pos = 1; pos <= order.size(); ++pos) {
    std::vector<std::size_t> candidate = order;
    candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos),
                     city);
    const double len = order_length(candidate, points);
    if (first || len < best_len) {
      best = pos;
      best_len = len;
      first = false;
    }
  }
  return best;
}

TEST(SpliceTest, CheapestPositionPicksTheObviousEdge) {
  // Square perimeter 0-1-2-3; city 4 sits on the midpoint of edge
  // (1, 2), so the cheapest insertion is before position 2.
  const std::vector<geom::Point> pts{
      {0, 0}, {10, 0}, {10, 10}, {0, 10}, {10, 5}};
  const std::vector<std::size_t> order{0, 1, 2, 3};
  EXPECT_EQ(splice_cheapest_position(order, pts, 4), 2u);
}

TEST(SpliceTest, EmptyAndSingletonOrders) {
  const std::vector<geom::Point> pts{{0, 0}, {5, 5}};
  std::vector<std::size_t> order;
  EXPECT_EQ(splice_cheapest_position(order, pts, 1), 0u);
  EXPECT_EQ(splice_insert(order, pts, 1), 0u);
  EXPECT_EQ(order, (std::vector<std::size_t>{1}));
  EXPECT_EQ(splice_insert(order, pts, 0), 1u);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));
}

TEST(SpliceTest, CheapestPositionMatchesBruteForce) {
  Rng rng(404);
  const auto pts = net::deploy_uniform(40, geom::Aabb::square(100.0), rng);
  // A tour over the first 30 cities; insert each of the remaining 10.
  std::vector<std::size_t> order(30);
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (std::size_t city = 30; city < 40; ++city) {
    ASSERT_EQ(splice_cheapest_position(order, pts, city),
              brute_cheapest(order, pts, city))
        << "city " << city;
    splice_insert(order, pts, city);
  }
}

TEST(SpliceTest, InsertThenRemoveRestoresTheOrder) {
  Rng rng(7);
  const auto pts = net::deploy_uniform(20, geom::Aabb::square(50.0), rng);
  std::vector<std::size_t> order{0, 3, 9, 12, 5};
  const std::vector<std::size_t> original = order;
  const std::size_t pos = splice_insert(order, pts, 17);
  ASSERT_LT(pos, order.size());
  EXPECT_EQ(order[pos], 17u);
  EXPECT_EQ(splice_remove(order, 17), pos);
  EXPECT_EQ(order, original);
}

TEST(SpliceTest, RemoveMissingCityReturnsNpos) {
  std::vector<std::size_t> order{0, 2, 4};
  EXPECT_EQ(splice_remove(order, 99), splice_npos);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 4}));
}

TEST(ImproveWindowTest, PolishesOnlyAroundTheWindowAndNeverLengthens) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto pts = net::deploy_uniform(60, geom::Aabb::square(100.0), rng);
    Tour tour = random_tour(pts.size(), rng);
    const double before = tour.length(pts);
    const std::vector<std::size_t> window{3, 17, 42, 55};
    improve_window(tour, pts, window);
    EXPECT_LE(tour.length(pts), before + 1e-9);
    EXPECT_TRUE(Tour::is_permutation(tour.order()));
    EXPECT_EQ(tour.at(0), 0u);
  }
}

TEST(ImproveWindowTest, WindowSeedOrderDoesNotChangeTheResult) {
  Rng rng(99);
  const auto pts = net::deploy_uniform(50, geom::Aabb::square(80.0), rng);
  const Tour start = random_tour(pts.size(), rng);
  std::vector<std::size_t> window{30, 4, 18, 18, 7};  // any order, dupes fine
  Tour a = start;
  improve_window(a, pts, window);
  std::sort(window.begin(), window.end());
  Tour b = start;
  improve_window(b, pts, window);
  EXPECT_EQ(a.order(), b.order());
}

TEST(ImproveWindowTest, EmptyWindowIsANoOp) {
  Rng rng(5);
  const auto pts = net::deploy_uniform(30, geom::Aabb::square(60.0), rng);
  Tour tour = random_tour(pts.size(), rng);
  const std::vector<std::size_t> before = tour.order();
  improve_window(tour, pts, {});
  EXPECT_EQ(tour.order(), before);
}

}  // namespace
}  // namespace mdg::tsp

// Quality parity of the neighbour-list improvement engine against the
// seed full-sweep 2-opt on the checked-in regression instances. The
// engine's restricted move set must stay within 2% of the full sweep —
// the same guard the CI perf step enforces via bench_p1_hotpaths --check.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/serialize.h"
#include "net/sensor_network.h"
#include "tsp/construct.h"
#include "tsp/improve.h"

namespace mdg::tsp {
namespace {

std::string data_path(const std::string& name) {
  return std::string(MDG_DATA_DIR) + "/" + name;
}

// Sink-plus-sensors point set, as every planner builds it.
std::vector<geom::Point> instance_points(const std::string& file) {
  const net::SensorNetwork network = io::load_network(data_path(file));
  std::vector<geom::Point> pts{network.sink()};
  pts.insert(pts.end(), network.positions().begin(),
             network.positions().end());
  return pts;
}

void expect_engine_parity(const std::string& file) {
  const auto pts = instance_points(file);
  const Tour nn = nearest_neighbor(pts);
  const double start = nn.length(pts);

  Tour engine_tour = nn;
  ImproveOptions engine;
  engine.full_scan_below = 0;  // force the neighbour engine at any n
  improve(engine_tour, pts, engine);

  Tour full_tour = nn;
  two_opt(full_tour, pts);

  const double engine_len = engine_tour.length(pts);
  const double full_len = full_tour.length(pts);

  // Never lengthens, preserves the permutation and the depot.
  EXPECT_LE(engine_len, start + 1e-9) << file;
  EXPECT_TRUE(Tour::is_permutation(engine_tour.order())) << file;
  EXPECT_EQ(engine_tour.at(0), 0u) << file;
  // Within 2% of the seed full 2-opt.
  EXPECT_LE(engine_len, full_len * 1.02) << file;
}

TEST(ImproveParityTest, Small30WithinTwoPercentOfFullTwoOpt) {
  expect_engine_parity("small30.txt");
}

TEST(ImproveParityTest, Uniform200WithinTwoPercentOfFullTwoOpt) {
  expect_engine_parity("uniform200.txt");
}

TEST(ImproveParityTest, EngineAndFullScanAgreeOnTinyInstances) {
  // Below the dispatch threshold improve() must reproduce the seed
  // composition exactly; forcing the engine on the same input must not
  // do worse than 2% either. small30 sits below full_scan_below = 128.
  const auto pts = instance_points("small30.txt");
  Tour dispatched = nearest_neighbor(pts);
  improve(dispatched, pts);  // default options -> classic full-scan path

  Tour reference = nearest_neighbor(pts);
  two_opt(reference, pts);
  or_opt(reference, pts);
  // The dispatched path starts with the same 2-opt/Or-opt composition,
  // so it can never be worse than one round of it.
  EXPECT_LE(dispatched.length(pts), reference.length(pts) + 1e-9);
}

}  // namespace
}  // namespace mdg::tsp

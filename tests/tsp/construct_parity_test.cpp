// Byte-identical parity of the grid-accelerated constructors against
// their full-scan references. These are not "close enough" checks: the
// accelerated kernels exist to make the same decisions faster, so every
// tie rule (lower index for NN, (d2, u, v) lexicographic for greedy
// edge) must reproduce the reference order() exactly at every size —
// below, at, and above the dispatch cutoffs.
#include <gtest/gtest.h>

#include <vector>

#include "geom/point.h"
#include "tsp/construct.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

std::vector<geom::Point> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.next_double() * 500.0, rng.next_double() * 300.0});
  }
  return pts;
}

// Sizes straddling the dispatch cutoffs (128 for both kernels; see
// ALGORITHMS.md §cutoffs) plus degenerate tiny inputs.
const std::size_t kSizes[] = {1, 2, 3, 5, 17, 96, 127, 128, 129, 300, 601};

TEST(ConstructParityTest, NearestNeighborMatchesReferenceAcrossSizes) {
  for (const std::size_t n : kSizes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto pts = random_points(n, seed);
      const Tour fast = nearest_neighbor(pts);
      const Tour slow = nearest_neighbor_reference(pts);
      ASSERT_EQ(fast.order(), slow.order()) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ConstructParityTest, NearestNeighborMatchesReferenceFromEveryStart) {
  const auto pts = random_points(150, 7);
  for (std::size_t start = 0; start < pts.size(); start += 13) {
    const Tour fast = nearest_neighbor(pts, start);
    const Tour slow = nearest_neighbor_reference(pts, start);
    ASSERT_EQ(fast.order(), slow.order()) << "start=" << start;
  }
}

TEST(ConstructParityTest, GreedyEdgeMatchesReferenceAcrossSizes) {
  for (const std::size_t n : kSizes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto pts = random_points(n, seed);
      const Tour fast = greedy_edge(pts);
      const Tour slow = greedy_edge_reference(pts);
      ASSERT_EQ(fast.order(), slow.order()) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ConstructParityTest, CollinearPointsFallBackIdentically) {
  // Zero-area bounding box: the grid cell size degenerates, so both
  // kernels must route through the reference scan — and still agree.
  std::vector<geom::Point> line;
  for (int i = 0; i < 200; ++i) {
    line.push_back({static_cast<double>(i * 3), 42.0});
  }
  EXPECT_EQ(nearest_neighbor(line).order(),
            nearest_neighbor_reference(line).order());
  EXPECT_EQ(greedy_edge(line).order(), greedy_edge_reference(line).order());
}

TEST(ConstructParityTest, DuplicateAndClusteredPointsAgree) {
  // Heavy ties: duplicates share a cell and equal distances everywhere.
  auto pts = random_points(140, 11);
  for (std::size_t i = 0; i < 40; ++i) {
    pts.push_back(pts[i]);  // exact duplicates
  }
  EXPECT_EQ(nearest_neighbor(pts).order(),
            nearest_neighbor_reference(pts).order());
  EXPECT_EQ(greedy_edge(pts).order(), greedy_edge_reference(pts).order());
}

TEST(ConstructParityTest, AcceleratedToursAreValidPermutations) {
  const auto pts = random_points(500, 21);
  const Tour nn = nearest_neighbor(pts);
  const Tour ge = greedy_edge(pts);
  EXPECT_TRUE(Tour::is_permutation(nn.order()));
  EXPECT_TRUE(Tour::is_permutation(ge.order()));
  EXPECT_EQ(nn.at(0), 0u);
  EXPECT_EQ(ge.at(0), 0u);
}

}  // namespace
}  // namespace mdg::tsp

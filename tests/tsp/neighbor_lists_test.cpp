#include "tsp/neighbor_lists.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "net/deployment.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdg::tsp {
namespace {

// Reference k-nearest lists: full sort with the same (distance, index)
// tie-break the class documents.
std::vector<std::vector<std::size_t>> brute_knn(
    const std::vector<geom::Point>& pts, std::size_t k) {
  const std::size_t n = pts.size();
  k = std::min(k, n == 0 ? 0 : n - 1);
  std::vector<std::vector<std::size_t>> lists(n);
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<std::pair<double, std::size_t>> all;
    for (std::size_t b = 0; b < n; ++b) {
      if (b != a) {
        all.emplace_back(geom::distance_sq(pts[a], pts[b]), b);
      }
    }
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < k; ++i) {
      lists[a].push_back(all[i].second);
    }
  }
  return lists;
}

void expect_matches_brute(const std::vector<geom::Point>& pts,
                          std::size_t k) {
  const NeighborLists lists(pts, k);
  const auto expected = brute_knn(pts, k);
  ASSERT_EQ(lists.size(), pts.size());
  for (std::size_t a = 0; a < pts.size(); ++a) {
    const auto got = lists.of(a);
    ASSERT_EQ(got.size(), expected[a].size()) << "city " << a;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[a][i]) << "city " << a << " slot " << i;
    }
  }
}

TEST(NeighborListsTest, MatchesBruteForceAcrossSizes) {
  // Spans the brute-force cutoff (64) so both construction paths are
  // checked against the same oracle.
  for (std::size_t n : {2u, 10u, 63u, 64u, 100u, 300u}) {
    Rng rng(n);
    const auto pts = net::deploy_uniform(n, geom::Aabb::square(200.0), rng);
    expect_matches_brute(pts, 8);
  }
}

TEST(NeighborListsTest, MatchesBruteForceOnClusteredPoints) {
  // Heavy clustering stresses the expanding-ring query: most cells are
  // empty and a few hold nearly everything.
  Rng rng(7);
  const auto pts = net::deploy_gaussian_clusters(
      200, geom::Aabb::square(500.0), 4, 10.0, rng);
  expect_matches_brute(pts, 12);
}

TEST(NeighborListsTest, MatchesBruteForceOnCollinearPoints) {
  // Degenerate (zero-height) bounding box must fall back cleanly.
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < 90; ++i) {
    pts.push_back({static_cast<double>(i) * 3.0, 42.0});
  }
  expect_matches_brute(pts, 5);
}

TEST(NeighborListsTest, MatchesBruteForceWithDuplicatePoints) {
  // Exact ties (distance 0 and repeated distances) must break toward the
  // lower index identically in both paths.
  Rng rng(11);
  auto pts = net::deploy_uniform(80, geom::Aabb::square(100.0), rng);
  for (std::size_t i = 0; i < 20; ++i) {
    pts.push_back(pts[i]);  // duplicates of the first 20
  }
  expect_matches_brute(pts, 10);
}

TEST(NeighborListsTest, ClampsKToNMinusOne) {
  Rng rng(3);
  const auto pts = net::deploy_uniform(6, geom::Aabb::square(50.0), rng);
  const NeighborLists lists(pts, 100);
  EXPECT_EQ(lists.k(), 5u);
  for (std::size_t a = 0; a < pts.size(); ++a) {
    EXPECT_EQ(lists.of(a).size(), 5u);
  }
}

TEST(NeighborListsTest, StoredDistancesAreBitwiseExact) {
  // dist_of must hold the same bits geom::distance produces — improve()
  // consumes these without recomputing, so any rounding drift would
  // change plans.
  for (std::size_t n : {10u, 63u, 64u, 200u}) {
    Rng rng(n + 1);
    const auto pts = net::deploy_uniform(n, geom::Aabb::square(150.0), rng);
    const NeighborLists lists(pts, 10);
    for (std::size_t a = 0; a < pts.size(); ++a) {
      const auto ids = lists.of(a);
      const auto dists = lists.dist_of(a);
      ASSERT_EQ(ids.size(), dists.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(dists[i]),
                  std::bit_cast<std::uint64_t>(
                      geom::distance(pts[a], pts[ids[i]])))
            << "city " << a << " slot " << i;
      }
    }
  }
}

TEST(NeighborListsTest, ParallelBuildMatchesSerialAcrossCutoff) {
  // Sizes straddling the parallel-build cutoff (4096): the blocked
  // parallel construction must produce the same ids and the same
  // distance bits as the serial walk, at any thread count.
  for (std::size_t n : {4000u, 4200u}) {
    Rng rng(n);
    const auto pts = net::deploy_uniform(n, geom::Aabb::square(2000.0), rng);
    std::vector<std::size_t> serial_ids;
    std::vector<std::uint64_t> serial_bits;
    {
      ScopedPlanningThreads scoped(1);
      const NeighborLists lists(pts, 8);
      for (std::size_t a = 0; a < n; ++a) {
        for (const std::size_t b : lists.of(a)) {
          serial_ids.push_back(b);
        }
        for (const double d : lists.dist_of(a)) {
          serial_bits.push_back(std::bit_cast<std::uint64_t>(d));
        }
      }
    }
    ScopedPlanningThreads scoped(4);
    const NeighborLists lists(pts, 8);
    std::vector<std::size_t> parallel_ids;
    std::vector<std::uint64_t> parallel_bits;
    for (std::size_t a = 0; a < n; ++a) {
      for (const std::size_t b : lists.of(a)) {
        parallel_ids.push_back(b);
      }
      for (const double d : lists.dist_of(a)) {
        parallel_bits.push_back(std::bit_cast<std::uint64_t>(d));
      }
    }
    EXPECT_EQ(parallel_ids, serial_ids) << "n=" << n;
    EXPECT_EQ(parallel_bits, serial_bits) << "n=" << n;
  }
}

TEST(NeighborListsTest, ListsAreSortedByDistance) {
  Rng rng(19);
  const auto pts = net::deploy_uniform(150, geom::Aabb::square(300.0), rng);
  const NeighborLists lists(pts, 16);
  for (std::size_t a = 0; a < pts.size(); ++a) {
    double prev = -1.0;
    for (std::size_t b : lists.of(a)) {
      const double d = geom::distance_sq(pts[a], pts[b]);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

}  // namespace
}  // namespace mdg::tsp

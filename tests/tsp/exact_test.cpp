#include "tsp/exact.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::tsp {
namespace {

double brute_force_optimum(const std::vector<geom::Point>& pts) {
  std::vector<std::size_t> order(pts.size());
  std::iota(order.begin(), order.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  // Fix position 0 (rotation symmetry).
  std::vector<std::size_t> rest(order.begin() + 1, order.end());
  std::sort(rest.begin(), rest.end());
  do {
    std::vector<std::size_t> full{0};
    full.insert(full.end(), rest.begin(), rest.end());
    best = std::min(best, Tour(full).length(pts));
  } while (std::next_permutation(rest.begin(), rest.end()));
  return best;
}

TEST(HeldKarpTest, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto pts =
        net::deploy_uniform(4 + seed % 5, geom::Aabb::square(50.0), rng);
    const double exact = held_karp_length(pts);
    const double brute = brute_force_optimum(pts);
    EXPECT_NEAR(exact, brute, 1e-9) << "seed " << seed;
    const Tour t = held_karp(pts);
    EXPECT_NEAR(t.length(pts), brute, 1e-9);
    EXPECT_EQ(t.at(0), 0u);
    EXPECT_TRUE(Tour::is_permutation(t.order()));
  }
}

TEST(HeldKarpTest, Degenerates) {
  EXPECT_TRUE(held_karp({}).empty());
  const std::vector<geom::Point> one{{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(held_karp_length(one), 0.0);
  const std::vector<geom::Point> two{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(held_karp_length(two), 10.0);
  const std::vector<geom::Point> three{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(held_karp_length(three), 2.0 + std::sqrt(2.0), 1e-12);
}

TEST(HeldKarpTest, SquareOptimum) {
  const std::vector<geom::Point> square{
      {0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(held_karp_length(square), 4.0);
}

TEST(HeldKarpTest, RejectsOversizedInstance) {
  Rng rng(1);
  const auto pts =
      net::deploy_uniform(kMaxExactTsp + 1, geom::Aabb::square(10.0), rng);
  EXPECT_THROW((void)held_karp_length(pts), mdg::PreconditionError);
}

TEST(HeldKarpTest, OptimalityAgainstHeuristicNeverWorse) {
  for (std::uint64_t seed = 10; seed <= 20; ++seed) {
    Rng rng(seed);
    const auto pts = net::deploy_uniform(10, geom::Aabb::square(80.0), rng);
    const double exact = held_karp_length(pts);
    const Tour identity = Tour::identity(pts.size());
    EXPECT_LE(exact, identity.length(pts) + 1e-9);
  }
}

}  // namespace
}  // namespace mdg::tsp

#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/greedy_cover_planner.h"
#include "io/serialize.h"
#include "obs/metrics.h"

namespace mdg::obs {
namespace {

RunReport sample_report() {
  RunReport r;
  r.command = "plan";
  r.planner = "greedy-cover";
  r.seed = 2008;
  r.git_describe = "v1.2.3-4-gabcdef0";
  r.wall_ms = 12.375;
  r.sensors = 200;
  r.field_width = 200.0;
  r.field_height = 150.5;
  r.range = 30.0;
  r.components = 1;
  r.params = {{"net", "net.txt"}, {"planner", "greedy"}};
  r.tour_length = 1234.5678901234567;
  r.polling_points = 17;
  r.max_pp_load = 9;
  r.mean_upload_distance = 10.25;
  r.provably_optimal = true;
  r.timings = {{"cover.greedy", 1, 0.5, 0.5, 0.5},
               {"tsp.improve", 4, 8.25, 1.0, 3.5}};
  r.counters = {{"cover.selected", 17}, {"tsp.two_opt_moves", 42}};
  r.gauges = {{"tsp.improve_gain_m", 88.5}};
  return r;
}

TEST(RunReportTest, JsonRoundTripIsFieldEqual) {
  const RunReport original = sample_report();
  const RunReport reparsed = RunReport::parse(original.to_text());
  EXPECT_EQ(reparsed, original);
}

TEST(RunReportTest, SerializationIsDeterministic) {
  EXPECT_EQ(sample_report().to_text(), sample_report().to_text());
}

TEST(RunReportTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "mdg_report_test.json";
  const RunReport original = sample_report();
  original.save(path);
  EXPECT_EQ(RunReport::load(path), original);
  std::remove(path.c_str());
}

TEST(RunReportTest, AppendJsonlProducesOneParsableLinePerReport) {
  const std::string path = ::testing::TempDir() + "mdg_report_test.jsonl";
  std::remove(path.c_str());
  RunReport a = sample_report();
  RunReport b = sample_report();
  b.seed = 2009;
  a.append_jsonl(path);
  b.append_jsonl(path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const RunReport parsed = RunReport::parse(line);
    EXPECT_EQ(parsed.seed, lines == 0 ? 2008u : 2009u);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(RunReportTest, RejectsWrongKindTag) {
  EXPECT_THROW((void)RunReport::parse("{\"kind\": \"other\"}"),
               PreconditionError);
}

TEST(RunReportTest, CaptureMetricsSplitsByKindSortedByName) {
  MetricsRegistry reg;
  reg.record_timer("z.timer", 2.0);
  reg.record_timer("a.timer", 1.0);
  reg.add_counter("m.counter", 5);
  reg.set_gauge("g.gauge", 7.5);
  RunReport r;
  r.capture_metrics(reg);
  ASSERT_EQ(r.timings.size(), 2u);
  EXPECT_EQ(r.timings[0].name, "a.timer");
  EXPECT_EQ(r.timings[1].name, "z.timer");
  ASSERT_EQ(r.counters.size(), 1u);
  EXPECT_EQ(r.counters[0].name, "m.counter");
  EXPECT_EQ(r.counters[0].value, 5u);
  ASSERT_EQ(r.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(r.gauges[0].value, 7.5);
}

#ifndef MDG_OBS_DISABLED
/// The exact report the golden file pins: greedy-cover plan of the
/// checked-in data/small30.txt instance with observability on.
RunReport plan_small30_report() {
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::instance().reset();
  const net::SensorNetwork network =
      io::load_network(std::string(MDG_DATA_DIR) + "/small30.txt");
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(instance);
  RunReport report;
  report.command = "plan";
  report.planner = solution.planner;
  report.set_instance(instance);
  report.set_quality(instance, solution);
  report.params = {{"net", "data/small30.txt"}, {"planner", "greedy"}};
  report.capture_metrics(MetricsRegistry::instance());
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset();
  return report;
}

TEST(RunReportGoldenTest, Small30MatchesCheckedInGolden) {
  const std::string golden_path =
      std::string(MDG_DATA_DIR) + "/golden_report_small30.json";
  const std::string text = plan_small30_report().canonicalized().to_text();
  if (std::getenv("MDG_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << text;
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing " << golden_path
      << " — regenerate with MDG_UPDATE_GOLDEN=1 (see docs/HANDBOOK.md)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(text, buffer.str())
      << "run report drifted from the golden file; if the change is "
         "intentional, regenerate with MDG_UPDATE_GOLDEN=1 "
         "(see docs/HANDBOOK.md)";
}
#endif

}  // namespace
}  // namespace mdg::obs

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mdg::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("a"), 0u);
  reg.add_counter("a");
  reg.add_counter("a", 4);
  EXPECT_EQ(reg.counter("a"), 5u);
  EXPECT_EQ(reg.counter("never"), 0u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", -2.25);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), -2.25);
  EXPECT_DOUBLE_EQ(reg.gauge("never"), 0.0);
}

TEST(MetricsRegistryTest, TimerHistogramTracksExtremes) {
  MetricsRegistry reg;
  reg.record_timer("t", 3.0);
  reg.record_timer("t", 1.0);
  reg.record_timer("t", 2.0);
  EXPECT_EQ(reg.timer_count("t"), 3u);
  EXPECT_DOUBLE_EQ(reg.timer_total_ms("t"), 6.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, MetricSnapshot::Kind::kTimer);
  EXPECT_DOUBLE_EQ(snap[0].min_ms, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].max_ms, 3.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.add_counter("zebra");
  reg.set_gauge("apple", 1.0);
  reg.record_timer("mango", 1.0);
  std::vector<std::string> names;
  for (const MetricSnapshot& m : reg.snapshot()) {
    names.push_back(m.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.add_counter("c", 7);
  reg.set_gauge("g", 1.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(reg.counter("c"), 0u);
}

TEST(MetricsRegistryTest, KindToString) {
  EXPECT_STREQ(to_string(MetricSnapshot::Kind::kCounter), "counter");
  EXPECT_STREQ(to_string(MetricSnapshot::Kind::kGauge), "gauge");
  EXPECT_STREQ(to_string(MetricSnapshot::Kind::kTimer), "timer");
}

#ifndef MDG_OBS_DISABLED
/// Restores the process-wide runtime flag so obs state never leaks into
/// unrelated tests.
class ScopedObs {
 public:
  explicit ScopedObs(bool on) : was_(MetricsRegistry::enabled()) {
    MetricsRegistry::set_enabled(on);
    MetricsRegistry::instance().reset();
  }
  ~ScopedObs() {
    MetricsRegistry::set_enabled(was_);
    MetricsRegistry::instance().reset();
  }

 private:
  bool was_;
};

TEST(MetricsMacroTest, MacrosWriteWhenEnabled) {
  const ScopedObs obs(true);
  MDG_OBS_COUNT("macro.counter", 3);
  MDG_OBS_GAUGE("macro.gauge", 2.5);
  EXPECT_EQ(MetricsRegistry::instance().counter("macro.counter"), 3u);
  EXPECT_DOUBLE_EQ(MetricsRegistry::instance().gauge("macro.gauge"), 2.5);
}

TEST(MetricsMacroTest, MacrosAreSilentWhenDisabled) {
  const ScopedObs obs(false);
  MDG_OBS_COUNT("macro.counter", 3);
  MDG_OBS_GAUGE("macro.gauge", 2.5);
  EXPECT_TRUE(MetricsRegistry::instance().snapshot().empty());
}
#else
TEST(MetricsMacroTest, MacrosCompileToNothingWhenDisabledAtBuildTime) {
  MetricsRegistry::instance().reset();
  MDG_OBS_COUNT("macro.counter", 3);
  MDG_OBS_GAUGE("macro.gauge", 2.5);
  EXPECT_TRUE(MetricsRegistry::instance().snapshot().empty());
}
#endif

}  // namespace
}  // namespace mdg::obs

// Golden chaos report: pins the deterministic fault-injection pipeline
// end to end — data/small30.txt planned with greedy-cover, the checked-in
// data/faults30.txt chaos config replayed for three rounds, and every
// fault.* metric captured into a RunReport. Byte-compared against
// data/golden_report_fault30.json (regenerate with MDG_UPDATE_GOLDEN=1,
// see docs/HANDBOOK.md §10).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/greedy_cover_planner.h"
#include "fault/config_io.h"
#include "fault/fault.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "sim/mobile_sim.h"

#ifndef MDG_OBS_DISABLED

namespace mdg::obs {
namespace {

/// Mirrors `mdg_cli simulate --faults data/faults30.txt --seed 7
/// --rounds 3 --report ...` over a greedy-cover plan of small30.
RunReport simulate_fault30_report() {
  const net::SensorNetwork network =
      io::load_network(std::string(MDG_DATA_DIR) + "/small30.txt");
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(instance);

  auto fault_config = fault::load_fault_config(std::string(MDG_DATA_DIR) +
                                               "/faults30.txt");
  MDG_REQUIRE(fault_config.is_ok(), fault_config.status().to_string());
  fault_config.value().seed = 7;
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(instance, solution, fault_config.value());

  // Metrics on only for the simulation itself, like the CLI's simulate
  // command (planning happens in a separate process there).
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::instance().reset();
  sim::MobileSimConfig config;
  config.fault_plan = &plan;
  sim::MobileCollectionSim sim(instance, solution, config);
  sim::EnergyLedger ledger(network.size(), config.initial_battery_j);
  double clock = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    const sim::MobileRoundReport round = sim.run_round(ledger, clock);
    clock += round.duration_s;
  }

  RunReport report;
  report.command = "simulate";
  report.planner = solution.planner;
  report.seed = fault_config.value().seed;
  report.set_instance(instance);
  report.set_quality(instance, solution);
  report.params = {{"faults", "data/faults30.txt"},
                   {"net", "data/small30.txt"},
                   {"rounds", "3"}};
  report.capture_metrics(MetricsRegistry::instance());
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset();
  return report;
}

TEST(FaultReportGoldenTest, Fault30MatchesCheckedInGolden) {
  const std::string golden_path =
      std::string(MDG_DATA_DIR) + "/golden_report_fault30.json";
  const std::string text =
      simulate_fault30_report().canonicalized().to_text();
  if (std::getenv("MDG_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << text;
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing " << golden_path
      << " — regenerate with MDG_UPDATE_GOLDEN=1 (see docs/HANDBOOK.md)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(text, buffer.str())
      << "chaos run report drifted from the golden file; if the change "
         "is intentional, regenerate with MDG_UPDATE_GOLDEN=1 "
         "(see docs/HANDBOOK.md)";
}

TEST(FaultReportGoldenTest, ChaosReportIsRunToRunDeterministic) {
  const std::string a = simulate_fault30_report().canonicalized().to_text();
  const std::string b = simulate_fault30_report().canonicalized().to_text();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mdg::obs

#endif  // MDG_OBS_DISABLED

// Keeps docs/METRICS.md and the obs/names.h catalog in lockstep: every
// catalog entry must be documented, every documented name must exist,
// and a fully-instrumented run may only register cataloged names.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <string>

#include "core/greedy_cover_planner.h"
#include "core/refine.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "sim/mobile_sim.h"
#include "sim/multihop_sim.h"
#include "util/rng.h"

namespace mdg::obs {
namespace {

/// Metric names from docs/METRICS.md table rows of the form
/// `| \`name\` | kind | unit | emitter |`.
std::set<std::string> documented_metrics() {
  const std::string path = std::string(MDG_DOC_DIR) + "/METRICS.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::string> names;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| `", 0) != 0) {
      continue;
    }
    const std::size_t start = line.find('`');
    const std::size_t end = line.find('`', start + 1);
    if (start == std::string::npos || end == std::string::npos) {
      continue;
    }
    names.insert(line.substr(start + 1, end - start - 1));
  }
  return names;
}

TEST(MetricsDocTest, CatalogIsSortedAndUnique) {
  const auto catalog = known_metrics();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::strcmp(catalog[i - 1].name, catalog[i].name), 0)
        << catalog[i - 1].name << " vs " << catalog[i].name;
  }
}

TEST(MetricsDocTest, IsKnownMetricMatchesCatalog) {
  for (const MetricInfo& info : known_metrics()) {
    EXPECT_TRUE(is_known_metric(info.name)) << info.name;
  }
  EXPECT_FALSE(is_known_metric("not.a.metric"));
  EXPECT_FALSE(is_known_metric(""));
}

TEST(MetricsDocTest, EveryCatalogEntryIsDocumented) {
  const std::set<std::string> documented = documented_metrics();
  for (const MetricInfo& info : known_metrics()) {
    EXPECT_TRUE(documented.contains(info.name))
        << "docs/METRICS.md is missing a row for '" << info.name
        << "' — see the recipe in CONTRIBUTING.md";
  }
}

TEST(MetricsDocTest, EveryDocumentedNameExistsInCatalog) {
  for (const std::string& name : documented_metrics()) {
    EXPECT_TRUE(is_known_metric(name.c_str()))
        << "docs/METRICS.md documents '" << name
        << "' which obs/names.h does not register";
  }
}

#ifndef MDG_OBS_DISABLED
TEST(MetricsDocTest, InstrumentedRunRegistersOnlyCatalogedNames) {
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::instance().reset();

  Rng rng(11);
  const net::SensorNetwork network =
      net::make_uniform_network(60, 140.0, 30.0, rng);
  const core::ShdgpInstance instance(network);
  core::ShdgpSolution solution = core::GreedyCoverPlanner().plan(instance);
  core::refine_polling_positions(instance, solution, {});

  sim::MobileSimConfig mobile_config;
  sim::MobileCollectionSim mobile(instance, solution, mobile_config);
  sim::EnergyLedger mobile_ledger(network.size(),
                                  mobile_config.initial_battery_j);
  (void)mobile.run_round(mobile_ledger, 0.0);

  sim::MultihopSim multihop(network, {});
  sim::EnergyLedger hop_ledger(network.size(), 1.0);
  (void)multihop.run_round(hop_ledger);

  const auto snapshot = MetricsRegistry::instance().snapshot();
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::instance().reset();

  EXPECT_FALSE(snapshot.empty());
  for (const MetricSnapshot& m : snapshot) {
    EXPECT_TRUE(is_known_metric(m.name.c_str()))
        << "instrumentation emitted '" << m.name
        << "' which is not in the obs/names.h catalog";
  }
}
#endif

}  // namespace
}  // namespace mdg::obs

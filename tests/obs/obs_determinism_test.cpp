// The observability contract: instrumentation observes, it never
// decides. These tests plan the same instances with metrics collection
// off and on and require byte-identical serialized solutions.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/direct_visit.h"
#include "core/greedy_cover_planner.h"
#include "core/refine.h"
#include "core/spanning_tour_planner.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace mdg {
namespace {

std::string plan_and_serialize(const core::Planner& planner,
                               const core::ShdgpInstance& instance,
                               bool obs_on, bool refine) {
  obs::MetricsRegistry::set_enabled(obs_on);
  obs::MetricsRegistry::instance().reset();
  core::ShdgpSolution solution = planner.plan(instance);
  if (refine) {
    core::refine_polling_positions(instance, solution, {});
  }
  obs::MetricsRegistry::set_enabled(false);
  obs::MetricsRegistry::instance().reset();
  std::ostringstream out;
  io::write_solution(out, solution);
  return out.str();
}

TEST(ObsDeterminismTest, PlansAreByteIdenticalWithObsOnAndOff) {
  Rng rng(42);
  const net::SensorNetwork network =
      net::make_uniform_network(120, 200.0, 30.0, rng);
  const core::ShdgpInstance instance(network);

  std::vector<std::unique_ptr<core::Planner>> planners;
  planners.push_back(std::make_unique<core::GreedyCoverPlanner>());
  planners.push_back(std::make_unique<core::SpanningTourPlanner>());
  planners.push_back(std::make_unique<baselines::DirectVisitPlanner>());

  for (const auto& planner : planners) {
    for (const bool refine : {false, true}) {
      const std::string off =
          plan_and_serialize(*planner, instance, false, refine);
      const std::string on =
          plan_and_serialize(*planner, instance, true, refine);
      EXPECT_EQ(off, on) << planner->name()
                         << (refine ? " (with refine)" : "");
    }
  }
}

TEST(ObsDeterminismTest, RepeatedInstrumentedRunsAreIdentical) {
  Rng rng(7);
  const net::SensorNetwork network =
      net::make_uniform_network(80, 160.0, 30.0, rng);
  const core::ShdgpInstance instance(network);
  const core::GreedyCoverPlanner planner;
  const std::string first =
      plan_and_serialize(planner, instance, true, false);
  const std::string second =
      plan_and_serialize(planner, instance, true, false);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace mdg

#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

#include "util/assert.h"

namespace mdg::obs {
namespace {

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_EQ(JsonValue::parse("null").dump(-1), "null");
  EXPECT_EQ(JsonValue::parse("true").dump(-1), "true");
  EXPECT_EQ(JsonValue::parse("false").dump(-1), "false");
  EXPECT_EQ(JsonValue::parse("42").dump(-1), "42");
  EXPECT_EQ(JsonValue::parse("-7").dump(-1), "-7");
  EXPECT_EQ(JsonValue::parse("\"hi\"").dump(-1), "\"hi\"");
}

TEST(JsonTest, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue::number(std::uint64_t{123}).dump(-1), "123");
  EXPECT_EQ(JsonValue::number(5.0).dump(-1), "5");
  EXPECT_EQ(JsonValue::number(-3.0).dump(-1), "-3");
}

TEST(JsonTest, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1e-9, 176.96696578605508, 1.0 / 3.0}) {
    const JsonValue parsed = JsonValue::parse(JsonValue::number(v).dump(-1));
    EXPECT_EQ(parsed.as_double(), v);
  }
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", JsonValue::number(std::uint64_t{1}));
  obj.set("apple", JsonValue::number(std::uint64_t{2}));
  EXPECT_EQ(obj.dump(-1), "{\"zebra\":1,\"apple\":2}");
}

TEST(JsonTest, EqualityIgnoresObjectMemberOrder) {
  const JsonValue a = JsonValue::parse("{\"x\": 1, \"y\": [true, null]}");
  const JsonValue b = JsonValue::parse("{\"y\": [true, null], \"x\": 1}");
  const JsonValue c = JsonValue::parse("{\"x\": 1, \"y\": [null, true]}");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);  // array order is significant
}

TEST(JsonTest, StringEscapes) {
  const std::string text = "\"line\\nbreak \\\"quoted\\\" tab\\t\"";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(v.as_string(), "line\nbreak \"quoted\" tab\t");
  EXPECT_EQ(v.dump(-1), text);
}

TEST(JsonTest, NestedDocumentRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,{\"b\":false}],\"c\":\"s\",\"d\":null}";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(v.dump(-1), text);
  EXPECT_EQ(JsonValue::parse(v.dump(2)), v);  // pretty form parses back
}

TEST(JsonTest, TypedAccessors) {
  const JsonValue v = JsonValue::parse("{\"n\": 3, \"s\": \"x\"}");
  EXPECT_TRUE(v.contains("n"));
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_EQ(v.at("n").as_uint(), 3u);
  EXPECT_EQ(v.at("s").as_string(), "x");
  EXPECT_THROW((void)v.at("missing"), PreconditionError);
  EXPECT_THROW((void)v.at("n").as_string(), PreconditionError);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nul"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), PreconditionError) << bad;
  }
}

}  // namespace
}  // namespace mdg::obs

#include "obs/span.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace mdg::obs {
namespace {

/// Restores the process-wide runtime flag so obs state never leaks into
/// unrelated tests.
class ScopedObs {
 public:
  explicit ScopedObs(bool on) : was_(MetricsRegistry::enabled()) {
    MetricsRegistry::set_enabled(on);
    MetricsRegistry::instance().reset();
  }
  ~ScopedObs() {
    MetricsRegistry::set_enabled(was_);
    MetricsRegistry::instance().reset();
  }

 private:
  bool was_;
};

TEST(SpanTest, RecordsOneTimerObservationPerScope) {
  const ScopedObs obs(true);
  {
    const SpanScope span("test.outer");
  }
  {
    const SpanScope span("test.outer");
  }
  EXPECT_EQ(MetricsRegistry::instance().timer_count("test.outer"), 2u);
  EXPECT_GE(MetricsRegistry::instance().timer_total_ms("test.outer"), 0.0);
}

TEST(SpanTest, NestingTracksDepthAndPath) {
  const ScopedObs obs(true);
  EXPECT_EQ(span_depth(), 0u);
  EXPECT_EQ(span_path(), "");
  {
    const SpanScope outer("test.outer");
    EXPECT_EQ(span_depth(), 1u);
    EXPECT_EQ(span_path(), "test.outer");
    {
      const SpanScope inner("test.inner");
      EXPECT_EQ(span_depth(), 2u);
      EXPECT_EQ(span_path(), "test.outer/test.inner");
    }
    EXPECT_EQ(span_depth(), 1u);
  }
  EXPECT_EQ(span_depth(), 0u);
  EXPECT_EQ(MetricsRegistry::instance().timer_count("test.inner"), 1u);
}

TEST(SpanTest, InactiveWhileRuntimeDisabled) {
  const ScopedObs obs(false);
  {
    const SpanScope span("test.disabled");
    EXPECT_EQ(span_depth(), 0u);
  }
  EXPECT_EQ(MetricsRegistry::instance().timer_count("test.disabled"), 0u);
}

#ifndef MDG_OBS_DISABLED
TEST(SpanTest, MacroExpandsToAScope) {
  const ScopedObs obs(true);
  {
    OBS_SPAN("test.macro");
    EXPECT_EQ(span_depth(), 1u);
  }
  EXPECT_EQ(MetricsRegistry::instance().timer_count("test.macro"), 1u);
}
#else
TEST(SpanTest, MacroCompilesToNothingWhenDisabledAtBuildTime) {
  MetricsRegistry::instance().reset();
  {
    OBS_SPAN("test.macro");
    EXPECT_EQ(span_depth(), 0u);
  }
  EXPECT_EQ(MetricsRegistry::instance().timer_count("test.macro"), 0u);
}
#endif

}  // namespace
}  // namespace mdg::obs

#include "dist/election_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/greedy_cover_planner.h"
#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdg::dist {
namespace {

net::SensorNetwork uniform_net(std::size_t n, double side, double rs,
                               std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

TEST(ElectionPlannerTest, FeasibleOnUniformNetworks) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto network = uniform_net(100, 150.0, 25.0, seed);
    const core::ShdgpInstance instance(network);
    const ElectionPlanner planner;
    const core::ShdgpSolution solution = planner.plan(instance);
    EXPECT_NO_THROW(solution.validate(instance)) << "seed " << seed;
    EXPECT_GT(planner.last_stats().transmissions, 0u);
    EXPECT_GT(planner.last_stats().rounds, 0u);
  }
}

TEST(ElectionPlannerTest, ElectedPointsAreSensors) {
  const auto network = uniform_net(80, 120.0, 25.0, 3);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = ElectionPlanner().plan(instance);
  for (const geom::Point& pp : solution.polling_points) {
    bool is_sensor = false;
    for (std::size_t s = 0; s < network.size(); ++s) {
      if (network.position(s) == pp) {
        is_sensor = true;
        break;
      }
    }
    EXPECT_TRUE(is_sensor);
  }
}

TEST(ElectionPlannerTest, AssignmentsAreOneHopNeighbors) {
  // Single-hop uploads with sensor polling points mean every non-PP
  // sensor's PP is within transmission range — validate() already checks
  // the range; here we check it is an actual graph neighbour (or self).
  const auto network = uniform_net(90, 140.0, 25.0, 5);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = ElectionPlanner().plan(instance);
  for (std::size_t s = 0; s < network.size(); ++s) {
    const geom::Point pp = solution.polling_points[solution.assignment[s]];
    EXPECT_TRUE(geom::within_range(network.position(s), pp, network.range()));
  }
}

TEST(ElectionPlannerTest, WorksOnDisconnectedDeployments) {
  Rng rng(7);
  const auto field = geom::Aabb::square(200.0);
  auto pts = net::deploy_two_islands(60, field, 0.5, rng);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   20.0);
  ASSERT_GT(network.components().count, 1u);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = ElectionPlanner().plan(instance);
  EXPECT_NO_THROW(solution.validate(instance));
}

TEST(ElectionPlannerTest, DenseClusterElectsFewPoints) {
  std::vector<geom::Point> pts;
  Rng rng(11);
  for (int i = 0; i < 25; ++i) {
    pts.push_back({50.0 + rng.uniform(-4.0, 4.0),
                   50.0 + rng.uniform(-4.0, 4.0)});
  }
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   25.0);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = ElectionPlanner().plan(instance);
  // All sensors are mutual neighbours: exactly one local maximum exists.
  EXPECT_EQ(solution.polling_points.size(), 1u);
}

TEST(ElectionPlannerTest, SingletonAndEmpty) {
  const auto field = geom::Aabb::square(30.0);
  {
    const net::SensorNetwork network({{10.0, 10.0}}, field.center(), field,
                                     5.0);
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution solution = ElectionPlanner().plan(instance);
    solution.validate(instance);
    EXPECT_EQ(solution.polling_points.size(), 1u);
  }
  {
    const net::SensorNetwork network({}, field.center(), field, 5.0);
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution solution = ElectionPlanner().plan(instance);
    EXPECT_TRUE(solution.polling_points.empty());
  }
}

TEST(ElectionPlannerTest, MessageComplexityScalesGently) {
  // O(1) broadcasts per node for priorities plus the BFS flood: the
  // per-node transmission count should stay small and grow slowly.
  const auto small = uniform_net(50, 150.0, 25.0, 13);
  const auto large = uniform_net(200, 150.0, 25.0, 13);
  const ElectionPlanner planner;
  (void)planner.plan(core::ShdgpInstance(small));
  const double per_node_small = planner.last_stats().transmissions_per_node;
  (void)planner.plan(core::ShdgpInstance(large));
  const double per_node_large = planner.last_stats().transmissions_per_node;
  EXPECT_LT(per_node_small, 20.0);
  EXPECT_LT(per_node_large, 20.0);
}

TEST(ElectionPlannerTest, DistributedCostsMoreTourThanCentralized) {
  // The expected tradeoff (paper family: distributed ~10-30% longer
  // tours): allow it to win occasionally but on average it should not
  // beat the centralized greedy by much.
  RunningStats dist_len;
  RunningStats central_len;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto network = uniform_net(120, 170.0, 28.0, seed);
    const core::ShdgpInstance instance(network);
    dist_len.add(ElectionPlanner().plan(instance).tour_length);
    central_len.add(
        core::GreedyCoverPlanner().plan(instance).tour_length);
  }
  EXPECT_GT(dist_len.mean(), central_len.mean() * 0.9);
}

TEST(ElectionPlannerTest, RequiresSensorSiteCandidates) {
  const auto network = uniform_net(40, 100.0, 30.0, 17);
  cover::CandidateOptions grid_only;
  grid_only.policy = cover::CandidatePolicy::kGrid;
  grid_only.grid_spacing = 15.0;
  const core::ShdgpInstance instance(network, grid_only);
  EXPECT_THROW((void)ElectionPlanner().plan(instance),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::dist

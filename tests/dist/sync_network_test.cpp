#include "dist/sync_network.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace mdg::dist {
namespace {

graph::Graph path_graph(std::size_t n) {
  std::vector<graph::Edge> edges;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    edges.push_back({v, v + 1, 1.0});
  }
  return graph::Graph(n, edges);
}

TEST(SyncNetworkTest, BroadcastReachesAllNeighbors) {
  const graph::Graph g = path_graph(3);
  SyncNetwork bus(g);
  std::vector<std::vector<std::size_t>> heard(3);
  const auto handler = [&](std::size_t v, std::span<const Message> inbox,
                           Outbox& out) {
    for (const Message& m : inbox) {
      heard[v].push_back(m.sender);
    }
    if (v == 1 && bus.rounds_executed() == 0) {
      out.broadcast(7);
    }
  };
  bus.run_round(handler);  // node 1 sends
  bus.run_round(handler);  // nodes 0, 2 receive
  EXPECT_EQ(heard[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(heard[2], (std::vector<std::size_t>{1}));
  EXPECT_TRUE(heard[1].empty());
}

TEST(SyncNetworkTest, MessagesDeliveredNextRoundNotSameRound) {
  const graph::Graph g = path_graph(2);
  SyncNetwork bus(g);
  bool received_in_send_round = false;
  const auto send_handler = [&](std::size_t v, std::span<const Message> inbox,
                                Outbox& out) {
    if (!inbox.empty()) {
      received_in_send_round = true;
    }
    if (v == 0) {
      out.broadcast(1);
    }
  };
  bus.run_round(send_handler);
  EXPECT_FALSE(received_in_send_round);
}

TEST(SyncNetworkTest, UnicastOnlyToNeighbors) {
  const graph::Graph g = path_graph(3);
  SyncNetwork bus(g);
  const auto bad_handler = [](std::size_t v, std::span<const Message>,
                              Outbox& out) {
    if (v == 0) {
      out.unicast(2, 1);  // 0 and 2 are not adjacent
    }
  };
  EXPECT_THROW(bus.run_round(bad_handler), mdg::PreconditionError);
}

TEST(SyncNetworkTest, TransmissionCounting) {
  const graph::Graph g = path_graph(3);
  SyncNetwork bus(g);
  const auto handler = [](std::size_t v, std::span<const Message>,
                          Outbox& out) {
    if (v == 1) {
      out.broadcast(1);     // 1 transmission, 2 deliveries
      out.unicast(0, 2);    // 1 transmission, 1 delivery
    }
  };
  const RoundStats stats = bus.run_round(handler);
  EXPECT_EQ(stats.transmissions, 2u);
  EXPECT_EQ(stats.deliveries, 3u);
  EXPECT_EQ(bus.total_transmissions(), 2u);
}

TEST(SyncNetworkTest, RunStopsOnQuiescence) {
  const graph::Graph g = path_graph(4);
  SyncNetwork bus(g);
  int budget = 3;
  const auto handler = [&](std::size_t v, std::span<const Message>,
                           Outbox& out) {
    if (v == 0 && budget > 0) {
      out.broadcast(1);
    }
  };
  const auto history = bus.run(
      handler, [&] { --budget; return budget <= 0; }, 100);
  EXPECT_EQ(history.size(), 3u);
}

TEST(SyncNetworkTest, RunHonorsMaxRounds) {
  const graph::Graph g = path_graph(2);
  SyncNetwork bus(g);
  const auto chatty = [](std::size_t, std::span<const Message>, Outbox& out) {
    out.broadcast(1);
  };
  const auto history = bus.run(chatty, [] { return false; }, 5);
  EXPECT_EQ(history.size(), 5u);
  EXPECT_EQ(bus.rounds_executed(), 5u);
}

TEST(SyncNetworkTest, PayloadRoundTrips) {
  const graph::Graph g = path_graph(2);
  SyncNetwork bus(g);
  Message got;
  const auto handler = [&](std::size_t v, std::span<const Message> inbox,
                           Outbox& out) {
    if (v == 0 && bus.rounds_executed() == 0) {
      out.broadcast(42, 1, 2, 3);
    }
    if (v == 1 && !inbox.empty()) {
      got = inbox[0];
    }
  };
  bus.run_round(handler);
  bus.run_round(handler);
  EXPECT_EQ(got.tag, 42);
  EXPECT_EQ(got.sender, 0u);
  EXPECT_EQ(got.a, 1u);
  EXPECT_EQ(got.b, 2u);
  EXPECT_EQ(got.c, 3u);
}

}  // namespace
}  // namespace mdg::dist

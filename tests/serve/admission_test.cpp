// Overload control: the AdmissionController is a deterministic state
// machine over (frame class, queue depth) observations — priority
// classes, load shedding at the backlog cap, brownout hysteresis, and
// retry-after shaping are all pinned here because docs/SERVE.md
// §Operations promises operators replayable overload behaviour.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdg::serve {
namespace {

TEST(AdmissionTest, ControlFramesAreAlwaysAdmitted) {
  AdmissionOptions options;
  options.backlog = 4;
  AdmissionController admission(options);
  // Even far past the backlog cap, and even while draining: an operator
  // must be able to observe and stop an overloaded server.
  for (FrameType type :
       {FrameType::kPing, FrameType::kStatsRequest, FrameType::kShutdown}) {
    EXPECT_EQ(admission.admit(type, 1000), AdmitDecision::kAdmit);
  }
  admission.begin_drain();
  for (FrameType type :
       {FrameType::kPing, FrameType::kStatsRequest, FrameType::kShutdown}) {
    EXPECT_EQ(admission.admit(type, 0), AdmitDecision::kAdmit);
  }
  EXPECT_TRUE(is_control_frame(FrameType::kPing));
  EXPECT_FALSE(is_control_frame(FrameType::kPlanRequest));
  EXPECT_FALSE(is_control_frame(FrameType::kDeltaRequest));
  EXPECT_FALSE(is_control_frame(FrameType::kSimulateRequest));
}

TEST(AdmissionTest, ShedOnlyAtOrPastBacklog) {
  AdmissionOptions options;
  options.backlog = 8;
  options.brownout_enter = 8;  // disable brownout below the cap
  options.brownout_exit = 1;
  AdmissionController admission(options);
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 7),
            AdmitDecision::kAdmit);
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 8), AdmitDecision::kShed);
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 9), AdmitDecision::kShed);
}

TEST(AdmissionTest, BrownoutUsesHysteresis) {
  AdmissionOptions options;
  options.backlog = 16;
  options.brownout_enter = 12;
  options.brownout_exit = 4;
  AdmissionController admission(options);
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 11),
            AdmitDecision::kAdmit);
  EXPECT_FALSE(admission.brownout());
  // Reaching the engage threshold flips the mode...
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 12),
            AdmitDecision::kDegraded);
  EXPECT_TRUE(admission.brownout());
  // ...and it stays engaged in the dead band between the thresholds —
  // no flapping on a queue oscillating around one value.
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 8),
            AdmitDecision::kDegraded);
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 5),
            AdmitDecision::kDegraded);
  // Only falling to the release threshold ends the brownout.
  admission.observe_depth(4);
  EXPECT_FALSE(admission.brownout());
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 5),
            AdmitDecision::kAdmit);
}

TEST(AdmissionTest, DerivedThresholdsAndExitClamp) {
  AdmissionOptions options;
  options.backlog = 64;
  AdmissionController derived(options);
  EXPECT_EQ(derived.options().brownout_enter, 48u);  // 3/4 of backlog
  EXPECT_EQ(derived.options().brownout_exit, 16u);   // 1/4 of backlog

  // A release threshold at or above the engage threshold would defeat
  // the hysteresis entirely; the constructor clamps it strictly below.
  options.brownout_enter = 10;
  options.brownout_exit = 10;
  AdmissionController clamped(options);
  EXPECT_LT(clamped.options().brownout_exit,
            clamped.options().brownout_enter);

  options.backlog = 1;  // degenerate: enter derives to max(1, 0) = 1
  options.brownout_enter = 0;
  options.brownout_exit = 0;
  AdmissionController tiny(options);
  EXPECT_GE(tiny.options().brownout_enter, 1u);
  EXPECT_LT(tiny.options().brownout_exit, tiny.options().brownout_enter);
}

TEST(AdmissionTest, DrainingShedsWorkAndCapsTheHint) {
  AdmissionOptions options;
  options.backlog = 8;
  options.retry_after_base_ms = 50;
  options.retry_after_cap_ms = 2000;
  AdmissionController admission(options);
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 0),
            AdmitDecision::kAdmit);
  admission.begin_drain();
  EXPECT_TRUE(admission.draining());
  EXPECT_EQ(admission.admit(FrameType::kPlanRequest, 0), AdmitDecision::kShed);
  // While draining the hint is the cap: the server is going away, not
  // momentarily busy.
  EXPECT_EQ(admission.retry_after_ms(0), 2000u);
}

TEST(AdmissionTest, RetryAfterDoublesPerBacklogOfExcessAndCaps) {
  AdmissionOptions options;
  options.backlog = 10;
  options.retry_after_base_ms = 50;
  options.retry_after_cap_ms = 2000;
  AdmissionController admission(options);
  EXPECT_EQ(admission.retry_after_ms(0), 50u);
  EXPECT_EQ(admission.retry_after_ms(10), 50u);   // at the cap, no excess
  EXPECT_EQ(admission.retry_after_ms(19), 50u);   // excess 9 < one backlog
  EXPECT_EQ(admission.retry_after_ms(20), 100u);  // one whole backlog over
  EXPECT_EQ(admission.retry_after_ms(30), 200u);
  EXPECT_EQ(admission.retry_after_ms(60), 1600u);
  EXPECT_EQ(admission.retry_after_ms(70), 2000u);  // value-capped
  // A hostile depth cannot overflow the shift.
  EXPECT_EQ(admission.retry_after_ms(static_cast<std::size_t>(-1) / 2),
            2000u);
}

TEST(AdmissionTest, SameObservationTraceSameDecisions) {
  // The replayability contract: feeding two controllers the same
  // sequence of (type, depth) observations produces identical decision
  // traces — no clocks, no randomness, no hidden state.
  const struct {
    FrameType type;
    std::size_t depth;
  } kTrace[] = {
      {FrameType::kPlanRequest, 0},  {FrameType::kPlanRequest, 5},
      {FrameType::kPing, 50},        {FrameType::kPlanRequest, 50},
      {FrameType::kPlanRequest, 64}, {FrameType::kStatsRequest, 64},
      {FrameType::kPlanRequest, 40}, {FrameType::kPlanRequest, 15},
      {FrameType::kPlanRequest, 16}, {FrameType::kPlanRequest, 17},
      {FrameType::kShutdown, 90},    {FrameType::kPlanRequest, 2},
  };
  AdmissionOptions options;
  options.backlog = 64;
  AdmissionController a(options);
  AdmissionController b(options);
  for (const auto& step : kTrace) {
    const AdmitDecision da = a.admit(step.type, step.depth);
    const AdmitDecision db = b.admit(step.type, step.depth);
    EXPECT_EQ(da, db);
    EXPECT_EQ(a.brownout(), b.brownout());
    EXPECT_EQ(a.retry_after_ms(step.depth), b.retry_after_ms(step.depth));
  }
}

}  // namespace
}  // namespace mdg::serve

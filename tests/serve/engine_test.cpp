// Engine behaviour: cold plans byte-identical to direct library calls,
// exact and warm cache hits, deadlines, simulate/stats/ping/shutdown.
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "core/planner_factory.h"
#include "io/serialize.h"
#include "net/deployment.h"
#include "serve/protocol.h"
#include "util/rng.h"
#include "verify/check.h"

namespace mdg::serve {
namespace {

net::SensorNetwork test_network(std::uint64_t seed, std::size_t n = 50) {
  Rng rng(seed);
  return net::make_uniform_network(n, 150.0, 28.0, rng);
}

Frame plan_frame(std::uint32_t id, const net::SensorNetwork& network,
                 PlanRequestOptions options = {}) {
  return Frame{FrameType::kPlanRequest, id, 0,
               build_plan_request(options, network)};
}

TEST(ServeEngineTest, ColdPlanMatchesDirectLibraryCallByteForByte) {
  Engine engine;
  const net::SensorNetwork network = test_network(1);
  const Frame reply = engine.handle(plan_frame(1, network));
  ASSERT_EQ(reply.type, FrameType::kReplyOk);
  EXPECT_EQ(reply.id, 1u);
  EXPECT_EQ(reply.flags & kFlagCacheMask, kFlagCacheMiss);

  // The acceptance contract: a served plan is the same bytes mdg_cli
  // plan would write for this network.
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution direct =
      core::GreedyCoverPlanner().plan(instance);
  EXPECT_EQ(reply.payload, "mdg-reply 1\nop plan\n" + io::to_text(direct));
}

TEST(ServeEngineTest, ExactHitReturnsIdenticalBytesAndSetsTheFlag) {
  Engine engine;
  const net::SensorNetwork network = test_network(2);
  const Frame request = plan_frame(7, network);
  const Frame cold = engine.handle(request);
  const Frame hit = engine.handle(request);
  ASSERT_EQ(hit.type, FrameType::kReplyOk);
  EXPECT_EQ(hit.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(hit.payload, cold.payload);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.hits_exact, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ServeEngineTest, WarmStartKicksInAcrossMultiStartWidths) {
  Engine engine;
  const net::SensorNetwork network = test_network(3, 80);
  // Cold plan with the default options seeds the warm index.
  const Frame cold = engine.handle(plan_frame(1, network));
  ASSERT_EQ(cold.type, FrameType::kReplyOk);
  // Same instance, different multi-start width: not an exact key match
  // but the cover is identical, so the cached tour warm-starts improve.
  PlanRequestOptions wide;
  wide.multi_start = 4;
  const Frame warm = engine.handle(plan_frame(2, network, wide));
  ASSERT_EQ(warm.type, FrameType::kReplyOk);
  EXPECT_EQ(warm.flags & kFlagCacheMask, kFlagCacheWarm);
  EXPECT_EQ(engine.stats().hits_warm, 1u);

  // The warm-started plan must still satisfy every SHDGP invariant.
  std::istringstream body(
      warm.payload.substr(std::string("mdg-reply 1\nop plan\n").size()));
  auto solution = io::try_read_solution(body);
  ASSERT_TRUE(solution.is_ok()) << solution.status().to_string();
  const core::ShdgpInstance instance(network);
  const core::Status check = verify::check_solution(instance, *solution);
  EXPECT_TRUE(check.is_ok()) << check.to_string();
}

TEST(ServeEngineTest, WarmStartedPlansAreNeverServedAsExactHits) {
  Engine engine;
  const net::SensorNetwork network = test_network(3, 80);
  (void)engine.handle(plan_frame(1, network));  // seeds the warm donor
  PlanRequestOptions wide;
  wide.multi_start = 4;
  const Frame warm = engine.handle(plan_frame(2, network, wide));
  ASSERT_EQ(warm.type, FrameType::kReplyOk);
  ASSERT_EQ(warm.flags & kFlagCacheMask, kFlagCacheWarm);

  // Warm-derived bytes must never enter the exact indexes: resending
  // the identical request warm-starts again instead of replaying them.
  const Frame again = engine.handle(plan_frame(3, network, wide));
  EXPECT_EQ(again.flags & kFlagCacheMask, kFlagCacheWarm);
  EXPECT_EQ(engine.stats().hits_exact, 0u);

  // And a warm-opted-out request for the same instance + options plans
  // cold, byte-identical to a fresh engine — never the warm bytes via
  // a canonical hit.
  PlanRequestOptions no_warm = wide;
  no_warm.warm = false;
  const Frame cold = engine.handle(plan_frame(4, network, no_warm));
  ASSERT_EQ(cold.type, FrameType::kReplyOk);
  EXPECT_EQ(cold.flags & kFlagCacheMask, kFlagCacheMiss);
  Engine fresh;
  const Frame reference = fresh.handle(plan_frame(5, network, no_warm));
  EXPECT_EQ(cold.payload, reference.payload);
}

TEST(ServeEngineTest, WarmStartDisabledByRequestFlag) {
  Engine engine;
  const net::SensorNetwork network = test_network(4);
  (void)engine.handle(plan_frame(1, network));
  PlanRequestOptions no_warm;
  no_warm.multi_start = 4;
  no_warm.warm = false;
  const Frame reply = engine.handle(plan_frame(2, network, no_warm));
  ASSERT_EQ(reply.type, FrameType::kReplyOk);
  EXPECT_EQ(reply.flags & kFlagCacheMask, kFlagCacheMiss);
  EXPECT_EQ(engine.stats().hits_warm, 0u);
}

TEST(ServeEngineTest, DifferentSpellingSameInstanceIsACanonicalHit) {
  Engine engine;
  const net::SensorNetwork network = test_network(5);
  const Frame cold = engine.handle(plan_frame(1, network));
  // Re-spell the payload: append trailing zeros to a coordinate's
  // decimal form by re-serializing through a parse round trip. The
  // simplest distinct spelling: same request text with one numeric
  // token rewritten equivalently ("0" -> "0.0" won't survive the
  // strict u64 parse, so vary float formatting via the network text).
  std::string payload = build_plan_request({}, network);
  const std::size_t range_pos = payload.find("\nrange ");
  ASSERT_NE(range_pos, std::string::npos);
  // "range X" -> "range X0" would change the value; instead inject a
  // harmless extra space which the token-based network parser accepts
  // but which changes the raw bytes.
  payload.insert(range_pos + std::string("\nrange ").size(), " ");
  const Frame respelled =
      engine.handle(Frame{FrameType::kPlanRequest, 2, 0, payload});
  ASSERT_EQ(respelled.type, FrameType::kReplyOk);
  EXPECT_EQ(respelled.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(respelled.payload, cold.payload);
  // And the new spelling is now a raw alias: resending it skips
  // parsing entirely (still an exact hit).
  const Frame again =
      engine.handle(Frame{FrameType::kPlanRequest, 3, 0, payload});
  EXPECT_EQ(again.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(engine.stats().hits_exact, 2u);
}

TEST(ServeEngineTest, DeadlineZeroMeansNoDeadlineFlag) {
  Engine engine;
  const Frame reply = engine.handle(plan_frame(1, test_network(6)));
  EXPECT_EQ(reply.flags & kFlagDeadlineHit, 0u);
}

TEST(ServeEngineTest, TightDeadlineStillProducesAValidSolution) {
  Engine engine;
  const net::SensorNetwork network = test_network(7, 300);
  PlanRequestOptions options;
  options.deadline_ms = 1;  // expires almost immediately
  options.warm = false;
  const Frame reply = engine.handle(plan_frame(1, network, options));
  ASSERT_EQ(reply.type, FrameType::kReplyOk);
  std::istringstream body(
      reply.payload.substr(std::string("mdg-reply 1\nop plan\n").size()));
  auto solution = io::try_read_solution(body);
  ASSERT_TRUE(solution.is_ok()) << solution.status().to_string();
  const core::ShdgpInstance instance(network);
  EXPECT_TRUE(verify::check_solution(instance, *solution).is_ok());
  // Whether the deadline tripped is timing-dependent; what matters is
  // that a deadline-hit plan is never cached as an exact answer.
  if ((reply.flags & kFlagDeadlineHit) != 0) {
    EXPECT_EQ(engine.stats().cache_entries, 0u);
  }
}

TEST(ServeEngineTest, UnknownPlannerIsAnErrorReply) {
  Engine engine;
  PlanRequestOptions options;
  options.planner = "quantum";
  const Frame reply = engine.handle(plan_frame(1, test_network(8), options));
  ASSERT_EQ(reply.type, FrameType::kReplyError);
  EXPECT_NE(reply.payload.find("code invalid-argument"), std::string::npos);
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(ServeEngineTest, GarbagePayloadIsAnErrorReplyNotACrash) {
  Engine engine;
  const Frame reply = engine.handle(
      Frame{FrameType::kPlanRequest, 9, 0, "total garbage\n\x01\x02"});
  ASSERT_EQ(reply.type, FrameType::kReplyError);
  EXPECT_EQ(reply.id, 9u);
  EXPECT_NE(reply.payload.find("mdg-error 1\n"), std::string::npos);
}

TEST(ServeEngineTest, SimulateRunsDeterministically) {
  Engine engine;
  const net::SensorNetwork network = test_network(10);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(instance);
  const std::string payload =
      build_simulate_request(5, 1.5, 0.5, 42, network, solution);
  const Frame a =
      engine.handle(Frame{FrameType::kSimulateRequest, 1, 0, payload});
  const Frame b =
      engine.handle(Frame{FrameType::kSimulateRequest, 2, 0, payload});
  ASSERT_EQ(a.type, FrameType::kReplyOk) << a.payload;
  EXPECT_NE(a.payload.find("op simulate"), std::string::npos);
  EXPECT_NE(a.payload.find("delivered "), std::string::npos);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(ServeEngineTest, SimulateRejectsMismatchedSolution) {
  Engine engine;
  const net::SensorNetwork network = test_network(11);
  const net::SensorNetwork other = test_network(12, 70);
  const core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(core::ShdgpInstance(other));
  const std::string payload =
      build_simulate_request(3, 1.0, 0.5, 1, network, solution);
  const Frame reply =
      engine.handle(Frame{FrameType::kSimulateRequest, 1, 0, payload});
  ASSERT_EQ(reply.type, FrameType::kReplyError);
  EXPECT_NE(reply.payload.find("code failed-precondition"),
            std::string::npos);
}

TEST(ServeEngineTest, StatsPingShutdown) {
  Engine engine;
  const Frame pong = engine.handle(Frame{FrameType::kPing, 5, 0, {}});
  EXPECT_EQ(pong.type, FrameType::kPong);
  EXPECT_EQ(pong.id, 5u);

  const Frame stats = engine.handle(Frame{FrameType::kStatsRequest, 6, 0, {}});
  ASSERT_EQ(stats.type, FrameType::kReplyOk);
  EXPECT_NE(stats.payload.find("op stats"), std::string::npos);
  EXPECT_NE(stats.payload.find("requests 2"), std::string::npos);

  EXPECT_FALSE(engine.shutdown_requested());
  const Frame bye = engine.handle(Frame{FrameType::kShutdown, 7, 0, {}});
  EXPECT_EQ(bye.type, FrameType::kReplyOk);
  EXPECT_TRUE(engine.shutdown_requested());
}

TEST(ServeEngineTest, ReplyTypeSentAsRequestIsAnError) {
  Engine engine;
  const Frame reply = engine.handle(Frame{FrameType::kPong, 1, 0, {}});
  EXPECT_EQ(reply.type, FrameType::kReplyError);
}

TEST(ServeEngineTest, HandleManyMatchesSequentialHandling) {
  const net::SensorNetwork a = test_network(20);
  const net::SensorNetwork b = test_network(21, 40);
  std::vector<Frame> requests = {
      plan_frame(1, a), plan_frame(2, b), plan_frame(3, a),
      Frame{FrameType::kPing, 4, 0, {}}};
  Engine batch;
  const std::vector<Frame> replies = batch.handle_many(requests);
  ASSERT_EQ(replies.size(), requests.size());
  Engine sequential;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Frame expected = sequential.handle(requests[i]);
    EXPECT_EQ(replies[i].type, expected.type) << i;
    EXPECT_EQ(replies[i].id, expected.id) << i;
    EXPECT_EQ(replies[i].payload, expected.payload) << i;
  }
}

TEST(ServeEngineTest, RunReportCarriesLifetimeCounters) {
  Engine engine;
  (void)engine.handle(plan_frame(1, test_network(30)));
  (void)engine.handle(plan_frame(1, test_network(30)));
  const obs::RunReport report = engine.run_report();
  EXPECT_EQ(report.command, "serve");
  bool found = false;
  for (const auto& gauge : report.gauges) {
    if (gauge.name == "serve.hits_exact") {
      EXPECT_DOUBLE_EQ(gauge.value, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ServeEngineTest, CacheCapacityZeroAlwaysPlansCold) {
  Engine engine(EngineOptions{0});
  const net::SensorNetwork network = test_network(31);
  const Frame first = engine.handle(plan_frame(1, network));
  const Frame second = engine.handle(plan_frame(2, network));
  EXPECT_EQ(first.flags & kFlagCacheMask, kFlagCacheMiss);
  EXPECT_EQ(second.flags & kFlagCacheMask, kFlagCacheMiss);
  EXPECT_EQ(first.payload, second.payload);  // still deterministic
}

}  // namespace
}  // namespace mdg::serve

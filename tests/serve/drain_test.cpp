// Drain semantics: the shutdown frame and request_drain() (what the
// SIGTERM handler calls) both complete in-flight work, refuse nothing
// silently, exit 0, and leave a loadable cache snapshot behind — the
// graceful half of the crash-recovery contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "net/deployment.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

net::SensorNetwork test_network(std::uint64_t seed, std::size_t n = 40) {
  Rng rng(seed);
  return net::make_uniform_network(n, 150.0, 28.0, rng);
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("mdg_drain_test_") + name))
      .string();
}

/// Reads every reply frame out of `bytes`.
std::vector<Frame> parse_replies(const std::string& bytes) {
  std::istringstream in(bytes);
  std::vector<Frame> replies;
  while (true) {
    auto frame = read_frame(in);
    if (!frame.is_ok() || !frame.value().has_value()) {
      break;
    }
    replies.push_back(std::move(**frame));
  }
  return replies;
}

class DrainTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_drain_for_tests(); }
  void TearDown() override { reset_drain_for_tests(); }
};

TEST_F(DrainTest, ShutdownFrameCompletesInFlightWorkAndSnapshots) {
  const std::string path = temp_path("shutdown");
  std::remove(path.c_str());
  ServerOptions options;
  options.snapshot_path = path;
  Server server(options);

  const net::SensorNetwork network = test_network(21);
  const Frame plan =
      Frame{FrameType::kPlanRequest, 1, 0, build_plan_request({}, network)};
  std::ostringstream requests;
  write_frame(requests, plan);
  write_frame(requests, Frame{FrameType::kShutdown, 2, 0, ""});
  // A request after shutdown must not be served: the stream stops at
  // the shutdown frame, not at EOF.
  write_frame(requests, Frame{FrameType::kPing, 3, 0, ""});

  std::istringstream in(requests.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stdio(in, out), 0);

  const std::vector<Frame> replies = parse_replies(out.str());
  ASSERT_EQ(replies.size(), 2u);  // plan answered, shutdown acked, ping not
  EXPECT_EQ(replies[0].type, FrameType::kReplyOk);
  EXPECT_EQ(replies[0].id, 1u);
  EXPECT_EQ(replies[1].id, 2u);

  // The graceful exit left a snapshot a fresh server can warm from,
  // and the restored entry serves the cold bytes.
  Server revived(options);
  const auto restored = revived.load_snapshot();
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 1u);
  const Frame hit = revived.engine().handle(plan);
  EXPECT_EQ(hit.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(hit.payload, replies[0].payload);
  std::remove(path.c_str());
}

TEST_F(DrainTest, RequestDrainStopsBetweenRequestsWithExitZeroAndSnapshot) {
  const std::string path = temp_path("sigterm");
  std::remove(path.c_str());
  ServerOptions options;
  options.snapshot_path = path;
  Server server(options);

  // Seed the cache before the drain so the snapshot has content.
  const net::SensorNetwork network = test_network(22);
  const Frame plan =
      Frame{FrameType::kPlanRequest, 1, 0, build_plan_request({}, network)};
  const Frame cold = server.engine().handle(plan);
  ASSERT_EQ(cold.type, FrameType::kReplyOk);

  // The flag a SIGTERM handler raises: the loop exits cleanly before
  // reading the next request, even though input is still pending.
  request_drain();
  std::ostringstream requests;
  write_frame(requests, Frame{FrameType::kPing, 9, 0, ""});
  std::istringstream in(requests.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stdio(in, out), 0);
  EXPECT_TRUE(parse_replies(out.str()).empty());

  Server revived(options);
  const auto restored = revived.load_snapshot();
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 1u);
  std::remove(path.c_str());
}

TEST_F(DrainTest, ProtocolErrorExitsThreeWithoutASnapshot) {
  const std::string path = temp_path("no_snapshot_on_error");
  std::remove(path.c_str());
  ServerOptions options;
  options.snapshot_path = path;
  Server server(options);
  // Seed the cache: even with content to persist, a non-graceful exit
  // must not write the snapshot (the file could be mid-corruption).
  const Frame cold = server.engine().handle(Frame{
      FrameType::kPlanRequest, 1, 0, build_plan_request({}, test_network(23))});
  ASSERT_EQ(cold.type, FrameType::kReplyOk);

  std::istringstream in("garbage that is not a frame");
  std::ostringstream out;
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(server.serve_stdio(in, out), 3);
  const std::string diagnostic = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(diagnostic.find("protocol error"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace mdg::serve

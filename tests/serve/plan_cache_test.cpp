#include "serve/plan_cache.h"

#include <gtest/gtest.h>

namespace mdg::serve {
namespace {

CachedPlan plan_named(const std::string& payload) {
  CachedPlan plan;
  plan.reply_payload = payload;
  return plan;
}

TEST(PlanCacheTest, FnvIsStableAndNeverReturnsTheSentinel) {
  // Pinned so cache keys stay comparable across builds.
  EXPECT_EQ(fnv1a64("mdg"), 0x08195a19177583c9ull);
  EXPECT_NE(fnv1a64(""), PlanCache::kNoKey);
}

TEST(PlanCacheTest, RawAndCanonicalLookups) {
  PlanCache cache(4);
  cache.insert(10, 20, 30, plan_named("reply-a"));
  ASSERT_NE(cache.find_raw(10), nullptr);
  EXPECT_EQ(cache.find_raw(10)->reply_payload, "reply-a");
  ASSERT_NE(cache.find_canonical(20), nullptr);
  ASSERT_NE(cache.find_warm(30), nullptr);
  EXPECT_EQ(cache.find_raw(99), nullptr);
  EXPECT_EQ(cache.find_canonical(99), nullptr);
  EXPECT_EQ(cache.find_warm(99), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, AliasRegistersASecondRawSpelling) {
  PlanCache cache(4);
  cache.insert(10, 20, PlanCache::kNoKey, plan_named("reply-a"));
  cache.alias_raw(11, 20);
  ASSERT_NE(cache.find_raw(11), nullptr);
  EXPECT_EQ(cache.find_raw(11)->reply_payload, "reply-a");
  EXPECT_EQ(cache.size(), 1u);
  // Aliasing a missing canonical key is a no-op.
  cache.alias_raw(12, 999);
  EXPECT_EQ(cache.find_raw(12), nullptr);
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  PlanCache cache(2);
  cache.insert(1, 101, PlanCache::kNoKey, plan_named("a"));
  cache.insert(2, 102, PlanCache::kNoKey, plan_named("b"));
  // Touch "a" so "b" is the LRU victim.
  ASSERT_NE(cache.find_raw(1), nullptr);
  cache.insert(3, 103, PlanCache::kNoKey, plan_named("c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find_raw(1), nullptr);
  EXPECT_EQ(cache.find_raw(2), nullptr);
  EXPECT_EQ(cache.find_canonical(102), nullptr);
  EXPECT_NE(cache.find_raw(3), nullptr);
}

TEST(PlanCacheTest, EvictionDropsAliasesAndWarmIndex) {
  PlanCache cache(1);
  cache.insert(1, 101, 201, plan_named("a"));
  cache.alias_raw(11, 101);
  cache.insert(2, 102, 202, plan_named("b"));
  EXPECT_EQ(cache.find_raw(1), nullptr);
  EXPECT_EQ(cache.find_raw(11), nullptr);
  EXPECT_EQ(cache.find_warm(201), nullptr);
  EXPECT_NE(cache.find_warm(202), nullptr);
}

TEST(PlanCacheTest, NewestDonorWinsTheWarmIndex) {
  PlanCache cache(4);
  cache.insert(1, 101, 200, plan_named("older"));
  cache.insert(2, 102, 200, plan_named("newer"));
  ASSERT_NE(cache.find_warm(200), nullptr);
  EXPECT_EQ(cache.find_warm(200)->reply_payload, "newer");
  // Evicting the newer entry must not leave a dangling warm pointer;
  // the older entry simply no longer serves warm hits.
  ASSERT_NE(cache.find_raw(1), nullptr);   // older is now MRU
  cache.insert(3, 103, PlanCache::kNoKey, plan_named("c"));
  cache.insert(4, 104, PlanCache::kNoKey, plan_named("d"));
  cache.insert(5, 105, PlanCache::kNoKey, plan_named("e"));
  EXPECT_EQ(cache.find_warm(200), nullptr);
}

TEST(PlanCacheTest, DuplicateCanonicalInsertKeepsTheFirstEntry) {
  PlanCache cache(4);
  cache.insert(1, 101, PlanCache::kNoKey, plan_named("first"));
  cache.insert(2, 101, PlanCache::kNoKey, plan_named("racer"));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.find_raw(2), nullptr);
  EXPECT_EQ(cache.find_raw(2)->reply_payload, "first");
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.insert(1, 101, 201, plan_named("a"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find_raw(1), nullptr);
}

TEST(PlanCacheTest, NoKeyNeverMatches) {
  PlanCache cache(4);
  cache.insert(1, PlanCache::kNoKey, PlanCache::kNoKey, plan_named("a"));
  EXPECT_EQ(cache.find_canonical(PlanCache::kNoKey), nullptr);
  EXPECT_EQ(cache.find_warm(PlanCache::kNoKey), nullptr);
  EXPECT_EQ(cache.find_raw(PlanCache::kNoKey), nullptr);
}

}  // namespace
}  // namespace mdg::serve

// Concurrent clients hammering one Engine with mixed hits and misses.
// Runs under the normal suite and therefore under the TSan CI job —
// the cache, the counters, and the shared thread pool must all be
// data-race free.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/deployment.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

TEST(ServeEngineConcurrencyTest, EightClientsMixedHitsAndMisses) {
  Engine engine;

  // Four distinct small instances -> four cold plans, everything else
  // cache hits, interleaved across threads.
  std::vector<std::string> payloads;
  std::vector<std::string> expected;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const net::SensorNetwork network =
        net::make_uniform_network(30, 100.0, 25.0, rng);
    payloads.push_back(build_plan_request({}, network));
  }
  // Reference replies from a separate, single-threaded engine.
  {
    Engine reference;
    for (const std::string& payload : payloads) {
      const Frame reply =
          reference.handle(Frame{FrameType::kPlanRequest, 0, 0, payload});
      ASSERT_EQ(reply.type, FrameType::kReplyOk);
      expected.push_back(reply.payload);
    }
  }

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRequestsPerThread = 12;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = 0; r < kRequestsPerThread; ++r) {
        const std::size_t which = (t + r) % payloads.size();
        const Frame reply = engine.handle(
            Frame{FrameType::kPlanRequest,
                  static_cast<std::uint32_t>(t * 100 + r), 0,
                  payloads[which]});
        if (reply.type != FrameType::kReplyOk ||
            reply.payload != expected[which]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Sprinkle in stats and pings to exercise the other paths.
        if (r % 5 == 0) {
          (void)engine.handle(
              Frame{FrameType::kStatsRequest,
                    static_cast<std::uint32_t>(t * 100 + r), 0, {}});
        }
        if (r % 7 == 0) {
          (void)engine.handle(Frame{
              FrameType::kPing, static_cast<std::uint32_t>(t * 100 + r),
              0, {}});
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }

  EXPECT_EQ(mismatches.load(), 0u);
  const EngineStats stats = engine.stats();
  const std::uint64_t plans = kThreads * kRequestsPerThread;
  EXPECT_EQ(stats.hits_exact + stats.hits_warm + stats.misses, plans);
  // After a thread's own first request for a payload completes, the
  // cache holds that payload, so at most the first |payloads| requests
  // of each thread can miss — everything after is an exact hit.
  EXPECT_GE(stats.hits_exact, plans - kThreads * payloads.size());
  EXPECT_GE(stats.misses, payloads.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache_entries, payloads.size());
}

}  // namespace
}  // namespace mdg::serve

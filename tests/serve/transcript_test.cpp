// Replays the checked-in request transcript through the stdio server
// and compares the reply stream byte-for-byte against the committed
// golden. Safe across CI jobs because plans are byte-deterministic at
// any MDG_THREADS, obs on/off, and portable vs -DMDG_NATIVE builds.
// Regenerate with:
//   mdg_serve make-transcript --net tests/serve/transcript/net.txt \
//       --out tests/serve/transcript/requests.bin
//   mdg_serve run --stdio < requests.bin > replies.golden.bin
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "serve/protocol.h"
#include "serve/server.h"

namespace mdg::serve {
namespace {

std::string transcript_file(const std::string& name) {
  const std::string path =
      std::string(MDG_ROOT_DIR) + "/tests/serve/transcript/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ServeTranscriptTest, RepliesMatchTheCommittedGoldenByteForByte) {
  const std::string requests = transcript_file("requests.bin");
  const std::string golden = transcript_file("replies.golden.bin");
  ASSERT_FALSE(requests.empty());
  ASSERT_FALSE(golden.empty());

  std::istringstream in(requests);
  std::ostringstream out;
  Server server;
  // The transcript ends with a shutdown frame after one deliberately
  // malformed payload; the session still exits cleanly.
  EXPECT_EQ(server.serve_stdio(in, out), 0);
  EXPECT_EQ(out.str(), golden)
      << "reply stream drifted from tests/serve/transcript/"
         "replies.golden.bin — if the change is intentional, regenerate "
         "the golden (see the header of this file)";
}

TEST(ServeTranscriptTest, TranscriptExercisesTheInterestingReplies) {
  // Guard against the golden silently degenerating: it must contain a
  // pong, a cold plan, an exact cache hit, a stats reply, exactly one
  // error reply, and a shutdown acknowledgement.
  std::istringstream in(transcript_file("replies.golden.bin"));
  std::size_t ok = 0, errors = 0, pongs = 0, exact_hits = 0;
  while (true) {
    auto frame = read_frame(in);
    ASSERT_TRUE(frame.is_ok()) << frame.status().message();
    if (!frame.value().has_value()) {
      break;
    }
    const Frame& reply = **frame;
    switch (reply.type) {
      case FrameType::kReplyOk:
        ++ok;
        if ((reply.flags & kFlagCacheMask) == kFlagCacheExact) {
          ++exact_hits;
        }
        break;
      case FrameType::kReplyError:
        ++errors;
        break;
      case FrameType::kPong:
        ++pongs;
        break;
      default:
        FAIL() << "unexpected reply type in golden: "
               << frame_type_name(reply.type);
    }
  }
  EXPECT_EQ(pongs, 1u);
  EXPECT_EQ(errors, 1u);
  EXPECT_GE(ok, 4u);  // cold plan, cached plan, stats, shutdown ack
  EXPECT_EQ(exact_hits, 1u);
}

}  // namespace
}  // namespace mdg::serve

// Crash-recoverable cache snapshots: round-trip fidelity, fail-closed
// parsing of torn/corrupt/stale files, the verify-gated restore path,
// and the byte-identity contract across a simulated restart.
#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/deployment.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

net::SensorNetwork test_network(std::uint64_t seed, std::size_t n = 40) {
  Rng rng(seed);
  return net::make_uniform_network(n, 150.0, 28.0, rng);
}

Frame plan_frame(std::uint32_t id, const net::SensorNetwork& network,
                 PlanRequestOptions options = {}) {
  return Frame{FrameType::kPlanRequest, id, 0,
               build_plan_request(options, network)};
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("mdg_snapshot_test_") + name))
      .string();
}

std::vector<SnapshotEntry> sample_entries() {
  return {{"request one", "reply one"},
          {"", ""},
          {"request\nwith\nnewlines", "reply\nwith\nnewlines"}};
}

TEST(SnapshotTest, BuildParseRoundTripPreservesEveryByte) {
  const std::vector<SnapshotEntry> entries = sample_entries();
  const auto parsed = parse_snapshot(build_snapshot(entries));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*parsed)[i].request_payload, entries[i].request_payload);
    EXPECT_EQ((*parsed)[i].reply_payload, entries[i].reply_payload);
  }
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  const auto parsed = parse_snapshot(build_snapshot({}));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed->empty());
}

TEST(SnapshotTest, TornFilesFailClosedAsDataLoss) {
  const std::string good = build_snapshot(sample_entries());
  // Every truncation point must read as data loss (torn write), never
  // parse, never crash — including cutting the checksum line itself.
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, good.size() / 2,
                          good.size() - 2, good.size() - 1}) {
    SCOPED_TRACE(cut);
    const auto parsed = parse_snapshot(good.substr(0, cut));
    ASSERT_FALSE(parsed.is_ok());
    EXPECT_EQ(parsed.status().code(), core::StatusCode::kDataLoss)
        << parsed.status().to_string();
  }
}

TEST(SnapshotTest, BitRotFailsTheChecksum) {
  std::string bytes = build_snapshot(sample_entries());
  // Flip one payload byte; lengths and structure stay plausible, so
  // only the checksum can catch it.
  const std::size_t at = bytes.find("request one");
  ASSERT_NE(at, std::string::npos);
  bytes[at] ^= 0x20;
  const auto parsed = parse_snapshot(bytes);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), core::StatusCode::kDataLoss);
}

TEST(SnapshotTest, WrongMagicAndStaleBuildAreInvalidArgument) {
  const auto bad_magic = parse_snapshot("mdg-cache-snapshot 2\n");
  ASSERT_FALSE(bad_magic.is_ok());
  EXPECT_EQ(bad_magic.status().code(), core::StatusCode::kInvalidArgument);

  // A snapshot written by a different build must read as stale (its
  // replies might not be byte-identical under this code). The build
  // line is checked before the checksum, so tampering with it alone is
  // a faithful simulation.
  std::string stale = build_snapshot(sample_entries());
  const std::size_t build_at = stale.find("build ");
  ASSERT_NE(build_at, std::string::npos);
  const std::size_t line_end = stale.find('\n', build_at);
  stale.replace(build_at, line_end - build_at, "build some-other-build");
  const auto parsed = parse_snapshot(stale);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("stale"), std::string::npos);
}

TEST(SnapshotTest, TrailingBytesAfterChecksumAreRejected) {
  const auto parsed = parse_snapshot(build_snapshot({}) + "extra\n");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), core::StatusCode::kDataLoss);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  const auto loaded = load_snapshot(temp_path("definitely_missing"));
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kNotFound);
}

TEST(SnapshotTest, SaveThenLoadRoundTripsThroughDisk) {
  const std::string path = temp_path("roundtrip");
  const std::vector<SnapshotEntry> entries = sample_entries();
  const auto saved = save_snapshot(path, entries);
  ASSERT_TRUE(saved.is_ok()) << saved.status().to_string();
  EXPECT_EQ(saved.value(), entries.size());
  const auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->size(), entries.size());
  // The atomic-write protocol must not leave its temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredEntriesServeByteIdenticalExactHits) {
  // Plan cold on one engine, snapshot it, restore into a fresh engine
  // (the kill-9 + restart shape), and require the restored cache to
  // serve the exact request with the cold reply's bytes.
  Engine donor;
  const net::SensorNetwork network = test_network(11);
  const Frame request = plan_frame(1, network);
  const Frame cold = donor.handle(request);
  ASSERT_EQ(cold.type, FrameType::kReplyOk);
  const std::vector<SnapshotEntry> entries = donor.snapshot_entries();
  ASSERT_EQ(entries.size(), 1u);

  Engine revived;
  EXPECT_EQ(revived.restore_cache(entries), 1u);
  const EngineStats stats = revived.stats();
  EXPECT_EQ(stats.snapshot_restored, 1u);
  EXPECT_EQ(stats.snapshot_dropped, 0u);
  EXPECT_EQ(stats.cache_entries, 1u);
  const Frame hit = revived.handle(request);
  ASSERT_EQ(hit.type, FrameType::kReplyOk);
  EXPECT_EQ(hit.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(hit.payload, cold.payload);
}

TEST(SnapshotTest, RestoreDropsEntriesThatFailTheGates) {
  Engine donor;
  const net::SensorNetwork network = test_network(12);
  (void)donor.handle(plan_frame(1, network));
  std::vector<SnapshotEntry> entries = donor.snapshot_entries();
  ASSERT_EQ(entries.size(), 1u);

  // A hostile or rotted snapshot can carry entries whose request does
  // not parse, whose reply is not a solution, or whose solution fails
  // verification — every one must be dropped, counted, and survived.
  std::vector<SnapshotEntry> poisoned = entries;
  poisoned.push_back({"not a plan request", entries[0].reply_payload});
  poisoned.push_back({entries[0].request_payload, "not a plan reply"});
  // A verifiable-looking reply for the wrong network: swap in another
  // instance's reply so check_solution fails.
  Engine other_donor;
  (void)other_donor.handle(plan_frame(2, test_network(13, 60)));
  const std::vector<SnapshotEntry> other = other_donor.snapshot_entries();
  ASSERT_EQ(other.size(), 1u);
  poisoned.push_back({entries[0].request_payload, other[0].reply_payload});

  Engine revived;
  EXPECT_EQ(revived.restore_cache(poisoned), 1u);
  const EngineStats stats = revived.stats();
  EXPECT_EQ(stats.snapshot_restored, 1u);
  EXPECT_EQ(stats.snapshot_dropped, 3u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST(SnapshotTest, ServerSaveAndLoadUseTheConfiguredPath) {
  const std::string path = temp_path("server");
  ServerOptions options;
  options.snapshot_path = path;
  Server writer(options);
  const net::SensorNetwork network = test_network(14);
  const Frame request = plan_frame(1, network);
  const Frame cold = writer.engine().handle(request);
  ASSERT_EQ(cold.type, FrameType::kReplyOk);
  const auto saved = writer.save_snapshot();
  ASSERT_TRUE(saved.is_ok()) << saved.status().to_string();
  EXPECT_EQ(saved.value(), 1u);

  Server reader(options);
  const auto restored = reader.load_snapshot();
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 1u);
  const Frame hit = reader.engine().handle(request);
  EXPECT_EQ(hit.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(hit.payload, cold.payload);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ServerWithoutAPathIsANoOp) {
  Server server;
  const auto saved = server.save_snapshot();
  ASSERT_TRUE(saved.is_ok());
  EXPECT_EQ(saved.value(), 0u);
  const auto loaded = server.load_snapshot();
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value(), 0u);
}

TEST(SnapshotTest, CorruptedFileOnDiskLoadsAsAnErrorNotACrash) {
  const std::string path = temp_path("corrupt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "mdg-cache-snapshot 1\nbuild unknown\nentries 9999999\n";
  }
  ServerOptions options;
  options.snapshot_path = path;
  Server server(options);
  const auto loaded = server.load_snapshot();
  ASSERT_FALSE(loaded.is_ok());
  // Callers log and cold-start; the engine must be untouched.
  EXPECT_EQ(server.engine().stats().cache_entries, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdg::serve

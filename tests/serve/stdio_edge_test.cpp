// stdio-stream edge cases: EOF mid-frame and zero-length payloads must
// produce a clean exit-3 diagnostic (or a normal reply), never a hang
// — plus a replay of the serve fuzz corpus through the full stdio
// loop, pinning the exit-code contract the CI oracle job asserts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"

namespace mdg::serve {
namespace {

std::string corpus_file(const std::string& name) {
  const std::string path = std::string(MDG_CORPUS_DIR) + "/serve/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs the stdio server over `input`; returns (exit code, reply bytes,
/// stderr text). Every read is from an in-memory stream, so a hang
/// fails by test timeout instead of wedging forever.
struct StdioRun {
  int exit_code;
  std::string replies;
  std::string diagnostic;
};

StdioRun run_stdio(const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  Server server;
  ::testing::internal::CaptureStderr();
  const int exit_code = server.serve_stdio(in, out);
  return {exit_code, out.str(), ::testing::internal::GetCapturedStderr()};
}

std::vector<Frame> parse_replies(const std::string& bytes) {
  std::istringstream in(bytes);
  std::vector<Frame> frames;
  while (true) {
    auto frame = read_frame(in);
    if (!frame.is_ok() || !frame.value().has_value()) {
      break;
    }
    frames.push_back(std::move(**frame));
  }
  return frames;
}

TEST(ServeStdioEdgeTest, ZeroLengthPayloadFramesAreServedNormally) {
  std::string input;
  input += frame_bytes(Frame{FrameType::kPing, 1, 0, ""});
  input += frame_bytes(Frame{FrameType::kStatsRequest, 2, 0, ""});
  // A zero-length payload on a type that requires a body is a semantic
  // error reply, not a framing error: the stream stays synchronized.
  input += frame_bytes(Frame{FrameType::kPlanRequest, 3, 0, ""});
  input += frame_bytes(Frame{FrameType::kPing, 4, 0, ""});
  const StdioRun run = run_stdio(input);
  EXPECT_EQ(run.exit_code, 0);
  const std::vector<Frame> replies = parse_replies(run.replies);
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0].type, FrameType::kPong);
  EXPECT_EQ(replies[1].type, FrameType::kReplyOk);
  EXPECT_EQ(replies[2].type, FrameType::kReplyError);
  EXPECT_EQ(replies[3].type, FrameType::kPong);
}

TEST(ServeStdioEdgeTest, EofMidHeaderExitsThreeWithADiagnostic) {
  // 11 of the 20 header bytes, then EOF: the regression this pins is
  // "clean exit 3 with a stderr diagnostic, never a hang".
  const std::string partial =
      frame_bytes(Frame{FrameType::kPing, 1, 0, ""}).substr(0, 11);
  const StdioRun run = run_stdio(partial);
  EXPECT_EQ(run.exit_code, 3);
  EXPECT_NE(run.diagnostic.find("protocol error"), std::string::npos);
  EXPECT_NE(run.diagnostic.find("truncated"), std::string::npos);
  const std::vector<Frame> replies = parse_replies(run.replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kReplyError);
  EXPECT_NE(replies[0].payload.find("code data-loss"), std::string::npos);
}

TEST(ServeStdioEdgeTest, EofMidPayloadExitsThreeWithADiagnostic) {
  std::string bytes =
      frame_bytes(Frame{FrameType::kPlanRequest, 7, 0, "some payload text"});
  bytes.resize(bytes.size() - 4);  // header intact, payload cut short
  const StdioRun run = run_stdio(bytes);
  EXPECT_EQ(run.exit_code, 3);
  EXPECT_NE(run.diagnostic.find("protocol error"), std::string::npos);
}

TEST(ServeStdioEdgeTest, ValidAfterValidThenEofMidFrameStillAnswersTheFirst) {
  // The good frame is answered before the stream dies: no reply is
  // dropped just because a later frame is torn.
  std::string input = frame_bytes(Frame{FrameType::kPing, 1, 0, ""});
  input += frame_bytes(Frame{FrameType::kPing, 2, 0, ""}).substr(0, 7);
  const StdioRun run = run_stdio(input);
  EXPECT_EQ(run.exit_code, 3);
  const std::vector<Frame> replies = parse_replies(run.replies);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, FrameType::kPong);
  EXPECT_EQ(replies[0].id, 1u);
  EXPECT_EQ(replies[1].type, FrameType::kReplyError);
}

TEST(ServeStdioEdgeTest, ServeCorpusExitCodesMatchTheOracleContract) {
  // Every corrupt_* entry in the serve fuzz corpus must exit 3 through
  // the stdio loop (framing or mid-frame EOF), every valid_* entry
  // exit 0 — the same assertion CI's oracle job makes against the
  // installed binary.
  const std::filesystem::path dir =
      std::filesystem::path(MDG_CORPUS_DIR) / "serve";
  std::size_t corrupt_seen = 0;
  std::size_t valid_seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);
    const StdioRun run = run_stdio(corpus_file(name));
    if (name.rfind("corrupt_", 0) == 0) {
      // corrupt_plan_payload is a well-framed frame whose payload is
      // rejected semantically: error reply, stream stays alive, exit 0.
      if (name == "corrupt_plan_payload.bin") {
        EXPECT_EQ(run.exit_code, 0);
      } else {
        EXPECT_EQ(run.exit_code, 3);
        EXPECT_NE(run.diagnostic.find("protocol error"), std::string::npos);
      }
      ++corrupt_seen;
    } else if (name.rfind("valid_", 0) == 0) {
      EXPECT_EQ(run.exit_code, 0);
      ++valid_seen;
    }
  }
  EXPECT_GE(corrupt_seen, 5u);
  EXPECT_GE(valid_seen, 2u);
}

}  // namespace
}  // namespace mdg::serve

// Relay budgets through the serving engine: a d != 1 plan is served by
// the relay planner, never aliases the legacy cache entry for the same
// network, and the delta path refuses relayed bases outright.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/delta.h"
#include "core/instance.h"
#include "core/relay_hop_planner.h"
#include "io/serialize.h"
#include "net/deployment.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "util/rng.h"
#include "verify/check.h"

namespace mdg::serve {
namespace {

net::SensorNetwork test_network(std::uint64_t seed, std::size_t n = 50) {
  Rng rng(seed);
  return net::make_uniform_network(n, 150.0, 28.0, rng);
}

Frame plan_frame(std::uint32_t id, const net::SensorNetwork& network,
                 PlanRequestOptions options = {}) {
  return Frame{FrameType::kPlanRequest, id, 0,
               build_plan_request(options, network)};
}

core::ShdgpSolution solution_of(const std::string& payload) {
  std::istringstream in(payload.substr(
      payload.find("op plan\n") + std::string("op plan\n").size()));
  return io::read_solution(in);
}

TEST(ServeEngineRelayTest, RelayedPlanMatchesDirectLibraryCall) {
  Engine engine;
  const net::SensorNetwork network = test_network(1);
  PlanRequestOptions options;
  options.planner = "relay";
  options.relay_hops = 2;
  const Frame reply = engine.handle(plan_frame(1, network, options));
  ASSERT_EQ(reply.type, FrameType::kReplyOk);
  const core::ShdgpInstance instance(network);
  core::RelayHopPlannerOptions direct_options;
  direct_options.relay_hops = 2;
  const core::ShdgpSolution direct =
      core::RelayHopPlanner(direct_options).plan(instance);
  EXPECT_EQ(reply.payload, "mdg-reply 1\nop plan\n" + io::to_text(direct));
  const core::ShdgpSolution served = solution_of(reply.payload);
  EXPECT_EQ(served.relay_hops, 2u);
  EXPECT_TRUE(verify::check_solution(instance, served).is_ok());
}

TEST(ServeEngineRelayTest, BudgetsNeverAliasInTheCache) {
  Engine engine;
  const net::SensorNetwork network = test_network(2);
  // Same planner, same network — the budget is the ONLY difference, so
  // this pins the relay-hops line in the engine's options fingerprint.
  PlanRequestOptions legacy_options;
  legacy_options.planner = "relay";
  PlanRequestOptions relayed = legacy_options;
  relayed.relay_hops = 2;
  const Frame legacy = engine.handle(plan_frame(1, network, legacy_options));
  const Frame deep = engine.handle(plan_frame(2, network, relayed));
  ASSERT_EQ(legacy.type, FrameType::kReplyOk);
  ASSERT_EQ(deep.type, FrameType::kReplyOk);
  // The d = 2 request after a d = 1 plan of the same network is a
  // cache miss with its own bytes — never an exact or warm hit.
  EXPECT_EQ(deep.flags & kFlagCacheMask, kFlagCacheMiss);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits_exact, 0u);
  EXPECT_EQ(stats.hits_warm, 0u);
  // Replaying each request now hits its own entry, bytes intact.
  EXPECT_EQ(engine.handle(plan_frame(3, network, legacy_options)).payload,
            legacy.payload);
  const Frame deep_hit = engine.handle(plan_frame(4, network, relayed));
  EXPECT_EQ(deep_hit.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(deep_hit.payload, deep.payload);
}

TEST(ServeEngineRelayTest, DeltaPathRefusesRelayedBases) {
  Engine engine;
  const net::SensorNetwork network = test_network(3);
  core::Delta delta;
  delta.ops.push_back(core::DeltaOp::remove_sensor(0));
  PlanRequestOptions options;
  options.planner = "relay";
  options.relay_hops = 2;
  const Frame reply = engine.handle(
      Frame{FrameType::kDeltaRequest, 9, 0,
            build_delta_request(options, network, delta)});
  ASSERT_EQ(reply.type, FrameType::kReplyError);
  EXPECT_NE(reply.payload.find("relay-hops"), std::string::npos);
  EXPECT_EQ(engine.stats().errors, 1u);
}

}  // namespace
}  // namespace mdg::serve

// The delta-request path: incremental repair against cached and cold
// base plans, the delta-namespace cache, reply flags, counters, and
// error taxonomy (docs/SERVE.md §Delta request payload).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/delta.h"
#include "core/greedy_cover_planner.h"
#include "core/instance.h"
#include "io/serialize.h"
#include "net/deployment.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "util/rng.h"
#include "verify/check.h"

namespace mdg::serve {
namespace {

net::SensorNetwork test_network(std::uint64_t seed, std::size_t n = 50) {
  Rng rng(seed);
  return net::make_uniform_network(n, 150.0, 28.0, rng);
}

core::Delta test_delta(const net::SensorNetwork& network) {
  core::Delta delta;
  delta.ops.push_back(core::DeltaOp::remove_sensor(3));
  delta.ops.push_back(
      core::DeltaOp::add_sensor({network.field().hi.x * 0.5,
                                 network.field().hi.y * 0.5}));
  return delta;
}

Frame delta_frame(std::uint32_t id, const net::SensorNetwork& network,
                  const core::Delta& delta, PlanRequestOptions options = {}) {
  return Frame{FrameType::kDeltaRequest, id, 0,
               build_delta_request(options, network, delta)};
}

/// Parses the repaired solution out of a delta reply payload.
core::ShdgpSolution solution_of(const std::string& payload) {
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line) && line != "solution") {
  }
  return io::read_solution(in);
}

TEST(ServeEngineDeltaTest, RepairsAgainstACachedBasePlan) {
  Engine engine;
  const net::SensorNetwork network = test_network(1);
  const core::Delta delta = test_delta(network);

  // Prime the plan cache, then send the delta: only the repair runs.
  const Frame plan_reply = engine.handle(
      Frame{FrameType::kPlanRequest, 1, 0,
            build_plan_request({}, network)});
  ASSERT_EQ(plan_reply.type, FrameType::kReplyOk);
  const Frame reply = engine.handle(delta_frame(2, network, delta));
  ASSERT_EQ(reply.type, FrameType::kReplyOk);
  EXPECT_EQ(reply.flags & kFlagCacheMask, kFlagCacheRepaired);

  // The repaired plan is valid against the post-delta instance.
  core::DynamicInstance dyn(network);
  core::ShdgpSolution expected =
      core::GreedyCoverPlanner().plan(dyn.instance());
  ASSERT_TRUE(core::apply_delta(dyn, delta, expected).is_ok());
  const core::ShdgpSolution repaired = solution_of(reply.payload);
  EXPECT_TRUE(verify::check_solution(dyn.instance(), repaired).is_ok());
  EXPECT_EQ(io::to_text(repaired), io::to_text(expected));

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.delta_requests, 1u);
  EXPECT_EQ(stats.delta_repaired, 1u);
  EXPECT_EQ(stats.delta_base_plans, 0u);
}

TEST(ServeEngineDeltaTest, ColdBasePlanIsPlannedOnceAndDonatedToThePlanPath) {
  Engine engine;
  const net::SensorNetwork network = test_network(2);
  const core::Delta delta = test_delta(network);

  const Frame reply = engine.handle(delta_frame(1, network, delta));
  ASSERT_EQ(reply.type, FrameType::kReplyOk);
  EXPECT_EQ(reply.flags & kFlagCacheMask, kFlagCacheMiss);
  EXPECT_EQ(engine.stats().delta_base_plans, 1u);

  // The base plan it computed now answers a plain plan request as an
  // exact (canonical) cache hit with the cold plan's bytes.
  const Frame plan_reply = engine.handle(
      Frame{FrameType::kPlanRequest, 2, 0,
            build_plan_request({}, network)});
  ASSERT_EQ(plan_reply.type, FrameType::kReplyOk);
  EXPECT_EQ(plan_reply.flags & kFlagCacheMask, kFlagCacheExact);
  const core::ShdgpSolution direct =
      core::GreedyCoverPlanner().plan(core::ShdgpInstance(network));
  EXPECT_EQ(plan_reply.payload, "mdg-reply 1\nop plan\n" + io::to_text(direct));
}

TEST(ServeEngineDeltaTest, IdenticalDeltaRequestIsAByteIdenticalExactHit) {
  Engine engine;
  const net::SensorNetwork network = test_network(3);
  const Frame request = delta_frame(5, network, test_delta(network));
  const Frame first = engine.handle(request);
  const Frame second = engine.handle(request);
  ASSERT_EQ(second.type, FrameType::kReplyOk);
  EXPECT_EQ(second.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_EQ(engine.stats().hits_exact, 1u);
}

TEST(ServeEngineDeltaTest, DeltaReplyNeverAnswersAPlanRequest) {
  Engine engine;
  const net::SensorNetwork network = test_network(4);
  const core::Delta delta = test_delta(network);
  (void)engine.handle(delta_frame(1, network, delta));

  // The post-delta network as a plan request must cold-plan (the delta
  // reply lives in its own key namespace and carries repair stats).
  core::DynamicInstance dyn(network);
  core::ShdgpSolution sol = core::GreedyCoverPlanner().plan(dyn.instance());
  ASSERT_TRUE(core::apply_delta(dyn, delta, sol).is_ok());
  const Frame plan_reply = engine.handle(
      Frame{FrameType::kPlanRequest, 2, 0,
            build_plan_request({}, dyn.network())});
  ASSERT_EQ(plan_reply.type, FrameType::kReplyOk);
  // A warm start off the donated base cover is fine; an *exact* hit
  // would mean the delta reply leaked into the plan namespace.
  EXPECT_NE(plan_reply.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(plan_reply.payload.rfind("mdg-reply 1\nop plan\n", 0), 0u);
}

TEST(ServeEngineDeltaTest, MalformedDeltaPayloadIsARecoverableError) {
  Engine engine;
  const Frame reply = engine.handle(
      Frame{FrameType::kDeltaRequest, 9, 0,
            "mdg-request 1\nop delta\ngarbage\n"});
  ASSERT_EQ(reply.type, FrameType::kReplyError);
  EXPECT_NE(reply.payload.find("invalid-argument"), std::string::npos);
  EXPECT_EQ(engine.stats().errors, 1u);
  EXPECT_EQ(engine.stats().delta_requests, 1u);

  // The engine keeps serving.
  const Frame pong = engine.handle(Frame{FrameType::kPing, 10, 0, {}});
  EXPECT_EQ(pong.type, FrameType::kPong);
}

TEST(ServeEngineDeltaTest, InvalidOpIdsMapToInvalidArgument) {
  Engine engine;
  const net::SensorNetwork network = test_network(5);
  core::Delta delta;
  delta.ops.push_back(core::DeltaOp::remove_sensor(network.size() + 10));
  const Frame reply = engine.handle(delta_frame(1, network, delta));
  ASSERT_EQ(reply.type, FrameType::kReplyError);
  EXPECT_NE(reply.payload.find("invalid-argument"), std::string::npos);
}

TEST(ServeEngineDeltaTest, StatsReplyTextIsUnchangedByDeltaTraffic) {
  Engine engine;
  const net::SensorNetwork network = test_network(6);
  (void)engine.handle(delta_frame(1, network, test_delta(network)));
  const Frame stats = engine.handle(Frame{FrameType::kStatsRequest, 2, 0, {}});
  ASSERT_EQ(stats.type, FrameType::kReplyOk);
  // The pre-delta golden transcript pins these bytes: no delta lines.
  EXPECT_EQ(stats.payload.find("delta"), std::string::npos);
  // Delta counters surface through the run report instead.
  const obs::RunReport report = engine.run_report();
  bool found = false;
  for (const auto& gauge : report.gauges) {
    if (gauge.name == "serve.delta_requests") {
      EXPECT_EQ(gauge.value, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ServeDeltaProtocolTest, DeltaRequestRoundTripsThroughTheParser) {
  const net::SensorNetwork network = test_network(7, 12);
  core::Delta delta;
  delta.ops.push_back(core::DeltaOp::move_sensor(4, {1.25, 2.5}));
  delta.ops.push_back(core::DeltaOp::set_range(31.5));
  PlanRequestOptions options;
  options.max_load = 5;
  options.deadline_ms = 250;
  const std::string payload = build_delta_request(options, network, delta);
  const auto parsed = parse_delta_request(payload);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->options.max_load, 5u);
  EXPECT_EQ(parsed->options.deadline_ms, 250u);
  EXPECT_EQ(parsed->network.size(), network.size());
  EXPECT_EQ(parsed->delta.ops, delta.ops);
}

TEST(ServeDeltaProtocolTest, TrailingBytesAfterTheDeltaAreRejected) {
  const net::SensorNetwork network = test_network(8, 10);
  const std::string payload =
      build_delta_request({}, network, test_delta(network)) + "extra\n";
  const auto parsed = parse_delta_request(payload);
  EXPECT_FALSE(parsed.is_ok());
}

}  // namespace
}  // namespace mdg::serve

// Hostile-input hardening: truncated, oversized, and garbage frames —
// and well-framed requests wrapping the PR-5 corrupted network corpus
// — must all map to protocol error replies. Never a crash, never a
// hang, never a partial reply.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace mdg::serve {
namespace {

std::string corpus_file(const std::string& name) {
  const std::string path =
      std::string(MDG_CORPUS_DIR) + "/network/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs the stdio server over `input` and returns (exit code, reply
/// bytes). The loop must terminate — a hang here fails the test by
/// gtest timeout rather than looping forever, because every read is
/// from an in-memory stream.
std::pair<int, std::string> run_stdio(const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  Server server;
  const int exit_code = server.serve_stdio(in, out);
  return {exit_code, out.str()};
}

/// Parses all reply frames from raw bytes.
std::vector<Frame> parse_replies(const std::string& bytes) {
  std::istringstream in(bytes);
  std::vector<Frame> frames;
  while (true) {
    auto frame = read_frame(in);
    if (!frame.is_ok() || !frame.value().has_value()) {
      break;
    }
    frames.push_back(std::move(**frame));
  }
  return frames;
}

TEST(ServeMalformedFrameTest, GarbageBytesGetOneErrorReplyAndExitThree) {
  const auto [exit_code, reply_bytes] =
      run_stdio("this is not a frame at all, just text\n");
  EXPECT_EQ(exit_code, 3);
  const std::vector<Frame> replies = parse_replies(reply_bytes);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kReplyError);
  EXPECT_NE(replies[0].payload.find("code invalid-argument"),
            std::string::npos);
}

TEST(ServeMalformedFrameTest, TruncatedHeaderIsDataLoss) {
  const auto [exit_code, reply_bytes] = run_stdio(std::string("MDG1\x01", 5));
  EXPECT_EQ(exit_code, 3);
  const std::vector<Frame> replies = parse_replies(reply_bytes);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].payload.find("code data-loss"), std::string::npos);
}

TEST(ServeMalformedFrameTest, TruncatedPayloadIsDataLoss) {
  std::string bytes =
      frame_bytes(Frame{FrameType::kPlanRequest, 1, 0, "partial payload"});
  bytes.resize(bytes.size() - 5);
  const auto [exit_code, reply_bytes] = run_stdio(bytes);
  EXPECT_EQ(exit_code, 3);
  const std::vector<Frame> replies = parse_replies(reply_bytes);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].payload.find("code data-loss"), std::string::npos);
}

TEST(ServeMalformedFrameTest, OversizedFrameIsRejectedWithoutAllocating) {
  std::string bytes;
  bytes.append(kMagic, 4);
  const auto put = [&](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      bytes.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  };
  put(1);
  put(1);
  put(0);
  put(0xfffffff0);  // ~4 GiB declared payload
  const auto [exit_code, reply_bytes] = run_stdio(bytes);
  EXPECT_EQ(exit_code, 3);
  const std::vector<Frame> replies = parse_replies(reply_bytes);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].payload.find("code invalid-argument"),
            std::string::npos);
}

TEST(ServeMalformedFrameTest, CorruptedCorpusNetworksBecomeErrorReplies) {
  // Every corrupted network from the verification-harness corpus, sent
  // as a plan-request payload through the full stdio loop. Each gets
  // exactly one error reply and the server keeps serving (exit 0 at
  // EOF, not a protocol error — the *frames* are well-formed).
  const char* kCorrupted[] = {"bad_magic.txt",      "empty.txt",
                              "nan_coord.txt",      "negative_range.txt",
                              "outside_field.txt",  "truncated.txt"};
  std::string input;
  std::uint32_t id = 1;
  for (const char* name : kCorrupted) {
    const std::string request =
        "mdg-request 1\nop plan\nplanner greedy\nmax-load 0\n"
        "multi-start 0\nrefine 0\ndeadline-ms 0\nwarm 1\nnetwork\n" +
        corpus_file(name);
    input += frame_bytes(Frame{FrameType::kPlanRequest, id++, 0, request});
  }
  const auto [exit_code, reply_bytes] = run_stdio(input);
  EXPECT_EQ(exit_code, 0);
  const std::vector<Frame> replies = parse_replies(reply_bytes);
  ASSERT_EQ(replies.size(), std::size(kCorrupted));
  for (std::size_t i = 0; i < replies.size(); ++i) {
    EXPECT_EQ(replies[i].type, FrameType::kReplyError) << kCorrupted[i];
    EXPECT_EQ(replies[i].id, i + 1) << kCorrupted[i];
    EXPECT_NE(replies[i].payload.find("mdg-error 1\n"), std::string::npos)
        << kCorrupted[i];
  }
}

TEST(ServeMalformedFrameTest, ServerKeepsServingAfterAnErrorReply) {
  // garbage payload, then a valid ping: both answered, clean exit.
  std::string input;
  input += frame_bytes(Frame{FrameType::kPlanRequest, 1, 0, "garbage"});
  input += frame_bytes(Frame{FrameType::kPing, 2, 0, {}});
  const auto [exit_code, reply_bytes] = run_stdio(input);
  EXPECT_EQ(exit_code, 0);
  const std::vector<Frame> replies = parse_replies(reply_bytes);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, FrameType::kReplyError);
  EXPECT_EQ(replies[1].type, FrameType::kPong);
}

TEST(ServeMalformedFrameTest, EmptyInputIsACleanExit) {
  const auto [exit_code, reply_bytes] = run_stdio("");
  EXPECT_EQ(exit_code, 0);
  EXPECT_TRUE(reply_bytes.empty());
}

}  // namespace
}  // namespace mdg::serve

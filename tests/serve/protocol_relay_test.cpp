// Relay budget on the serve wire: the "relay-hops" line round-trips,
// is absent at the default budget (so every legacy payload — and its
// cache key — keeps its exact bytes), and out-of-range values are
// rejected before they reach a planner.
#include <gtest/gtest.h>

#include <string>

#include "core/delta.h"
#include "net/deployment.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

net::SensorNetwork tiny_network() {
  Rng rng(11);
  return net::make_uniform_network(12, 60.0, 20.0, rng);
}

TEST(ServeProtocolRelayTest, RelayHopsRoundTripsThroughThePlanRequest) {
  PlanRequestOptions options;
  options.relay_hops = 2;
  const std::string payload = build_plan_request(options, tiny_network());
  EXPECT_NE(payload.find("relay-hops 2\n"), std::string::npos);
  const auto parsed = parse_plan_request(payload);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->options.relay_hops, 2u);
}

TEST(ServeProtocolRelayTest, DefaultBudgetKeepsLegacyPayloadBytes) {
  const net::SensorNetwork network = tiny_network();
  PlanRequestOptions options;
  const std::string payload = build_plan_request(options, network);
  // No relay-hops line at d = 1: the payload (and therefore the raw
  // cache key) is byte-identical to what pre-relay clients sent.
  EXPECT_EQ(payload.find("relay-hops"), std::string::npos);
  const auto parsed = parse_plan_request(payload);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->options.relay_hops, 1u);
}

TEST(ServeProtocolRelayTest, RejectsAnOutOfRangeBudget) {
  PlanRequestOptions options;
  options.relay_hops = 2;
  std::string payload = build_plan_request(options, tiny_network());
  const std::string needle = "relay-hops 2\n";
  payload.replace(payload.find(needle), needle.size(), "relay-hops 99999\n");
  const auto parsed = parse_plan_request(payload);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeProtocolRelayTest, DeltaRequestHeadCarriesTheBudgetToo) {
  PlanRequestOptions options;
  options.relay_hops = 3;
  const std::string payload =
      build_delta_request(options, tiny_network(), core::Delta{});
  EXPECT_NE(payload.find("relay-hops 3\n"), std::string::npos);
  const auto parsed = parse_delta_request(payload);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->options.relay_hops, 3u);
}

TEST(ServeProtocolRelayTest, DistinctBudgetsProduceDistinctPayloads) {
  // The payload doubles as the raw cache key, so a d = 2 plan must
  // never alias the d = 1 plan for the same network.
  const net::SensorNetwork network = tiny_network();
  PlanRequestOptions legacy;
  PlanRequestOptions relayed;
  relayed.relay_hops = 2;
  EXPECT_NE(build_plan_request(legacy, network),
            build_plan_request(relayed, network));
}

}  // namespace
}  // namespace mdg::serve

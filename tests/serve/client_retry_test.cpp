// The retry/backoff client helper: deterministic jittered exponential
// backoff, the server's retry-after hint as a floor, and the failure
// shaping of call_with_retry against ports nobody answers on.
#include "serve/client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/protocol.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

TEST(ClientRetryTest, BackoffIsDeterministicFromTheRngStream) {
  RetryPolicy policy;
  Rng a(77);
  Rng b(77);
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(retry_backoff_ms(policy, attempt, 0, a),
              retry_backoff_ms(policy, attempt, 0, b));
  }
}

TEST(ClientRetryTest, BackoffDoublesWithinJitterBoundsAndCaps) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.max_backoff_ms = 1000;
  policy.jitter = 0.25;
  Rng rng(5);
  for (std::size_t attempt = 1; attempt <= 10; ++attempt) {
    const std::uint64_t nominal =
        std::min<std::uint64_t>(100ull << (attempt - 1), 1000);
    const std::uint64_t wait = retry_backoff_ms(policy, attempt, 0, rng);
    EXPECT_GE(wait, static_cast<std::uint64_t>(0.75 * nominal)) << attempt;
    EXPECT_LE(wait, static_cast<std::uint64_t>(1.25 * nominal) + 1) << attempt;
  }
}

TEST(ClientRetryTest, ZeroJitterIsExact) {
  RetryPolicy policy;
  policy.base_backoff_ms = 20;
  policy.max_backoff_ms = 2000;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(retry_backoff_ms(policy, 1, 0, rng), 20u);
  EXPECT_EQ(retry_backoff_ms(policy, 2, 0, rng), 40u);
  EXPECT_EQ(retry_backoff_ms(policy, 3, 0, rng), 80u);
  EXPECT_EQ(retry_backoff_ms(policy, 8, 0, rng), 2000u);  // clamped
  // A hostile attempt count cannot overflow the shift.
  EXPECT_EQ(retry_backoff_ms(policy, 10000, 0, rng), 2000u);
}

TEST(ClientRetryTest, ServerHintIsAFloorNotAReplacement) {
  RetryPolicy policy;
  policy.base_backoff_ms = 20;
  policy.jitter = 0.0;
  Rng rng(1);
  // Hint above our backoff: the hint wins.
  EXPECT_EQ(retry_backoff_ms(policy, 1, 500, rng), 500u);
  // Hint below our grown backoff: our own schedule keeps growing (a
  // shedding server's low hint must not reset the client's backoff).
  EXPECT_EQ(retry_backoff_ms(policy, 5, 100, rng), 320u);
}

TEST(ClientRetryTest, ConnectFailureRetriesThenReportsAttempts) {
  // Port 1 on loopback: nothing listens there, connect fails fast.
  TcpClientOptions options;
  options.connect_timeout_ms = 200;
  TcpClient client(1, options);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  policy.base_backoff_ms = 10;
  Rng rng(9);
  std::vector<std::uint64_t> waits;
  const auto result = call_with_retry(
      client, Frame{FrameType::kPing, 1, 0, ""}, policy, rng,
      [&](std::uint64_t ms) { waits.push_back(ms); });
  ASSERT_FALSE(result.is_ok());
  // All attempts consumed, the wait schedule ran between them, and the
  // final Status names the attempt count for the operator.
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_EQ(waits[0], 10u);
  EXPECT_EQ(waits[1], 20u);
  EXPECT_NE(result.status().message().find("after 3 attempts"),
            std::string::npos);
}

TEST(ClientRetryTest, MaxAttemptsZeroStillTriesOnce) {
  TcpClientOptions options;
  options.connect_timeout_ms = 100;
  TcpClient client(1, options);
  RetryPolicy policy;
  policy.max_attempts = 0;
  Rng rng(9);
  std::size_t sleeps = 0;
  const auto result =
      call_with_retry(client, Frame{FrameType::kPing, 1, 0, ""}, policy, rng,
                      [&](std::uint64_t) { ++sleeps; });
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(sleeps, 0u);
}

}  // namespace
}  // namespace mdg::serve

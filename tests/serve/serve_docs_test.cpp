// Keeps the serving docs in lockstep with the code, in the
// metrics_doc_test tradition: docs/SERVE.md must document every frame
// type and every exit code, DESIGN.md must carry the layer diagram and
// the request-lifetime walkthrough, ALGORITHMS.md the §Serving rules.
// Stale docs fail CI, not reviewers.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "serve/protocol.h"

namespace mdg::serve {
namespace {

std::string read_doc(const std::string& relative) {
  const std::string path = std::string(MDG_ROOT_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ServeDocsTest, ServeMdDocumentsEveryFrameType) {
  const std::string doc = read_doc("docs/SERVE.md");
  for (const FrameTypeInfo& info : known_frame_types()) {
    EXPECT_NE(doc.find("`" + std::string(info.name) + "`"),
              std::string::npos)
        << "docs/SERVE.md is missing frame type `" << info.name << "`";
    EXPECT_NE(doc.find("| " + std::to_string(info.value) + " |"),
              std::string::npos)
        << "docs/SERVE.md is missing the value row for " << info.name;
  }
}

TEST(ServeDocsTest, ServeMdDocumentsTheExitCodes) {
  const std::string doc = read_doc("docs/SERVE.md");
  // mdg_serve's contract: 0 clean, 1 internal, 2 usage, 3 protocol.
  for (const char* needle :
       {"exit code", "`0`", "`1`", "`2`", "`3`"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVE.md is missing \"" << needle << "\"";
  }
}

TEST(ServeDocsTest, ServeMdDocumentsCacheAndDeadlines) {
  const std::string doc = read_doc("docs/SERVE.md");
  for (const char* needle :
       {"exact", "warm", "eviction", "deadline", "backlog",
        "bench_s1_serve", "Worked example"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVE.md is missing \"" << needle << "\"";
  }
}

TEST(ServeDocsTest, ServeMdDocumentsTheOperationsContract) {
  const std::string doc = read_doc("docs/SERVE.md");
  // The survivability layer must stay documented: overload shedding,
  // brownout degradation, slow-client defense, drain + crash-recovery
  // snapshots, and the chaos harness that exercises them.
  for (const char* needle :
       {"## Operations", "mdg-overloaded", "retry-after-ms", "brownout",
        "hysteresis", "construction-only", "chaos_proxy", "snapshot",
        "SIGTERM", "call_with_retry"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVE.md is missing \"" << needle << "\"";
  }
}

TEST(ServeDocsTest, DesignMdHasTheLayerDiagramAndRequestLifetime) {
  const std::string doc = read_doc("DESIGN.md");
  EXPECT_NE(doc.find("geom → cover/tsp → core → serve/sim"),
            std::string::npos)
      << "DESIGN.md is missing the layer diagram sentinel";
  EXPECT_NE(doc.find("request lifetime"), std::string::npos)
      << "DESIGN.md is missing the request-lifetime walkthrough";
}

TEST(ServeDocsTest, AlgorithmsMdHasTheServingSection) {
  const std::string doc = read_doc("ALGORITHMS.md");
  EXPECT_NE(doc.find("## Serving"), std::string::npos)
      << "ALGORITHMS.md is missing the §Serving section";
  for (const char* needle :
       {"canonical_network_bytes", "warm-start", "FNV-1a"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "ALGORITHMS.md §Serving is missing \"" << needle << "\"";
  }
}

TEST(ServeDocsTest, ReadmeAndHandbookLinkTheOperatorGuide) {
  EXPECT_NE(read_doc("README.md").find("SERVE.md"), std::string::npos)
      << "README.md does not link docs/SERVE.md";
  EXPECT_NE(read_doc("docs/HANDBOOK.md").find("SERVE.md"),
            std::string::npos)
      << "docs/HANDBOOK.md does not link SERVE.md";
}

}  // namespace
}  // namespace mdg::serve

// TCP-transport survivability: request/reply over a live loopback
// server, slow-client defense (a stalled half-frame never pins a
// worker), and the drain flow — typed refusals with draining=1 for new
// work, completion of control frames, exit 0 with a loadable snapshot.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "net/deployment.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

net::SensorNetwork test_network(std::uint64_t seed, std::size_t n = 40) {
  Rng rng(seed);
  return net::make_uniform_network(n, 150.0, 28.0, rng);
}

/// Reserves an ephemeral loopback port: bind port 0, read the assigned
/// number back, close. Slightly racy by nature; SO_REUSEADDR in
/// serve_tcp makes the immediate rebind reliable in practice.
std::uint16_t pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Connects with retries while the server thread is still binding.
void await_server(TcpClient& client) {
  for (int i = 0; i < 100; ++i) {
    if (client.connect().is_ok()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FAIL() << "server never became reachable";
}

class ServeTcpTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_drain_for_tests(); }
  void TearDown() override { reset_drain_for_tests(); }
};

TEST_F(ServeTcpTest, PingPlanAndShutdownOverALiveSocket) {
  const std::uint16_t port = pick_port();
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  core::StatusOr<int> exit_code = 0;
  std::thread daemon([&] { exit_code = server.serve_tcp(port); });

  TcpClientOptions client_options;
  client_options.read_timeout_ms = 30000;
  TcpClient client(port, client_options);
  await_server(client);

  auto pong = client.call(Frame{FrameType::kPing, 1, 0, ""});
  ASSERT_TRUE(pong.is_ok()) << pong.status().to_string();
  EXPECT_EQ(pong->type, FrameType::kPong);
  EXPECT_EQ(pong->id, 1u);

  const net::SensorNetwork network = test_network(31);
  const Frame plan =
      Frame{FrameType::kPlanRequest, 2, 0, build_plan_request({}, network)};
  auto reply = client.call(plan);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply->type, FrameType::kReplyOk);

  // The reply must be byte-identical to the in-process engine's answer
  // — the transport adds nothing to the payload.
  Server reference;
  EXPECT_EQ(reply->payload, reference.engine().handle(plan).payload);

  auto bye = client.call(Frame{FrameType::kShutdown, 3, 0, ""});
  ASSERT_TRUE(bye.is_ok()) << bye.status().to_string();
  daemon.join();
  ASSERT_TRUE(exit_code.is_ok());
  EXPECT_EQ(exit_code.value(), 0);
}

TEST_F(ServeTcpTest, SlowClientIsDroppedNotWedged) {
  const std::uint16_t port = pick_port();
  ServerOptions options;
  options.workers = 1;
  options.read_timeout_ms = 200;  // aggressive deadline for the test
  Server server(options);
  core::StatusOr<int> exit_code = 0;
  std::thread daemon([&] { exit_code = server.serve_tcp(port); });

  TcpClient probe(port);
  await_server(probe);
  probe.disconnect();

  // A slowloris peer: three header bytes, then silence. The server
  // must cut the connection at the read deadline instead of parking a
  // reader on it forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(::send(fd, "MDG", 3, 0), 3);
  // Drain whatever the server sends (a best-effort error reply) until
  // it closes our connection; a 5 s guard keeps the test from hanging
  // if the defense is broken.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
  ::close(fd);
  EXPECT_GE(server.engine().stats().conn_timeout, 1u);

  // The daemon is still perfectly serviceable afterwards.
  TcpClient client(port);
  auto pong = client.call(Frame{FrameType::kPing, 5, 0, ""});
  ASSERT_TRUE(pong.is_ok()) << pong.status().to_string();
  EXPECT_EQ(pong->type, FrameType::kPong);
  auto bye = client.call(Frame{FrameType::kShutdown, 6, 0, ""});
  ASSERT_TRUE(bye.is_ok()) << bye.status().to_string();
  daemon.join();
  ASSERT_TRUE(exit_code.is_ok());
  EXPECT_EQ(exit_code.value(), 0);
}

TEST_F(ServeTcpTest, DrainShedsNewWorkTypedThenExitsZeroWithSnapshot) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mdg_tcp_drain_snapshot")
          .string();
  std::remove(path.c_str());
  const std::uint16_t port = pick_port();
  ServerOptions options;
  options.workers = 2;
  options.snapshot_path = path;
  Server server(options);
  core::StatusOr<int> exit_code = 0;
  std::thread daemon([&] { exit_code = server.serve_tcp(port); });

  TcpClient client(port);
  await_server(client);

  // Seed the cache with one completed plan before the drain.
  const net::SensorNetwork network = test_network(32);
  const Frame plan =
      Frame{FrameType::kPlanRequest, 1, 0, build_plan_request({}, network)};
  auto cold = client.call(plan);
  ASSERT_TRUE(cold.is_ok()) << cold.status().to_string();
  ASSERT_EQ(cold->type, FrameType::kReplyOk);

  // What the SIGTERM handler does. New work on the existing connection
  // now gets a typed refusal with draining=1 — not silence, not a
  // semantic error.
  request_drain();
  auto shed = client.call(Frame{FrameType::kPlanRequest, 2, 0, plan.payload});
  ASSERT_TRUE(shed.is_ok()) << shed.status().to_string();
  ASSERT_EQ(shed->type, FrameType::kReplyOverloaded);
  const auto info = parse_overloaded_payload(shed->payload);
  ASSERT_TRUE(info.is_ok()) << info.status().to_string();
  EXPECT_TRUE(info->draining);
  EXPECT_GT(info->retry_after_ms, 0u);

  // Control frames stay admitted during drain; shutdown completes it.
  auto bye = client.call(Frame{FrameType::kShutdown, 3, 0, ""});
  ASSERT_TRUE(bye.is_ok()) << bye.status().to_string();
  daemon.join();
  ASSERT_TRUE(exit_code.is_ok());
  EXPECT_EQ(exit_code.value(), 0);
  EXPECT_EQ(server.engine().stats().shed, 1u);

  // The drain wrote a snapshot a restarted server warms from with
  // byte-identical exact hits.
  ServerOptions revived_options;
  revived_options.snapshot_path = path;
  Server revived(revived_options);
  const auto restored = revived.load_snapshot();
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), 1u);
  const Frame hit = revived.engine().handle(plan);
  EXPECT_EQ(hit.flags & kFlagCacheMask, kFlagCacheExact);
  EXPECT_EQ(hit.payload, cold->payload);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdg::serve

#endif  // POSIX

// Wire-format tests: header layout pinned byte for byte, round trips,
// and the reader's rejection taxonomy.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/deployment.h"
#include "util/rng.h"

namespace mdg::serve {
namespace {

net::SensorNetwork tiny_network() {
  Rng rng(11);
  return net::make_uniform_network(12, 60.0, 20.0, rng);
}

TEST(ServeProtocolTest, FrameBytesLayoutIsPinned) {
  // docs/SERVE.md walks this exact frame; keep them in sync.
  const Frame frame{FrameType::kPing, 7, 0, {}};
  const std::string bytes = frame_bytes(frame);
  ASSERT_EQ(bytes.size(), kHeaderBytes);
  const unsigned char expected[kHeaderBytes] = {
      'M', 'D', 'G', '1',      // magic
      0x04, 0x00, 0x00, 0x00,  // type 4 = ping, little-endian
      0x07, 0x00, 0x00, 0x00,  // id 7
      0x00, 0x00, 0x00, 0x00,  // flags
      0x00, 0x00, 0x00, 0x00,  // payload length
  };
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << i;
  }
}

TEST(ServeProtocolTest, FrameRoundTrips) {
  const Frame frame{FrameType::kReplyOk, 0xdeadbeef, kFlagCacheExact,
                    "payload bytes\nwith newlines\n"};
  std::stringstream stream;
  write_frame(stream, frame);
  auto read = read_frame(stream);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_TRUE(read.value().has_value());
  EXPECT_EQ((*read)->type, frame.type);
  EXPECT_EQ((*read)->id, frame.id);
  EXPECT_EQ((*read)->flags, frame.flags);
  EXPECT_EQ((*read)->payload, frame.payload);
  // Stream is now cleanly at EOF.
  auto next = read_frame(stream);
  ASSERT_TRUE(next.is_ok());
  EXPECT_FALSE(next.value().has_value());
}

TEST(ServeProtocolTest, RejectsBadMagic) {
  std::stringstream stream("XDG1....................");
  const auto read = read_frame(stream);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, RejectsTruncatedHeader) {
  std::stringstream stream("MDG1\x01\x00");
  const auto read = read_frame(stream);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kDataLoss);
}

TEST(ServeProtocolTest, RejectsTruncatedPayload) {
  Frame frame{FrameType::kPlanRequest, 1, 0, "only half of this arrives"};
  std::string bytes = frame_bytes(frame);
  bytes.resize(bytes.size() - 10);
  std::stringstream stream(bytes);
  const auto read = read_frame(stream);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kDataLoss);
}

TEST(ServeProtocolTest, RejectsOversizedPayloadWithoutAllocating) {
  // Declared length far over the cap: rejected from the header alone.
  std::string bytes;
  bytes.append(kMagic, 4);
  const auto put = [&](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      bytes.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
    }
  };
  put(1);           // plan request
  put(1);           // id
  put(0);           // flags
  put(0xffffffff);  // 4 GiB payload
  std::stringstream stream(bytes);
  const auto read = read_frame(stream, {1024});
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, RejectsUnknownFrameType) {
  std::stringstream stream;
  write_frame(stream, Frame{static_cast<FrameType>(99), 1, 0, {}});
  const auto read = read_frame(stream);
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, PlanRequestRoundTrips) {
  const net::SensorNetwork network = tiny_network();
  PlanRequestOptions options;
  options.planner = "greedy";
  options.max_load = 4;
  options.multi_start = 2;
  options.refine = false;
  options.deadline_ms = 250;
  options.warm = false;
  const std::string payload = build_plan_request(options, network);
  auto parsed = parse_plan_request(payload);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->options.planner, "greedy");
  EXPECT_EQ(parsed->options.max_load, 4u);
  EXPECT_EQ(parsed->options.multi_start, 2u);
  EXPECT_FALSE(parsed->options.refine);
  EXPECT_EQ(parsed->options.deadline_ms, 250u);
  EXPECT_FALSE(parsed->options.warm);
  EXPECT_EQ(parsed->network.size(), network.size());
  EXPECT_EQ(parsed->network.sink(), network.sink());
}

TEST(ServeProtocolTest, PlanRequestRejectsTrailingBytes) {
  const std::string payload =
      build_plan_request({}, tiny_network()) + "sneaky trailing line\n";
  const auto parsed = parse_plan_request(payload);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeProtocolTest, PlanRequestRejectsMissingKeys) {
  const auto parsed = parse_plan_request("mdg-request 1\nop plan\n");
  ASSERT_FALSE(parsed.is_ok());
}

TEST(ServeProtocolTest, KnownFrameTypesCoverEveryEnumerator) {
  EXPECT_STREQ(frame_type_name(FrameType::kPlanRequest), "plan-request");
  EXPECT_STREQ(frame_type_name(FrameType::kDeltaRequest), "delta-request");
  EXPECT_STREQ(frame_type_name(FrameType::kReplyError), "reply-error");
  EXPECT_STREQ(frame_type_name(FrameType::kReplyOverloaded),
               "reply-overloaded");
  EXPECT_EQ(frame_type_name(static_cast<FrameType>(12345)), nullptr);
  EXPECT_EQ(known_frame_types().size(), 10u);
}

TEST(ServeProtocolTest, ErrorPayloadUsesStatusTaxonomy) {
  const std::string payload = build_error_payload(
      core::Status::data_loss("stream ended early\nsecond line"));
  EXPECT_EQ(payload,
            "mdg-error 1\ncode data-loss\nmessage stream ended early\n");
}

}  // namespace
}  // namespace mdg::serve

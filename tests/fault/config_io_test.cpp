#include "fault/config_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace mdg::fault {
namespace {

core::StatusOr<FaultConfig> parse(const std::string& text,
                                  const ConfigReadOptions& options = {}) {
  std::istringstream in(text);
  return read_fault_config(in, options);
}

TEST(FaultConfigIoTest, RoundTripsThroughText) {
  FaultConfig config;
  config.seed = 7;
  config.horizon_s = 1800.0;
  config.sensor_crash_prob = 0.125;
  config.pp_blackout_prob = 0.25;
  config.pp_blackout_mean_s = 45.0;
  config.burst_episodes_mean = 2.0;
  config.burst_mean_s = 15.0;
  config.burst_loss_prob = 0.875;
  config.stall_mean = 1.0;
  config.stall_duration_s = 30.0;
  config.breakdown_frac = 0.5;
  config.dwell_budget_s = 90.0;
  config.repoll_backoff_s = 3.0;
  config.max_repolls = 5;

  std::ostringstream out;
  write_fault_config(out, config);
  const core::StatusOr<FaultConfig> read = parse(out.str());
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  const FaultConfig& got = *read;
  EXPECT_EQ(got.seed, config.seed);
  EXPECT_DOUBLE_EQ(got.horizon_s, config.horizon_s);
  EXPECT_DOUBLE_EQ(got.sensor_crash_prob, config.sensor_crash_prob);
  EXPECT_DOUBLE_EQ(got.pp_blackout_prob, config.pp_blackout_prob);
  EXPECT_DOUBLE_EQ(got.pp_blackout_mean_s, config.pp_blackout_mean_s);
  EXPECT_DOUBLE_EQ(got.burst_episodes_mean, config.burst_episodes_mean);
  EXPECT_DOUBLE_EQ(got.burst_mean_s, config.burst_mean_s);
  EXPECT_DOUBLE_EQ(got.burst_loss_prob, config.burst_loss_prob);
  EXPECT_DOUBLE_EQ(got.stall_mean, config.stall_mean);
  EXPECT_DOUBLE_EQ(got.stall_duration_s, config.stall_duration_s);
  EXPECT_DOUBLE_EQ(got.breakdown_frac, config.breakdown_frac);
  EXPECT_DOUBLE_EQ(got.dwell_budget_s, config.dwell_budget_s);
  EXPECT_DOUBLE_EQ(got.repoll_backoff_s, config.repoll_backoff_s);
  EXPECT_EQ(got.max_repolls, config.max_repolls);
}

TEST(FaultConfigIoTest, HeaderAloneYieldsDefaults) {
  const core::StatusOr<FaultConfig> read =
      parse("mdg-faults 1\n# all defaults\n");
  ASSERT_TRUE(read.is_ok());
  EXPECT_DOUBLE_EQ(read->sensor_crash_prob, 0.0);
  EXPECT_FALSE((*read).breakdown_frac >= 0.0);
}

TEST(FaultConfigIoTest, EmptyInputIsDataLoss) {
  const core::StatusOr<FaultConfig> read = parse("");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kDataLoss);
}

TEST(FaultConfigIoTest, MissingHeaderIsInvalid) {
  const core::StatusOr<FaultConfig> read = parse("seed 7\n");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(FaultConfigIoTest, UnsupportedVersionIsInvalid) {
  EXPECT_FALSE(parse("mdg-faults 2\n").is_ok());
}

TEST(FaultConfigIoTest, UnknownKeyIsInvalid) {
  const core::StatusOr<FaultConfig> read =
      parse("mdg-faults 1\nwarp-speed 9\n");
  ASSERT_FALSE(read.is_ok());
  EXPECT_NE(read.status().message().find("unknown key"), std::string::npos);
}

TEST(FaultConfigIoTest, BadNumberIsInvalid) {
  EXPECT_FALSE(parse("mdg-faults 1\nhorizon banana\n").is_ok());
  EXPECT_FALSE(parse("mdg-faults 1\nseed -3\n").is_ok());
}

TEST(FaultConfigIoTest, TrailingTokensAreInvalid) {
  const core::StatusOr<FaultConfig> read =
      parse("mdg-faults 1\nseed 7 extra\n");
  ASSERT_FALSE(read.is_ok());
  EXPECT_NE(read.status().message().find("trailing"), std::string::npos);
}

TEST(FaultConfigIoTest, SemanticValidationApplies) {
  const core::StatusOr<FaultConfig> read =
      parse("mdg-faults 1\nsensor-crash-prob 1.5\n");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(FaultConfigIoTest, FailFastOffCollectsEveryProblem) {
  const core::StatusOr<FaultConfig> read = parse(
      "mdg-faults 1\nhorizon banana\nwarp-speed 9\nseed 7 extra\n",
      ConfigReadOptions{.fail_fast = false});
  ASSERT_FALSE(read.is_ok());
  const std::string message = read.status().message();
  EXPECT_NE(message.find("horizon"), std::string::npos);
  EXPECT_NE(message.find("warp-speed"), std::string::npos);
  EXPECT_NE(message.find("trailing"), std::string::npos);
}

TEST(FaultConfigIoTest, MissingFileIsNotFound) {
  const core::StatusOr<FaultConfig> read =
      load_fault_config("/nonexistent/faults.txt");
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace mdg::fault

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/spanning_tour_planner.h"
#include "util/rng.h"

namespace mdg::fault {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;
  core::ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 50)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 150.0, 25.0, rng);
        }()),
        instance(network),
        solution(core::SpanningTourPlanner().plan(instance)) {}
};

FaultConfig chaos_config() {
  FaultConfig config;
  config.seed = 7;
  config.sensor_crash_prob = 0.3;
  config.pp_blackout_prob = 0.5;
  config.burst_episodes_mean = 3.0;
  config.stall_mean = 2.0;
  config.breakdown_prob = 1.0;
  return config;
}

TEST(FaultConfigTest, DefaultValidatesAndInjectsNothing) {
  const FaultConfig config;
  EXPECT_TRUE(config.validate().is_ok());
  Fixture fx(1);
  const FaultPlan plan = FaultPlan::generate(fx.instance, fx.solution, config);
  EXPECT_TRUE(plan.crashes().empty());
  EXPECT_TRUE(plan.blackouts().empty());
  EXPECT_TRUE(plan.bursts().empty());
  EXPECT_TRUE(plan.stalls().empty());
  EXPECT_FALSE(plan.breakdown().enabled);
  EXPECT_TRUE(plan.sensor_alive_at(0, 1e9));
  EXPECT_DOUBLE_EQ(plan.loss_prob_at(100.0, 0.25), 0.25);
}

TEST(FaultConfigTest, RejectsBadValues) {
  FaultConfig config;
  config.sensor_crash_prob = 1.5;
  EXPECT_FALSE(config.validate().is_ok());
  config = {};
  config.horizon_s = -1.0;
  EXPECT_FALSE(config.validate().is_ok());
  config = {};
  config.burst_loss_prob = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(config.validate().is_ok());
  config = {};
  config.breakdown_frac = 1.5;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  Fixture fx(2);
  const FaultConfig config = chaos_config();
  const FaultPlan a = FaultPlan::generate(fx.instance, fx.solution, config);
  const FaultPlan b = FaultPlan::generate(fx.instance, fx.solution, config);
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].sensor, b.crashes()[i].sensor);
    EXPECT_DOUBLE_EQ(a.crashes()[i].time_s, b.crashes()[i].time_s);
  }
  ASSERT_EQ(a.blackouts().size(), b.blackouts().size());
  ASSERT_EQ(a.bursts().size(), b.bursts().size());
  ASSERT_EQ(a.stalls().size(), b.stalls().size());
  EXPECT_EQ(a.breakdown().enabled, b.breakdown().enabled);
  EXPECT_DOUBLE_EQ(a.breakdown().distance_m, b.breakdown().distance_m);
}

TEST(FaultPlanTest, DifferentSeedDifferentSchedule) {
  Fixture fx(3);
  FaultConfig config = chaos_config();
  const FaultPlan a = FaultPlan::generate(fx.instance, fx.solution, config);
  config.seed = 99;
  const FaultPlan b = FaultPlan::generate(fx.instance, fx.solution, config);
  // Overwhelmingly likely to differ somewhere.
  const bool same = a.crashes().size() == b.crashes().size() &&
                    a.blackouts().size() == b.blackouts().size() &&
                    a.bursts().size() == b.bursts().size() &&
                    a.stalls().size() == b.stalls().size() &&
                    a.breakdown().distance_m == b.breakdown().distance_m;
  EXPECT_FALSE(same);
}

TEST(FaultPlanTest, EnablingOneClassDoesNotShiftAnother) {
  // The fork-stream contract: turning breakdowns on must not move the
  // crash schedule.
  Fixture fx(4);
  FaultConfig only_crashes;
  only_crashes.seed = 42;
  only_crashes.sensor_crash_prob = 0.4;
  FaultConfig crashes_and_more = only_crashes;
  crashes_and_more.breakdown_prob = 1.0;
  crashes_and_more.burst_episodes_mean = 5.0;
  const FaultPlan a =
      FaultPlan::generate(fx.instance, fx.solution, only_crashes);
  const FaultPlan b =
      FaultPlan::generate(fx.instance, fx.solution, crashes_and_more);
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].sensor, b.crashes()[i].sensor);
    EXPECT_DOUBLE_EQ(a.crashes()[i].time_s, b.crashes()[i].time_s);
  }
}

TEST(FaultPlanTest, CrashQueries) {
  Fixture fx(5);
  FaultConfig config;
  config.sensor_crash_prob = 1.0;  // everyone crashes somewhere
  const FaultPlan plan = FaultPlan::generate(fx.instance, fx.solution, config);
  ASSERT_EQ(plan.crashes().size(), fx.instance.sensor_count());
  for (const SensorCrash& crash : plan.crashes()) {
    EXPECT_TRUE(plan.sensor_alive_at(crash.sensor, crash.time_s - 1e-6));
    EXPECT_FALSE(plan.sensor_alive_at(crash.sensor, crash.time_s));
    EXPECT_GE(crash.time_s, 0.0);
    EXPECT_LE(crash.time_s, config.horizon_s);
  }
  // Out-of-range sensor index: plan injects nothing.
  EXPECT_TRUE(plan.sensor_alive_at(fx.instance.sensor_count() + 5, 0.0));
}

TEST(FaultPlanTest, BlackoutAndBurstWindows) {
  Fixture fx(6);
  FaultConfig config;
  config.pp_blackout_prob = 1.0;
  config.burst_episodes_mean = 4.0;
  config.burst_loss_prob = 0.8;
  const FaultPlan plan = FaultPlan::generate(fx.instance, fx.solution, config);
  for (const BlackoutWindow& w : plan.blackouts()) {
    const double mid = (w.start_s + w.end_s) / 2.0;
    EXPECT_TRUE(plan.blackout_active(w.pp_slot, mid));
    EXPECT_FALSE(plan.blackout_active(w.pp_slot, w.end_s));
    EXPECT_GE(plan.blackout_end(w.pp_slot, mid), w.end_s);
  }
  for (const BurstLossEpisode& e : plan.bursts()) {
    const double mid = (e.start_s + e.end_s) / 2.0;
    EXPECT_TRUE(plan.burst_active(mid));
    EXPECT_DOUBLE_EQ(plan.loss_prob_at(mid, 0.1), 0.8);
    // A base above the episode's elevation wins.
    EXPECT_DOUBLE_EQ(plan.loss_prob_at(mid, 0.95), 0.95);
  }
}

TEST(FaultPlanTest, PinnedBreakdownFraction) {
  Fixture fx(7);
  FaultConfig config;
  config.breakdown_frac = 0.5;
  config.breakdown_prob = 0.0;  // frac overrides the draw entirely
  const FaultPlan plan = FaultPlan::generate(fx.instance, fx.solution, config);
  ASSERT_TRUE(plan.breakdown().enabled);
  EXPECT_DOUBLE_EQ(plan.breakdown().distance_m,
                   0.5 * fx.solution.tour_length);
}

TEST(FaultPlanTest, StallDelayAccumulatesOverInterval) {
  Fixture fx(8);
  FaultConfig config;
  config.stall_mean = 5.0;
  const FaultPlan plan = FaultPlan::generate(fx.instance, fx.solution, config);
  double total = 0.0;
  for (const CollectorStall& s : plan.stalls()) {
    total += s.duration_s;
  }
  EXPECT_NEAR(plan.stall_delay(0.0, fx.solution.tour_length + 1.0), total,
              1e-9);
  EXPECT_DOUBLE_EQ(plan.stall_delay(0.0, 0.0), 0.0);
}

TEST(FaultPlanTest, InvalidConfigIsAPreconditionViolation) {
  Fixture fx(9);
  FaultConfig config;
  config.sensor_crash_prob = 2.0;
  EXPECT_THROW(
      (void)FaultPlan::generate(fx.instance, fx.solution, config),
      mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::fault

#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/bfs.h"
#include "util/assert.h"

namespace mdg::graph {
namespace {

TEST(DijkstraTest, WeightedShortestPathsBeatHopShortest) {
  // 0 -> 2 direct weight 10, or 0-1-2 with weight 2+3=5.
  const std::vector<Edge> edges{{0, 2, 10.0}, {0, 1, 2.0}, {1, 2, 3.0}};
  const Graph g(3, edges);
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[2], 5.0);
  EXPECT_EQ(r.parent[2], 1u);
}

TEST(DijkstraTest, UnreachableVertices) {
  const Graph g(3, std::vector<Edge>{{0, 1, 1.0}});
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_TRUE(r.reachable(1));
  EXPECT_FALSE(r.reachable(2));
}

TEST(DijkstraTest, MultiSourceMinimum) {
  // Path 0-1-2-3-4, sources {0, 4}.
  std::vector<Edge> edges;
  for (std::size_t v = 0; v < 4; ++v) {
    edges.push_back({v, v + 1, 1.0});
  }
  const Graph g(5, edges);
  const std::vector<std::size_t> sources{0, 4};
  const DijkstraResult r = dijkstra_multi(g, sources);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(r.dist[3], 1.0);
}

TEST(DijkstraTest, ExtractPathReconstructs) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_EQ(extract_path(r, 3), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(extract_path(r, 0), (std::vector<std::size_t>{0}));
}

TEST(DijkstraTest, ExtractPathUnreachableIsEmpty) {
  const Graph g(3, std::vector<Edge>{{0, 1, 1.0}});
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_TRUE(extract_path(r, 2).empty());
}

TEST(DijkstraTest, AgreesWithBfsOnUnitWeights) {
  // Random-ish structured graph with unit weights: hop count == dist.
  std::vector<Edge> edges;
  const std::size_t n = 30;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    edges.push_back({v, v + 1, 1.0});
    if (v + 5 < n) {
      edges.push_back({v, v + 5, 1.0});
    }
  }
  const Graph g(n, edges);
  const DijkstraResult dr = dijkstra(g, 0);
  const BfsResult br = bfs(g, 0);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(dr.dist[v], static_cast<double>(br.hops[v]));
  }
}

TEST(DijkstraTest, RequiresSources) {
  const Graph g(2, std::vector<Edge>{{0, 1, 1.0}});
  EXPECT_THROW((void)dijkstra_multi(g, {}), mdg::PreconditionError);
}

TEST(DijkstraTest, ExtractPathRejectsBadTarget) {
  const Graph g(2, std::vector<Edge>{{0, 1, 1.0}});
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_THROW((void)extract_path(r, 5), mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::graph

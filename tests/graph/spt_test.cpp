#include "graph/spt.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdg::graph {
namespace {

// Star: sink 0 in the middle, arms 0-1-2 and 0-3.
Graph star_with_arms() {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 3, 1.0}};
  return Graph(5, edges);  // vertex 4 disconnected
}

TEST(SptTest, HopsAndNextHops) {
  const Graph g = star_with_arms();
  const ShortestPathTree spt(g, 0);
  EXPECT_EQ(spt.hops(0), 0u);
  EXPECT_EQ(spt.hops(1), 1u);
  EXPECT_EQ(spt.hops(2), 2u);
  EXPECT_EQ(spt.hops(3), 1u);
  EXPECT_FALSE(spt.reachable(4));
  EXPECT_EQ(spt.next_hop(2), 1u);
  EXPECT_EQ(spt.next_hop(1), 0u);
  EXPECT_EQ(spt.next_hop(0), kUnreachable);
}

TEST(SptTest, AverageHopsExcludesSinkAndUnreachable) {
  const Graph g = star_with_arms();
  const ShortestPathTree spt(g, 0);
  // Reachable non-sink: 1 (1 hop), 2 (2 hops), 3 (1 hop) -> mean 4/3.
  EXPECT_NEAR(spt.average_hops(), 4.0 / 3.0, 1e-12);
}

TEST(SptTest, Depth) {
  const Graph g = star_with_arms();
  const ShortestPathTree spt(g, 0);
  EXPECT_EQ(spt.depth(), 2u);
}

TEST(SptTest, SubtreeSizesCountRelayLoad) {
  const Graph g = star_with_arms();
  const ShortestPathTree spt(g, 0);
  const auto sizes = spt.subtree_sizes();
  EXPECT_EQ(sizes[0], 4u);  // all reachable vertices route through the sink
  EXPECT_EQ(sizes[1], 2u);  // itself + vertex 2
  EXPECT_EQ(sizes[2], 1u);
  EXPECT_EQ(sizes[3], 1u);
  EXPECT_EQ(sizes[4], 0u);  // unreachable
}

TEST(SptTest, DisconnectedListing) {
  const Graph g = star_with_arms();
  const ShortestPathTree spt(g, 0);
  EXPECT_EQ(spt.disconnected(), (std::vector<std::size_t>{4}));
}

TEST(SptTest, IsolatedSink) {
  const Graph g(3, {});
  const ShortestPathTree spt(g, 0);
  EXPECT_EQ(spt.average_hops(), 0.0);
  EXPECT_EQ(spt.depth(), 0u);
  EXPECT_EQ(spt.disconnected().size(), 2u);
}

}  // namespace
}  // namespace mdg::graph

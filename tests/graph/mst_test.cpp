#include "graph/mst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/components.h"
#include "net/deployment.h"
#include "util/rng.h"

namespace mdg::graph {
namespace {

TEST(SparseMstTest, KnownTriangle) {
  // Triangle with weights 1, 2, 3: MST = {1, 2}.
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  const Graph g(3, edges);
  const MstResult mst = minimum_spanning_forest(g);
  EXPECT_EQ(mst.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 3.0);
}

TEST(SparseMstTest, SpansForestWhenDisconnected) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {2, 3, 2.0}};
  const Graph g(5, edges);
  const MstResult mst = minimum_spanning_forest(g);
  EXPECT_EQ(mst.edges.size(), 2u);  // vertex 4 isolated, no edges
  EXPECT_DOUBLE_EQ(mst.total_weight, 3.0);
}

TEST(EuclideanMstTest, Degenerates) {
  EXPECT_TRUE(euclidean_mst({}).edges.empty());
  const std::vector<geom::Point> one{{0.0, 0.0}};
  EXPECT_TRUE(euclidean_mst(one).edges.empty());
  const std::vector<geom::Point> two{{0.0, 0.0}, {3.0, 4.0}};
  const MstResult mst = euclidean_mst(two);
  ASSERT_EQ(mst.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 5.0);
}

TEST(EuclideanMstTest, CollinearPointsChainUp) {
  const std::vector<geom::Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const MstResult mst = euclidean_mst(pts);
  EXPECT_EQ(mst.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 3.0);
}

TEST(EuclideanMstTest, TreeIsSpanningAndAcyclic) {
  Rng rng(5);
  const auto pts = net::deploy_uniform(80, geom::Aabb::square(100.0), rng);
  const MstResult mst = euclidean_mst(pts);
  ASSERT_EQ(mst.edges.size(), pts.size() - 1);
  // n-1 edges + connected = tree. Verify connectivity via the Graph.
  const Graph g(pts.size(), mst.edges);
  EXPECT_TRUE(is_connected(g));
}

TEST(EuclideanMstTest, MatchesSparsePrimOnCompleteGraph) {
  Rng rng(13);
  const auto pts = net::deploy_uniform(40, geom::Aabb::square(50.0), rng);
  std::vector<Edge> complete;
  for (std::size_t u = 0; u < pts.size(); ++u) {
    for (std::size_t v = u + 1; v < pts.size(); ++v) {
      complete.push_back({u, v, geom::distance(pts[u], pts[v])});
    }
  }
  const Graph g(pts.size(), complete);
  const double sparse_weight = minimum_spanning_forest(g).total_weight;
  const double dense_weight = euclidean_mst(pts).total_weight;
  EXPECT_NEAR(sparse_weight, dense_weight, 1e-9);
}

TEST(TreeAdjacencyTest, BuildsSymmetricLists) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}};
  const auto adj = tree_adjacency(3, edges);
  EXPECT_EQ(adj[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(adj[2], (std::vector<std::size_t>{1}));
  EXPECT_EQ(adj[1].size(), 2u);
}

}  // namespace
}  // namespace mdg::graph

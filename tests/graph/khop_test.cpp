// KHopClosure: bounded-hop reachability sets in CSR form.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/graph.h"
#include "graph/khop.h"
#include "util/thread_pool.h"

namespace mdg {
namespace {

graph::Graph path_graph(std::size_t n) {
  std::vector<graph::Edge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, 1.0});
  }
  return graph::Graph(n, edges);
}

std::vector<std::size_t> to_vec(std::span<const std::size_t> span) {
  return {span.begin(), span.end()};
}

TEST(KHopClosureTest, ZeroHopsIsIdentity) {
  const graph::Graph g = path_graph(5);
  const graph::KHopClosure closure(g, 0);
  EXPECT_EQ(closure.vertex_count(), 5u);
  EXPECT_EQ(closure.total_reach(), 5u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(to_vec(closure.reach(v)), std::vector<std::size_t>{v});
  }
}

TEST(KHopClosureTest, PathGraphTwoHops) {
  const graph::Graph g = path_graph(5);
  const graph::KHopClosure closure(g, 2);
  EXPECT_EQ(to_vec(closure.reach(0)), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(to_vec(closure.reach(2)),
            (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(to_vec(closure.reach(4)), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(KHopClosureTest, ReachNeverCrossesComponents) {
  // Two disjoint triangles.
  std::vector<graph::Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0},
                                    {3, 4, 1.0}, {4, 5, 1.0}, {3, 5, 1.0}};
  const graph::Graph g(6, edges);
  const graph::KHopClosure closure(g, 10);
  EXPECT_EQ(to_vec(closure.reach(0)), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(to_vec(closure.reach(5)), (std::vector<std::size_t>{3, 4, 5}));
}

TEST(KHopClosureTest, SaturatesAtDiameter) {
  const graph::Graph g = path_graph(8);
  const graph::KHopClosure at_diameter(g, 7);
  const graph::KHopClosure beyond(g, 100);
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_EQ(to_vec(at_diameter.reach(v)), to_vec(beyond.reach(v)));
    EXPECT_EQ(at_diameter.reach(v).size(), 8u);
  }
}

TEST(KHopClosureTest, RowsAreSortedAndIncludeSelf) {
  // Ring with chords, big enough to take the parallel build path.
  constexpr std::size_t kN = 600;
  std::vector<graph::Edge> edges;
  for (std::size_t i = 0; i < kN; ++i) {
    edges.push_back({i, (i + 1) % kN, 1.0});
    if (i % 7 == 0) {
      edges.push_back({i, (i + kN / 3) % kN, 1.0});
    }
  }
  const graph::Graph g(kN, edges);
  const graph::KHopClosure closure(g, 3);
  for (std::size_t v = 0; v < kN; ++v) {
    const auto row = to_vec(closure.reach(v));
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
    EXPECT_TRUE(std::binary_search(row.begin(), row.end(), v));
  }
}

TEST(KHopClosureTest, ParallelBuildIsByteIdentical) {
  constexpr std::size_t kN = 700;
  std::vector<graph::Edge> edges;
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    edges.push_back({i, i + 1, 1.0});
    if (i % 5 == 0) {
      edges.push_back({i, (i + 13) % kN, 1.0});
    }
  }
  const graph::Graph g(kN, edges);
  set_planning_threads(1);
  const graph::KHopClosure serial(g, 2);
  set_planning_threads(4);
  const graph::KHopClosure parallel(g, 2);
  set_planning_threads(0);
  ASSERT_EQ(serial.total_reach(), parallel.total_reach());
  for (std::size_t v = 0; v < kN; ++v) {
    EXPECT_EQ(to_vec(serial.reach(v)), to_vec(parallel.reach(v)));
  }
}

}  // namespace
}  // namespace mdg

#include "graph/bfs.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace mdg::graph {
namespace {

// 0-1-2-3 path plus isolated 4.
Graph path_plus_isolated() {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  return Graph(5, edges);
}

TEST(BfsTest, HopDistancesOnPath) {
  const Graph g = path_plus_isolated();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.hops[0], 0u);
  EXPECT_EQ(r.hops[1], 1u);
  EXPECT_EQ(r.hops[2], 2u);
  EXPECT_EQ(r.hops[3], 3u);
  EXPECT_FALSE(r.reachable(4));
}

TEST(BfsTest, ParentsFormShortestPaths) {
  const Graph g = path_plus_isolated();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.parent[0], kUnreachable);
  EXPECT_EQ(r.parent[3], 2u);
  EXPECT_EQ(r.parent[2], 1u);
  EXPECT_EQ(r.parent[1], 0u);
}

TEST(BfsTest, MultiSourceTakesNearest) {
  const Graph g = path_plus_isolated();
  const std::vector<std::size_t> sources{0, 3};
  const BfsResult r = bfs_multi(g, sources);
  EXPECT_EQ(r.hops[1], 1u);
  EXPECT_EQ(r.hops[2], 1u);  // closer to source 3
}

TEST(BfsTest, DuplicateSourcesAreFine) {
  const Graph g = path_plus_isolated();
  const std::vector<std::size_t> sources{0, 0, 0};
  const BfsResult r = bfs_multi(g, sources);
  EXPECT_EQ(r.hops[2], 2u);
}

TEST(BfsTest, RequiresValidSources) {
  const Graph g = path_plus_isolated();
  EXPECT_THROW((void)bfs_multi(g, {}), mdg::PreconditionError);
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW((void)bfs_multi(g, bad), mdg::PreconditionError);
}

TEST(BfsTest, ShortestOverBranches) {
  // Diamond: 0-1, 0-2, 1-3, 2-3 — vertex 3 at 2 hops.
  const std::vector<Edge> edges{
      {0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.hops[3], 2u);
}

TEST(KHopNeighborhoodTest, LayersRespectBound) {
  const Graph g = path_plus_isolated();
  EXPECT_EQ(k_hop_neighborhood(g, 0, 0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(k_hop_neighborhood(g, 0, 1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(k_hop_neighborhood(g, 0, 2),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(k_hop_neighborhood(g, 0, 10),
            (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(KHopNeighborhoodTest, AscendingHopOrder) {
  const std::vector<Edge> edges{
      {0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 4, 1.0}};
  const Graph g(5, edges);
  const auto order = k_hop_neighborhood(g, 0, 2);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);
  // Hops 1 before hops 2.
  EXPECT_TRUE((order[1] == 1 && order[2] == 2) ||
              (order[1] == 2 && order[2] == 1));
}

}  // namespace
}  // namespace mdg::graph

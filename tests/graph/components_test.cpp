#include "graph/components.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace mdg::graph {
namespace {

TEST(ComponentsTest, SingleComponent) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}};
  const Graph g(3, edges);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(c.largest_size(), 3u);
}

TEST(ComponentsTest, MultipleComponents) {
  const std::vector<Edge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(6, edges);  // {0,1}, {2,3}, {4}, {5}
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4u);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(c.largest_size(), 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_NE(c.label[0], c.label[2]);
}

TEST(ComponentsTest, MembersExtraction) {
  const std::vector<Edge> edges{{0, 2, 1.0}};
  const Graph g(3, edges);
  const Components c = connected_components(g);
  EXPECT_EQ(c.members(c.label[0]), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(c.members(c.label[1]), (std::vector<std::size_t>{1}));
  EXPECT_THROW((void)c.members(99), mdg::PreconditionError);
}

TEST(ComponentsTest, EmptyGraphIsConnected) {
  const Graph g(0, {});
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(connected_components(g).largest_size(), 0u);
}

TEST(ComponentsTest, LabelsAreDiscoveryOrdered) {
  const Graph g(4, std::vector<Edge>{{2, 3, 1.0}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.label[0], 0u);
  EXPECT_EQ(c.label[1], 1u);
  EXPECT_EQ(c.label[2], 2u);
  EXPECT_EQ(c.label[3], 2u);
}

}  // namespace
}  // namespace mdg::graph

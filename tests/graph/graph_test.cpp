#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/assert.h"

namespace mdg::graph {
namespace {

Graph path_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t v = 0; v + 1 < n; ++v) {
    edges.push_back({v, v + 1, 1.0});
  }
  return Graph(n, edges);
}

TEST(GraphTest, EmptyGraph) {
  const Graph g(0, {});
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(GraphTest, IsolatedVertices) {
  const Graph g(5, {});
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.neighbors(v).empty());
  }
}

TEST(GraphTest, CsrNeighborsBothDirections) {
  const std::vector<Edge> edges{{0, 1, 2.0}, {1, 2, 3.0}};
  const Graph g(3, edges);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 2.0);
  // Vertex 1 sees both 0 and 2.
  std::vector<std::size_t> nbrs;
  for (const Arc& a : g.neighbors(1)) {
    nbrs.push_back(a.to);
  }
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<std::size_t>{0, 2}));
}

TEST(GraphTest, EdgesNormalized) {
  const std::vector<Edge> edges{{2, 0, 1.5}};
  const Graph g(3, edges);
  EXPECT_EQ(g.edges()[0].u, 0u);
  EXPECT_EQ(g.edges()[0].v, 2u);
}

TEST(GraphTest, AverageDegree) {
  const Graph g = path_graph(4);  // 3 edges, 4 vertices
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(GraphTest, RejectsBadEdges) {
  EXPECT_THROW(Graph(2, std::vector<Edge>{{0, 2, 1.0}}),
               mdg::PreconditionError);
  EXPECT_THROW(Graph(2, std::vector<Edge>{{1, 1, 1.0}}),
               mdg::PreconditionError);
  EXPECT_THROW(Graph(2, std::vector<Edge>{{0, 1, -1.0}}),
               mdg::PreconditionError);
}

TEST(GraphTest, NeighborsOutOfRangeThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)g.neighbors(3), mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::graph

#include "cover/coverage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::cover {
namespace {

net::SensorNetwork line_network(double range = 12.0) {
  // Chain of sensors 10 m apart plus a far-away loner.
  std::vector<geom::Point> pts{{10.0, 50.0}, {20.0, 50.0}, {30.0, 50.0},
                               {90.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  return net::SensorNetwork(std::move(pts), field.center(), field, range);
}

TEST(CoverageMatrixTest, SensorSitesAreFeasible) {
  const auto network = line_network();
  const CoverageMatrix matrix(network, {});
  EXPECT_EQ(matrix.sensor_count(), 4u);
  EXPECT_EQ(matrix.candidate_count(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(matrix.covering(s).empty());
  }
}

TEST(CoverageMatrixTest, CoverSetsMatchGeometry) {
  const auto network = line_network();
  const CoverageMatrix matrix(network, {});
  // Candidate at sensor 1 (20,50) covers sensors 0,1,2 with Rs=12.
  EXPECT_EQ(matrix.covered_by(1), (std::vector<std::size_t>{0, 1, 2}));
  // The loner only covers itself.
  EXPECT_EQ(matrix.covered_by(3), (std::vector<std::size_t>{3}));
}

TEST(CoverageMatrixTest, CoveringIsInverseOfCoveredBy) {
  Rng rng(5);
  const auto network = net::make_uniform_network(100, 150.0, 25.0, rng);
  const CoverageMatrix matrix(network, {});
  for (std::size_t c = 0; c < matrix.candidate_count(); ++c) {
    for (std::size_t s : matrix.covered_by(c)) {
      const auto& pool = matrix.covering(s);
      EXPECT_TRUE(std::find(pool.begin(), pool.end(), c) != pool.end());
    }
  }
  for (std::size_t s = 0; s < matrix.sensor_count(); ++s) {
    for (std::size_t c : matrix.covering(s)) {
      const auto& covered = matrix.covered_by(c);
      EXPECT_TRUE(std::find(covered.begin(), covered.end(), s) !=
                  covered.end());
    }
  }
}

TEST(CoverageMatrixTest, GridPolicyCoversEverySensor) {
  Rng rng(7);
  const auto network = net::make_uniform_network(150, 200.0, 30.0, rng);
  CandidateOptions options;
  options.policy = CandidatePolicy::kGrid;
  options.grid_spacing = 20.0;
  const CoverageMatrix matrix(network, options);
  for (std::size_t s = 0; s < matrix.sensor_count(); ++s) {
    EXPECT_FALSE(matrix.covering(s).empty());
  }
}

TEST(CoverageMatrixTest, CoarseGridFallsBackToSensorSites) {
  // Spacing far above Rs*sqrt(2): grid points cannot cover everyone, so
  // the fallback must add sensor sites.
  Rng rng(9);
  const auto network = net::make_uniform_network(50, 200.0, 10.0, rng);
  CandidateOptions options;
  options.policy = CandidatePolicy::kGrid;
  options.grid_spacing = 80.0;
  const CoverageMatrix matrix(network, options);
  for (std::size_t s = 0; s < matrix.sensor_count(); ++s) {
    EXPECT_FALSE(matrix.covering(s).empty());
  }
}

TEST(CoverageMatrixTest, SitesAndGridSupersetOfSites) {
  Rng rng(11);
  const auto network = net::make_uniform_network(80, 100.0, 20.0, rng);
  const CoverageMatrix sites(network, {});
  CandidateOptions both_options;
  both_options.policy = CandidatePolicy::kSensorSitesAndGrid;
  both_options.grid_spacing = 25.0;
  const CoverageMatrix both(network, both_options);
  EXPECT_GT(both.candidate_count(), sites.candidate_count());
}

TEST(CoverageMatrixTest, IntersectionCandidatesCoverPairs) {
  // Two sensors 30 m apart with Rs = 20: the disk intersections cover
  // both at once.
  std::vector<geom::Point> pts{{40.0, 50.0}, {70.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   20.0);
  CandidateOptions options;
  options.policy = CandidatePolicy::kSensorSitesAndIntersections;
  const CoverageMatrix matrix(network, options);
  bool has_pair_candidate = false;
  for (std::size_t c = 0; c < matrix.candidate_count(); ++c) {
    if (matrix.covered_by(c).size() == 2) {
      has_pair_candidate = true;
    }
  }
  EXPECT_TRUE(has_pair_candidate);
}

TEST(CoverageMatrixTest, IsCoverChecks) {
  const auto network = line_network();
  const CoverageMatrix matrix(network, {});
  EXPECT_TRUE(matrix.is_cover({1, 3}));   // middle covers 0-2, loner itself
  EXPECT_FALSE(matrix.is_cover({1}));     // loner uncovered
  EXPECT_FALSE(matrix.is_cover({}));
  EXPECT_THROW((void)matrix.is_cover({99}), mdg::PreconditionError);
}

TEST(CoverageMatrixTest, UselessCandidatesDropped) {
  // Grid cells far from any sensor must not become candidates.
  std::vector<geom::Point> pts{{10.0, 10.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), {50.0, 50.0}, field, 10.0);
  CandidateOptions options;
  options.policy = CandidatePolicy::kGrid;
  options.grid_spacing = 10.0;
  const CoverageMatrix matrix(network, options);
  for (std::size_t c = 0; c < matrix.candidate_count(); ++c) {
    EXPECT_FALSE(matrix.covered_by(c).empty());
  }
  EXPECT_LT(matrix.candidate_count(), 10u);
}

TEST(CoverageMatrixTest, PolicyNames) {
  EXPECT_STREQ(to_string(CandidatePolicy::kSensorSites), "sensor-sites");
  EXPECT_STREQ(to_string(CandidatePolicy::kGrid), "grid");
  EXPECT_STREQ(to_string(CandidatePolicy::kSensorSitesAndGrid), "sites+grid");
  EXPECT_STREQ(to_string(CandidatePolicy::kSensorSitesAndIntersections),
               "sites+intersections");
}

TEST(CoverageMatrixTest, RejectsBadSpacing) {
  const auto network = line_network();
  CandidateOptions options;
  options.grid_spacing = 0.0;
  EXPECT_THROW(CoverageMatrix(network, options), mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::cover

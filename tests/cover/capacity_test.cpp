#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "cover/set_cover.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::cover {
namespace {

net::SensorNetwork uniform_net(std::size_t n, double side, double rs,
                               std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

std::vector<std::size_t> loads(const CapacitatedCoverResult& result) {
  std::vector<std::size_t> load(result.selected.size(), 0);
  for (std::size_t slot : result.assignment) {
    ++load[slot];
  }
  return load;
}

TEST(EnforceCapacityTest, RespectsTheBound) {
  for (std::size_t capacity : {1u, 3u, 8u, 20u}) {
    const auto network = uniform_net(120, 150.0, 30.0, capacity);
    const CoverageMatrix matrix(network, {});
    const SetCoverResult base = greedy_set_cover(matrix, network);
    const CapacitatedCoverResult capped =
        enforce_capacity(matrix, network, base.selected, capacity);
    EXPECT_EQ(capped.assignment.size(), network.size());
    for (std::size_t load : loads(capped)) {
      EXPECT_LE(load, capacity);
      EXPECT_GE(load, 1u);  // empty stops are pruned
    }
  }
}

TEST(EnforceCapacityTest, AssignmentsStayWithinRange) {
  const auto network = uniform_net(100, 140.0, 25.0, 5);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult base = greedy_set_cover(matrix, network);
  const CapacitatedCoverResult capped =
      enforce_capacity(matrix, network, base.selected, 4);
  for (std::size_t s = 0; s < network.size(); ++s) {
    const std::size_t c = capped.selected[capped.assignment[s]];
    EXPECT_TRUE(geom::within_range(network.position(s), matrix.candidate(c),
                                   network.range()));
  }
}

TEST(EnforceCapacityTest, CapacityOneIsDirectVisitScale) {
  const auto network = uniform_net(60, 120.0, 25.0, 7);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult base = greedy_set_cover(matrix, network);
  const CapacitatedCoverResult capped =
      enforce_capacity(matrix, network, base.selected, 1);
  EXPECT_EQ(capped.selected.size(), network.size());
}

TEST(EnforceCapacityTest, LooseCapacityOnlyPrunesEmptyStops) {
  const auto network = uniform_net(90, 140.0, 25.0, 9);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult base = greedy_set_cover(matrix, network);
  const CapacitatedCoverResult capped = enforce_capacity(
      matrix, network, base.selected, network.size());
  // Nothing new is selected; at most zero-load stops disappear.
  EXPECT_LE(capped.selected.size(), base.selected.size());
  for (std::size_t c : capped.selected) {
    EXPECT_TRUE(std::find(base.selected.begin(), base.selected.end(), c) !=
                base.selected.end());
  }
  EXPECT_TRUE(matrix.is_cover(capped.selected));
}

TEST(EnforceCapacityTest, TighterCapacityNeedsMorePoints) {
  const auto network = uniform_net(150, 150.0, 30.0, 11);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult base = greedy_set_cover(matrix, network);
  std::size_t previous = network.size() + 1;
  for (std::size_t capacity : {2u, 5u, 10u, 150u}) {
    const CapacitatedCoverResult capped =
        enforce_capacity(matrix, network, base.selected, capacity);
    EXPECT_LE(capped.selected.size(), previous);
    previous = capped.selected.size();
  }
}

TEST(EnforceCapacityTest, AugmentationBeatsPureGreedy) {
  // A crunch case: two sensors share one site-covering PP of capacity 1;
  // feasibility requires relocating the greedy occupant. Three collinear
  // sensors, middle one covering both ends.
  std::vector<geom::Point> pts{{40.0, 50.0}, {50.0, 50.0}, {60.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), {5.0, 5.0}, field, 11.0);
  const CoverageMatrix matrix(network, {});
  // Start from just the middle site (covers all three).
  const std::vector<std::size_t> middle_only{1};
  const CapacitatedCoverResult capped =
      enforce_capacity(matrix, network, middle_only, 1);
  EXPECT_EQ(capped.selected.size(), 3u);
  const auto final_loads = loads(capped);
  EXPECT_EQ(*std::max_element(final_loads.begin(), final_loads.end()), 1u);
}

TEST(EnforceCapacityTest, RejectsZeroCapacity) {
  const auto network = uniform_net(10, 50.0, 15.0, 13);
  const CoverageMatrix matrix(network, {});
  EXPECT_THROW(
      (void)enforce_capacity(matrix, network, {0}, 0),
      mdg::PreconditionError);
}

TEST(CapacitatedPlannerTest, SolutionValidatesAndHonorsBound) {
  const auto network = uniform_net(140, 160.0, 30.0, 17);
  const core::ShdgpInstance instance(network);
  for (std::size_t bound : {3u, 6u, 12u}) {
    core::GreedyCoverPlannerOptions options;
    options.max_pp_load = bound;
    const core::ShdgpSolution solution =
        core::GreedyCoverPlanner(options).plan(instance);
    EXPECT_NO_THROW(solution.validate(instance));
    EXPECT_LE(solution.max_pp_load(), bound);
  }
}

TEST(CapacitatedPlannerTest, BoundCostsTourLength) {
  const auto network = uniform_net(160, 170.0, 30.0, 19);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution unbounded =
      core::GreedyCoverPlanner().plan(instance);
  core::GreedyCoverPlannerOptions tight;
  tight.max_pp_load = 3;
  const core::ShdgpSolution bounded =
      core::GreedyCoverPlanner(tight).plan(instance);
  EXPECT_GT(bounded.polling_points.size(), unbounded.polling_points.size());
  EXPECT_GT(bounded.tour_length, unbounded.tour_length);
}

}  // namespace
}  // namespace mdg::cover

// The lazy-heap greedy must make byte-identical selections to the
// linear-rescan reference it replaced — gains are monotone
// non-increasing, so a popped entry whose refreshed gain matches its
// stored key is the true argmax under the (gain, anchor-distance, index)
// tie-break. These tests pin that equivalence on random instances across
// candidate policies and anchor settings.
#include <gtest/gtest.h>

#include <vector>

#include "cover/coverage.h"
#include "cover/set_cover.h"
#include "net/sensor_network.h"
#include "util/rng.h"

namespace mdg::cover {
namespace {

net::SensorNetwork random_network(std::size_t n, double side, double rs,
                                  std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

void expect_identical(const net::SensorNetwork& network,
                      const CandidateOptions& candidates,
                      const GreedyOptions& options) {
  const CoverageMatrix matrix(network, candidates);
  const SetCoverResult lazy = greedy_set_cover(matrix, network, options);
  const SetCoverResult reference =
      greedy_set_cover_reference(matrix, network, options);
  ASSERT_EQ(lazy.selected, reference.selected);
  EXPECT_EQ(lazy.assignment, reference.assignment);
}

TEST(SetCoverParityTest, IdenticalSelectionsOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto network = random_network(150, 160.0, 25.0, seed);
    GreedyOptions options;
    options.anchor = network.sink();
    expect_identical(network, {}, options);
  }
}

TEST(SetCoverParityTest, IdenticalWithoutAnchorTieBreak) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto network = random_network(120, 140.0, 30.0, seed);
    GreedyOptions options;
    options.tie_break_toward_anchor = false;
    expect_identical(network, {}, options);
  }
}

TEST(SetCoverParityTest, IdenticalOnGridCandidates) {
  // Grid candidates produce many exact gain ties (symmetric geometry) —
  // the hardest case for tie-break fidelity.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto network = random_network(100, 120.0, 25.0, seed);
    CandidateOptions candidates;
    candidates.policy = CandidatePolicy::kSensorSitesAndGrid;
    candidates.grid_spacing = 20.0;
    GreedyOptions options;
    options.anchor = network.sink();
    expect_identical(network, candidates, options);
  }
}

TEST(SetCoverParityTest, IdenticalOnDenseIntersectionCandidates) {
  const auto network = random_network(80, 100.0, 25.0, 42);
  CandidateOptions candidates;
  candidates.policy = CandidatePolicy::kSensorSitesAndIntersections;
  GreedyOptions options;
  options.anchor = network.sink();
  expect_identical(network, candidates, options);
}

}  // namespace
}  // namespace mdg::cover

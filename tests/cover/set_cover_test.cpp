#include "cover/set_cover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::cover {
namespace {

net::SensorNetwork random_network(std::size_t n, double side, double rs,
                                  std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

TEST(GreedySetCoverTest, ProducesAValidCover) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto network = random_network(120, 150.0, 25.0, seed);
    const CoverageMatrix matrix(network, {});
    const SetCoverResult result = greedy_set_cover(matrix, network);
    EXPECT_TRUE(matrix.is_cover(result.selected));
    EXPECT_EQ(result.assignment.size(), network.size());
  }
}

TEST(GreedySetCoverTest, AssignmentRespectsRange) {
  const auto network = random_network(100, 120.0, 20.0, 3);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult result = greedy_set_cover(matrix, network);
  for (std::size_t s = 0; s < network.size(); ++s) {
    const std::size_t c = result.selected[result.assignment[s]];
    EXPECT_TRUE(geom::within_range(network.position(s), matrix.candidate(c),
                                   network.range()));
  }
}

TEST(GreedySetCoverTest, AssignmentPicksNearestSelected) {
  const auto network = random_network(80, 100.0, 25.0, 7);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult result = greedy_set_cover(matrix, network);
  for (std::size_t s = 0; s < network.size(); ++s) {
    const double assigned = geom::distance(
        network.position(s),
        matrix.candidate(result.selected[result.assignment[s]]));
    for (std::size_t slot = 0; slot < result.selected.size(); ++slot) {
      const std::size_t c = result.selected[slot];
      if (geom::within_range(network.position(s), matrix.candidate(c),
                             network.range())) {
        EXPECT_LE(assigned,
                  geom::distance(network.position(s), matrix.candidate(c)) +
                      1e-9);
      }
    }
  }
}

TEST(GreedySetCoverTest, NoDuplicateSelections) {
  const auto network = random_network(150, 200.0, 30.0, 11);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult result = greedy_set_cover(matrix, network);
  std::set<std::size_t> unique(result.selected.begin(),
                               result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
}

TEST(GreedySetCoverTest, SingletonNetwork) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({{3.0, 3.0}}, field.center(), field, 2.0);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult result = greedy_set_cover(matrix, network);
  EXPECT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.assignment, (std::vector<std::size_t>{0}));
}

TEST(GreedySetCoverTest, RespectsScatteringLowerBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto network = random_network(150, 250.0, 25.0, seed);
    const CoverageMatrix matrix(network, {});
    const SetCoverResult result = greedy_set_cover(matrix, network);
    EXPECT_GE(result.selected.size(), scattering_lower_bound(network));
  }
}

TEST(GreedySetCoverTest, FarFewerPointsThanSensorsWhenDense) {
  const auto network = random_network(300, 150.0, 30.0, 13);
  const CoverageMatrix matrix(network, {});
  const SetCoverResult result = greedy_set_cover(matrix, network);
  // Dense network: each polling point should absorb many sensors.
  EXPECT_LT(result.selected.size(), network.size() / 4);
}

TEST(GreedySetCoverTest, AnchorTieBreakPullsTowardSink) {
  // Two symmetric candidate clusters; the anchor should decide ties.
  const auto network = random_network(100, 200.0, 25.0, 17);
  const CoverageMatrix matrix(network, {});
  GreedyOptions toward;
  toward.tie_break_toward_anchor = true;
  toward.anchor = network.sink();
  GreedyOptions off;
  off.tie_break_toward_anchor = false;
  const SetCoverResult with_anchor =
      greedy_set_cover(matrix, network, toward);
  const SetCoverResult without = greedy_set_cover(matrix, network, off);
  // Both are covers; the anchored version's mean PP-to-sink distance
  // must not be larger.
  const auto mean_sink_dist = [&](const SetCoverResult& r) {
    double sum = 0.0;
    for (std::size_t c : r.selected) {
      sum += geom::distance(matrix.candidate(c), network.sink());
    }
    return sum / static_cast<double>(r.selected.size());
  };
  EXPECT_LE(mean_sink_dist(with_anchor), mean_sink_dist(without) + 1e-9);
}

TEST(AssignNearestTest, RejectsNonCover) {
  const auto network = random_network(50, 100.0, 20.0, 19);
  const CoverageMatrix matrix(network, {});
  EXPECT_THROW((void)assign_nearest(matrix, network, {}),
               mdg::PreconditionError);
}

TEST(ScatteringLowerBoundTest, KnownConfigurations) {
  // Three sensors pairwise > 2*Rs apart need three polling points.
  std::vector<geom::Point> pts{{0.0, 0.0}, {50.0, 0.0}, {0.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   10.0);
  EXPECT_EQ(scattering_lower_bound(network), 3u);
}

TEST(ScatteringLowerBoundTest, DenseClusterNeedsOne) {
  std::vector<geom::Point> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   10.0);
  EXPECT_EQ(scattering_lower_bound(network), 1u);
}

TEST(ScatteringLowerBoundTest, EmptyNetwork) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({}, field.center(), field, 2.0);
  EXPECT_EQ(scattering_lower_bound(network), 0u);
}

}  // namespace
}  // namespace mdg::cover

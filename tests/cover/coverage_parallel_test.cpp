// The coverage-matrix build shards the per-candidate coverable-set
// computation across the planning pool, then merges serially in
// position order. The candidate ids, positions, and both directions of
// the relation must come out identical to the serial build — they feed
// the set-cover phase, whose selection is id-sensitive.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "cover/coverage.h"
#include "net/sensor_network.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdg::cover {
namespace {

void expect_identical(const CoverageMatrix& a, const CoverageMatrix& b) {
  ASSERT_EQ(a.candidate_count(), b.candidate_count());
  ASSERT_EQ(a.sensor_count(), b.sensor_count());
  ASSERT_EQ(a.candidates(), b.candidates());
  for (std::size_t c = 0; c < a.candidate_count(); ++c) {
    ASSERT_EQ(a.covered_by(c), b.covered_by(c)) << "candidate " << c;
  }
  for (std::size_t s = 0; s < a.sensor_count(); ++s) {
    ASSERT_EQ(a.covering(s), b.covering(s)) << "sensor " << s;
  }
}

void expect_build_thread_invariant(const net::SensorNetwork& network,
                                   const CandidateOptions& options) {
  ScopedPlanningThreads serial(1);
  const CoverageMatrix reference(network, options);
  for (const std::size_t threads : {2, 8}) {
    ScopedPlanningThreads scoped(threads);
    const CoverageMatrix parallel_built(network, options);
    expect_identical(reference, parallel_built);
  }
}

TEST(CoverageParallelTest, DenseIntersectionBuildIsThreadInvariant) {
  // Intersections on a 300-sensor field push the candidate count well
  // past the parallel-build cutoff (512).
  Rng rng(404);
  const net::SensorNetwork network =
      net::make_uniform_network(300, 250.0, 30.0, rng);
  CandidateOptions options;
  options.policy = CandidatePolicy::kSensorSitesAndIntersections;
  expect_build_thread_invariant(network, options);
}

TEST(CoverageParallelTest, GridBuildIsThreadInvariant) {
  Rng rng(405);
  const net::SensorNetwork network =
      net::make_uniform_network(150, 200.0, 25.0, rng);
  CandidateOptions options;
  options.policy = CandidatePolicy::kSensorSitesAndGrid;
  options.grid_spacing = 10.0;
  expect_build_thread_invariant(network, options);
}

TEST(CoverageParallelTest, SmallBuildBelowCutoffStillMatches) {
  // Below the cutoff the build stays serial regardless of the pool —
  // the dispatch itself must not change the result either.
  Rng rng(406);
  const net::SensorNetwork network =
      net::make_uniform_network(40, 120.0, 25.0, rng);
  expect_build_thread_invariant(network, CandidateOptions{});
}

}  // namespace
}  // namespace mdg::cover

// Brute-force cross-check of the capacitated cover on tiny instances:
// enumerate every (selection, assignment) pair to find the minimum
// number of polling points any capacity-respecting solution needs, and
// verify enforce_capacity is feasible and not wildly larger.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cover/set_cover.h"
#include "util/rng.h"

namespace mdg::cover {
namespace {

/// Minimum polling-point count over all feasible capacitated covers
/// (exponential; sensors <= ~8, candidates <= ~8).
std::size_t brute_force_min_pps(const CoverageMatrix& matrix,
                                std::size_t capacity) {
  const std::size_t m = matrix.candidate_count();
  const std::size_t n = matrix.sensor_count();
  std::size_t best = std::numeric_limits<std::size_t>::max();

  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<std::size_t> selected;
    for (std::size_t c = 0; c < m; ++c) {
      if (mask & (std::uint64_t{1} << c)) {
        selected.push_back(c);
      }
    }
    if (selected.size() >= best) {
      continue;
    }
    // Feasibility via exhaustive assignment (backtracking).
    std::vector<std::size_t> load(selected.size(), 0);
    const std::function<bool(std::size_t)> place = [&](std::size_t s) {
      if (s == n) {
        return true;
      }
      for (std::size_t i = 0; i < selected.size(); ++i) {
        const auto& pool = matrix.covering(s);
        const bool covers =
            std::find(pool.begin(), pool.end(), selected[i]) != pool.end();
        if (covers && load[i] < capacity) {
          ++load[i];
          if (place(s + 1)) {
            return true;
          }
          --load[i];
        }
      }
      return false;
    };
    if (place(0)) {
      best = selected.size();
    }
  }
  return best;
}

TEST(CapacityBruteForceTest, FeasibleAndNearMinimal) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const net::SensorNetwork network =
        net::make_uniform_network(7, 50.0, 18.0, rng);
    const CoverageMatrix matrix(network, {});
    for (std::size_t capacity : {1u, 2u, 3u}) {
      const SetCoverResult base = greedy_set_cover(matrix, network);
      const CapacitatedCoverResult got =
          enforce_capacity(matrix, network, base.selected, capacity);
      // Feasible (loads within bound is checked in capacity_test; here:
      // count against the true optimum).
      const std::size_t optimum = brute_force_min_pps(matrix, capacity);
      ASSERT_NE(optimum, std::numeric_limits<std::size_t>::max());
      EXPECT_GE(got.selected.size(), optimum);
      // Greedy + repair should stay within a small factor on these tiny
      // instances.
      EXPECT_LE(got.selected.size(), optimum + 2) << "seed " << seed
                                                  << " cap " << capacity;
    }
  }
}

TEST(CapacityBruteForceTest, CapacityOneOptimumIsSensorCount) {
  Rng rng(77);
  const net::SensorNetwork network =
      net::make_uniform_network(6, 40.0, 15.0, rng);
  const CoverageMatrix matrix(network, {});
  EXPECT_EQ(brute_force_min_pps(matrix, 1), 6u);
  const SetCoverResult base = greedy_set_cover(matrix, network);
  const CapacitatedCoverResult got =
      enforce_capacity(matrix, network, base.selected, 1);
  EXPECT_EQ(got.selected.size(), 6u);
}

}  // namespace
}  // namespace mdg::cover

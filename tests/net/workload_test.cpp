#include "net/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::net {
namespace {

SensorNetwork uniform_net(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return make_uniform_network(n, 200.0, 30.0, rng);
}

double mean_packets(std::vector<std::size_t> counts) {
  const std::size_t sum =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  return counts.empty()
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(counts.size());
}

TEST(PoissonTest, SmallLambdaMoments) {
  Rng rng(1);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(2.5));
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(PoissonTest, LargeLambdaUsesNormalApprox) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(PoissonTest, Degenerates) {
  Rng rng(3);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_THROW((void)rng.poisson(-1.0), mdg::PreconditionError);
}

TEST(WorkloadTest, BackgroundOnlyMatchesBaseRate) {
  const auto network = uniform_net(200, 5);
  WorkloadConfig config;
  config.base_rate = 2.0;
  config.events_per_round = 0.0;
  WorkloadGenerator gen(network, config, 7);
  double total = 0.0;
  const int rounds = 50;
  for (int r = 0; r < rounds; ++r) {
    total += mean_packets(gen.next_round());
  }
  EXPECT_NEAR(total / rounds, 2.0, 0.1);
  EXPECT_EQ(gen.active_events(), 0u);
}

TEST(WorkloadTest, EventsCreateSpatialBursts) {
  const auto network = uniform_net(300, 9);
  WorkloadConfig config;
  config.base_rate = 0.0;          // isolate the event traffic
  config.events_per_round = 1.0;   // roughly one event per round
  config.event_intensity = 20.0;
  WorkloadGenerator gen(network, config, 11);
  std::size_t bursty_rounds = 0;
  for (int r = 0; r < 30; ++r) {
    const auto packets = gen.next_round();
    const std::size_t hot =
        static_cast<std::size_t>(std::count_if(
            packets.begin(), packets.end(),
            [](std::size_t c) { return c > 0; }));
    if (hot > 0) {
      ++bursty_rounds;
      // Bursts are local: far fewer sensors than the whole field.
      EXPECT_LT(hot, network.size() / 2);
    }
  }
  EXPECT_GT(bursty_rounds, 10u);
  EXPECT_GT(gen.total_generated(), 0u);
}

TEST(WorkloadTest, EventsExpireAfterDuration) {
  const auto network = uniform_net(100, 13);
  // Duration 1: every event fires in its birth round and dies with it.
  WorkloadConfig one_round;
  one_round.events_per_round = 5.0;
  one_round.event_duration_rounds = 1;
  WorkloadGenerator quick(network, one_round, 15);
  for (int r = 0; r < 5; ++r) {
    (void)quick.next_round();
    EXPECT_EQ(quick.active_events(), 0u);
  }
  // Duration 3: the standing population is bounded by ~3 rounds of
  // births (events born in the last duration-1 rounds survive).
  WorkloadConfig steady = one_round;
  steady.event_duration_rounds = 3;
  WorkloadGenerator burning(network, steady, 15);
  std::size_t peak = 0;
  for (int r = 0; r < 20; ++r) {
    (void)burning.next_round();
    peak = std::max(peak, burning.active_events());
  }
  EXPECT_GT(peak, 0u);
  EXPECT_LT(peak, 40u);  // 2 surviving rounds x Poisson(5) stays small
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  const auto network = uniform_net(80, 17);
  WorkloadConfig config;
  config.events_per_round = 0.5;
  WorkloadGenerator a(network, config, 99);
  WorkloadGenerator b(network, config, 99);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(a.next_round(), b.next_round());
  }
}

TEST(WorkloadTest, ValidatesConfig) {
  const auto network = uniform_net(10, 19);
  WorkloadConfig bad;
  bad.event_radius = 0.0;
  EXPECT_THROW(WorkloadGenerator(network, bad, 1), mdg::PreconditionError);
  WorkloadConfig zero_duration;
  zero_duration.event_duration_rounds = 0;
  EXPECT_THROW(WorkloadGenerator(network, zero_duration, 1),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::net

#include "net/radio.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mdg::net {
namespace {

TEST(RadioModelTest, TxEnergyFormula) {
  RadioModel radio;
  radio.e_elec = 50e-9;
  radio.eps_amp = 100e-12;
  // 4000 bits over 30 m: 50n*4000 + 100p*4000*900 = 2e-4 + 3.6e-4.
  EXPECT_NEAR(radio.tx_energy(4000, 30.0), 5.6e-4, 1e-12);
}

TEST(RadioModelTest, RxEnergyIndependentOfDistance) {
  const RadioModel radio;
  EXPECT_DOUBLE_EQ(radio.rx_energy(4000), radio.e_elec * 4000.0);
}

TEST(RadioModelTest, ZeroDistanceStillPaysElectronics) {
  const RadioModel radio;
  EXPECT_DOUBLE_EQ(radio.tx_energy(1000, 0.0), radio.e_elec * 1000.0);
}

TEST(RadioModelTest, PacketHelpersUsePacketBits) {
  RadioModel radio;
  radio.packet_bits = 2000;
  EXPECT_DOUBLE_EQ(radio.tx_packet(10.0), radio.tx_energy(2000, 10.0));
  EXPECT_DOUBLE_EQ(radio.rx_packet(), radio.rx_energy(2000));
}

TEST(RadioModelTest, RelayIsRxPlusTx) {
  const RadioModel radio;
  EXPECT_DOUBLE_EQ(radio.relay_packet(25.0),
                   radio.rx_packet() + radio.tx_packet(25.0));
}

TEST(RadioModelTest, TwoRayModelSwitchesAtCrossover) {
  RadioModel radio;
  radio.eps_amp = 10e-12;
  radio.eps_mp = 0.0013e-12;
  const double d0 = radio.crossover_distance();
  EXPECT_NEAR(d0, std::sqrt(10e-12 / 0.0013e-12), 1e-9);  // ~87.7 m
  // Below crossover: free-space d^2 law.
  EXPECT_NEAR(radio.tx_energy(1000, 50.0),
              radio.e_elec * 1000 + 10e-12 * 1000 * 2500.0, 1e-18);
  // Above crossover: multipath d^4 law.
  const double d = 150.0;
  EXPECT_NEAR(radio.tx_energy(1000, d),
              radio.e_elec * 1000 + 0.0013e-12 * 1000 * d * d * d * d,
              1e-18);
  // The two laws agree at the crossover (continuity).
  const double below = radio.e_elec * 1000 + 10e-12 * 1000 * d0 * d0;
  const double above =
      radio.e_elec * 1000 + 0.0013e-12 * 1000 * d0 * d0 * d0 * d0;
  EXPECT_NEAR(below, above, 1e-15);
}

TEST(RadioModelTest, DefaultHasNoMultipathTerm) {
  const RadioModel radio;
  EXPECT_TRUE(std::isinf(radio.crossover_distance()));
  // Huge distance still follows the quadratic law.
  EXPECT_NEAR(radio.tx_energy(1000, 1000.0),
              radio.e_elec * 1000 + radio.eps_amp * 1000 * 1e6, 1e-12);
}

TEST(RadioModelTest, EnergyGrowsQuadraticallyWithDistance) {
  const RadioModel radio;
  const double near = radio.tx_packet(10.0) - radio.rx_packet();
  const double far = radio.tx_packet(20.0) - radio.rx_packet();
  // Amplifier part scales 4x when distance doubles.
  const double amp_near = radio.tx_packet(10.0) - radio.tx_packet(0.0);
  const double amp_far = radio.tx_packet(20.0) - radio.tx_packet(0.0);
  EXPECT_NEAR(amp_far / amp_near, 4.0, 1e-9);
  EXPECT_GT(far, near);
}

}  // namespace
}  // namespace mdg::net

#include "net/sensor_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::net {
namespace {

SensorNetwork tiny_network() {
  // Sensors on a line 10 m apart, Rs = 12 -> chain connectivity.
  std::vector<geom::Point> pts{{10.0, 50.0}, {20.0, 50.0}, {30.0, 50.0},
                               {90.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  return SensorNetwork(std::move(pts), field.center(), field, 12.0);
}

TEST(SensorNetworkTest, BasicAccessors) {
  const SensorNetwork net = tiny_network();
  EXPECT_EQ(net.size(), 4u);
  EXPECT_DOUBLE_EQ(net.range(), 12.0);
  EXPECT_EQ(net.sink(), (geom::Point{50.0, 50.0}));
  EXPECT_THROW((void)net.position(4), mdg::PreconditionError);
}

TEST(SensorNetworkTest, UnitDiskConnectivity) {
  const SensorNetwork net = tiny_network();
  const auto& g = net.connectivity();
  EXPECT_EQ(g.edge_count(), 2u);  // 0-1, 1-2; sensor 3 isolated
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(SensorNetworkTest, ComponentsDetected) {
  const SensorNetwork net = tiny_network();
  EXPECT_EQ(net.components().count, 2u);
}

TEST(SensorNetworkTest, SinkNeighbors) {
  // Sink at (50,50); nobody within 12 m in tiny_network.
  const SensorNetwork net = tiny_network();
  EXPECT_TRUE(net.sink_neighbors().empty());
  EXPECT_FALSE(net.sink_reachable_by_all());
}

TEST(SensorNetworkTest, SinkReachability) {
  std::vector<geom::Point> pts{{45.0, 50.0}, {35.0, 50.0}, {25.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const SensorNetwork net(std::move(pts), field.center(), field, 11.0);
  EXPECT_EQ(net.sink_neighbors(), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(net.sink_reachable_by_all());
}

TEST(SensorNetworkTest, CoverableFrom) {
  const SensorNetwork net = tiny_network();
  auto covered = net.coverable_from({20.0, 50.0});
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(net.coverable_from({60.0, 10.0}).empty());
}

TEST(SensorNetworkTest, NearestToSink) {
  const SensorNetwork net = tiny_network();
  const auto nearest = net.nearest_to_sink();
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(*nearest, 2u);  // (30,50) is closest to (50,50)
}

TEST(SensorNetworkTest, EmptyNetwork) {
  const auto field = geom::Aabb::square(10.0);
  const SensorNetwork net({}, field.center(), field, 2.0);
  EXPECT_EQ(net.size(), 0u);
  EXPECT_FALSE(net.nearest_to_sink().has_value());
  EXPECT_TRUE(net.sink_reachable_by_all());
}

TEST(SensorNetworkTest, RejectsBadInputs) {
  const auto field = geom::Aabb::square(10.0);
  EXPECT_THROW(
      SensorNetwork({{5.0, 5.0}}, field.center(), field, 0.0),
      mdg::PreconditionError);
  EXPECT_THROW(
      SensorNetwork({{50.0, 5.0}}, field.center(), field, 2.0),
      mdg::PreconditionError);
}

TEST(SensorNetworkTest, EdgeWeightsAreDistances) {
  std::vector<geom::Point> pts{{0.0, 0.0}, {3.0, 4.0}};
  const geom::Aabb field = geom::Aabb::square(10.0);
  const SensorNetwork net(std::move(pts), field.center(), field, 6.0);
  ASSERT_EQ(net.connectivity().edge_count(), 1u);
  EXPECT_DOUBLE_EQ(net.connectivity().edges()[0].weight, 5.0);
}

TEST(MakeUniformNetworkTest, MatchesPaperSetup) {
  Rng rng(11);
  const SensorNetwork net = make_uniform_network(200, 200.0, 30.0, rng);
  EXPECT_EQ(net.size(), 200u);
  EXPECT_EQ(net.sink(), (geom::Point{100.0, 100.0}));
  EXPECT_DOUBLE_EQ(net.field().width(), 200.0);
  // With N=200, L=200, Rs=30 the expected degree is about
  // N * pi * Rs^2 / L^2 ~ 14; allow a generous band.
  EXPECT_GT(net.connectivity().average_degree(), 8.0);
  EXPECT_LT(net.connectivity().average_degree(), 20.0);
}

TEST(MakeUniformNetworkTest, DeterministicGivenSeed) {
  Rng a(3);
  Rng b(3);
  const SensorNetwork na = make_uniform_network(50, 100.0, 20.0, a);
  const SensorNetwork nb = make_uniform_network(50, 100.0, 20.0, b);
  EXPECT_EQ(na.positions()[17], nb.positions()[17]);
  EXPECT_EQ(na.connectivity().edge_count(), nb.connectivity().edge_count());
}

}  // namespace
}  // namespace mdg::net

#include "net/deployment.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::net {
namespace {

TEST(DeployUniformTest, CountAndContainment) {
  Rng rng(1);
  const auto field = geom::Aabb::square(100.0);
  const auto pts = deploy_uniform(500, field, rng);
  EXPECT_EQ(pts.size(), 500u);
  for (const auto& p : pts) {
    EXPECT_TRUE(field.contains(p));
  }
}

TEST(DeployUniformTest, ZeroCount) {
  Rng rng(1);
  EXPECT_TRUE(deploy_uniform(0, geom::Aabb::square(10.0), rng).empty());
}

TEST(DeployUniformTest, CoversAllQuadrants) {
  Rng rng(2);
  const auto field = geom::Aabb::square(100.0);
  const auto pts = deploy_uniform(400, field, rng);
  int quadrant[4] = {0, 0, 0, 0};
  for (const auto& p : pts) {
    const int q = (p.x > 50.0 ? 1 : 0) + (p.y > 50.0 ? 2 : 0);
    ++quadrant[q];
  }
  for (int count : quadrant) {
    EXPECT_GT(count, 50);  // roughly uniform
  }
}

TEST(DeployUniformTest, RejectsDegenerateField) {
  Rng rng(1);
  const geom::Aabb degenerate{{0.0, 0.0}, {0.0, 10.0}};
  EXPECT_THROW((void)deploy_uniform(5, degenerate, rng),
               mdg::PreconditionError);
}

TEST(DeployGridJitterTest, ExactCountNoJitter) {
  Rng rng(3);
  const auto field = geom::Aabb::square(100.0);
  const auto pts = deploy_grid_jitter(25, field, 0.0, rng);
  EXPECT_EQ(pts.size(), 25u);
  // No jitter: first point at half pitch.
  EXPECT_NEAR(pts[0].x, 10.0, 1e-9);
  EXPECT_NEAR(pts[0].y, 10.0, 1e-9);
}

TEST(DeployGridJitterTest, NonSquareCountTruncates) {
  Rng rng(3);
  const auto pts =
      deploy_grid_jitter(13, geom::Aabb::square(100.0), 0.25, rng);
  EXPECT_EQ(pts.size(), 13u);
}

TEST(DeployGridJitterTest, JitterStaysInField) {
  Rng rng(4);
  const auto field = geom::Aabb::square(100.0);
  const auto pts = deploy_grid_jitter(100, field, 0.5, rng);
  for (const auto& p : pts) {
    EXPECT_TRUE(field.contains(p));
  }
}

TEST(DeployGridJitterTest, RejectsExcessJitter) {
  Rng rng(4);
  EXPECT_THROW(
      (void)deploy_grid_jitter(10, geom::Aabb::square(10.0), 0.6, rng),
      mdg::PreconditionError);
}

TEST(DeployGaussianClustersTest, ClusteredDeployment) {
  Rng rng(5);
  const auto field = geom::Aabb::square(1000.0);
  const auto pts = deploy_gaussian_clusters(300, field, 3, 20.0, rng);
  EXPECT_EQ(pts.size(), 300u);
  for (const auto& p : pts) {
    EXPECT_TRUE(field.contains(p));
  }
}

TEST(DeployGaussianClustersTest, RejectsBadParams) {
  Rng rng(5);
  EXPECT_THROW(
      (void)deploy_gaussian_clusters(10, geom::Aabb::square(10.0), 0, 1.0, rng),
      mdg::PreconditionError);
  EXPECT_THROW(
      (void)deploy_gaussian_clusters(10, geom::Aabb::square(10.0), 2, -1.0,
                                     rng),
      mdg::PreconditionError);
}

TEST(DeployTwoIslandsTest, GapIsEmpty) {
  Rng rng(6);
  const auto field = geom::Aabb::square(100.0);
  const auto pts = deploy_two_islands(200, field, 0.4, rng);
  EXPECT_EQ(pts.size(), 200u);
  // Islands occupy [0,30] and [70,100] in x.
  for (const auto& p : pts) {
    EXPECT_TRUE(p.x <= 30.0 + 1e-9 || p.x >= 70.0 - 1e-9);
  }
}

TEST(DeployTwoIslandsTest, SplitsEvenly) {
  Rng rng(7);
  const auto pts =
      deploy_two_islands(101, geom::Aabb::square(100.0), 0.5, rng);
  const auto left = static_cast<std::size_t>(
      std::count_if(pts.begin(), pts.end(),
                    [](const geom::Point& p) { return p.x < 50.0; }));
  EXPECT_EQ(left, 50u);
  EXPECT_EQ(pts.size() - left, 51u);
}

}  // namespace
}  // namespace mdg::net

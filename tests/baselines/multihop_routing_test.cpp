#include "baselines/multihop_routing.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace mdg::baselines {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

net::SensorNetwork chain_network() {
  std::vector<geom::Point> pts{{45.0, 50.0}, {35.0, 50.0}, {25.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  return net::SensorNetwork(std::move(pts), field.center(), field, 11.0);
}

TEST(MultihopRoutingTest, HopCountsOnChain) {
  const auto network = chain_network();
  const MultihopRouting routing(network);
  EXPECT_EQ(routing.hops_to_sink(0), 1u);
  EXPECT_EQ(routing.hops_to_sink(1), 2u);
  EXPECT_EQ(routing.hops_to_sink(2), 3u);
  EXPECT_EQ(routing.next_hop(0), kNone);  // uploads directly
  EXPECT_EQ(routing.next_hop(1), 0u);
  EXPECT_EQ(routing.next_hop(2), 1u);
}

TEST(MultihopRoutingTest, AnalyzeAveragesAndCoverage) {
  const auto network = chain_network();
  const MultihopResult result = MultihopRouting(network).analyze();
  EXPECT_NEAR(result.average_hops, 2.0, 1e-12);
  EXPECT_EQ(result.max_hops, 3u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

TEST(MultihopRoutingTest, TxLoadIsSubtreeSize) {
  const auto network = chain_network();
  const MultihopResult result = MultihopRouting(network).analyze();
  EXPECT_EQ(result.tx_load[0], 3u);  // relays everyone
  EXPECT_EQ(result.tx_load[1], 2u);
  EXPECT_EQ(result.tx_load[2], 1u);
}

TEST(MultihopRoutingTest, EnergyHotspotAtGateway) {
  const auto network = chain_network();
  const MultihopResult result = MultihopRouting(network).analyze();
  EXPECT_GT(result.round_energy[0], result.round_energy[1]);
  EXPECT_GT(result.round_energy[1], result.round_energy[2]);
}

TEST(MultihopRoutingTest, DisconnectedSensorsReported) {
  std::vector<geom::Point> pts{{45.0, 50.0}, {5.0, 5.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   11.0);
  const MultihopRouting routing(network);
  EXPECT_EQ(routing.hops_to_sink(1), kNone);
  const MultihopResult result = routing.analyze();
  EXPECT_DOUBLE_EQ(result.coverage, 0.5);
  EXPECT_NEAR(result.average_hops, 1.0, 1e-12);
}

TEST(MultihopRoutingTest, AverageHopsMatchesPaperScaleExample) {
  // The motivating configuration: 300 sensors, 300x300 field, sink at
  // centre — the literature reports ~5.3 average hops at Rs = 30.
  Rng rng(2008);
  const auto network = net::make_uniform_network(300, 300.0, 30.0, rng);
  const MultihopResult result = MultihopRouting(network).analyze();
  EXPECT_GT(result.average_hops, 3.5);
  EXPECT_LT(result.average_hops, 7.5);
}

TEST(MultihopRoutingTest, EnergyFairnessIsPoor) {
  // Relay routing concentrates load: Jain fairness well below 1.
  Rng rng(77);
  const auto network = net::make_uniform_network(200, 200.0, 30.0, rng);
  const MultihopResult result = MultihopRouting(network).analyze();
  EXPECT_LT(jain_fairness(result.round_energy), 0.8);
}

TEST(MultihopRoutingTest, EmptyNetwork) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({}, field.center(), field, 3.0);
  const MultihopResult result = MultihopRouting(network).analyze();
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.average_hops, 0.0);
}

}  // namespace
}  // namespace mdg::baselines

#include "baselines/cme_tracks.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::baselines {
namespace {

TEST(CmeTest, TourLengthIndependentOfSensorCount) {
  Rng rng_a(1);
  Rng rng_b(2);
  const auto sparse = net::make_uniform_network(50, 200.0, 30.0, rng_a);
  const auto dense = net::make_uniform_network(500, 200.0, 30.0, rng_b);
  const CmeScheme cme;
  EXPECT_DOUBLE_EQ(cme.run(sparse).tour_length,
                   cme.run(dense).tour_length);
}

TEST(CmeTest, TourLengthGrowsWithField) {
  Rng rng_a(3);
  Rng rng_b(4);
  const auto small = net::make_uniform_network(100, 100.0, 30.0, rng_a);
  const auto large = net::make_uniform_network(100, 400.0, 30.0, rng_b);
  const CmeScheme cme;
  EXPECT_LT(cme.run(small).tour_length, cme.run(large).tour_length);
}

TEST(CmeTest, SingleTrackThroughMiddle) {
  Rng rng(5);
  const auto network = net::make_uniform_network(50, 100.0, 30.0, rng);
  CmeOptions options;
  options.track_count = 1;
  const CmeResult result = CmeScheme(options).run(network);
  // Path: sink -> (0,50) -> (100,50) -> sink: 50 + 100 + 50.
  EXPECT_NEAR(result.tour_length, 200.0, 1e-9);
}

TEST(CmeTest, SensorsOnTrackUploadDirectly) {
  // One sensor right on the middle track.
  std::vector<geom::Point> pts{{30.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   10.0);
  CmeOptions options;
  options.track_count = 1;
  const CmeResult result = CmeScheme(options).run(network);
  EXPECT_EQ(result.upload_hops[0], 1u);
  EXPECT_DOUBLE_EQ(result.average_hops, 1.0);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

TEST(CmeTest, FarSensorsRelayMultihop) {
  // Chain from the track outward: 50 (on track), 62, 74 with Rs=13.
  std::vector<geom::Point> pts{{50.0, 55.0}, {50.0, 67.0}, {50.0, 79.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   13.0);
  CmeOptions options;
  options.track_count = 1;  // track at y = 50
  const CmeResult result = CmeScheme(options).run(network);
  EXPECT_EQ(result.upload_hops[0], 1u);  // |55-50| <= 13
  EXPECT_EQ(result.upload_hops[1], 2u);
  EXPECT_EQ(result.upload_hops[2], 3u);
}

TEST(CmeTest, DisconnectedSensorsUncovered) {
  std::vector<geom::Point> pts{{50.0, 52.0}, {50.0, 95.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   5.0);
  CmeOptions options;
  options.track_count = 1;
  const CmeResult result = CmeScheme(options).run(network);
  EXPECT_EQ(result.upload_hops[1], std::numeric_limits<std::size_t>::max());
  EXPECT_DOUBLE_EQ(result.coverage, 0.5);
}

TEST(CmeTest, MultipleTracksImproveCoverage) {
  Rng rng(7);
  const auto network = net::make_uniform_network(150, 300.0, 20.0, rng);
  CmeOptions one;
  one.track_count = 1;
  CmeOptions five;
  five.track_count = 5;
  const CmeResult r1 = CmeScheme(one).run(network);
  const CmeResult r5 = CmeScheme(five).run(network);
  EXPECT_GE(r5.coverage, r1.coverage);
  EXPECT_GT(r5.tour_length, r1.tour_length);
}

TEST(CmeTest, RejectsZeroTracks) {
  CmeOptions options;
  options.track_count = 0;
  EXPECT_THROW(CmeScheme{options}, mdg::PreconditionError);
}

TEST(CmeTest, PathIsClosedAtSink) {
  Rng rng(9);
  const auto network = net::make_uniform_network(30, 100.0, 20.0, rng);
  const CmeResult result = CmeScheme().run(network);
  ASSERT_GE(result.path.size(), 2u);
  EXPECT_EQ(result.path.front(), network.sink());
  EXPECT_EQ(result.path.back(), network.sink());
}

}  // namespace
}  // namespace mdg::baselines

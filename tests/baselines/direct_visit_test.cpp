#include "baselines/direct_visit.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mdg::baselines {
namespace {

TEST(DirectVisitTest, OnePollingPointPerSensor) {
  Rng rng(1);
  const auto network = net::make_uniform_network(80, 120.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = DirectVisitPlanner().plan(instance);
  solution.validate(instance);
  EXPECT_EQ(solution.polling_points.size(), network.size());
  EXPECT_EQ(solution.max_pp_load(), 1u);
}

TEST(DirectVisitTest, PollingPointsAreSensorSites) {
  Rng rng(2);
  const auto network = net::make_uniform_network(40, 100.0, 20.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = DirectVisitPlanner().plan(instance);
  for (std::size_t s = 0; s < network.size(); ++s) {
    const geom::Point pp = solution.polling_points[solution.assignment[s]];
    EXPECT_EQ(pp, network.position(s));
  }
}

TEST(DirectVisitTest, UploadDistanceIsZero) {
  Rng rng(3);
  const auto network = net::make_uniform_network(50, 100.0, 20.0, rng);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = DirectVisitPlanner().plan(instance);
  EXPECT_DOUBLE_EQ(solution.mean_upload_distance(instance), 0.0);
}

TEST(DirectVisitTest, TourEffortConfigurable) {
  Rng rng(4);
  const auto network = net::make_uniform_network(60, 150.0, 25.0, rng);
  const core::ShdgpInstance instance(network);
  const double cheap =
      DirectVisitPlanner(tsp::TspEffort::kConstructionOnly)
          .plan(instance)
          .tour_length;
  const double full =
      DirectVisitPlanner(tsp::TspEffort::kFull).plan(instance).tour_length;
  EXPECT_LE(full, cheap + 1e-9);
}

}  // namespace
}  // namespace mdg::baselines

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), PreconditionError);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, SingleThreadPoolDegradesToSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  // Forked RNG per index makes the parallel reduction schedule-invariant.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    const Rng base(7);
    std::vector<double> out(64);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      Rng trial = base.fork(i);
      out[i] = trial.next_double();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelForTest, DefaultPoolConvenienceOverload) {
  std::atomic<std::size_t> sum{0};
  parallel_for(100, [&sum](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace mdg

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), PreconditionError);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ManySmallTasksUnderContention) {
  // The bench harness's worst case: tens of thousands of near-empty
  // tasks hammering the queue lock from every worker at once.
  ThreadPool pool(8);
  std::atomic<std::size_t> counter{0};
  constexpr std::size_t kTasks = 20000;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, ReusableAcrossManyDrains) {
  // wait_idle() must leave the pool fully usable: submit/drain cycles
  // are how every bench sweep uses the process-wide pool.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 40);
  }
}

TEST(ThreadPoolTest, TaskExceptionRethrownAtWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool is drained and reusable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsReported) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&completed] {
      completed.fetch_add(1);
      throw std::runtime_error("boom");
    });
  }
  // Every task still ran; exactly one rethrow reaches the caller.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 32);
  pool.wait_idle();  // no stale error left behind
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForTest, SingleThreadPoolDegradesToSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(pool, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  // Forked RNG per index makes the parallel reduction schedule-invariant.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    const Rng base(7);
    std::vector<double> out(64);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      Rng trial = base.fork(i);
      out[i] = trial.next_double();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ParallelForTest, DefaultPoolConvenienceOverload) {
  std::atomic<std::size_t> sum{0};
  parallel_for(100, [&sum](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, IterationExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 200,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("iteration failed");
                              }
                            }),
               std::runtime_error);
  // Same pool, next loop runs clean.
  std::atomic<std::size_t> count{0};
  parallel_for(pool, 64, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ParallelForTest, NestedLoopsComplete) {
  // A coverage build inside a plan_many fan-out nests parallel_for two
  // deep on the same pool; the caller-helps design must not deadlock
  // even when the pool is smaller than the outer fan-out.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  parallel_for(pool, 8, [&pool, &total](std::size_t) {
    parallel_for(pool, 64, [&total](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 64u);
}

TEST(ParallelForTest, NestedInnerExceptionReachesOuterCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 4,
                   [&pool](std::size_t outer) {
                     parallel_for(pool, 16, [outer](std::size_t inner) {
                       if (outer == 2 && inner == 7) {
                         throw std::runtime_error("nested failure");
                       }
                     });
                   }),
      std::runtime_error);
  pool.wait_idle();  // drained, no stale error
}

TEST(PlanningThreadsTest, ScopedOverrideRestoresPrevious) {
  const std::size_t before = planning_threads();
  {
    ScopedPlanningThreads scoped(3);
    EXPECT_EQ(planning_threads(), 3u);
    {
      ScopedPlanningThreads inner(1);
      EXPECT_EQ(planning_threads(), 1u);
    }
    EXPECT_EQ(planning_threads(), 3u);
  }
  EXPECT_EQ(planning_threads(), before);
}

}  // namespace
}  // namespace mdg

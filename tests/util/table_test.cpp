#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.h"

namespace mdg {
namespace {

Table sample_table() {
  Table t("demo", 2);
  t.set_header({"name", "count", "ratio"});
  t.add_row({std::string("alpha"), 3LL, 0.5});
  t.add_row({std::string("beta"), 12LL, 1.25});
  return t;
}

TEST(TableTest, TracksShape) {
  const Table t = sample_table();
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 3u);
}

TEST(TableTest, FormatsCellsByType) {
  const Table t("x", 3);
  EXPECT_EQ(t.format_cell(std::string("hi")), "hi");
  EXPECT_EQ(t.format_cell(42LL), "42");
  EXPECT_EQ(t.format_cell(3.14159), "3.142");
}

TEST(TableTest, PrintContainsHeaderAndValues) {
  std::ostringstream out;
  sample_table().print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.25"), std::string::npos);
  EXPECT_NE(text.find("count"), std::string::npos);
}

TEST(TableTest, CsvRoundtrip) {
  std::ostringstream out;
  sample_table().write_csv(out);
  EXPECT_EQ(out.str(),
            "name,count,ratio\n"
            "alpha,3,0.50\n"
            "beta,12,1.25\n");
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t("esc", 0);
  t.set_header({"a"});
  t.add_row({std::string("va,l\"ue")});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a\n\"va,l\"\"ue\"\n");
}

TEST(TableTest, RowWidthMustMatchHeader) {
  Table t("bad", 1);
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({1LL}), PreconditionError);
}

TEST(TableTest, HeaderRequiredBeforeRows) {
  Table t("bad", 1);
  EXPECT_THROW(t.add_row({1LL}), PreconditionError);
}

TEST(TableTest, HeaderImmutableAfterRows) {
  Table t = sample_table();
  EXPECT_THROW(t.set_header({"x"}), PreconditionError);
}

}  // namespace
}  // namespace mdg

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mdg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(rng.next_u64());
  }
  EXPECT_GT(seen.size(), 30u);  // not a stuck state
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(RngTest, UniformRejectsEmptyInterval) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(1.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t x = rng.uniform_int(3, 10);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_int(6, 5), PreconditionError);
}

TEST(RngTest, IndexWithinBound) {
  Rng rng(17);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(25);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(RngTest, ChanceProbabilities) {
  Rng rng(27);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
  EXPECT_THROW(rng.chance(-0.1), PreconditionError);
}

TEST(RngTest, ForkIsScheduleIndependent) {
  const Rng base(99);
  Rng fork3_first = base.fork(3);
  Rng fork3_again = base.fork(3);
  EXPECT_EQ(fork3_first.next_u64(), fork3_again.next_u64());
}

TEST(RngTest, ForksAreDecorrelated) {
  const Rng base(99);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(33);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) {
    items[i] = i;
  }
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

}  // namespace
}  // namespace mdg

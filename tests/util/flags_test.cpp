#include "util/flags.h"

#include <gtest/gtest.h>

#include <array>

#include "util/assert.h"

namespace mdg {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = make_flags({"--sensors=200", "--side=150.5"});
  EXPECT_EQ(f.get_int("sensors", 0), 200);
  EXPECT_DOUBLE_EQ(f.get_double("side", 0.0), 150.5);
  f.finish();
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = make_flags({"--name", "hello", "--count", "7"});
  EXPECT_EQ(f.get_string("name", ""), "hello");
  EXPECT_EQ(f.get_int("count", 0), 7);
  f.finish();
}

TEST(FlagsTest, BooleanSwitch) {
  Flags f = make_flags({"--verbose", "--quiet=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", true));
  f.finish();
}

TEST(FlagsTest, DefaultsApplyWhenAbsent) {
  Flags f = make_flags({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_EQ(f.get_string("missing2", "d"), "d");
  EXPECT_TRUE(f.get_bool("missing3", true));
  f.finish();
}

TEST(FlagsTest, PositionalArguments) {
  Flags f = make_flags({"input.txt", "--n=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
  EXPECT_EQ(f.get_int("n", 0), 1);
  f.finish();
}

TEST(FlagsTest, UnknownFlagDetectedByFinish) {
  Flags f = make_flags({"--typo=1"});
  EXPECT_THROW(f.finish(), PreconditionError);
}

TEST(FlagsTest, DuplicateFlagRejected) {
  EXPECT_THROW(make_flags({"--x=1", "--x=2"}), PreconditionError);
}

TEST(FlagsTest, MalformedNumbersRejected) {
  Flags f = make_flags({"--n=abc", "--d=1.2.3"});
  EXPECT_THROW((void)f.get_int("n", 0), PreconditionError);
  EXPECT_THROW((void)f.get_double("d", 0.0), PreconditionError);
}

TEST(FlagsTest, OnOffBoolSpellings) {
  Flags f = make_flags({"--color=on", "--fail-fast=off"});
  EXPECT_TRUE(f.get_bool("color", false));
  EXPECT_FALSE(f.get_bool("fail-fast", true));
  f.finish();
}

TEST(FlagsTest, MalformedBoolRejected) {
  Flags f = make_flags({"--b=maybe"});
  EXPECT_THROW((void)f.get_bool("b", false), PreconditionError);
}

TEST(FlagsTest, BareDoubleDashRejected) {
  EXPECT_THROW(make_flags({"--"}), PreconditionError);
}

TEST(FlagsTest, ProgramNameCaptured) {
  const Flags f = make_flags({});
  EXPECT_EQ(f.program_name(), "prog");
}

}  // namespace
}  // namespace mdg

#include "util/log.h"

#include <gtest/gtest.h>

namespace mdg {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LogTest, DefaultIsOff) {
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
}

TEST_F(LogTest, ThresholdFilters) {
  set_log_level(LogLevel::kWarning);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarning));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, ParseNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kOff);
}

TEST_F(LogTest, RoundTripNames) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST_F(LogTest, MacroCompilesAndIsCheap) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  MDG_LOG(kDebug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);  // stream body skipped when disabled

  set_log_level(LogLevel::kDebug);
  MDG_LOG(kDebug) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, CapturesStderrOutput) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MDG_LOG(kInfo) << "hello " << 7;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[mdg:info] hello 7"), std::string::npos);
}

}  // namespace
}  // namespace mdg

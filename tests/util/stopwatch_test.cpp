#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace mdg {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = watch.elapsed_ms();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);  // generous upper bound for loaded CI machines
  EXPECT_NEAR(watch.elapsed_s(), watch.elapsed_ms() / 1e3, 1e-3);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.reset();
  EXPECT_LT(watch.elapsed_ms(), 15.0);
}

TEST(StopwatchTest, TimeMsRunsTheCallable) {
  bool ran = false;
  const double ms = Stopwatch::time_ms([&ran] {
    ran = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  EXPECT_TRUE(ran);
  EXPECT_GE(ms, 5.0);
}

TEST(StopwatchTest, MonotoneNonNegative) {
  const Stopwatch watch;
  double previous = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double now = watch.elapsed_ms();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

}  // namespace
}  // namespace mdg

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SummaryTest, EmptySamples) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummaryTest, PercentilesOfKnownData) {
  std::vector<double> data;
  for (int i = 1; i <= 101; ++i) {
    data.push_back(static_cast<double>(i));  // 1..101
  }
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.p95, 96.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
}

TEST(SummaryTest, UnsortedInputHandled) {
  const std::vector<double> data{9.0, 1.0, 5.0};
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(PercentileTest, InterpolatesBetweenSamples) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
}

TEST(PercentileTest, RejectsBadQuantile) {
  const std::vector<double> sorted{1.0};
  EXPECT_THROW((void)percentile_sorted(sorted, -0.1), PreconditionError);
  EXPECT_THROW((void)percentile_sorted(sorted, 1.1), PreconditionError);
}

TEST(MeanOfTest, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
}

TEST(JainFairnessTest, UniformIsOne) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 1.0);
}

TEST(JainFairnessTest, SingleHotspotIsOneOverN) {
  const std::vector<double> xs{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 0.25);
}

TEST(JainFairnessTest, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

}  // namespace
}  // namespace mdg

// RemovalGrid: O(1) removal + nearest-live queries must agree exactly
// with a brute-force scan over the live set — including the tie rule
// (lower index wins), because the grid backs nearest_neighbor tour
// construction whose output must be byte-identical to the reference.
#include "geom/removal_grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/point.h"
#include "util/rng.h"

namespace mdg::geom {
namespace {

// The oracle the grid must match: ascending-index scan, strict '<'.
std::size_t brute_nearest(const std::vector<Point>& pts,
                          const std::vector<char>& alive, Point center) {
  std::size_t best = RemovalGrid::npos;
  double best_d2 = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!alive[i]) continue;
    const double d2 = distance_sq(center, pts[i]);
    if (best == RemovalGrid::npos || d2 < best_d2) {
      best = i;
      best_d2 = d2;
    }
  }
  return best;
}

TEST(RemovalGridTest, StartsFullyLive) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 3}};
  RemovalGrid grid(pts, 1.0);
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.live_count(), 3u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(grid.alive(i));
  }
}

TEST(RemovalGridTest, RemoveUpdatesLiveness) {
  const std::vector<Point> pts{{0, 0}, {5, 5}, {10, 0}};
  RemovalGrid grid(pts, 2.0);
  grid.remove(1);
  EXPECT_FALSE(grid.alive(1));
  EXPECT_EQ(grid.live_count(), 2u);
  EXPECT_TRUE(grid.alive(0));
  EXPECT_TRUE(grid.alive(2));
}

TEST(RemovalGridTest, NearestSkipsRemovedPoints) {
  const std::vector<Point> pts{{0, 0}, {1, 1}, {8, 8}};
  RemovalGrid grid(pts, 1.5);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 1u);
  grid.remove(1);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 0u);
  grid.remove(0);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 2u);
}

TEST(RemovalGridTest, ExactTieBreaksTowardLowerIndex) {
  // Points 1 and 2 are mirror images around the query; a full scan with
  // strict '<' keeps the first one it sees.
  const std::vector<Point> pts{{100, 100}, {4, 0}, {-4, 0}, {0, 4}, {0, -4}};
  RemovalGrid grid(pts, 3.0);
  EXPECT_EQ(grid.nearest({0, 0}), 1u);
  grid.remove(1);
  EXPECT_EQ(grid.nearest({0, 0}), 2u);
  grid.remove(2);
  EXPECT_EQ(grid.nearest({0, 0}), 3u);
}

TEST(RemovalGridTest, NposWhenEverythingRemoved) {
  const std::vector<Point> pts{{0, 0}, {1, 1}};
  RemovalGrid grid(pts, 1.0);
  grid.remove(0);
  grid.remove(1);
  EXPECT_EQ(grid.live_count(), 0u);
  EXPECT_EQ(grid.nearest({0.5, 0.5}), RemovalGrid::npos);
}

TEST(RemovalGridTest, SinglePoint) {
  const std::vector<Point> pts{{3, 7}};
  RemovalGrid grid(pts, 1.0);
  EXPECT_EQ(grid.nearest({-100, 40}), 0u);
  grid.remove(0);
  EXPECT_EQ(grid.nearest({3, 7}), RemovalGrid::npos);
}

TEST(RemovalGridTest, MatchesBruteForceUnderInterleavedRemovals) {
  // Randomised agreement test: queries from far corners, cluster
  // centres, and the points themselves while the live set shrinks.
  Rng rng(99);
  std::vector<Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.next_double() * 200.0, rng.next_double() * 120.0});
  }
  RemovalGrid grid(pts, 9.0);
  std::vector<char> alive(pts.size(), 1);

  Rng removal(17);
  std::size_t live = pts.size();
  while (live > 0) {
    const Point probes[] = {
        {rng.next_double() * 200.0, rng.next_double() * 120.0},
        {-50.0, -50.0},
        {400.0, 300.0},
        pts[static_cast<std::size_t>(removal.next_u64() % pts.size())],
    };
    for (const Point& q : probes) {
      ASSERT_EQ(grid.nearest(q), brute_nearest(pts, alive, q))
          << "query (" << q.x << ", " << q.y << ") with " << live << " live";
    }
    // Remove a random live point.
    std::size_t victim = static_cast<std::size_t>(removal.next_u64() % pts.size());
    while (!alive[victim]) {
      victim = (victim + 1) % pts.size();
    }
    grid.remove(victim);
    alive[victim] = 0;
    --live;
    EXPECT_EQ(grid.live_count(), live);
  }
  EXPECT_EQ(grid.nearest({0, 0}), RemovalGrid::npos);
}

TEST(RemovalGridTest, DuplicatePositionsKeepLowestIndex) {
  const std::vector<Point> pts{{5, 5}, {5, 5}, {5, 5}};
  RemovalGrid grid(pts, 2.0);
  EXPECT_EQ(grid.nearest({5, 5}), 0u);
  grid.remove(0);
  EXPECT_EQ(grid.nearest({5, 5}), 1u);
}

}  // namespace
}  // namespace mdg::geom

// RemovalGrid: O(1) removal + nearest-live queries must agree exactly
// with a brute-force scan over the live set — including the tie rule
// (lower index wins), because the grid backs nearest_neighbor tour
// construction whose output must be byte-identical to the reference.
#include "geom/removal_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/point.h"
#include "net/sensor_network.h"
#include "util/rng.h"
#include "verify/generate.h"

namespace mdg::geom {
namespace {

// The oracle the grid must match: ascending-index scan, strict '<'.
std::size_t brute_nearest(const std::vector<Point>& pts,
                          const std::vector<char>& alive, Point center) {
  std::size_t best = RemovalGrid::npos;
  double best_d2 = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!alive[i]) continue;
    const double d2 = distance_sq(center, pts[i]);
    if (best == RemovalGrid::npos || d2 < best_d2) {
      best = i;
      best_d2 = d2;
    }
  }
  return best;
}

TEST(RemovalGridTest, StartsFullyLive) {
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 3}};
  RemovalGrid grid(pts, 1.0);
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.live_count(), 3u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(grid.alive(i));
  }
}

TEST(RemovalGridTest, RemoveUpdatesLiveness) {
  const std::vector<Point> pts{{0, 0}, {5, 5}, {10, 0}};
  RemovalGrid grid(pts, 2.0);
  grid.remove(1);
  EXPECT_FALSE(grid.alive(1));
  EXPECT_EQ(grid.live_count(), 2u);
  EXPECT_TRUE(grid.alive(0));
  EXPECT_TRUE(grid.alive(2));
}

TEST(RemovalGridTest, NearestSkipsRemovedPoints) {
  const std::vector<Point> pts{{0, 0}, {1, 1}, {8, 8}};
  RemovalGrid grid(pts, 1.5);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 1u);
  grid.remove(1);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 0u);
  grid.remove(0);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 2u);
}

TEST(RemovalGridTest, ExactTieBreaksTowardLowerIndex) {
  // Points 1 and 2 are mirror images around the query; a full scan with
  // strict '<' keeps the first one it sees.
  const std::vector<Point> pts{{100, 100}, {4, 0}, {-4, 0}, {0, 4}, {0, -4}};
  RemovalGrid grid(pts, 3.0);
  EXPECT_EQ(grid.nearest({0, 0}), 1u);
  grid.remove(1);
  EXPECT_EQ(grid.nearest({0, 0}), 2u);
  grid.remove(2);
  EXPECT_EQ(grid.nearest({0, 0}), 3u);
}

TEST(RemovalGridTest, NposWhenEverythingRemoved) {
  const std::vector<Point> pts{{0, 0}, {1, 1}};
  RemovalGrid grid(pts, 1.0);
  grid.remove(0);
  grid.remove(1);
  EXPECT_EQ(grid.live_count(), 0u);
  EXPECT_EQ(grid.nearest({0.5, 0.5}), RemovalGrid::npos);
}

TEST(RemovalGridTest, SinglePoint) {
  const std::vector<Point> pts{{3, 7}};
  RemovalGrid grid(pts, 1.0);
  EXPECT_EQ(grid.nearest({-100, 40}), 0u);
  grid.remove(0);
  EXPECT_EQ(grid.nearest({3, 7}), RemovalGrid::npos);
}

TEST(RemovalGridTest, MatchesBruteForceUnderInterleavedRemovals) {
  // Randomised agreement test: queries from far corners, cluster
  // centres, and the points themselves while the live set shrinks.
  Rng rng(99);
  std::vector<Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.next_double() * 200.0, rng.next_double() * 120.0});
  }
  RemovalGrid grid(pts, 9.0);
  std::vector<char> alive(pts.size(), 1);

  Rng removal(17);
  std::size_t live = pts.size();
  while (live > 0) {
    const Point probes[] = {
        {rng.next_double() * 200.0, rng.next_double() * 120.0},
        {-50.0, -50.0},
        {400.0, 300.0},
        pts[static_cast<std::size_t>(removal.next_u64() % pts.size())],
    };
    for (const Point& q : probes) {
      ASSERT_EQ(grid.nearest(q), brute_nearest(pts, alive, q))
          << "query (" << q.x << ", " << q.y << ") with " << live << " live";
    }
    // Remove a random live point.
    std::size_t victim = static_cast<std::size_t>(removal.next_u64() % pts.size());
    while (!alive[victim]) {
      victim = (victim + 1) % pts.size();
    }
    grid.remove(victim);
    alive[victim] = 0;
    --live;
    EXPECT_EQ(grid.live_count(), live);
  }
  EXPECT_EQ(grid.nearest({0, 0}), RemovalGrid::npos);
}

TEST(RemovalGridTest, DuplicatePositionsKeepLowestIndex) {
  const std::vector<Point> pts{{5, 5}, {5, 5}, {5, 5}};
  RemovalGrid grid(pts, 2.0);
  EXPECT_EQ(grid.nearest({5, 5}), 0u);
  grid.remove(0);
  EXPECT_EQ(grid.nearest({5, 5}), 1u);
}

TEST(RemovalGridTest, ReactivateRestoresAPointAtItsStoredPosition) {
  const std::vector<Point> pts{{0, 0}, {1, 1}, {8, 8}};
  RemovalGrid grid(pts, 1.5, Aabb::square(10.0));
  grid.remove(1);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 0u);
  grid.reactivate(1);
  EXPECT_TRUE(grid.alive(1));
  EXPECT_EQ(grid.live_count(), 3u);
  EXPECT_EQ(grid.nearest({0.9, 0.9}), 1u);
}

TEST(RemovalGridTest, InsertAssignsTheNextIndexAndIsQueryable) {
  const std::vector<Point> pts{{1, 1}, {9, 9}};
  RemovalGrid grid(pts, 2.0, Aabb::square(10.0));
  const std::size_t idx = grid.insert({5, 5});
  EXPECT_EQ(idx, 2u);
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.live_count(), 3u);
  EXPECT_EQ(grid.nearest({5.1, 5.1}), 2u);
  EXPECT_EQ(grid.point(2).x, 5.0);
}

TEST(RemovalGridTest, InsertOutsideTheBoundsTriggersARebuildNotACrash) {
  const std::vector<Point> pts{{1, 1}, {2, 2}};
  RemovalGrid grid(pts, 1.0, Aabb::square(4.0));
  const std::size_t idx = grid.insert({50.0, -30.0});
  EXPECT_EQ(idx, 2u);
  EXPECT_EQ(grid.nearest({49.0, -29.0}), 2u);
  // Earlier indices survive the rebuild untouched.
  EXPECT_EQ(grid.nearest({1.1, 1.1}), 0u);
}

TEST(RemovalGridTest, ClassicConstructorSupportsInsertViaRebuild) {
  // Zero-slack grid: the first insert must pay a rebuild and still
  // answer queries exactly.
  const std::vector<Point> pts{{0, 0}, {3, 3}};
  RemovalGrid grid(pts, 1.0);
  const std::size_t idx = grid.insert({1.5, 1.5});
  EXPECT_EQ(idx, 2u);
  EXPECT_EQ(grid.nearest({1.4, 1.4}), 2u);
}

TEST(RemovalGridTest, CollectWithinMatchesThePredicateAndSortsAscending) {
  const std::vector<Point> pts{{0, 0}, {3, 0}, {0, 4}, {2.9, 0.1}, {10, 10}};
  RemovalGrid grid(pts, 2.0);
  std::vector<std::size_t> out;
  grid.collect_within({0, 0}, 3.0, out);
  // {0,0} d=0, {3,0} d=3 (inclusive boundary), {2.9,0.1} d<3.
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 3}));
  grid.remove(1);
  grid.collect_within({0, 0}, 3.0, out);
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 3}));
}

/// Brute-force collect oracle: ascending ids, same inclusive predicate.
std::vector<std::size_t> brute_within(const std::vector<Point>& pts,
                                      const std::vector<char>& alive,
                                      Point center, double radius) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (alive[i] && within_range(center, pts[i], radius)) {
      out.push_back(i);
    }
  }
  return out;
}

TEST(RemovalGridTest, MixedChurnMatchesBruteForceAcrossEveryGeneratorFamily) {
  // The delta layer drives the grid with interleaved insert / remove /
  // reactivate on every deployment shape the verify generators produce
  // — including collinear, coincident and boundary degenerates. Both
  // queries must agree with the brute-force oracle at every step.
  for (const verify::GeneratorFamily family : verify::all_families()) {
    SCOPED_TRACE(verify::to_string(family));
    const net::SensorNetwork network =
        verify::generate_network(family, 42, {.sensors = 60});
    std::vector<Point> pts(network.positions().begin(),
                           network.positions().end());
    if (pts.empty()) {
      continue;  // kTiny's n = 0 corner
    }
    RemovalGrid grid(pts, 12.0, network.field());
    std::vector<char> alive(pts.size(), 1);

    Rng rng(7u + static_cast<std::uint64_t>(family));
    const geom::Aabb field = network.field();
    for (int step = 0; step < 300; ++step) {
      switch (rng.index(4)) {
        case 0: {  // insert
          const Point p{rng.uniform(field.lo.x, field.hi.x),
                        rng.uniform(field.lo.y, field.hi.y)};
          const std::size_t idx = grid.insert(p);
          ASSERT_EQ(idx, pts.size());
          pts.push_back(p);
          alive.push_back(1);
          break;
        }
        case 1: {  // remove a random live point, if any
          std::size_t victim = rng.index(pts.size());
          std::size_t tries = pts.size();
          while (tries-- > 0 && !alive[victim]) {
            victim = (victim + 1) % pts.size();
          }
          if (alive[victim]) {
            grid.remove(victim);
            alive[victim] = 0;
          }
          break;
        }
        case 2: {  // reactivate a random dead point, if any
          std::size_t victim = rng.index(pts.size());
          std::size_t tries = pts.size();
          while (tries-- > 0 && alive[victim]) {
            victim = (victim + 1) % pts.size();
          }
          if (!alive[victim]) {
            grid.reactivate(victim);
            alive[victim] = 1;
          }
          break;
        }
        default:
          break;  // query-only step
      }

      const Point probes[] = {
          {rng.uniform(field.lo.x, field.hi.x),
           rng.uniform(field.lo.y, field.hi.y)},
          pts[rng.index(pts.size())],
          {field.lo.x - 40.0, field.hi.y + 25.0},
      };
      for (const Point& q : probes) {
        ASSERT_EQ(grid.nearest(q), brute_nearest(pts, alive, q))
            << "nearest (" << q.x << ", " << q.y << ") at step " << step;
        std::vector<std::size_t> got;
        grid.collect_within(q, 20.0, got);
        ASSERT_EQ(got, brute_within(pts, alive, q, 20.0))
            << "collect_within (" << q.x << ", " << q.y << ") at step "
            << step;
      }
      const std::size_t live = static_cast<std::size_t>(
          std::count(alive.begin(), alive.end(), char(1)));
      ASSERT_EQ(grid.live_count(), live);
    }
  }
}

}  // namespace
}  // namespace mdg::geom

#include "geom/aabb.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdg::geom {
namespace {

TEST(AabbTest, SquareFactory) {
  const Aabb box = Aabb::square(200.0);
  EXPECT_DOUBLE_EQ(box.width(), 200.0);
  EXPECT_DOUBLE_EQ(box.height(), 200.0);
  EXPECT_DOUBLE_EQ(box.area(), 40'000.0);
  EXPECT_EQ(box.center(), (Point{100.0, 100.0}));
}

TEST(AabbTest, ContainsIsInclusive) {
  const Aabb box = Aabb::square(10.0);
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({10.0, 10.0}));
  EXPECT_TRUE(box.contains({5.0, 5.0}));
  EXPECT_FALSE(box.contains({10.0001, 5.0}));
  EXPECT_FALSE(box.contains({-0.0001, 5.0}));
}

TEST(AabbTest, ClampProjectsIntoBox) {
  const Aabb box = Aabb::square(10.0);
  EXPECT_EQ(box.clamp({-5.0, 5.0}), (Point{0.0, 5.0}));
  EXPECT_EQ(box.clamp({15.0, 20.0}), (Point{10.0, 10.0}));
  EXPECT_EQ(box.clamp({3.0, 4.0}), (Point{3.0, 4.0}));
}

TEST(AabbTest, BoundingOfPoints) {
  const std::vector<Point> pts{{1.0, 7.0}, {-2.0, 3.0}, {4.0, 5.0}};
  const Aabb box = Aabb::bounding(pts);
  EXPECT_EQ(box.lo, (Point{-2.0, 3.0}));
  EXPECT_EQ(box.hi, (Point{4.0, 7.0}));
}

TEST(AabbTest, BoundingOfEmptyAndSingle) {
  const Aabb empty = Aabb::bounding({});
  EXPECT_DOUBLE_EQ(empty.area(), 0.0);
  const std::vector<Point> one{{3.0, 3.0}};
  const Aabb single = Aabb::bounding(one);
  EXPECT_EQ(single.lo, single.hi);
  EXPECT_TRUE(single.contains({3.0, 3.0}));
}

}  // namespace
}  // namespace mdg::geom

#include "geom/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/deployment.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::geom {
namespace {

std::vector<std::size_t> brute_force_query(const std::vector<Point>& pts,
                                           Point center, double radius) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (within_range(pts[i], center, radius)) {
      hits.push_back(i);
    }
  }
  return hits;
}

TEST(SpatialGridTest, EmptyGrid) {
  const SpatialGrid grid(std::vector<Point>{}, 10.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.query({0.0, 0.0}, 100.0).empty());
  EXPECT_EQ(grid.nearest({0.0, 0.0}), SpatialGrid::npos);
}

TEST(SpatialGridTest, RejectsNonPositiveCellSize) {
  EXPECT_THROW(SpatialGrid(std::vector<Point>{{0.0, 0.0}}, 0.0),
               mdg::PreconditionError);
}

TEST(SpatialGridTest, SinglePoint) {
  const std::vector<Point> pts{{5.0, 5.0}};
  const SpatialGrid grid(pts, 3.0);
  EXPECT_EQ(grid.query({5.0, 5.0}, 0.1), std::vector<std::size_t>{0});
  EXPECT_TRUE(grid.query({50.0, 50.0}, 1.0).empty());
  EXPECT_EQ(grid.nearest({100.0, 100.0}), 0u);
}

TEST(SpatialGridTest, QueryMatchesBruteForceOnRandomSets) {
  Rng rng(12345);
  const auto field = Aabb::square(100.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = net::deploy_uniform(200, field, rng);
    const SpatialGrid grid(pts, 15.0);
    for (int q = 0; q < 20; ++q) {
      const Point center{rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 110.0)};
      const double radius = rng.uniform(1.0, 40.0);
      auto expected = brute_force_query(pts, center, radius);
      auto actual = grid.query(center, radius);
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << "trial " << trial << " query " << q;
    }
  }
}

TEST(SpatialGridTest, NearestMatchesBruteForce) {
  Rng rng(777);
  const auto field = Aabb::square(50.0);
  const auto pts = net::deploy_uniform(100, field, rng);
  const SpatialGrid grid(pts, 5.0);
  for (int q = 0; q < 100; ++q) {
    const Point center{rng.uniform(-20.0, 70.0), rng.uniform(-20.0, 70.0)};
    const std::size_t got = grid.nearest(center);
    double best = distance_sq(pts[got], center);
    for (const Point& p : pts) {
      EXPECT_GE(distance_sq(p, center) + 1e-12, best);
    }
  }
}

TEST(SpatialGridTest, BoundaryPointsIncluded) {
  const std::vector<Point> pts{{0.0, 0.0}, {30.0, 0.0}, {30.0001, 0.0}};
  const SpatialGrid grid(pts, 30.0);
  const auto hits = grid.query({0.0, 0.0}, 30.0);
  EXPECT_EQ(hits.size(), 2u);  // exact-range point included, beyond excluded
}

TEST(SpatialGridTest, ForEachAvoidsDuplicates) {
  Rng rng(31);
  const auto pts = net::deploy_uniform(500, Aabb::square(100.0), rng);
  const SpatialGrid grid(pts, 10.0);
  std::vector<int> seen(pts.size(), 0);
  grid.for_each_in_radius({50.0, 50.0}, 25.0,
                          [&seen](std::size_t i) { ++seen[i]; });
  for (int count : seen) {
    EXPECT_LE(count, 1);
  }
}

TEST(SpatialGridTest, TinyCellSizeStillCorrect) {
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  const SpatialGrid grid(pts, 0.25);
  const auto hits = grid.query({1.0, 1.0}, 1.5);
  EXPECT_EQ(hits.size(), 3u);
}

}  // namespace
}  // namespace mdg::geom

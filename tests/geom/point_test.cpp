#include "geom/point.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mdg::geom {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -4.0};
  EXPECT_EQ(a + b, (Point{4.0, -2.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Point{1.5, -2.0}));
}

TEST(PointTest, Distances) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance_sq(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(norm(b), 5.0);
}

TEST(PointTest, DotAndCross) {
  const Point a{1.0, 0.0};
  const Point b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cross(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(b, a), -1.0);
}

TEST(PointTest, LerpAndMidpoint) {
  const Point a{0.0, 0.0};
  const Point b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Point{5.0, 10.0}));
  EXPECT_EQ(midpoint(a, b), (Point{5.0, 10.0}));
}

TEST(PointTest, Centroid) {
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  EXPECT_EQ(centroid(pts), (Point{1.0, 1.0}));
  EXPECT_EQ(centroid({}), (Point{0.0, 0.0}));
}

TEST(PointTest, PolylineLength) {
  const std::vector<Point> pts{{0.0, 0.0}, {3.0, 4.0}, {3.0, 8.0}};
  EXPECT_DOUBLE_EQ(polyline_length(pts), 9.0);
  EXPECT_DOUBLE_EQ(polyline_length({}), 0.0);
  const std::vector<Point> one{{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(polyline_length(one), 0.0);
}

TEST(PointTest, ClosedTourLength) {
  // Unit square tour.
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(closed_tour_length(pts), 4.0);
  const std::vector<Point> one{{5.0, 5.0}};
  EXPECT_DOUBLE_EQ(closed_tour_length(one), 0.0);
}

TEST(PointTest, WithinRangeInclusiveBoundary) {
  const Point a{0.0, 0.0};
  EXPECT_TRUE(within_range(a, {30.0, 0.0}, 30.0));   // exactly at range
  EXPECT_TRUE(within_range(a, {29.99, 0.0}, 30.0));
  EXPECT_FALSE(within_range(a, {30.01, 0.0}, 30.0));
  EXPECT_TRUE(within_range(a, a, 0.0));  // zero range covers itself
}

}  // namespace
}  // namespace mdg::geom

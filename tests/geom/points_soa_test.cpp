#include "geom/points_soa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "geom/point.h"
#include "net/deployment.h"
#include "util/rng.h"

namespace mdg::geom {
namespace {

// Bitwise double equality: the SoA kernels promise the *same bits* as
// the scalar path, not just approximate agreement, because plan bytes
// hash these values downstream.
void expect_bits_eq(double a, double b, const char* what, std::size_t i) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << " element " << i << ": " << a << " vs " << b;
}

// Point sets that exercise every shape the kernels meet in production:
// empty, singleton, short tails below a vector width, long runs, exact
// duplicates, collinear (zero dy), and points coincident with the query
// origin (distance zero).
std::vector<std::vector<Point>> kernel_point_sets() {
  std::vector<std::vector<Point>> sets;
  sets.push_back({});                  // empty
  sets.push_back({{3.0, -4.0}});       // singleton
  for (std::size_t n : {2u, 3u, 7u, 8u, 15u, 33u, 256u}) {
    Rng rng(n * 31 + 1);
    sets.push_back(net::deploy_uniform(n, Aabb::square(100.0), rng));
  }
  {
    std::vector<Point> collinear;
    for (std::size_t i = 0; i < 40; ++i) {
      collinear.push_back({static_cast<double>(i) * 2.5, 7.0});
    }
    sets.push_back(std::move(collinear));
  }
  {
    std::vector<Point> coincident(25, Point{12.5, -3.25});
    sets.push_back(std::move(coincident));
  }
  {
    Rng rng(99);
    auto dup = net::deploy_uniform(30, Aabb::square(50.0), rng);
    for (std::size_t i = 0; i < 15; ++i) {
      dup.push_back(dup[i]);  // exact duplicates force min-scan ties
    }
    sets.push_back(std::move(dup));
  }
  return sets;
}

std::vector<Point> query_origins(const std::vector<Point>& pts) {
  std::vector<Point> origins{{0.0, 0.0}, {50.0, 50.0}, {-7.0, 101.0}};
  if (!pts.empty()) {
    origins.push_back(pts[pts.size() / 2]);  // coincident with a point
  }
  return origins;
}

TEST(PointsSoATest, RoundTripsThroughAosAdapters) {
  Rng rng(5);
  const auto pts = net::deploy_uniform(37, Aabb::square(80.0), rng);
  const PointsSoA soa(pts);
  ASSERT_EQ(soa.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(soa.x(i), pts[i].x);
    EXPECT_EQ(soa.y(i), pts[i].y);
    EXPECT_EQ(soa.point(i).x, pts[i].x);
    EXPECT_EQ(soa.point(i).y, pts[i].y);
  }
  const auto back = soa.to_points();
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].x, pts[i].x);
    EXPECT_EQ(back[i].y, pts[i].y);
  }
  EXPECT_TRUE(PointsSoA().empty());
}

TEST(PointsSoATest, DistanceBatchesMatchReferenceAndScalarBitwise) {
  for (const auto& pts : kernel_point_sets()) {
    const PointsSoA soa(pts);
    for (const Point origin : query_origins(pts)) {
      std::vector<double> got_sq(pts.size());
      std::vector<double> want_sq(pts.size());
      distance_sq_batch(soa.xs(), soa.ys(), origin, got_sq);
      distance_sq_batch_reference(soa.xs(), soa.ys(), origin, want_sq);
      std::vector<double> got_d(pts.size());
      distance_batch(soa.xs(), soa.ys(), origin, got_d);
      for (std::size_t i = 0; i < pts.size(); ++i) {
        expect_bits_eq(got_sq[i], want_sq[i], "distance_sq_batch", i);
        expect_bits_eq(got_sq[i], distance_sq(pts[i], origin),
                       "distance_sq scalar", i);
        expect_bits_eq(got_d[i], distance(pts[i], origin), "distance scalar",
                       i);
      }
    }
  }
}

TEST(PointsSoATest, RangeCountMatchesReferenceAndWithinRange) {
  for (const auto& pts : kernel_point_sets()) {
    const PointsSoA soa(pts);
    for (const Point origin : query_origins(pts)) {
      for (const double radius : {0.0, 10.0, 55.0, 1e6}) {
        const std::size_t got = range_count(soa.xs(), soa.ys(), origin, radius);
        EXPECT_EQ(got, range_count_reference(soa.xs(), soa.ys(), origin,
                                             radius));
        std::size_t want = 0;
        for (const Point p : pts) {
          want += within_range(p, origin, radius) ? 1 : 0;
        }
        EXPECT_EQ(got, want);
      }
    }
  }
}

TEST(PointsSoATest, RangeCountIncludesExactBoundaryPoint) {
  // A point at exactly `radius` away must count (within_range is
  // inclusive, via the shared range_bound_sq epsilon).
  const std::vector<Point> pts{{10.0, 0.0}, {0.0, 25.0}, {30.0, 40.0}};
  const PointsSoA soa(pts);
  EXPECT_EQ(range_count(soa.xs(), soa.ys(), {0.0, 0.0}, 25.0), 2u);
  EXPECT_EQ(range_count(soa.xs(), soa.ys(), {0.0, 0.0}, 50.0), 3u);
  EXPECT_EQ(range_count(soa.xs(), soa.ys(), {0.0, 0.0}, 9.999), 0u);
}

TEST(PointsSoATest, RangeCollectMatchesWithinRangeFilter) {
  for (const auto& pts : kernel_point_sets()) {
    const PointsSoA soa(pts);
    for (const Point origin : query_origins(pts)) {
      const double radius = 40.0;
      const std::size_t base = 1000;
      std::vector<std::size_t> got;
      range_collect(soa.xs(), soa.ys(), origin, radius, base, got);
      std::vector<std::size_t> want;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (within_range(pts[i], origin, radius)) {
          want.push_back(base + i);
        }
      }
      EXPECT_EQ(got, want);
    }
  }
}

TEST(PointsSoATest, RangeCollectWithIdsMatchesFilter) {
  Rng rng(17);
  const auto pts = net::deploy_uniform(120, Aabb::square(90.0), rng);
  const PointsSoA soa(pts);
  // Shuffled external ids, as a RemovalGrid cell run has after removals.
  std::vector<std::size_t> ids(pts.size());
  std::iota(ids.begin(), ids.end(), std::size_t{7});
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.index(i)]);
  }
  const Point origin{45.0, 45.0};
  const double radius = 30.0;
  std::vector<std::size_t> got;
  range_collect(soa.xs(), soa.ys(), origin, radius, ids, got);
  std::vector<std::size_t> want;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (within_range(pts[i], origin, radius)) {
      want.push_back(ids[i]);
    }
  }
  EXPECT_EQ(got, want);
}

TEST(PointsSoATest, RangeCollectSqMatchesFilterAndSkips) {
  Rng rng(23);
  const auto pts = net::deploy_uniform(150, Aabb::square(90.0), rng);
  const PointsSoA soa(pts);
  std::vector<std::size_t> ids(pts.size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const Point origin = pts[60];
  const double radius = 35.0;
  std::vector<std::pair<double, std::size_t>> got;
  range_collect_sq(soa.xs(), soa.ys(), origin, radius, ids, 60, got);
  std::vector<std::pair<double, std::size_t>> want;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != 60 && within_range(pts[i], origin, radius)) {
      want.emplace_back(distance_sq(pts[i], origin), i);
    }
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_bits_eq(got[i].first, want[i].first, "range_collect_sq", i);
    EXPECT_EQ(got[i].second, want[i].second);
  }
}

TEST(PointsSoATest, MinScanMatchesReferenceAndBreaksTiesLow) {
  for (const auto& pts : kernel_point_sets()) {
    const PointsSoA soa(pts);
    for (const Point origin : query_origins(pts)) {
      const MinScan got = min_distance_sq(soa.xs(), soa.ys(), origin);
      const MinScan want = min_distance_sq_reference(soa.xs(), soa.ys(),
                                                     origin);
      EXPECT_EQ(got.position, want.position);
      if (pts.empty()) {
        EXPECT_EQ(got.position, MinScan::npos);
        continue;
      }
      expect_bits_eq(got.distance_sq, want.distance_sq, "min_distance_sq", 0);
      // The winner truly attains the minimum and no earlier element does.
      for (std::size_t i = 0; i < got.position; ++i) {
        EXPECT_GT(distance_sq(pts[i], origin), got.distance_sq);
      }
      expect_bits_eq(distance_sq(pts[got.position], origin), got.distance_sq,
                     "winner distance", got.position);
    }
  }
}

TEST(PointsSoATest, MinScanByIdReturnsLowestIdAmongTies) {
  for (const auto& pts : kernel_point_sets()) {
    const PointsSoA soa(pts);
    // Ids shuffled so span position and id order disagree.
    std::vector<std::size_t> ids(pts.size());
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    Rng rng(pts.size() + 3);
    for (std::size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.index(i)]);
    }
    for (const Point origin : query_origins(pts)) {
      const MinScan got = min_distance_sq_by_id(soa.xs(), soa.ys(), ids,
                                                origin);
      const MinScan want = min_distance_sq_by_id_reference(soa.xs(), soa.ys(),
                                                           ids, origin);
      EXPECT_EQ(got.position, want.position);
      if (pts.empty()) {
        EXPECT_EQ(got.position, MinScan::npos);
        continue;
      }
      expect_bits_eq(got.distance_sq, want.distance_sq,
                     "min_distance_sq_by_id", 0);
      // Exhaustive oracle: minimum distance, then lowest id among ties.
      double best = distance_sq(pts[0], origin);
      std::size_t best_id = ids[0];
      for (std::size_t i = 1; i < pts.size(); ++i) {
        const double d2 = distance_sq(pts[i], origin);
        if (d2 < best || (d2 == best && ids[i] < best_id)) {
          best = d2;
          best_id = ids[i];
        }
      }
      expect_bits_eq(got.distance_sq, best, "oracle min", 0);
      EXPECT_EQ(got.position, best_id);
    }
  }
}

}  // namespace
}  // namespace mdg::geom

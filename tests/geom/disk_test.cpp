#include "geom/disk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/deployment.h"
#include "util/rng.h"

namespace mdg::geom {
namespace {

TEST(CircleTest, ContainsIsInclusive) {
  const Circle c{{0.0, 0.0}, 5.0};
  EXPECT_TRUE(c.contains({3.0, 4.0}));   // exactly on the boundary
  EXPECT_TRUE(c.contains({0.0, 0.0}));
  EXPECT_FALSE(c.contains({3.1, 4.1}));
}

TEST(CircleIntersectionTest, TwoProperIntersections) {
  const Circle a{{0.0, 0.0}, 5.0};
  const Circle b{{6.0, 0.0}, 5.0};
  const auto pts = circle_intersections(a, b);
  ASSERT_EQ(pts.size(), 2u);
  for (const Point& p : pts) {
    EXPECT_NEAR(distance(p, a.center), 5.0, 1e-9);
    EXPECT_NEAR(distance(p, b.center), 5.0, 1e-9);
  }
  // Symmetric about the x axis at x = 3.
  EXPECT_NEAR(pts[0].x, 3.0, 1e-9);
  EXPECT_NEAR(pts[1].x, 3.0, 1e-9);
  EXPECT_NEAR(pts[0].y, -pts[1].y, 1e-9);
}

TEST(CircleIntersectionTest, DisjointAndContained) {
  const Circle a{{0.0, 0.0}, 1.0};
  EXPECT_TRUE(circle_intersections(a, {{10.0, 0.0}, 1.0}).empty());
  EXPECT_TRUE(circle_intersections(a, {{0.1, 0.0}, 0.2}).empty());
  EXPECT_TRUE(circle_intersections(a, a).empty());  // concentric
}

TEST(CircleIntersectionTest, TangentCircles) {
  const Circle a{{0.0, 0.0}, 1.0};
  const Circle b{{2.0, 0.0}, 1.0};
  const auto pts = circle_intersections(a, b);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(pts[0].x, 1.0, 1e-9);
  EXPECT_NEAR(pts[0].y, 0.0, 1e-9);
}

TEST(CircumcircleTest, RightTriangle) {
  // Circumcentre of a right triangle is the hypotenuse midpoint.
  const auto c = circumcircle({0.0, 0.0}, {4.0, 0.0}, {0.0, 3.0});
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->center.x, 2.0, 1e-9);
  EXPECT_NEAR(c->center.y, 1.5, 1e-9);
  EXPECT_NEAR(c->radius, 2.5, 1e-9);
}

TEST(CircumcircleTest, CollinearReturnsNullopt) {
  EXPECT_FALSE(circumcircle({0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}).has_value());
}

TEST(SmallestEnclosingCircleTest, Degenerates) {
  EXPECT_FALSE(smallest_enclosing_circle({}).has_value());
  const std::vector<Point> one{{2.0, 3.0}};
  const auto c1 = smallest_enclosing_circle(one);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->center, (Point{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(c1->radius, 0.0);

  const std::vector<Point> two{{0.0, 0.0}, {10.0, 0.0}};
  const auto c2 = smallest_enclosing_circle(two);
  ASSERT_TRUE(c2.has_value());
  EXPECT_NEAR(c2->radius, 5.0, 1e-9);
  EXPECT_NEAR(c2->center.x, 5.0, 1e-9);
}

TEST(SmallestEnclosingCircleTest, EquilateralTriangle) {
  const double h = std::sqrt(3.0) / 2.0;
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, h}};
  const auto c = smallest_enclosing_circle(pts);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->radius, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(SmallestEnclosingCircleTest, EnclosesAllRandomPoints) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pts =
        net::deploy_uniform(3 + trial, Aabb::square(100.0), rng);
    const auto c = smallest_enclosing_circle(pts);
    ASSERT_TRUE(c.has_value());
    for (const Point& p : pts) {
      EXPECT_LE(distance(p, c->center), c->radius * (1.0 + 1e-7) + 1e-9);
    }
  }
}

TEST(SmallestEnclosingCircleTest, IsMinimalAgainstShrinking) {
  // The SEC radius should not be beatable by shrinking 1%. Spot-check via
  // the known support of a square.
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}};
  const auto c = smallest_enclosing_circle(pts);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->radius, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(c->center.x, 1.0, 1e-9);
  EXPECT_NEAR(c->center.y, 1.0, 1e-9);
}

TEST(OneDiskCoverableTest, ThresholdBehaviour) {
  const std::vector<Point> pts{{0.0, 0.0}, {6.0, 0.0}};
  EXPECT_TRUE(one_disk_coverable(pts, 3.0));    // SEC radius exactly 3
  EXPECT_FALSE(one_disk_coverable(pts, 2.9));
  EXPECT_TRUE(one_disk_coverable({}, 1.0));
  const std::vector<Point> one{{4.0, 4.0}};
  EXPECT_TRUE(one_disk_coverable(one, 0.0));
}

}  // namespace
}  // namespace mdg::geom

#include "geom/segment.h"

#include <gtest/gtest.h>

namespace mdg::geom {
namespace {

TEST(OrientationTest, BasicTriples) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, 1}), 1);   // ccw
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, -1}), -1); // cw
  EXPECT_EQ(orientation({0, 0}, {1, 1}, {2, 2}), 0);   // collinear
}

TEST(OnSegmentTest, CollinearContainment) {
  EXPECT_TRUE(on_segment({0, 0}, {1, 1}, {2, 2}));
  EXPECT_FALSE(on_segment({0, 0}, {3, 3}, {2, 2}));
  EXPECT_TRUE(on_segment({0, 0}, {0, 0}, {2, 2}));  // endpoint counts
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(SegmentsIntersectTest, SharedEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentsIntersectTest, TTouch) {
  // cd touches the interior of ab at (1, 0).
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {1, 1}));
}

TEST(ProperIntersectTest, OnlyInteriorCrossingsCount) {
  // Proper X crossing.
  EXPECT_TRUE(segments_properly_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  // Shared endpoint: not proper.
  EXPECT_FALSE(segments_properly_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  // T-touch: not proper (endpoint of cd on the interior of ab).
  EXPECT_FALSE(segments_properly_intersect({0, 0}, {2, 0}, {1, 0}, {1, 1}));
  // Collinear overlap: not proper by this predicate.
  EXPECT_FALSE(segments_properly_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Disjoint.
  EXPECT_FALSE(segments_properly_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

}  // namespace
}  // namespace mdg::geom

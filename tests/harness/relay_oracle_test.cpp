// Bounded-relay differential oracle: RelayHopPlanner vs. the
// brute-force d-hop dominating-set optimum on small instances, plus
// the d = 1 canonical byte-identity anchor, across every family.
//
// Reproduce any failure locally with:  build/tools/repro <family> <seed>
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "verify/generate.h"
#include "verify/oracle.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

using RelayOracleParam = std::tuple<GeneratorFamily, std::uint64_t>;

class RelayOracleTest : public ::testing::TestWithParam<RelayOracleParam> {};

TEST_P(RelayOracleTest, NoDepthBeatsTheBruteForceOptimum) {
  const auto [family, seed] = GetParam();
  const net::SensorNetwork network = verify::generate_network(
      family, seed, {.sensors = 10, .side = 90.0, .range = 22.0});
  const core::ShdgpInstance instance(network);
  verify::OracleOptions options;
  options.relay_hops_depths = {0, 1, 2, 3};
  const verify::OracleReport report =
      verify::run_differential(instance, options);
  EXPECT_TRUE(report.status().is_ok()) << report.status().to_string();
  // exact + five heuristics + one relay verdict per depth.
  EXPECT_EQ(report.verdicts.size(), 10u);
  std::size_t relay_verdicts = 0;
  for (const verify::PlannerVerdict& verdict : report.verdicts) {
    SCOPED_TRACE(verdict.planner);
    EXPECT_TRUE(verdict.status.is_ok()) << verdict.status.to_string();
    if (verdict.planner.rfind("relay-hop", 0) == 0) {
      ++relay_verdicts;
    }
  }
  EXPECT_EQ(relay_verdicts, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, RelayOracleTest,
    ::testing::Combine(::testing::ValuesIn(verify::all_families().begin(),
                                           verify::all_families().end()),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2})),
    [](const ::testing::TestParamInfo<RelayOracleParam>& info) {
      return std::string(verify::to_string(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mdg

// Metamorphic properties: known input transformations with provable
// output relations. Scaling by a power of two and rotating by 90° are
// *exact* in IEEE-754 (every coordinate and distance maps through exact
// operations), so those relations hold to the last bit; translation and
// sensor addition are checked through the exact planner, whose global
// optimum is insensitive to floating-point trajectory flips.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/exact_planner.h"
#include "core/greedy_cover_planner.h"
#include "core/spanning_tour_planner.h"
#include "verify/canonical.h"
#include "verify/check.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

net::SensorNetwork transformed(const net::SensorNetwork& network,
                               auto&& point_map, geom::Aabb field) {
  std::vector<geom::Point> pts;
  pts.reserve(network.size());
  for (geom::Point p : network.positions()) {
    pts.push_back(point_map(p));
  }
  return net::SensorNetwork(std::move(pts), point_map(network.sink()), field,
                            network.range(), network.radio());
}

TEST(MetamorphicTest, ScalingByTwoScalesEveryTourExactly) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kUniform, 1, {.sensors = 60, .side = 150.0});
  // Doubling every coordinate (and the range) is exact in IEEE-754:
  // every distance comparison resolves identically, so the planner's
  // trajectory is identical and the tour length exactly doubles.
  net::SensorNetwork scaled = [&] {
    std::vector<geom::Point> pts;
    for (geom::Point p : base.positions()) {
      pts.push_back({p.x * 2.0, p.y * 2.0});
    }
    return net::SensorNetwork(std::move(pts), base.sink() * 2.0,
                              {base.field().lo * 2.0, base.field().hi * 2.0},
                              base.range() * 2.0, base.radio());
  }();
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance scaled_instance(scaled);
  const core::GreedyCoverPlanner greedy;
  const core::SpanningTourPlanner spanning;
  for (const core::Planner* planner :
       std::initializer_list<const core::Planner*>{&greedy, &spanning}) {
    SCOPED_TRACE(planner->name());
    const core::ShdgpSolution a = planner->plan(instance);
    const core::ShdgpSolution b = planner->plan(scaled_instance);
    EXPECT_EQ(b.tour.order(), a.tour.order());
    EXPECT_EQ(b.tour_length, a.tour_length * 2.0);  // exact, not approximate
  }
}

TEST(MetamorphicTest, QuarterTurnPreservesEveryTourExactly) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kClusters, 2, {.sensors = 60, .side = 150.0});
  // (x, y) -> (-y, x): negation is exact, so all pairwise distances are
  // bit-identical and so is the planner trajectory.
  const double side = base.field().width();
  net::SensorNetwork rotated =
      transformed(base, [](geom::Point p) { return geom::Point{-p.y, p.x}; },
                  geom::Aabb{{-side, 0.0}, {0.0, side}});
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance rotated_instance(rotated);
  const core::GreedyCoverPlanner greedy;
  const core::SpanningTourPlanner spanning;
  for (const core::Planner* planner :
       std::initializer_list<const core::Planner*>{&greedy, &spanning}) {
    SCOPED_TRACE(planner->name());
    const core::ShdgpSolution a = planner->plan(instance);
    const core::ShdgpSolution b = planner->plan(rotated_instance);
    EXPECT_EQ(b.tour.order(), a.tour.order());
    EXPECT_EQ(b.tour_length, a.tour_length);
  }
}

TEST(MetamorphicTest, TranslationPreservesTheExactOptimum) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kUniform, 3, {.sensors = 9, .side = 80.0});
  const geom::Point shift{1000.0, -500.0};
  net::SensorNetwork moved = transformed(
      base, [&](geom::Point p) { return p + shift; },
      geom::Aabb{base.field().lo + shift, base.field().hi + shift});
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance moved_instance(moved);
  const core::ShdgpSolution a = core::ExactPlanner().plan(instance);
  const core::ShdgpSolution b = core::ExactPlanner().plan(moved_instance);
  ASSERT_TRUE(a.provably_optimal);
  ASSERT_TRUE(b.provably_optimal);
  // The global optimum is translation-invariant; only accumulated
  // floating-point rounding (~ulp per edge) may differ.
  EXPECT_NEAR(a.tour_length, b.tour_length,
              verify::length_tolerance(a.tour_length, a.tour.size()) * 100.0);
}

TEST(MetamorphicTest, AddingAnAlreadyCoveredSensorNeverLengthensTheOptimum) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kUniform, 4, {.sensors = 9, .side = 80.0});
  ASSERT_GT(base.size(), 0u);
  // A sensor coincident with an existing one has the identical coverage
  // relation, so every previously feasible plan stays feasible: the
  // exact optimum cannot increase.
  std::vector<geom::Point> pts = base.positions();
  pts.push_back(pts.front());
  net::SensorNetwork widened(std::move(pts), base.sink(), base.field(),
                             base.range(), base.radio());
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance widened_instance(widened);
  const core::ShdgpSolution before = core::ExactPlanner().plan(instance);
  const core::ShdgpSolution after = core::ExactPlanner().plan(widened_instance);
  ASSERT_TRUE(before.provably_optimal);
  ASSERT_TRUE(after.provably_optimal);
  EXPECT_LE(after.tour_length,
            before.tour_length + 1e-9 * (1.0 + before.tour_length));
}

// Input-permutation invariance holds for planners whose every choice is
// geometric: greedy-cover breaks gain ties by anchor distance (candidate
// ids never decide on instances in general position), and the exact
// planner returns the global optimum.  SpanningTourPlanner is excluded
// by design: its initial TSP over *all* sensors walks an index-order-
// dependent 2-opt trajectory, so permuting the input can land it in a
// different (equally valid) local optimum that no canonicalization of
// the output can undo.
TEST(MetamorphicTest, PermutingSensorOrderYieldsByteIdenticalCanonicalPlans) {
  for (GeneratorFamily family :
       {GeneratorFamily::kUniform, GeneratorFamily::kClusters}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " seed " +
                   std::to_string(seed));
      const net::SensorNetwork base = verify::generate_network(
          family, seed, {.sensors = 50, .side = 150.0});
      // Deterministically shuffle the sensor order.
      std::vector<std::size_t> perm(base.size());
      std::iota(perm.begin(), perm.end(), 0);
      Rng rng(seed * 1000003);
      rng.shuffle(perm);
      std::vector<geom::Point> pts;
      pts.reserve(base.size());
      for (std::size_t i : perm) {
        pts.push_back(base.position(i));
      }
      net::SensorNetwork shuffled(std::move(pts), base.sink(), base.field(),
                                  base.range(), base.radio());
      const core::ShdgpInstance instance(base);
      const core::ShdgpInstance shuffled_instance(shuffled);
      const core::GreedyCoverPlanner greedy;
      const core::ShdgpSolution a = greedy.plan(instance);
      const core::ShdgpSolution b = greedy.plan(shuffled_instance);
      EXPECT_EQ(verify::canonical_plan_bytes(instance, a),
                verify::canonical_plan_bytes(shuffled_instance, b));
    }
  }
}

TEST(MetamorphicTest, PermutingSensorOrderPreservesTheExactOptimum) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kUniform, 5, {.sensors = 9, .side = 80.0});
  std::vector<geom::Point> pts(base.positions().rbegin(),
                               base.positions().rend());
  net::SensorNetwork reversed(std::move(pts), base.sink(), base.field(),
                              base.range(), base.radio());
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance reversed_instance(reversed);
  const core::ShdgpSolution a = core::ExactPlanner().plan(instance);
  const core::ShdgpSolution b = core::ExactPlanner().plan(reversed_instance);
  ASSERT_TRUE(a.provably_optimal);
  ASSERT_TRUE(b.provably_optimal);
  EXPECT_EQ(verify::canonical_plan_bytes(instance, a),
            verify::canonical_plan_bytes(reversed_instance, b));
}

TEST(MetamorphicTest, CanonicalBytesNormalizeTourDirection) {
  const net::SensorNetwork network = verify::generate_network(
      GeneratorFamily::kUniform, 6, {.sensors = 20});
  const core::ShdgpInstance instance(network);
  core::ShdgpSolution solution = core::GreedyCoverPlanner().plan(instance);
  const std::string forward = verify::canonical_plan_bytes(instance, solution);
  // Reversing the tour (same closed cycle, opposite direction) must not
  // change the canonical bytes.
  if (solution.tour.size() > 2) {
    solution.tour.reverse_segment(1, solution.tour.size() - 1);
    std::vector<geom::Point> all{instance.sink()};
    all.insert(all.end(), solution.polling_points.begin(),
               solution.polling_points.end());
    solution.tour_length = solution.tour.length(all);
  }
  EXPECT_EQ(verify::canonical_plan_bytes(instance, solution), forward);
}

}  // namespace
}  // namespace mdg

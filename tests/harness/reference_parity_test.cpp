// Reference-kernel parity on adversarial degenerates (satellite 3):
// every optimized kernel must match its *_reference twin byte for byte
// on boundary-range and coincident instances, at sizes below AND above
// the dispatch cutoffs (kGridNearestBelow / kLazyGreedyEdgeBelow = 128,
// kLazyHeapBelow = 256 candidates — ALGORITHMS.md §cutoffs), so both
// the reference and the accelerated code path face the degenerates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/instance.h"
#include "cover/set_cover.h"
#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/matrix.h"
#include "verify/check.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

constexpr GeneratorFamily kAdversarial[] = {
    GeneratorFamily::kBoundary, GeneratorFamily::kCoincident,
    GeneratorFamily::kCollinear};

// One size per side of each dispatch cutoff.
constexpr std::size_t kConstructSizes[] = {60, 300};   // cutoffs at 128
constexpr std::size_t kCoverSizes[] = {96, 320};       // cutoff at 256

net::SensorNetwork adversarial_network(GeneratorFamily family,
                                       std::uint64_t seed,
                                       std::size_t sensors) {
  return verify::generate_network(
      family, seed, {.sensors = sensors, .side = 220.0, .range = 25.0});
}

TEST(ReferenceParityTest, NearestNeighborMatchesReferenceOnDegenerates) {
  for (GeneratorFamily family : kAdversarial) {
    for (std::size_t sensors : kConstructSizes) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " n=" +
                   std::to_string(sensors));
      const net::SensorNetwork network =
          adversarial_network(family, 21, sensors);
      std::vector<geom::Point> points{network.sink()};
      points.insert(points.end(), network.positions().begin(),
                    network.positions().end());
      const tsp::Tour fast = tsp::nearest_neighbor(points);
      const tsp::Tour reference = tsp::nearest_neighbor_reference(points);
      EXPECT_EQ(fast.order(), reference.order());
    }
  }
}

TEST(ReferenceParityTest, GreedyEdgeMatchesReferenceOnDegenerates) {
  for (GeneratorFamily family : kAdversarial) {
    for (std::size_t sensors : kConstructSizes) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " n=" +
                   std::to_string(sensors));
      const net::SensorNetwork network =
          adversarial_network(family, 22, sensors);
      std::vector<geom::Point> points{network.sink()};
      points.insert(points.end(), network.positions().begin(),
                    network.positions().end());
      const tsp::Tour fast = tsp::greedy_edge(points);
      const tsp::Tour reference = tsp::greedy_edge_reference(points);
      EXPECT_EQ(fast.order(), reference.order());
    }
  }
}

TEST(ReferenceParityTest, GreedySetCoverMatchesReferenceOnDegenerates) {
  for (GeneratorFamily family : kAdversarial) {
    for (std::size_t sensors : kCoverSizes) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " n=" +
                   std::to_string(sensors));
      const net::SensorNetwork network =
          adversarial_network(family, 23, sensors);
      const core::ShdgpInstance instance(network);
      cover::GreedyOptions options;
      options.anchor = network.sink();
      const cover::SetCoverResult fast = cover::greedy_set_cover(
          instance.coverage(), network, options);
      const cover::SetCoverResult reference = cover::greedy_set_cover_reference(
          instance.coverage(), network, options);
      EXPECT_EQ(fast.selected, reference.selected);
      EXPECT_EQ(fast.assignment, reference.assignment);
    }
  }
}

TEST(ReferenceParityTest, NeighborListTwoOptStaysValidOnDegenerates) {
  // The neighbor-list 2-opt explores a restricted move set, so tours may
  // legitimately differ from the full-scan kernel — the parity contract
  // here is: both converge to valid tours, and the accelerated kernel
  // is never worse than a small factor of the full scan.
  for (GeneratorFamily family : kAdversarial) {
    for (std::size_t sensors : kConstructSizes) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " n=" +
                   std::to_string(sensors));
      const net::SensorNetwork network =
          adversarial_network(family, 24, sensors);
      std::vector<geom::Point> points{network.sink()};
      points.insert(points.end(), network.positions().begin(),
                    network.positions().end());
      tsp::Tour full = tsp::nearest_neighbor(points);
      tsp::Tour fast = full;
      (void)tsp::two_opt(full, points);
      (void)tsp::two_opt_neighbors(fast, points);
      ASSERT_TRUE(tsp::Tour::is_permutation(fast.order()));
      ASSERT_TRUE(tsp::Tour::is_permutation(full.order()));
      const double full_len = full.length(points);
      const double fast_len = fast.length(points);
      // Coincident stacks are the worst case for the restricted move
      // set (measured ~5% there), so the sanity bound is 10%.
      EXPECT_LE(fast_len, 1.10 * full_len + 1e-9)
          << "neighbor-list 2-opt lost more than 10% vs the full scan";
    }
  }
}

TEST(ReferenceParityTest, CoincidentPointsKeepEveryKernelFinite) {
  // All sensors at a single site plus the sink: the harshest duplicate
  // case — every pairwise distance is 0 or d(site, sink).
  std::vector<geom::Point> points{{10.0, 10.0}};
  for (int i = 0; i < 40; ++i) {
    points.push_back({30.0, 30.0});
  }
  const tsp::Tour nn_fast = tsp::nearest_neighbor(points);
  const tsp::Tour nn_ref = tsp::nearest_neighbor_reference(points);
  EXPECT_EQ(nn_fast.order(), nn_ref.order());
  const tsp::Tour ge_fast = tsp::greedy_edge(points);
  const tsp::Tour ge_ref = tsp::greedy_edge_reference(points);
  EXPECT_EQ(ge_fast.order(), ge_ref.order());
}

}  // namespace
}  // namespace mdg

// Keeps the bounded-relay docs in lockstep with the code, in the
// metrics_doc_test tradition: ALGORITHMS.md must carry the
// §Bounded-relay planning rules, docs/FORMAT.md the version-2 solution
// fields, EXPERIMENTS.md the B1 frontier recipe. Stale docs fail CI,
// not reviewers.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace mdg {
namespace {

std::string read_doc(const std::string& relative) {
  const std::string path = std::string(MDG_ROOT_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(RelayDocsTest, AlgorithmsMdDocumentsBoundedRelayPlanning) {
  const std::string doc = read_doc("ALGORITHMS.md");
  for (const char* needle :
       {"Bounded-relay planning", "d-hop dominating set", "KHopClosure",
        "expand_relay_hops", "RelayHopPlanner", "relay_paths",
        "byte-identical to GreedyCoverPlanner", "relay_round_energy",
        "bench_b1_relay", "--relay-parity"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "ALGORITHMS.md is missing \"" << needle << "\"";
  }
}

TEST(RelayDocsTest, FormatMdDocumentsTheVersionTwoSolution) {
  const std::string doc = read_doc("docs/FORMAT.md");
  for (const char* needle :
       {"mdg-solution 2", "relay-hops <d>", "relays <N|0>",
        "d = 1 byte-identity anchor", "kInvalidArgument", "kDataLoss"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/FORMAT.md is missing \"" << needle << "\"";
  }
}

TEST(RelayDocsTest, ExperimentsMdCarriesTheFrontierRecipe) {
  const std::string doc = read_doc("EXPERIMENTS.md");
  for (const char* needle :
       {"bench_b1_relay", "BENCH_relay.json", "--check",
        "report_schema.json", "relay budget"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "EXPERIMENTS.md is missing \"" << needle << "\"";
  }
}

TEST(RelayDocsTest, MetricsMdDocumentsTheRelayMetrics) {
  const std::string doc = read_doc("docs/METRICS.md");
  for (const char* needle :
       {"`plan.relay_hop`", "`relay.closure_build`", "`relay.max_hops_used`",
        "`relay.relayed_sensors`"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/METRICS.md is missing \"" << needle << "\"";
  }
}

}  // namespace
}  // namespace mdg

// Metamorphic properties of bounded-relay planning: exact geometric
// equivariance (power-of-two scaling, quarter turns) and the d-sweep
// frontier trend (tour length shrinks with a larger budget, modulo
// heuristic wobble; the hotspot round energy never shrinks — relays
// pay rx+tx).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/relay_hop_planner.h"
#include "sim/energy.h"
#include "verify/canonical.h"
#include "verify/check.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

core::ShdgpSolution plan_depth(const core::ShdgpInstance& instance,
                               std::size_t d) {
  core::RelayHopPlannerOptions options;
  options.relay_hops = d;
  return core::RelayHopPlanner(options).plan(instance);
}

double max_round_energy(const core::ShdgpInstance& instance,
                        const core::ShdgpSolution& solution) {
  const std::vector<double> energy =
      sim::relay_round_energy(instance, solution);
  return energy.empty() ? 0.0
                        : *std::max_element(energy.begin(), energy.end());
}

TEST(RelayMetamorphicTest, ScalingByTwoScalesTheRelayTourExactly) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kChain, 3);
  // Doubling every coordinate and the range is exact in IEEE-754, so
  // the d-hop relation, the cover trajectory and the relay paths are
  // identical and the tour length exactly doubles.
  net::SensorNetwork scaled = [&] {
    std::vector<geom::Point> pts;
    for (geom::Point p : base.positions()) {
      pts.push_back({p.x * 2.0, p.y * 2.0});
    }
    return net::SensorNetwork(std::move(pts), base.sink() * 2.0,
                              {base.field().lo * 2.0, base.field().hi * 2.0},
                              base.range() * 2.0, base.radio());
  }();
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance scaled_instance(scaled);
  for (std::size_t d : {2u, 3u}) {
    SCOPED_TRACE(d);
    const core::ShdgpSolution a = plan_depth(instance, d);
    const core::ShdgpSolution b = plan_depth(scaled_instance, d);
    EXPECT_EQ(b.tour.order(), a.tour.order());
    EXPECT_EQ(b.relay_paths, a.relay_paths);
    EXPECT_EQ(b.tour_length, a.tour_length * 2.0);  // exact, not approximate
  }
}

TEST(RelayMetamorphicTest, QuarterTurnPreservesTheRelayPlanExactly) {
  const net::SensorNetwork base = verify::generate_network(
      GeneratorFamily::kStar, 2);
  // (x, y) -> (-y, x) keeps all pairwise distances bit-identical.
  const double side = base.field().width();
  net::SensorNetwork rotated = [&] {
    std::vector<geom::Point> pts;
    for (geom::Point p : base.positions()) {
      pts.push_back({-p.y, p.x});
    }
    return net::SensorNetwork(
        std::move(pts), geom::Point{-base.sink().y, base.sink().x},
        geom::Aabb{{-side, 0.0}, {0.0, side}}, base.range(), base.radio());
  }();
  const core::ShdgpInstance instance(base);
  const core::ShdgpInstance rotated_instance(rotated);
  for (std::size_t d : {1u, 2u}) {
    SCOPED_TRACE(d);
    const core::ShdgpSolution a = plan_depth(instance, d);
    const core::ShdgpSolution b = plan_depth(rotated_instance, d);
    EXPECT_EQ(b.tour.order(), a.tour.order());
    EXPECT_EQ(b.assignment, a.assignment);
    EXPECT_EQ(b.relay_paths, a.relay_paths);
    EXPECT_EQ(b.tour_length, a.tour_length);
  }
}

TEST(RelayMetamorphicTest, TourLengthIsNonIncreasingInTheBudget) {
  // A deeper budget only enlarges every candidate's coverage set, so
  // the OPTIMAL frontier is monotone; the greedy cover is a heuristic
  // and may wobble a step by a sliver, hence the 5% per-step slack.
  // End to end the drop must be real: d = 3 strictly undercuts the
  // visit-every-sensor extreme d = 0.
  for (GeneratorFamily family :
       {GeneratorFamily::kChain, GeneratorFamily::kStar,
        GeneratorFamily::kUniform}) {
    SCOPED_TRACE(verify::to_string(family));
    const net::SensorNetwork network = verify::generate_network(family, 5);
    const core::ShdgpInstance instance(network);
    const double at_zero = plan_depth(instance, 0).tour_length;
    double prev = at_zero;
    double last = at_zero;
    for (std::size_t d = 1; d <= 3; ++d) {
      const double len = plan_depth(instance, d).tour_length;
      EXPECT_LE(len, prev * 1.05) << "d=" << d;
      prev = len;
      last = len;
    }
    EXPECT_LT(last, at_zero);
  }
}

TEST(RelayMetamorphicTest, HotspotEnergyIsNonDecreasingInTheBudget) {
  // Deeper budgets trade collector travel for sensor radio: every
  // relayed packet charges its forwarders rx+tx, so the worst-loaded
  // sensor never gets cheaper as d grows.
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 5);
  const core::ShdgpInstance instance(network);
  double prev = max_round_energy(instance, plan_depth(instance, 0));
  for (std::size_t d = 1; d <= 3; ++d) {
    const double e = max_round_energy(instance, plan_depth(instance, d));
    EXPECT_GE(e, prev) << "d=" << d;
    prev = e;
  }
}

}  // namespace
}  // namespace mdg

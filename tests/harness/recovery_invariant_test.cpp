// Satellite of the verification harness: verify::check_recovery over
// core::replan_remaining on the PR 4 chaos scenario and on the
// breakdown edge cases — in particular a breakdown at the very last
// tour stop and at the sink itself, where the recovery sub-tour must
// still end at the sink.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/greedy_cover_planner.h"
#include "core/replan.h"
#include "fault/config_io.h"
#include "fault/fault.h"
#include "io/serialize.h"
#include "sim/mobile_sim.h"
#include "verify/check.h"
#include "verify/generate.h"

namespace mdg {
namespace {

std::vector<std::size_t> all_sensors(const core::ShdgpInstance& instance) {
  std::vector<std::size_t> everyone(instance.sensor_count());
  for (std::size_t s = 0; s < everyone.size(); ++s) {
    everyone[s] = s;
  }
  return everyone;
}

/// Point at `frac` of the way along the closed planned tour polyline.
geom::Point along_tour(const core::ShdgpInstance& instance,
                       const core::ShdgpSolution& solution, double frac) {
  std::vector<geom::Point> stops{instance.sink()};
  stops.insert(stops.end(), solution.polling_points.begin(),
               solution.polling_points.end());
  std::vector<geom::Point> path;
  for (std::size_t pos = 0; pos < solution.tour.size(); ++pos) {
    path.push_back(stops[solution.tour.at(pos)]);
  }
  path.push_back(instance.sink());  // closing leg
  double target = frac * solution.tour_length;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double leg = geom::distance(path[i], path[i + 1]);
    if (target <= leg || i + 2 == path.size()) {
      const double t = leg > 0.0 ? std::min(target / leg, 1.0) : 0.0;
      return path[i] + (path[i + 1] - path[i]) * t;
    }
    target -= leg;
  }
  return instance.sink();
}

class ChaosScenarioTest : public ::testing::Test {
 protected:
  ChaosScenarioTest()
      : network_(io::load_network(std::string(MDG_DATA_DIR) + "/small30.txt")),
        instance_(network_),
        solution_(core::GreedyCoverPlanner().plan(instance_)) {}

  net::SensorNetwork network_;
  core::ShdgpInstance instance_;
  core::ShdgpSolution solution_;
};

TEST_F(ChaosScenarioTest, GoldenScenarioPlanPassesTheInvariantChecker) {
  // The exact plan the golden chaos report pins (greedy-cover over
  // data/small30.txt) must satisfy every solution invariant.
  const core::Status status = verify::check_solution(instance_, solution_);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

TEST_F(ChaosScenarioTest, RecoveryFromEveryTourFractionEndsAtTheSink) {
  // Sweep breakdown positions along the golden tour, including 1.0 —
  // the breakdown exactly at the end of the closing leg (i.e. at the
  // sink, after the last stop).
  for (double frac : {0.0, 0.25, 0.5, 0.75, 0.999, 1.0}) {
    SCOPED_TRACE("breakdown fraction " + std::to_string(frac));
    const geom::Point breakdown = along_tour(instance_, solution_, frac);
    const core::RecoveryPlan plan =
        core::replan_remaining(instance_, breakdown, all_sensors(instance_));
    const core::Status status = verify::check_recovery(
        instance_, breakdown, plan, all_sensors(instance_));
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    // Candidates are sensor sites, so every sensor is recoverable.
    EXPECT_TRUE(plan.feasible);
    EXPECT_TRUE(plan.uncovered.empty());
  }
}

TEST_F(ChaosScenarioTest, RecoveryAtTheLastStopEndsAtTheSink) {
  ASSERT_FALSE(solution_.polling_points.empty());
  // Breakdown exactly at the final polling point of the tour.
  const std::size_t last = solution_.tour.at(solution_.tour.size() - 1);
  ASSERT_GT(last, 0u);
  const geom::Point breakdown = solution_.polling_points[last - 1];
  const core::RecoveryPlan plan =
      core::replan_remaining(instance_, breakdown, all_sensors(instance_));
  const core::Status status = verify::check_recovery(instance_, breakdown,
                                                     plan, all_sensors(instance_));
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

TEST_F(ChaosScenarioTest, EmptyRequestYieldsTheDirectDriveHome) {
  const geom::Point breakdown = along_tour(instance_, solution_, 0.4);
  const core::RecoveryPlan plan =
      core::replan_remaining(instance_, breakdown, {});
  EXPECT_TRUE(plan.stops.empty());
  EXPECT_TRUE(plan.feasible);
  // No stops: the recorded length is exactly the drive home.
  EXPECT_DOUBLE_EQ(plan.length_m, geom::distance(breakdown, instance_.sink()));
  const core::Status status =
      verify::check_recovery(instance_, breakdown, plan, {});
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

TEST_F(ChaosScenarioTest, DuplicatedAndUnsortedRequestsAreServedOnce) {
  const geom::Point breakdown = along_tour(instance_, solution_, 0.6);
  std::vector<std::size_t> requested = {5, 3, 5, 1, 3, 1, 5};
  const core::RecoveryPlan plan =
      core::replan_remaining(instance_, breakdown, requested);
  const core::Status status =
      verify::check_recovery(instance_, breakdown, plan, requested);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  std::size_t served = 0;
  for (const auto& stop : plan.stop_sensors) {
    served += stop.size();
  }
  EXPECT_EQ(served, 3u);  // 1, 3 and 5 exactly once each
}

TEST_F(ChaosScenarioTest, ForcedBreakdownSimulationSatisfiesTheChecker) {
  // End-to-end: the simulator's own breakdown branch (faults30 config
  // with the breakdown pinned at half and at full tour length) produces
  // a recovery whose invariants hold — replayed here through the same
  // replan call the simulator makes.
  auto fault_config =
      fault::load_fault_config(std::string(MDG_DATA_DIR) + "/faults30.txt");
  ASSERT_TRUE(fault_config.is_ok()) << fault_config.status().to_string();
  fault_config.value().seed = 7;
  for (double frac : {0.5, 1.0}) {
    SCOPED_TRACE("breakdown fraction " + std::to_string(frac));
    fault::FaultConfig config = fault_config.value();
    config.breakdown_prob = 1.0;
    config.breakdown_frac = frac;
    const fault::FaultPlan plan =
        fault::FaultPlan::generate(instance_, solution_, config);
    ASSERT_TRUE(plan.breakdown().enabled);
    sim::MobileSimConfig sim_config;
    sim_config.fault_plan = &plan;
    sim::MobileCollectionSim sim(instance_, solution_, sim_config);
    sim::EnergyLedger ledger(network_.size(), sim_config.initial_battery_j);
    const sim::MobileRoundReport round = sim.run_round(ledger, 0.0);
    EXPECT_TRUE(round.breakdown);
    // The simulator's recovery length must itself be a valid recovery
    // polyline: reproduce the replan at the breakdown point and compare.
    const geom::Point breakdown =
        along_tour(instance_, solution_,
                   plan.breakdown().distance_m / solution_.tour_length);
    const core::RecoveryPlan replayed = core::replan_remaining(
        instance_, breakdown, all_sensors(instance_));
    const core::Status status = verify::check_recovery(
        instance_, breakdown, replayed, all_sensors(instance_));
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }
}

TEST(RecoveryInvariantTest, HoldsAcrossGeneratedFamiliesAndBreakdowns) {
  for (verify::GeneratorFamily family : verify::all_families()) {
    const net::SensorNetwork network = verify::generate_network(
        family, 9, {.sensors = 32, .side = 140.0, .range = 24.0});
    if (network.size() == 0) {
      continue;  // kTiny may generate the empty network
    }
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution solution =
        core::GreedyCoverPlanner().plan(instance);
    for (double frac : {0.0, 0.5, 1.0}) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " fraction " +
                   std::to_string(frac));
      const geom::Point breakdown = along_tour(instance, solution, frac);
      const core::RecoveryPlan plan = core::replan_remaining(
          instance, breakdown, all_sensors(instance));
      const core::Status status = verify::check_recovery(
          instance, breakdown, plan, all_sensors(instance));
      EXPECT_TRUE(status.is_ok()) << status.to_string();
    }
  }
}

}  // namespace
}  // namespace mdg

// Differential-oracle suite: every heuristic vs. the exact planner on
// small instances, and vs. TSP lower bounds on mid-size instances.
//
// Reproduce any failure locally with:  build/tools/repro <family> <seed>
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "verify/check.h"
#include "verify/generate.h"
#include "verify/oracle.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

std::string repro_hint(GeneratorFamily family, std::uint64_t seed) {
  return "reproduce: build/tools/repro " +
         std::string(verify::to_string(family)) + " " + std::to_string(seed);
}

using OracleParam = std::tuple<GeneratorFamily, std::uint64_t>;

class SmallInstanceOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(SmallInstanceOracleTest, HeuristicsNeverBeatTheExactOptimum) {
  const auto [family, seed] = GetParam();
  SCOPED_TRACE(repro_hint(family, seed));
  // n <= 12: the exact planner proves optimality, so it is an oracle.
  const net::SensorNetwork network = verify::generate_network(
      family, seed, {.sensors = 10, .side = 90.0, .range = 22.0});
  ASSERT_LE(network.size(), 12u);
  const core::ShdgpInstance instance(network);
  const verify::OracleReport report = verify::run_differential(instance);
  EXPECT_TRUE(report.status().is_ok()) << report.status().to_string();
  if (network.size() > 0) {
    EXPECT_TRUE(report.exact_available)
        << "exact planner failed to prove optimality on a 10-sensor instance";
  }
  // The roster ran: exact + the five heuristics.
  EXPECT_EQ(report.verdicts.size(), 6u);
  for (const verify::PlannerVerdict& verdict : report.verdicts) {
    SCOPED_TRACE(verdict.planner);
    EXPECT_TRUE(verdict.status.is_ok()) << verdict.status.to_string();
    if (report.exact_available) {
      EXPECT_GE(verdict.tour_length,
                report.exact_length - 1e-9 * (1.0 + report.exact_length));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SmallInstanceOracleTest,
    ::testing::Combine(::testing::ValuesIn(verify::all_families().begin(),
                                           verify::all_families().end()),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      return std::string(verify::to_string(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

class MidSizeLowerBoundTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(MidSizeLowerBoundTest, ToursDominateTheirLowerBounds) {
  const auto [family, seed] = GetParam();
  SCOPED_TRACE(repro_hint(family, seed));
  const net::SensorNetwork network = verify::generate_network(
      family, seed, {.sensors = 200, .side = 300.0, .range = 30.0});
  const core::ShdgpInstance instance(network);
  for (const auto& planner : verify::heuristic_planners()) {
    SCOPED_TRACE(planner->name());
    const core::ShdgpSolution solution = planner->plan(instance);
    const core::Status invariants = verify::check_solution(instance, solution);
    EXPECT_TRUE(invariants.is_ok()) << invariants.to_string();
    const core::Status bound =
        verify::check_tour_lower_bound(instance, solution);
    EXPECT_TRUE(bound.is_ok()) << bound.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    StandardFamilies, MidSizeLowerBoundTest,
    ::testing::Combine(
        ::testing::ValuesIn(verify::standard_families().begin(),
                            verify::standard_families().end()),
        ::testing::Values(std::uint64_t{1})),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      return std::string(verify::to_string(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(OracleSelfTest, FlagsAFabricatedImpossiblyShortTour) {
  // The oracle itself must be falsifiable: a solution claiming a tour
  // shorter than the exact optimum has to be flagged.
  const net::SensorNetwork network = verify::generate_network(
      GeneratorFamily::kUniform, 4, {.sensors = 8, .side = 80.0});
  const core::ShdgpInstance instance(network);
  const verify::OracleReport honest = verify::run_differential(instance);
  ASSERT_TRUE(honest.exact_available);
  core::ShdgpSolution liar = verify::heuristic_planners()
                                 .front()
                                 ->plan(instance);
  const core::Status caught = verify::check_not_better_than_exact(
      [&] {
        core::ShdgpSolution s = liar;
        s.tour_length = honest.exact_length * 0.5;
        return s;
      }(),
      honest.exact_length);
  EXPECT_FALSE(caught.is_ok());
  EXPECT_NE(caught.message().find("impossible"), std::string::npos);
}

TEST(OracleSelfTest, LowerBoundCheckIsFalsifiable) {
  const net::SensorNetwork network = verify::generate_network(
      GeneratorFamily::kUniform, 5, {.sensors = 30});
  const core::ShdgpInstance instance(network);
  core::ShdgpSolution solution =
      verify::heuristic_planners().front()->plan(instance);
  solution.tour_length = 1e-6;  // below any MST over >= 2 spread stops
  EXPECT_FALSE(verify::check_tour_lower_bound(instance, solution).is_ok());
}

}  // namespace
}  // namespace mdg

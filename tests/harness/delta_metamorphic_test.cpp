// Metamorphic properties of incremental replanning: relations between
// apply_delta outputs that hold by construction, checked across the
// verify generator families.
//
//   * empty delta      — byte-identical no-op (canonical encoding)
//   * delta ∘ inverse  — restores the instance exactly; the repaired
//                        plan must pass check_solution on the restored
//                        instance and stay within the documented
//                        quality bound of a from-scratch plan
//   * determinism      — same delta, same start, same bytes
//
// The suite name carries 'Metamorphic' so the CI oracle filter picks
// it up with the other metamorphic relations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/delta.h"
#include "core/greedy_cover_planner.h"
#include "verify/canonical.h"
#include "verify/check.h"
#include "verify/generate.h"
#include "verify/oracle.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

struct Planned {
  net::SensorNetwork network;
  core::ShdgpSolution solution;
};

Planned plan_family(GeneratorFamily family, std::uint64_t seed) {
  net::SensorNetwork network =
      verify::generate_network(family, seed, {.sensors = 48, .side = 160.0});
  core::ShdgpSolution solution =
      core::GreedyCoverPlanner().plan(core::ShdgpInstance(network));
  return {std::move(network), std::move(solution)};
}

TEST(DeltaMetamorphicTest, EmptyDeltaIsAByteIdenticalNoOpOnEveryFamily) {
  for (const GeneratorFamily family : verify::standard_families()) {
    SCOPED_TRACE(verify::to_string(family));
    Planned base = plan_family(family, 11);
    core::DynamicInstance dyn(base.network);
    const std::string before =
        verify::canonical_plan_bytes(dyn.instance(), base.solution);
    const auto result = core::apply_delta(dyn, core::Delta{}, base.solution);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->ops_applied, 0u);
    EXPECT_EQ(verify::canonical_plan_bytes(dyn.instance(), base.solution),
              before);
  }
}

TEST(DeltaMetamorphicTest, DeltaThenInverseRestoresAValidBoundedPlan) {
  for (const GeneratorFamily family : verify::standard_families()) {
    SCOPED_TRACE(verify::to_string(family));
    Planned base = plan_family(family, 23);
    const std::size_t n = base.network.size();
    ASSERT_GE(n, 3u);
    core::DynamicInstance dyn(base.network);
    core::ShdgpSolution solution = base.solution;

    // Move two sensors across the field, shrink the range a notch —
    // then apply the exact inverse (the moves restored in reverse
    // order, the original range). The instance round-trips exactly:
    // positions are copied doubles, never recomputed.
    const geom::Point p0 = dyn.position(0);
    const geom::Point p2 = dyn.position(2);
    const double range = dyn.range();
    const geom::Point far{base.network.field().hi.x * 0.9,
                          base.network.field().hi.y * 0.9};
    core::Delta forward;
    forward.ops.push_back(core::DeltaOp::move_sensor(0, far));
    forward.ops.push_back(core::DeltaOp::move_sensor(2, far));
    forward.ops.push_back(core::DeltaOp::set_range(range * 0.9));
    core::Delta inverse;
    inverse.ops.push_back(core::DeltaOp::set_range(range));
    inverse.ops.push_back(core::DeltaOp::move_sensor(2, p2));
    inverse.ops.push_back(core::DeltaOp::move_sensor(0, p0));

    ASSERT_TRUE(core::apply_delta(dyn, forward, solution).is_ok());
    EXPECT_TRUE(verify::check_solution(dyn.instance(), solution).is_ok());
    ASSERT_TRUE(core::apply_delta(dyn, inverse, solution).is_ok());

    // The restored instance is the original instance (same positions,
    // same range), so the original checker must accept the plan...
    EXPECT_EQ(dyn.size(), n);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(dyn.position(s).x, base.network.positions()[s].x);
      EXPECT_EQ(dyn.position(s).y, base.network.positions()[s].y);
    }
    const core::Status valid = verify::check_solution(dyn.instance(), solution);
    EXPECT_TRUE(valid.is_ok()) << valid.to_string();

    // ...and the round-tripped plan stays within the documented repair
    // bound of a from-scratch plan on the same (original) instance.
    const double fresh = base.solution.tour_length;
    if (fresh > 0.0) {
      core::DeltaOptions options;
      EXPECT_LE(solution.tour_length,
                fresh * options.max_repair_ratio * options.max_repair_ratio)
          << "round-trip repair drifted beyond the compounded ratio bound";
    }
  }
}

TEST(DeltaMetamorphicTest, IdenticalChurnStreamsProduceIdenticalBytes) {
  for (const GeneratorFamily family :
       {GeneratorFamily::kClusters, GeneratorFamily::kBoundary}) {
    SCOPED_TRACE(verify::to_string(family));
    core::Delta churn;
    churn.ops.push_back(core::DeltaOp::add_sensor({10.0, 12.0}));
    churn.ops.push_back(core::DeltaOp::remove_sensor(1));
    churn.ops.push_back(core::DeltaOp::move_sensor(5, {80.0, 80.0}));
    std::string bytes[2];
    for (int run = 0; run < 2; ++run) {
      Planned base = plan_family(family, 31);
      core::DynamicInstance dyn(base.network);
      ASSERT_TRUE(core::apply_delta(dyn, churn, base.solution).is_ok());
      bytes[run] = verify::canonical_plan_bytes(dyn.instance(), base.solution);
    }
    EXPECT_EQ(bytes[0], bytes[1]);
  }
}

TEST(DeltaMetamorphicTest, RestoredTinyInstancesPassTheDifferentialOracle) {
  // After a churn round-trip the materialized network must be a
  // first-class citizen: every planner and every oracle check agrees
  // on it exactly as on a freshly generated network.
  Planned base = plan_family(GeneratorFamily::kGrid, 7);
  core::DynamicInstance dyn(base.network);
  core::ShdgpSolution solution = base.solution;
  const geom::Point p3 = dyn.position(3);
  core::Delta forward;
  forward.ops.push_back(
      core::DeltaOp::move_sensor(3, {base.network.field().hi.x * 0.5, 1.0}));
  core::Delta inverse;
  inverse.ops.push_back(core::DeltaOp::move_sensor(3, p3));
  ASSERT_TRUE(core::apply_delta(dyn, forward, solution).is_ok());
  ASSERT_TRUE(core::apply_delta(dyn, inverse, solution).is_ok());

  verify::OracleOptions options;
  options.exact_sensor_limit = 0;  // heuristics + invariants only
  const verify::OracleReport report =
      verify::run_differential(dyn.instance(), options);
  const core::Status status = report.status();
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

}  // namespace
}  // namespace mdg

// The d = 1 byte-identity anchor: RelayHopPlanner at the default
// budget must produce canonical plans byte-identical to the legacy
// GreedyCoverPlanner on every legacy generator family. This is the
// regression gate that lets the relay planner share the greedy
// machinery without ever disturbing existing plans.
//
// Reproduce any failure locally with:
//   build/tools/repro --relay-parity /tmp/greedy.txt /tmp/relay.txt
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/greedy_cover_planner.h"
#include "core/relay_hop_planner.h"
#include "verify/canonical.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

using ParityParam = std::tuple<GeneratorFamily, std::uint64_t>;

class RelayParityTest : public ::testing::TestWithParam<ParityParam> {};

TEST_P(RelayParityTest, DepthOneCanonicalBytesMatchGreedy) {
  const auto [family, seed] = GetParam();
  for (const verify::GeneratorOptions& options :
       {verify::GeneratorOptions{.sensors = 10, .side = 90.0, .range = 22.0},
        verify::GeneratorOptions{.sensors = 150, .side = 200.0,
                                 .range = 30.0}}) {
    SCOPED_TRACE(options.sensors);
    const net::SensorNetwork network =
        verify::generate_network(family, seed, options);
    const core::ShdgpInstance instance(network);
    const core::ShdgpSolution greedy =
        core::GreedyCoverPlanner().plan(instance);
    const core::ShdgpSolution relay = core::RelayHopPlanner().plan(instance);
    EXPECT_EQ(verify::canonical_plan_bytes(instance, greedy),
              verify::canonical_plan_bytes(instance, relay));
  }
}

INSTANTIATE_TEST_SUITE_P(
    LegacyFamilies, RelayParityTest,
    ::testing::Combine(::testing::ValuesIn(verify::legacy_families().begin(),
                                           verify::legacy_families().end()),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<ParityParam>& info) {
      return std::string(verify::to_string(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mdg

// verify::check_solution — accepts every planner's output and catches
// every seeded corruption (mutation testing for the checker itself).
#include <gtest/gtest.h>

#include "core/greedy_cover_planner.h"
#include "core/refine.h"
#include "core/spanning_tour_planner.h"
#include "verify/check.h"
#include "verify/generate.h"
#include "verify/oracle.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

core::ShdgpSolution plan_on(const core::ShdgpInstance& instance) {
  return core::SpanningTourPlanner().plan(instance);
}

TEST(CheckSolutionTest, AcceptsEveryPlannerOnEveryFamily) {
  for (GeneratorFamily family : verify::all_families()) {
    const net::SensorNetwork network = verify::generate_network(
        family, 1, {.sensors = 48, .side = 160.0, .range = 24.0});
    const core::ShdgpInstance instance(network);
    for (const auto& planner : verify::heuristic_planners()) {
      SCOPED_TRACE(std::string(verify::to_string(family)) + " / " +
                   planner->name());
      const core::ShdgpSolution solution = planner->plan(instance);
      const core::Status status = verify::check_solution(instance, solution);
      EXPECT_TRUE(status.is_ok()) << status.to_string();
    }
  }
}

TEST(CheckSolutionTest, AcceptsFreeformRefinedSolutions) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kUniform, 2);
  const core::ShdgpInstance instance(network);
  core::ShdgpSolution solution = core::GreedyCoverPlanner().plan(instance);
  core::refine_polling_positions(instance, solution, {});
  const core::Status status = verify::check_solution(instance, solution);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

class CheckSolutionMutationTest : public ::testing::Test {
 protected:
  CheckSolutionMutationTest()
      : network_(verify::generate_network(GeneratorFamily::kUniform, 3,
                                          {.sensors = 40})),
        instance_(network_),
        solution_(plan_on(instance_)) {}

  net::SensorNetwork network_;
  core::ShdgpInstance instance_;
  core::ShdgpSolution solution_;
};

TEST_F(CheckSolutionMutationTest, CleanSolutionPasses) {
  EXPECT_TRUE(verify::check_solution(instance_, solution_).is_ok());
}

TEST_F(CheckSolutionMutationTest, DetectsStaleTourLength) {
  solution_.tour_length += 1e-3;
  const core::Status status = verify::check_solution(instance_, solution_);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("tour length"), std::string::npos);
}

TEST_F(CheckSolutionMutationTest, DetectsOutOfRangeAssignment) {
  // Reassign a sensor to the polling point farthest from it.
  ASSERT_GT(solution_.polling_points.size(), 1u);
  std::size_t victim = 0;
  std::size_t far_slot = 0;
  double far_d = -1.0;
  for (std::size_t i = 0; i < solution_.polling_points.size(); ++i) {
    const double d = geom::distance(network_.position(victim),
                                    solution_.polling_points[i]);
    if (d > far_d) {
      far_d = d;
      far_slot = i;
    }
  }
  ASSERT_GT(far_d, network_.range());
  solution_.assignment[victim] = far_slot;
  const core::Status status = verify::check_solution(instance_, solution_);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("cannot reach"), std::string::npos);
}

TEST_F(CheckSolutionMutationTest, DetectsDanglingAssignmentSlot) {
  solution_.assignment[1] = solution_.polling_points.size();
  EXPECT_FALSE(verify::check_solution(instance_, solution_).is_ok());
}

TEST_F(CheckSolutionMutationTest, DetectsTruncatedAssignment) {
  solution_.assignment.pop_back();
  EXPECT_FALSE(verify::check_solution(instance_, solution_).is_ok());
}

TEST_F(CheckSolutionMutationTest, DetectsCandidatePositionMismatch) {
  ASSERT_FALSE(solution_.polling_points.empty());
  solution_.polling_points[0].x += 0.5;
  // Position no longer matches its candidate id; likely also breaks the
  // tour length. Both are violations; the candidate check must fire.
  const core::Status status =
      verify::check_solution(instance_, solution_, {.fail_fast = false});
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("does not match candidate"),
            std::string::npos);
}

TEST_F(CheckSolutionMutationTest, DetectsUnknownCandidateId) {
  ASSERT_FALSE(solution_.polling_candidates.empty());
  solution_.polling_candidates[0] = instance_.coverage().candidate_count();
  EXPECT_FALSE(verify::check_solution(instance_, solution_).is_ok());
}

TEST_F(CheckSolutionMutationTest, DetectsTourNotStartingAtSink) {
  ASSERT_GT(solution_.tour.size(), 2u);
  solution_.tour.rotate_to_front(1);
  // Rotating moves the sink off position 0 but keeps the closed length,
  // so exactly the start-at-sink invariant fires.
  const core::Status status = verify::check_solution(instance_, solution_);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("expected the sink"), std::string::npos);
}

TEST_F(CheckSolutionMutationTest, DetectsTourOverWrongStopCount) {
  solution_.polling_points.push_back(solution_.polling_points[0]);
  solution_.polling_candidates.push_back(solution_.polling_candidates[0]);
  const core::Status status =
      verify::check_solution(instance_, solution_, {.fail_fast = false});
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("tour visits"), std::string::npos);
}

TEST_F(CheckSolutionMutationTest, FailFastStopsAtFirstViolation) {
  solution_.assignment[0] = solution_.polling_points.size();
  solution_.tour_length += 1.0;
  const core::Status all =
      verify::check_solution(instance_, solution_, {.fail_fast = false});
  const core::Status first =
      verify::check_solution(instance_, solution_, {.fail_fast = true});
  ASSERT_FALSE(all.is_ok());
  ASSERT_FALSE(first.is_ok());
  EXPECT_GT(all.message().size(), first.message().size());
}

}  // namespace
}  // namespace mdg

// Generator library: determinism, family coverage and the degenerate
// shapes each adversarial family promises.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/bfs.h"
#include "io/serialize.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

std::string network_bytes(const net::SensorNetwork& network) {
  std::ostringstream out;
  io::write_network(out, network);
  return out.str();
}

TEST(GeneratorTest, FamilyListsPartitionAllFamilies) {
  EXPECT_EQ(verify::all_families().size(),
            verify::standard_families().size() +
                verify::degenerate_families().size() +
                verify::relay_families().size());
  EXPECT_EQ(verify::standard_families().size(), 5u);
  EXPECT_EQ(verify::degenerate_families().size(), 4u);
  EXPECT_EQ(verify::relay_families().size(), 3u);
  EXPECT_EQ(verify::legacy_families().size(), 9u);
  // The legacy span is exactly standard + degenerate, in order — the
  // d=1 byte-identity gate iterates it and its outputs must stay pinned.
  EXPECT_EQ(verify::legacy_families().front(),
            verify::standard_families().front());
  EXPECT_EQ(verify::legacy_families().back(),
            verify::degenerate_families().back());
}

TEST(GeneratorTest, NamesRoundTrip) {
  for (GeneratorFamily family : verify::all_families()) {
    const auto parsed = verify::family_from_string(verify::to_string(family));
    ASSERT_TRUE(parsed.has_value()) << verify::to_string(family);
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(verify::family_from_string("warp-drive").has_value());
}

TEST(GeneratorTest, SameSeedIsByteIdentical) {
  for (GeneratorFamily family : verify::all_families()) {
    SCOPED_TRACE(verify::to_string(family));
    const net::SensorNetwork a = verify::generate_network(family, 7);
    const net::SensorNetwork b = verify::generate_network(family, 7);
    EXPECT_EQ(network_bytes(a), network_bytes(b));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  for (GeneratorFamily family : verify::standard_families()) {
    SCOPED_TRACE(verify::to_string(family));
    const net::SensorNetwork a = verify::generate_network(family, 1);
    const net::SensorNetwork b = verify::generate_network(family, 2);
    EXPECT_NE(network_bytes(a), network_bytes(b));
  }
}

TEST(GeneratorTest, RequestedShapeIsHonoured) {
  const verify::GeneratorOptions options{.sensors = 40, .side = 120.0,
                                         .range = 18.0};
  for (GeneratorFamily family : verify::standard_families()) {
    SCOPED_TRACE(verify::to_string(family));
    const net::SensorNetwork network =
        verify::generate_network(family, 3, options);
    EXPECT_EQ(network.size(), 40u);
    EXPECT_DOUBLE_EQ(network.range(), 18.0);
    EXPECT_DOUBLE_EQ(network.field().width(), 120.0);
    for (geom::Point p : network.positions()) {
      EXPECT_TRUE(network.field().contains(p));
    }
  }
}

TEST(GeneratorTest, CollinearSensorsShareTheSinkLine) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kCollinear, 5);
  ASSERT_GT(network.size(), 0u);
  const double y = network.sink().y;
  for (geom::Point p : network.positions()) {
    EXPECT_EQ(p.y, y);  // exactly collinear, not approximately
  }
}

TEST(GeneratorTest, CoincidentFamilyStacksSensors) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kCoincident, 5);
  // Count exact duplicates: the family promises many fewer distinct
  // sites than sensors.
  std::vector<geom::Point> distinct;
  for (geom::Point p : network.positions()) {
    bool seen = false;
    for (geom::Point q : distinct) {
      if (p == q) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      distinct.push_back(p);
    }
  }
  EXPECT_LT(distinct.size(), network.size() / 2);
}

TEST(GeneratorTest, BoundaryFamilyPlacesExactRangePairs) {
  const verify::GeneratorOptions options{};
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kBoundary, 5, options);
  // Even-indexed anchor, odd-indexed partner exactly `range` apart along
  // an axis (modulo field clamping, which the generator avoids).
  std::size_t exact_pairs = 0;
  for (std::size_t i = 0; i + 1 < network.size(); i += 2) {
    const geom::Point a = network.position(i);
    const geom::Point b = network.position(i + 1);
    const double d = geom::distance(a, b);
    if (d == options.range) {
      ++exact_pairs;
    }
    EXPECT_TRUE(geom::within_range(a, b, network.range()));
  }
  EXPECT_GT(exact_pairs, network.size() / 4);
}

TEST(GeneratorTest, TinyFamilyCoversZeroAndOneSensors) {
  const net::SensorNetwork zero =
      verify::generate_network(GeneratorFamily::kTiny, 2);
  EXPECT_EQ(zero.size(), 0u);
  const net::SensorNetwork one =
      verify::generate_network(GeneratorFamily::kTiny, 3);
  EXPECT_EQ(one.size(), 1u);
}

TEST(GeneratorTest, ChainFamilyLinksSitOnTheRangeBoundary) {
  const verify::GeneratorOptions options{};
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 5, options);
  ASSERT_GT(network.size(), 2u);
  // Consecutive chain sensors are exactly one range apart (straight
  // links) or half a range (row turns); either way, always connected.
  std::size_t exact_links = 0;
  for (std::size_t i = 0; i + 1 < network.size(); ++i) {
    const double d =
        geom::distance(network.position(i), network.position(i + 1));
    if (d == options.range) {
      ++exact_links;
    }
    EXPECT_TRUE(geom::within_range(network.position(i),
                                   network.position(i + 1), network.range()));
  }
  EXPECT_GT(exact_links, network.size() / 2);
}

TEST(GeneratorTest, StarFamilyRingsAreExactHopMultiples) {
  const verify::GeneratorOptions options{};
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kStar, 5, options);
  ASSERT_GT(network.size(), 24u);
  // Hubs come first; some unclamped ring-1 spoke must be exactly one
  // range from its hub.
  std::size_t exact_spokes = 0;
  for (std::size_t s = 0; s < network.size(); ++s) {
    for (std::size_t h = 0; h < network.size() / 24; ++h) {
      const double d = geom::distance(network.position(s),
                                      network.position(h));
      if (s != h && std::abs(d - options.range) < 1e-9) {
        ++exact_spokes;
      }
    }
  }
  EXPECT_GT(exact_spokes, 0u);
}

TEST(GeneratorTest, IslandsFamilyIsDisconnected) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kIslands, 5);
  ASSERT_GT(network.size(), 0u);
  const graph::BfsResult bfs =
      graph::bfs_multi(network.connectivity(), std::vector<std::size_t>{0});
  std::size_t reached = 0;
  for (std::size_t s = 0; s < network.size(); ++s) {
    if (bfs.reachable(s)) {
      ++reached;
    }
  }
  EXPECT_LT(reached, network.size());  // at least two components
}

TEST(GeneratorTest, FamiliesDrawIndependentForkStreams) {
  // Two families with the same seed must not produce the same bytes
  // (each forks its own stream).
  const net::SensorNetwork uniform =
      verify::generate_network(GeneratorFamily::kUniform, 11);
  const net::SensorNetwork corridor =
      verify::generate_network(GeneratorFamily::kCorridor, 11);
  EXPECT_NE(network_bytes(uniform), network_bytes(corridor));
}

}  // namespace
}  // namespace mdg

// Deterministic fuzz fallback over the checked-in seed corpus: every
// loader survives the corpus and thousands of seeded mutations of it,
// valid entries parse, corrupted entries are rejected with the
// documented Status codes (the PR 4 untrusted-input contract).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "verify/fuzz.h"

namespace mdg {
namespace {

std::filesystem::path corpus_dir(verify::FuzzTarget target) {
  return std::filesystem::path(MDG_CORPUS_DIR) / verify::to_string(target);
}

std::vector<std::string> load_corpus(verify::FuzzTarget target) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir(target))) {
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());  // deterministic replay order
  std::vector<std::string> corpus;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    corpus.push_back(buf.str());
  }
  return corpus;
}

std::string corpus_entry(verify::FuzzTarget target, const std::string& name) {
  std::ifstream in(corpus_dir(target) / name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus entry " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

constexpr verify::FuzzTarget kTargets[] = {
    verify::FuzzTarget::kNetwork, verify::FuzzTarget::kSolution,
    verify::FuzzTarget::kFaultConfig, verify::FuzzTarget::kDelta,
    verify::FuzzTarget::kFrame, verify::FuzzTarget::kRelayPlan};

TEST(FuzzReplayTest, SeedCorpusIsCheckedInForEveryTarget) {
  for (verify::FuzzTarget target : kTargets) {
    SCOPED_TRACE(verify::to_string(target));
    EXPECT_GE(load_corpus(target).size(), 5u);
  }
}

TEST(FuzzReplayTest, CorpusAndMutationsNeverCrashAnyLoader) {
  for (verify::FuzzTarget target : kTargets) {
    SCOPED_TRACE(verify::to_string(target));
    const std::vector<std::string> corpus = load_corpus(target);
    const verify::FuzzStats stats =
        verify::fuzz_corpus(target, corpus, /*seed=*/42, /*iterations=*/2000);
    EXPECT_EQ(stats.executions, corpus.size() + 2000);
    // The corpus mixes valid and invalid entries, so both outcomes must
    // occur, and mutations must reach more than a couple of distinct
    // diagnostics (the coverage proxy of the fallback driver).
    EXPECT_GT(stats.accepted, 0u);
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_GE(stats.unique_outcomes, 5u);
  }
}

TEST(FuzzReplayTest, ReplayIsDeterministic) {
  const std::vector<std::string> corpus =
      load_corpus(verify::FuzzTarget::kNetwork);
  const verify::FuzzStats a =
      verify::fuzz_corpus(verify::FuzzTarget::kNetwork, corpus, 7, 500);
  const verify::FuzzStats b =
      verify::fuzz_corpus(verify::FuzzTarget::kNetwork, corpus, 7, 500);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.unique_outcomes, b.unique_outcomes);
}

TEST(FuzzReplayTest, ValidEntriesParse) {
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kNetwork,
                               corpus_entry(verify::FuzzTarget::kNetwork,
                                            "valid_small.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kSolution,
                               corpus_entry(verify::FuzzTarget::kSolution,
                                            "valid.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kFaultConfig,
                               corpus_entry(verify::FuzzTarget::kFaultConfig,
                                            "valid.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kDelta,
                               corpus_entry(verify::FuzzTarget::kDelta,
                                            "valid.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kDelta,
                               corpus_entry(verify::FuzzTarget::kDelta,
                                            "valid_empty.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kFrame,
                               corpus_entry(verify::FuzzTarget::kFrame,
                                            "valid_ping.bin"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kFrame,
                               corpus_entry(verify::FuzzTarget::kFrame,
                                            "valid_stats.bin"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kRelayPlan,
                               corpus_entry(verify::FuzzTarget::kRelayPlan,
                                            "valid_v2.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kRelayPlan,
                               corpus_entry(verify::FuzzTarget::kRelayPlan,
                                            "valid_v1.txt"))
                  .is_ok());
  EXPECT_TRUE(verify::fuzz_one(verify::FuzzTarget::kRelayPlan,
                               corpus_entry(verify::FuzzTarget::kRelayPlan,
                                            "valid_v2_no_relaying.txt"))
                  .is_ok());
}

TEST(FuzzReplayTest, CorruptedEntriesAreRejectedWithTheDocumentedCodes) {
  // Exit-code mapping (docs/ERRORS.md): kInvalidArgument / kDataLoss
  // both map to mdg_cli exit 3 — bad input, never an internal error.
  using enum core::StatusCode;
  const struct {
    verify::FuzzTarget target;
    const char* name;
    core::StatusCode expected;
  } kCases[] = {
      {verify::FuzzTarget::kNetwork, "bad_magic.txt", kInvalidArgument},
      {verify::FuzzTarget::kNetwork, "nan_coord.txt", kInvalidArgument},
      {verify::FuzzTarget::kNetwork, "truncated.txt", kDataLoss},
      {verify::FuzzTarget::kNetwork, "negative_range.txt", kInvalidArgument},
      {verify::FuzzTarget::kNetwork, "outside_field.txt", kInvalidArgument},
      {verify::FuzzTarget::kSolution, "nan_length.txt", kInvalidArgument},
      {verify::FuzzTarget::kSolution, "slot_out_of_range.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kSolution, "huge_polling_count.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kSolution, "truncated.txt", kDataLoss},
      {verify::FuzzTarget::kFaultConfig, "bad_value.txt", kInvalidArgument},
      {verify::FuzzTarget::kFaultConfig, "unknown_key.txt", kInvalidArgument},
      {verify::FuzzTarget::kFaultConfig, "out_of_range_prob.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kFaultConfig, "wrong_version.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kDelta, "bad_magic.txt", kInvalidArgument},
      {verify::FuzzTarget::kDelta, "bad_range.txt", kInvalidArgument},
      {verify::FuzzTarget::kDelta, "huge_count.txt", kInvalidArgument},
      {verify::FuzzTarget::kDelta, "nan_coord.txt", kInvalidArgument},
      {verify::FuzzTarget::kDelta, "truncated.txt", kDataLoss},
      {verify::FuzzTarget::kDelta, "unknown_op.txt", kInvalidArgument},
      {verify::FuzzTarget::kDelta, "wrong_version.txt", kInvalidArgument},
      {verify::FuzzTarget::kFrame, "corrupt_magic.bin", kInvalidArgument},
      {verify::FuzzTarget::kFrame, "corrupt_unknown_type.bin",
       kInvalidArgument},
      {verify::FuzzTarget::kFrame, "corrupt_len_overflow.bin",
       kInvalidArgument},
      {verify::FuzzTarget::kFrame, "corrupt_truncated_header.bin", kDataLoss},
      {verify::FuzzTarget::kFrame, "corrupt_truncated_payload.bin", kDataLoss},
      {verify::FuzzTarget::kFrame, "corrupt_plan_payload.bin", kDataLoss},
      {verify::FuzzTarget::kRelayPlan, "corrupt_relay_id.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kRelayPlan, "corrupt_relay_self.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kRelayPlan, "corrupt_path_over_budget.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kRelayPlan, "corrupt_relays_count.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kRelayPlan, "corrupt_huge_hops.txt",
       kInvalidArgument},
      {verify::FuzzTarget::kRelayPlan, "truncated_relays.txt", kDataLoss},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(std::string(verify::to_string(c.target)) + "/" + c.name);
    const core::Status status =
        verify::fuzz_one(c.target, corpus_entry(c.target, c.name));
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), c.expected) << status.to_string();
  }
}

TEST(FuzzReplayTest, TargetNamesRoundTrip) {
  for (verify::FuzzTarget target : kTargets) {
    const auto parsed = verify::fuzz_target_from_string(to_string(target));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, target);
  }
  EXPECT_FALSE(verify::fuzz_target_from_string("kernel").has_value());
}

}  // namespace
}  // namespace mdg

// Chaos-mode simulator behavior: deterministic replay of a FaultPlan,
// mid-tour breakdown recovery, blackout dwell budgets, and crash
// accounting (docs/FAULTS.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/spanning_tour_planner.h"
#include "fault/fault.h"
#include "io/serialize.h"
#include "sim/mobile_sim.h"
#include "util/rng.h"

namespace mdg::sim {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;
  core::ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 60)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 150.0, 25.0, rng);
        }()),
        instance(network),
        solution(core::SpanningTourPlanner().plan(instance)) {}
};

std::size_t total_buffered(const MobileCollectionSim& sim, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    total += sim.buffered(s);
  }
  return total;
}

TEST(MobileSimFaultTest, NullPlanLeavesFaultFieldsAtDefaults) {
  Fixture fx(50);
  MobileCollectionSim sim(fx.instance, fx.solution);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.offered, fx.network.size());
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
  EXPECT_EQ(r.sensor_crashes, 0u);
  EXPECT_EQ(r.orphaned_sensors, 0u);
  EXPECT_EQ(r.lost_crash, 0u);
  EXPECT_EQ(r.lost_burst, 0u);
  EXPECT_EQ(r.repoll_attempts, 0u);
  EXPECT_EQ(r.blackout_timeouts, 0u);
  EXPECT_DOUBLE_EQ(r.blackout_wait_s, 0.0);
  EXPECT_FALSE(r.breakdown);
  EXPECT_DOUBLE_EQ(r.recovery_length_m, 0.0);
  EXPECT_EQ(r.unrecovered_sensors, 0u);
}

TEST(MobileSimFaultTest, ChaosRoundIsDeterministic) {
  Fixture fx(51);
  fault::FaultConfig fc;
  fc.seed = 7;
  fc.sensor_crash_prob = 0.2;
  fc.pp_blackout_prob = 0.3;
  fc.burst_episodes_mean = 2.0;
  fc.stall_mean = 1.0;
  fc.breakdown_frac = 0.6;
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(fx.instance, fx.solution, fc);
  MobileSimConfig config;
  config.upload_loss_prob = 0.1;
  config.fault_plan = &plan;

  MobileCollectionSim a(fx.instance, fx.solution, config);
  MobileCollectionSim b(fx.instance, fx.solution, config);
  EnergyLedger la(fx.network.size(), 0.5);
  EnergyLedger lb(fx.network.size(), 0.5);
  const MobileRoundReport ra = a.run_round(la);
  const MobileRoundReport rb = b.run_round(lb);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.lost, rb.lost);
  EXPECT_EQ(ra.lost_burst, rb.lost_burst);
  EXPECT_EQ(ra.lost_crash, rb.lost_crash);
  EXPECT_EQ(ra.retransmissions, rb.retransmissions);
  EXPECT_EQ(ra.repoll_attempts, rb.repoll_attempts);
  EXPECT_EQ(ra.blackout_timeouts, rb.blackout_timeouts);
  EXPECT_EQ(ra.breakdown, rb.breakdown);
  EXPECT_DOUBLE_EQ(ra.duration_s, rb.duration_s);
  EXPECT_DOUBLE_EQ(ra.recovery_length_m, rb.recovery_length_m);
  EXPECT_DOUBLE_EQ(ra.delivered_fraction, rb.delivered_fraction);
}

TEST(MobileSimFaultTest, MidTourBreakdownRecoversEveryLiveSensor) {
  // The acceptance scenario: a breakdown 40% into the tour over the
  // checked-in 200-sensor instance must end with a valid report whose
  // spliced recovery tour re-covers every live unserved sensor.
  const net::SensorNetwork network =
      io::load_network(std::string(MDG_DATA_DIR) + "/uniform200.txt");
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);

  fault::FaultConfig fc;
  fc.breakdown_frac = 0.4;
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(instance, solution, fc);
  MobileSimConfig config;
  config.fault_plan = &plan;
  MobileCollectionSim sim(instance, solution, config);
  EnergyLedger ledger(network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);

  EXPECT_TRUE(r.breakdown);
  EXPECT_GT(r.recovery_stops, 0u);
  EXPECT_GT(r.recovery_length_m, 0.0);
  EXPECT_EQ(r.unrecovered_sensors, 0u);
  // No link loss and no crashes: recovery must deliver everything the
  // round offered, leaving every buffer empty.
  EXPECT_EQ(r.offered, network.size());
  EXPECT_EQ(r.delivered, r.offered);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
  EXPECT_EQ(total_buffered(sim, network.size()), 0u);

  // The breakdown fires once: the next round runs the replacement
  // collector fault-free.
  EnergyLedger ledger2(network.size(), 0.5);
  const MobileRoundReport r2 = sim.run_round(ledger2, r.duration_s);
  EXPECT_FALSE(r2.breakdown);
}

TEST(MobileSimFaultTest, BlackoutTimeoutAbandonsStopButKeepsBuffers) {
  Fixture fx(52, 40);
  fault::FaultConfig fc;
  fc.horizon_s = 1.0;            // every window starts almost immediately
  fc.pp_blackout_prob = 1.0;     // ...at every polling point
  fc.pp_blackout_mean_s = 1e7;   // ...and outlasts the whole round
  fc.dwell_budget_s = 5.0;
  fc.repoll_backoff_s = 1.0;
  fc.max_repolls = 3;
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(fx.instance, fx.solution, fc);
  MobileSimConfig config;
  config.fault_plan = &plan;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);

  EXPECT_EQ(r.blackout_timeouts, fx.solution.polling_points.size());
  EXPECT_GT(r.repoll_attempts, 0u);
  EXPECT_GT(r.blackout_wait_s, 0.0);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 0.0);
  // Abandoned stops strand nothing permanently: the data waits for the
  // next round.
  EXPECT_EQ(total_buffered(sim, fx.network.size()), r.offered);
}

TEST(MobileSimFaultTest, CrashedSensorsStrandTheirBuffers) {
  Fixture fx(53, 40);
  fault::FaultConfig fc;
  fc.sensor_crash_prob = 1.0;
  fc.horizon_s = 0.001;  // everyone is dead before the collector moves
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(fx.instance, fx.solution, fc);
  MobileSimConfig config;
  config.fault_plan = &plan;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);

  EXPECT_EQ(r.sensor_crashes, fx.network.size());
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.lost_crash, r.offered);  // all offered data went down with
                                       // the hardware
  EXPECT_EQ(r.orphaned_sensors, r.offered);  // one packet per victim
  EXPECT_EQ(total_buffered(sim, fx.network.size()), 0u);
}

TEST(MobileSimFaultTest, BurstLossIsCountedSeparately) {
  Fixture fx(54, 60);
  fault::FaultConfig fc;
  fc.burst_episodes_mean = 6.0;
  fc.horizon_s = 50.0;         // every episode starts within the first leg
  fc.burst_mean_s = 1e6;       // ...and outlasts the whole round
  fc.burst_loss_prob = 1.0;    // every attempt inside a burst is lost
  const fault::FaultPlan plan =
      fault::FaultPlan::generate(fx.instance, fx.solution, fc);
  MobileSimConfig config;
  config.fault_plan = &plan;
  config.max_upload_attempts = 2;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 50.0);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_GT(r.lost, 0u);
  EXPECT_EQ(r.lost_burst, r.lost);  // every loss happened inside a burst
  EXPECT_LE(r.lost_burst, r.offered);
}

}  // namespace
}  // namespace mdg::sim

#include "sim/adaptive.h"

#include <gtest/gtest.h>

#include "core/spanning_tour_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::sim {
namespace {

net::SensorNetwork uniform_net(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, 180.0, 30.0, rng);
}

AdaptiveConfig config_with(std::size_t replan_every) {
  AdaptiveConfig config;
  config.mobile.initial_battery_j = 0.05;
  config.replan_every_rounds = replan_every;
  return config;
}

TEST(AdaptiveLifetimeTest, StaticPolicyPlansOnce) {
  const auto network = uniform_net(80, 1);
  const core::SpanningTourPlanner planner;
  const AdaptiveReport report = run_adaptive_lifetime(
      network, planner, config_with(0));
  EXPECT_EQ(report.replans, 1u);
  EXPECT_GT(report.rounds, 0u);
  EXPECT_GT(report.delivered_total, 0u);
  EXPECT_EQ(report.round_duration_s.size(), report.rounds);
}

TEST(AdaptiveLifetimeTest, AdaptivePolicyReplans) {
  const auto network = uniform_net(80, 2);
  const core::SpanningTourPlanner planner;
  const AdaptiveReport report = run_adaptive_lifetime(
      network, planner, config_with(25));
  EXPECT_GT(report.replans, 1u);
}

TEST(AdaptiveLifetimeTest, RunsEndAtStopFraction) {
  const auto network = uniform_net(60, 3);
  const core::SpanningTourPlanner planner;
  const AdaptiveReport report = run_adaptive_lifetime(
      network, planner, config_with(0), 0.5);
  ASSERT_FALSE(report.alive_after_round.empty());
  EXPECT_LT(report.alive_after_round.back(), 60u * 3u / 4u);
  // Alive counts never increase.
  for (std::size_t r = 1; r < report.alive_after_round.size(); ++r) {
    EXPECT_LE(report.alive_after_round[r], report.alive_after_round[r - 1]);
  }
}

TEST(AdaptiveLifetimeTest, AdaptiveShortensLateRounds) {
  // Once sensors start dying, the adaptive policy's round duration must
  // drop at (or below) the static policy's, which never sheds stops.
  const auto network = uniform_net(120, 4);
  const core::SpanningTourPlanner planner;
  const AdaptiveReport static_run = run_adaptive_lifetime(
      network, planner, config_with(0), 0.6);
  const AdaptiveReport adaptive_run = run_adaptive_lifetime(
      network, planner, config_with(10), 0.6);
  ASSERT_FALSE(static_run.round_duration_s.empty());
  ASSERT_FALSE(adaptive_run.round_duration_s.empty());
  // Compare the final rounds (deep into decay).
  EXPECT_LE(adaptive_run.round_duration_s.back(),
            static_run.round_duration_s.back() + 1e-9);
  // And the adaptive run keeps delivering from re-planned sensors at
  // least as long overall.
  EXPECT_GE(adaptive_run.delivered_total * 2, static_run.delivered_total);
}

TEST(AdaptiveLifetimeTest, FirstDeathRecorded) {
  const auto network = uniform_net(50, 5);
  const core::SpanningTourPlanner planner;
  const AdaptiveReport report = run_adaptive_lifetime(
      network, planner, config_with(0));
  EXPECT_GT(report.rounds_first_death, 0u);
  EXPECT_LE(report.rounds_first_death, report.rounds);
}

TEST(AdaptiveLifetimeTest, EmptyNetwork) {
  const auto field = geom::Aabb::square(20.0);
  const net::SensorNetwork network({}, field.center(), field, 5.0);
  const core::SpanningTourPlanner planner;
  const AdaptiveReport report = run_adaptive_lifetime(
      network, planner, config_with(0));
  EXPECT_EQ(report.rounds, 0u);
}

TEST(AdaptiveLifetimeTest, RejectsBadStopFraction) {
  const auto network = uniform_net(10, 7);
  const core::SpanningTourPlanner planner;
  EXPECT_THROW((void)run_adaptive_lifetime(network, planner, config_with(0),
                                           1.0),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::sim

// Boundary conditions of the mobile-collection simulator: buffers at
// exactly capacity, retry budgets spent on the last packet, total link
// loss, and degenerate (zero-/single-sensor) instances.
#include <gtest/gtest.h>

#include <vector>

#include "core/spanning_tour_planner.h"
#include "sim/mobile_sim.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::sim {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;
  core::ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 30)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 150.0, 25.0, rng);
        }()),
        instance(network),
        solution(core::SpanningTourPlanner().plan(instance)) {}
};

net::SensorNetwork tiny_network(std::vector<geom::Point> positions) {
  const geom::Aabb field{{0.0, 0.0}, {100.0, 100.0}};
  return net::SensorNetwork(std::move(positions), {50.0, 50.0}, field, 25.0,
                            net::RadioModel{});
}

TEST(MobileSimEdgeTest, BufferAtExactlyCapacity) {
  Fixture fx(40);
  MobileSimConfig config;
  config.buffer_capacity = 4;
  config.auto_generate = false;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  // Filling to exactly capacity drops nothing; one more drops exactly one.
  EXPECT_EQ(sim.add_packets(0, 4), 0u);
  EXPECT_EQ(sim.buffered(0), 4u);
  EXPECT_EQ(sim.add_packets(0, 1), 1u);
  EXPECT_EQ(sim.buffered(0), 4u);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, 4u);  // the full buffer, nothing more
  EXPECT_EQ(sim.buffered(0), 0u);
}

TEST(MobileSimEdgeTest, GenerationIntoFullBufferCountsAsDropped) {
  Fixture fx(41);
  MobileSimConfig config;
  config.buffer_capacity = 1;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    (void)sim.add_packets(s, 1);
  }
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  // Every sensor's start-of-round packet found a full buffer.
  EXPECT_EQ(r.dropped, fx.network.size());
  EXPECT_EQ(r.delivered, fx.network.size());
}

TEST(MobileSimEdgeTest, RetryCapSpentOnFinalPacket) {
  Fixture fx(42);
  MobileSimConfig config;
  config.upload_loss_prob = 1.0;
  config.max_upload_attempts = 3;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 50.0);
  const MobileRoundReport r = sim.run_round(ledger);
  // Every packet burns exactly the cap: attempts - 1 retransmissions.
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.lost, fx.network.size());
  EXPECT_EQ(r.retransmissions, fx.network.size() * 2);
  EXPECT_EQ(sim.buffered(0), 0u);  // lost packets leave the buffer
}

TEST(MobileSimEdgeTest, CertainLossDeliversNothing) {
  Fixture fx(43);
  MobileSimConfig config;
  config.upload_loss_prob = 1.0;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 50.0);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.lost, r.offered);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 0.0);
}

TEST(MobileSimEdgeTest, ZeroSensorInstance) {
  const net::SensorNetwork network = tiny_network({});
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  solution.validate(instance);
  MobileCollectionSim sim(instance, solution);
  EnergyLedger ledger(0, 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.offered, 0u);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);  // vacuous success
}

TEST(MobileSimEdgeTest, SingleSensorInstance) {
  const net::SensorNetwork network = tiny_network({{60.0, 60.0}});
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution =
      core::SpanningTourPlanner().plan(instance);
  solution.validate(instance);
  MobileCollectionSim sim(instance, solution);
  EnergyLedger ledger(1, 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
}

}  // namespace
}  // namespace mdg::sim

// Energy-charged multihop collection: relayed uploads must charge the
// origin sensor AND every intermediate relay, and the simulated ledger
// must agree exactly with the analytic per-round relay energy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/relay_hop_planner.h"
#include "sim/energy.h"
#include "sim/mobile_sim.h"
#include "verify/generate.h"

namespace mdg {
namespace {

using verify::GeneratorFamily;

core::ShdgpSolution plan_depth(const core::ShdgpInstance& instance,
                               std::size_t d) {
  core::RelayHopPlannerOptions options;
  options.relay_hops = d;
  return core::RelayHopPlanner(options).plan(instance);
}

TEST(RelaySimTest, LedgerMatchesAnalyticRoundEnergyExactly) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 5);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = plan_depth(instance, 3);
  ASSERT_TRUE(solution.uses_relays());

  // One lossless round, exactly one packet per sensor (the analytic
  // model's assumptions), battery large enough that nobody dies.
  sim::MobileSimConfig config;
  config.upload_loss_prob = 0.0;
  config.initial_battery_j = 100.0;
  sim::MobileCollectionSim sim(instance, solution, config);
  sim::EnergyLedger ledger(network.size(), config.initial_battery_j);
  const sim::MobileRoundReport round = sim.run_round(ledger);
  EXPECT_EQ(round.delivered, network.size());

  const std::vector<double> analytic =
      sim::relay_round_energy(instance, solution);
  ASSERT_EQ(round.round_energy.size(), analytic.size());
  for (std::size_t s = 0; s < analytic.size(); ++s) {
    EXPECT_DOUBLE_EQ(round.round_energy[s], analytic[s]) << "sensor " << s;
  }
}

TEST(RelaySimTest, RelaysPayMoreThanLeafSensors) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 7);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = plan_depth(instance, 2);
  ASSERT_TRUE(solution.uses_relays());
  const std::vector<double> energy =
      sim::relay_round_energy(instance, solution);

  // Every sensor that appears on someone's relay path spends strictly
  // more than its own upload alone would cost.
  std::vector<bool> is_relay(network.size(), false);
  for (const auto& path : solution.relay_paths) {
    for (std::size_t r : path) {
      is_relay[r] = true;
    }
  }
  core::ShdgpSolution direct = solution;
  direct.relay_paths.clear();  // same stops, nobody relays
  const std::vector<double> base_energy =
      sim::relay_round_energy(instance, direct);
  bool any_relay = false;
  for (std::size_t s = 0; s < network.size(); ++s) {
    if (is_relay[s]) {
      any_relay = true;
      EXPECT_GT(energy[s], base_energy[s]) << "relay " << s;
    }
  }
  EXPECT_TRUE(any_relay);
}

TEST(RelaySimTest, LossyRelayRoundStaysDeterministic) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 9);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = plan_depth(instance, 2);
  sim::MobileSimConfig config;
  config.upload_loss_prob = 0.3;
  config.initial_battery_j = 100.0;
  sim::MobileRoundReport reports[2];
  for (int i = 0; i < 2; ++i) {
    sim::MobileCollectionSim sim(instance, solution, config);
    sim::EnergyLedger ledger(network.size(), config.initial_battery_j);
    reports[i] = sim.run_round(ledger);
  }
  EXPECT_EQ(reports[0].delivered, reports[1].delivered);
  EXPECT_EQ(reports[0].retransmissions, reports[1].retransmissions);
  EXPECT_EQ(reports[0].round_energy, reports[1].round_energy);
}

TEST(RelaySimTest, DeadRelayStopsTheChainWithoutCrashing) {
  const net::SensorNetwork network =
      verify::generate_network(GeneratorFamily::kChain, 5);
  const core::ShdgpInstance instance(network);
  const core::ShdgpSolution solution = plan_depth(instance, 3);
  ASSERT_TRUE(solution.uses_relays());
  // Kill every relay before the round: relayed sensors cannot upload,
  // direct sensors still can; the round completes without incident.
  sim::MobileSimConfig config;
  config.initial_battery_j = 100.0;
  sim::MobileCollectionSim sim(instance, solution, config);
  sim::EnergyLedger ledger(network.size(), config.initial_battery_j);
  std::size_t relays = 0;
  for (const auto& path : solution.relay_paths) {
    for (std::size_t r : path) {
      if (ledger.alive(r)) {
        ledger.consume(r, config.initial_battery_j * 2.0);
        ++relays;
      }
    }
  }
  ASSERT_GT(relays, 0u);
  const sim::MobileRoundReport round = sim.run_round(ledger);
  EXPECT_LT(round.delivered, network.size());
  EXPECT_GT(round.delivered, 0u);
}

}  // namespace
}  // namespace mdg

#include "sim/fleet_sim.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/spanning_tour_planner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace mdg::sim {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;
  core::ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 150)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 200.0, 30.0, rng);
        }()),
        instance(network),
        solution(core::SpanningTourPlanner().plan(instance)) {}

  [[nodiscard]] core::MultiTourPlan split(std::size_t k) const {
    return core::MultiCollectorPlanner().split(instance, solution, k);
  }
};

TEST(FleetSimTest, SingleCollectorMatchesMobileSim) {
  const Fixture fx(1);
  const core::MultiTourPlan plan = fx.split(1);
  const FleetSim fleet(fx.instance, fx.solution, plan);

  EnergyLedger fleet_ledger(fx.network.size(), 0.5);
  const FleetRoundReport fleet_round = fleet.run_round(fleet_ledger);

  // The k=1 subtour may be re-optimised, so compare against the plan's
  // own length rather than the original tour's.
  EXPECT_NEAR(fleet_round.duration_s,
              plan.subtours[0].length / 1.0 +
                  static_cast<double>(fx.network.size()) * 0.05,
              1e-6);
  EXPECT_EQ(fleet_round.delivered, fx.network.size());
}

TEST(FleetSimTest, EverySensorDeliversExactlyOnce) {
  const Fixture fx(2);
  for (std::size_t k : {2u, 3u, 5u}) {
    const FleetSim fleet(fx.instance, fx.solution, fx.split(k));
    EnergyLedger ledger(fx.network.size(), 0.5);
    const FleetRoundReport round = fleet.run_round(ledger);
    EXPECT_EQ(round.delivered, fx.network.size()) << "k=" << k;
    for (std::size_t s = 0; s < fx.network.size(); ++s) {
      EXPECT_GT(round.round_energy[s], 0.0);
    }
  }
}

TEST(FleetSimTest, MoreCollectorsShortenRounds) {
  const Fixture fx(3);
  const FleetSim one(fx.instance, fx.solution, fx.split(1));
  const FleetSim four(fx.instance, fx.solution, fx.split(4));
  EnergyLedger l1(fx.network.size(), 0.5);
  EnergyLedger l4(fx.network.size(), 0.5);
  EXPECT_LT(four.run_round(l4).duration_s * 1.5,
            one.run_round(l1).duration_s);
}

TEST(FleetSimTest, EnergyIndependentOfFleetSize) {
  // Uploads are the same single hop whoever collects them.
  const Fixture fx(4);
  EnergyLedger l1(fx.network.size(), 0.5);
  EnergyLedger l3(fx.network.size(), 0.5);
  const FleetRoundReport r1 =
      FleetSim(fx.instance, fx.solution, fx.split(1)).run_round(l1);
  const FleetRoundReport r3 =
      FleetSim(fx.instance, fx.solution, fx.split(3)).run_round(l3);
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    EXPECT_NEAR(r1.round_energy[s], r3.round_energy[s], 1e-15);
  }
}

TEST(FleetSimTest, PerCollectorDurationsConsistent) {
  const Fixture fx(5);
  const core::MultiTourPlan plan = fx.split(3);
  const FleetSim fleet(fx.instance, fx.solution, plan);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const FleetRoundReport round = fleet.run_round(ledger);
  ASSERT_EQ(round.collector_duration_s.size(), 3u);
  double worst = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(round.collector_duration_s[c], fleet.collector_round_time(c),
                1e-9);
    worst = std::max(worst, round.collector_duration_s[c]);
  }
  EXPECT_DOUBLE_EQ(round.duration_s, worst);
}

TEST(FleetSimTest, DeadSensorsSkipUploads) {
  const Fixture fx(6, 40);
  const FleetSim fleet(fx.instance, fx.solution, fx.split(2));
  EnergyLedger ledger(fx.network.size(), 0.5);
  ledger.consume(0, 1.0);
  const FleetRoundReport round = fleet.run_round(ledger);
  EXPECT_EQ(round.delivered, fx.network.size() - 1);
  EXPECT_DOUBLE_EQ(round.round_energy[0], 0.0);
}

TEST(FleetSimTest, EmptySubtoursAreFine) {
  const Fixture fx(7, 20);
  const std::size_t k = fx.solution.polling_points.size() + 2;
  const FleetSim fleet(fx.instance, fx.solution, fx.split(k));
  EnergyLedger ledger(fx.network.size(), 0.5);
  const FleetRoundReport round = fleet.run_round(ledger);
  EXPECT_EQ(round.delivered, fx.network.size());
}

TEST(FleetSimTest, RejectsForeignPlan) {
  const Fixture fx(8, 60);
  const Fixture other(9, 60);
  const core::MultiTourPlan foreign = other.split(2);
  EXPECT_THROW(FleetSim(fx.instance, fx.solution, foreign),
               mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::sim

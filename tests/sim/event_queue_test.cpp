#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace mdg::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&order] { order.push_back(3); });
  q.schedule(1.0, [&order] { order.push_back(1); });
  q.schedule(2.0, [&order] { order.push_back(2); });
  const double end = q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&order] { order.push_back(10); });
  q.schedule(1.0, [&order] { order.push_back(20); });
  q.schedule(1.0, [&order] { order.push_back(30); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueueTest, CallbacksMayScheduleMore) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule_in(2.0, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(EventQueueTest, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&fired] { ++fired; });
  q.schedule(5.0, [&fired] { ++fired; });
  const double t = q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(t, 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), mdg::PreconditionError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), mdg::PreconditionError);
  EXPECT_THROW(q.schedule(6.0, nullptr), mdg::PreconditionError);
}

TEST(EventQueueTest, RunUntilRejectsPastDeadline) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run();
  EXPECT_THROW((void)q.run_until(1.0), mdg::PreconditionError);
}

TEST(EventQueueTest, EmptyRunReturnsNow) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.run(), 0.0);
  EXPECT_DOUBLE_EQ(q.run_until(7.0), 7.0);
  EXPECT_DOUBLE_EQ(q.now(), 7.0);
}

}  // namespace
}  // namespace mdg::sim

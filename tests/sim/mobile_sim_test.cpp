#include "sim/mobile_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/spanning_tour_planner.h"
#include "util/assert.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mdg::sim {
namespace {

struct Fixture {
  net::SensorNetwork network;
  core::ShdgpInstance instance;
  core::ShdgpSolution solution;

  explicit Fixture(std::uint64_t seed, std::size_t n = 100)
      : network([&] {
          Rng rng(seed);
          return net::make_uniform_network(n, 150.0, 25.0, rng);
        }()),
        instance(network),
        solution(core::SpanningTourPlanner().plan(instance)) {}
};

TEST(MobileSimTest, OneRoundDeliversEverything) {
  Fixture fx(1);
  MobileCollectionSim sim(fx.instance, fx.solution);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, fx.network.size());
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.max_buffer, 0u);  // all buffers drained
}

TEST(MobileSimTest, RoundDurationDecomposes) {
  Fixture fx(2);
  MobileSimConfig config;
  config.speed_m_per_s = 2.0;
  config.packet_upload_s = 0.1;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_NEAR(r.duration_s, r.travel_s + r.service_s, 1e-9);
  EXPECT_NEAR(r.travel_s, fx.solution.tour_length / 2.0, 1e-6);
  EXPECT_NEAR(r.service_s,
              static_cast<double>(fx.network.size()) * 0.1, 1e-9);
}

TEST(MobileSimTest, EnergyOnlySingleHopUploads) {
  // Every sensor pays exactly one packet tx over <= Rs; nobody pays rx.
  Fixture fx(3);
  MobileCollectionSim sim(fx.instance, fx.solution);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  const auto& radio = fx.network.radio();
  const double max_tx = radio.tx_packet(fx.network.range());
  const double min_tx = radio.tx_packet(0.0);
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    EXPECT_GE(r.round_energy[s], min_tx - 1e-15);
    EXPECT_LE(r.round_energy[s], max_tx + 1e-15);
    EXPECT_NEAR(ledger.consumed(s), r.round_energy[s], 1e-15);
  }
}

TEST(MobileSimTest, EnergyFarBelowMultihopHotspot) {
  // The headline energy claim: per-round energy is bounded by one upload,
  // independent of network size.
  Fixture fx(4, 200);
  MobileCollectionSim sim(fx.instance, fx.solution);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  const double max_energy =
      *std::max_element(r.round_energy.begin(), r.round_energy.end());
  EXPECT_LE(max_energy, fx.network.radio().tx_packet(fx.network.range()));
}

TEST(MobileSimTest, DeadSensorsDoNotUpload) {
  Fixture fx(5, 30);
  MobileCollectionSim sim(fx.instance, fx.solution);
  EnergyLedger ledger(fx.network.size(), 0.5);
  ledger.consume(0, 1.0);  // kill sensor 0
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, fx.network.size() - 1);
  EXPECT_DOUBLE_EQ(r.round_energy[0], 0.0);
}

TEST(MobileSimTest, BufferAccumulatesWithDataRate) {
  Fixture fx(6, 40);
  MobileSimConfig config;
  config.data_rate_pkt_per_s = 0.01;  // packets generated while touring
  config.buffer_capacity = 1000;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 50.0);
  const MobileRoundReport r1 = sim.run_round(ledger);
  EXPECT_EQ(r1.delivered, 0u);  // nothing buffered before the first pass
  const MobileRoundReport r2 = sim.run_round(ledger, r1.duration_s);
  EXPECT_GT(r2.delivered, 0u);  // round-1 production collected in round 2
}

TEST(MobileSimTest, TinyBufferOverflows) {
  Fixture fx(7, 40);
  MobileSimConfig config;
  config.data_rate_pkt_per_s = 1.0;  // absurd rate
  config.buffer_capacity = 2;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EnergyLedger ledger(fx.network.size(), 50.0);
  (void)sim.run_round(ledger);
  const MobileRoundReport r2 = sim.run_round(ledger);
  EXPECT_GT(r2.dropped, 0u);
}

TEST(MobileSimTest, LifetimeScalesInverselyWithPerRoundEnergy) {
  Fixture fx(8, 60);
  MobileSimConfig config;
  config.initial_battery_j = 0.05;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  const MobileLifetimeReport life = sim.run_lifetime(100'000);
  EXPECT_GT(life.rounds_first_death, 0u);
  EXPECT_GE(life.rounds_10pct_death, life.rounds_first_death);
  EXPECT_GT(life.delivered_total, 0u);
  // Sanity: first death should happen around battery / worst-upload.
  const double worst =
      fx.network.radio().tx_packet(fx.network.range());
  const auto upper =
      static_cast<std::size_t>(config.initial_battery_j /
                               fx.network.radio().tx_packet(0.0)) + 1;
  const auto lower = static_cast<std::size_t>(
      config.initial_battery_j / worst);
  EXPECT_GE(life.rounds_first_death, lower);
  EXPECT_LE(life.rounds_first_death, upper);
}

TEST(MobileSimTest, SteadyStateDuration) {
  Fixture fx(9, 50);
  MobileSimConfig config;
  config.speed_m_per_s = 1.0;
  config.packet_upload_s = 0.05;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  // One-packet-per-round mode: travel + N uploads.
  EXPECT_NEAR(sim.steady_state_round_duration(),
              fx.solution.tour_length + 50 * 0.05, 1e-9);
  // Saturation when the offered load exceeds service capacity.
  MobileSimConfig hot = config;
  hot.data_rate_pkt_per_s = 1000.0;
  MobileCollectionSim saturated(fx.instance, fx.solution, hot);
  EXPECT_TRUE(std::isinf(saturated.steady_state_round_duration()));
  EXPECT_NEAR(sim.sustainable_rate(), 1.0 / (50 * 0.05), 1e-9);
}

TEST(MobileSimLossTest, ZeroLossMatchesBaseline) {
  Fixture fx(30, 50);
  MobileSimConfig lossless;
  lossless.upload_loss_prob = 0.0;
  MobileCollectionSim sim(fx.instance, fx.solution, lossless);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.delivered, fx.network.size());
}

TEST(MobileSimLossTest, LossCausesRetransmissionsAndExtraEnergy) {
  Fixture fx(31, 80);
  MobileSimConfig lossy;
  lossy.upload_loss_prob = 0.3;
  MobileCollectionSim clean_sim(fx.instance, fx.solution, MobileSimConfig{});
  MobileCollectionSim lossy_sim(fx.instance, fx.solution, lossy);
  EnergyLedger l1(fx.network.size(), 0.5);
  EnergyLedger l2(fx.network.size(), 0.5);
  const MobileRoundReport clean = clean_sim.run_round(l1);
  const MobileRoundReport noisy = lossy_sim.run_round(l2);
  EXPECT_GT(noisy.retransmissions, 0u);
  EXPECT_GT(noisy.service_s, clean.service_s);
  double clean_total = 0.0;
  double noisy_total = 0.0;
  for (std::size_t s = 0; s < fx.network.size(); ++s) {
    clean_total += clean.round_energy[s];
    noisy_total += noisy.round_energy[s];
  }
  // Expected inflation factor 1/(1-p) ~ 1.43; allow a wide band.
  EXPECT_GT(noisy_total, clean_total * 1.2);
  EXPECT_LT(noisy_total, clean_total * 1.8);
  // With 8 attempts and p=0.3, effectively everything gets through.
  EXPECT_EQ(noisy.delivered + noisy.lost, fx.network.size());
  EXPECT_GT(noisy.delivered, fx.network.size() * 9 / 10);
}

TEST(MobileSimLossTest, SingleAttemptDropsLostPackets) {
  Fixture fx(32, 100);
  MobileSimConfig one_shot;
  one_shot.upload_loss_prob = 0.5;
  one_shot.max_upload_attempts = 1;
  MobileCollectionSim sim(fx.instance, fx.solution, one_shot);
  EnergyLedger ledger(fx.network.size(), 0.5);
  const MobileRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_GT(r.lost, fx.network.size() / 4);
  EXPECT_LT(r.lost, fx.network.size() * 3 / 4);
  EXPECT_EQ(r.delivered + r.lost, fx.network.size());
}

TEST(MobileSimLossTest, DeterministicGivenSeed) {
  Fixture fx(33, 60);
  MobileSimConfig lossy;
  lossy.upload_loss_prob = 0.25;
  MobileCollectionSim a(fx.instance, fx.solution, lossy);
  MobileCollectionSim b(fx.instance, fx.solution, lossy);
  EnergyLedger la(fx.network.size(), 0.5);
  EnergyLedger lb(fx.network.size(), 0.5);
  EXPECT_EQ(a.run_round(la).retransmissions,
            b.run_round(lb).retransmissions);
}

TEST(MobileSimLossTest, RejectsOutOfRangeLossConfig) {
  Fixture fx(34, 10);
  MobileSimConfig bad;
  bad.upload_loss_prob = 1.5;
  EXPECT_THROW(MobileCollectionSim(fx.instance, fx.solution, bad),
               mdg::PreconditionError);
  bad.upload_loss_prob = -0.1;
  EXPECT_THROW(MobileCollectionSim(fx.instance, fx.solution, bad),
               mdg::PreconditionError);
  // loss_prob = 1.0 is legal: every packet exhausts the retry cap.
  MobileSimConfig certain;
  certain.upload_loss_prob = 1.0;
  EXPECT_NO_THROW(MobileCollectionSim(fx.instance, fx.solution, certain));
  MobileSimConfig zero_attempts;
  zero_attempts.max_upload_attempts = 0;
  EXPECT_THROW(MobileCollectionSim(fx.instance, fx.solution, zero_attempts),
               mdg::PreconditionError);
}

TEST(MobileSimKinematicsTest, LegTravelTimeFormulas) {
  Fixture fx(20, 10);
  MobileSimConfig config;
  config.speed_m_per_s = 2.0;
  config.accel_m_per_s2 = 1.0;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  // Long leg (>= v^2/a = 4 m): d/v + v/a.
  EXPECT_NEAR(sim.leg_travel_time(20.0), 20.0 / 2.0 + 2.0, 1e-12);
  // Exactly the ramp distance: both formulas agree.
  EXPECT_NEAR(sim.leg_travel_time(4.0), 4.0, 1e-12);
  // Short leg: triangular profile 2*sqrt(d/a).
  EXPECT_NEAR(sim.leg_travel_time(1.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(sim.leg_travel_time(0.0), 0.0);
}

TEST(MobileSimKinematicsTest, ZeroAccelMatchesCruiseModel) {
  Fixture fx(21, 40);
  MobileSimConfig config;
  config.speed_m_per_s = 1.5;
  MobileCollectionSim sim(fx.instance, fx.solution, config);
  EXPECT_NEAR(sim.tour_travel_time(), fx.solution.tour_length / 1.5, 1e-6);
}

TEST(MobileSimKinematicsTest, AccelerationLengthensRounds) {
  Fixture fx(22, 60);
  MobileSimConfig ideal;
  MobileSimConfig sluggish;
  sluggish.accel_m_per_s2 = 0.2;
  MobileCollectionSim ideal_sim(fx.instance, fx.solution, ideal);
  MobileCollectionSim slow_sim(fx.instance, fx.solution, sluggish);
  EXPECT_GT(slow_sim.tour_travel_time(), ideal_sim.tour_travel_time());

  EnergyLedger l1(fx.network.size(), 0.5);
  EnergyLedger l2(fx.network.size(), 0.5);
  const double ideal_round = ideal_sim.run_round(l1).duration_s;
  const double slow_round = slow_sim.run_round(l2).duration_s;
  EXPECT_GT(slow_round, ideal_round);
  // Energy is unchanged — kinematics only affects time.
  EXPECT_DOUBLE_EQ(l1.consumed(0), l2.consumed(0));
}

TEST(MobileSimKinematicsTest, HighAccelConvergesToIdeal) {
  Fixture fx(23, 30);
  MobileSimConfig nearly_ideal;
  nearly_ideal.accel_m_per_s2 = 1e6;
  MobileCollectionSim sim(fx.instance, fx.solution, nearly_ideal);
  EXPECT_NEAR(sim.tour_travel_time(), fx.solution.tour_length, 1e-2);
}

TEST(MobileSimTest, ValidationOfInputs) {
  Fixture fx(10, 10);
  MobileSimConfig bad;
  bad.speed_m_per_s = 0.0;
  EXPECT_THROW(MobileCollectionSim(fx.instance, fx.solution, bad),
               mdg::PreconditionError);
  MobileCollectionSim sim(fx.instance, fx.solution);
  EnergyLedger wrong_size(3, 1.0);
  EXPECT_THROW((void)sim.run_round(wrong_size), mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::sim

#include "sim/energy.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace mdg::sim {
namespace {

TEST(EnergyLedgerTest, InitialState) {
  const EnergyLedger ledger(5, 2.0);
  EXPECT_EQ(ledger.size(), 5u);
  EXPECT_EQ(ledger.alive_count(), 5u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_TRUE(ledger.alive(v));
    EXPECT_DOUBLE_EQ(ledger.remaining(v), 2.0);
    EXPECT_DOUBLE_EQ(ledger.consumed(v), 0.0);
  }
}

TEST(EnergyLedgerTest, ConsumeAndDie) {
  EnergyLedger ledger(2, 1.0);
  EXPECT_TRUE(ledger.consume(0, 0.4));
  EXPECT_DOUBLE_EQ(ledger.remaining(0), 0.6);
  EXPECT_TRUE(ledger.consume(0, 0.5));
  EXPECT_FALSE(ledger.consume(0, 0.2));  // 0.1 left - 0.2 -> dead
  EXPECT_FALSE(ledger.alive(0));
  EXPECT_EQ(ledger.alive_count(), 1u);
  EXPECT_DOUBLE_EQ(ledger.remaining(0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.consumed(0), 1.0);  // clamped at capacity
}

TEST(EnergyLedgerTest, DeadNodesIgnoreFurtherDraws) {
  EnergyLedger ledger(1, 0.5);
  EXPECT_FALSE(ledger.consume(0, 1.0));
  EXPECT_EQ(ledger.alive_count(), 0u);
  EXPECT_FALSE(ledger.consume(0, 1.0));  // no double-decrement of alive_
  EXPECT_EQ(ledger.alive_count(), 0u);
}

TEST(EnergyLedgerTest, ExactDepletionIsDeath) {
  EnergyLedger ledger(1, 1.0);
  EXPECT_FALSE(ledger.consume(0, 1.0));
  EXPECT_FALSE(ledger.alive(0));
}

TEST(EnergyLedgerTest, ZeroConsumptionKeepsAlive) {
  EnergyLedger ledger(1, 1.0);
  EXPECT_TRUE(ledger.consume(0, 0.0));
  EXPECT_TRUE(ledger.alive(0));
}

TEST(EnergyLedgerTest, ConsumedAllSnapshot) {
  EnergyLedger ledger(3, 1.0);
  ledger.consume(1, 0.25);
  const auto all = ledger.consumed_all();
  EXPECT_DOUBLE_EQ(all[0], 0.0);
  EXPECT_DOUBLE_EQ(all[1], 0.25);
  EXPECT_DOUBLE_EQ(all[2], 0.0);
}

TEST(EnergyLedgerTest, Validation) {
  EXPECT_THROW(EnergyLedger(3, 0.0), mdg::PreconditionError);
  EnergyLedger ledger(1, 1.0);
  EXPECT_THROW((void)ledger.remaining(1), mdg::PreconditionError);
  EXPECT_THROW((void)ledger.consume(0, -0.1), mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::sim

#include "sim/multihop_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::sim {
namespace {

net::SensorNetwork uniform_net(std::size_t n, double side, double rs,
                               std::uint64_t seed) {
  Rng rng(seed);
  return net::make_uniform_network(n, side, rs, rng);
}

// Sensors in a line toward the sink: 45, 35, 25 (sink at 50, Rs 11).
net::SensorNetwork chain_network() {
  std::vector<geom::Point> pts{{45.0, 50.0}, {35.0, 50.0}, {25.0, 50.0}};
  const auto field = geom::Aabb::square(100.0);
  return net::SensorNetwork(std::move(pts), field.center(), field, 11.0);
}

TEST(MultihopSimTest, DeliversAllOnConnectedChain) {
  const auto network = chain_network();
  MultihopSim sim(network);
  EnergyLedger ledger(network.size(), 0.5);
  const MultihopRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, 3u);
  EXPECT_EQ(r.stranded, 0u);
}

TEST(MultihopSimTest, RelayLoadConcentratesNearSink) {
  // The gateway sensor relays everyone: its round energy dominates.
  const auto network = chain_network();
  MultihopSim sim(network);
  EnergyLedger ledger(network.size(), 0.5);
  const MultihopRoundReport r = sim.run_round(ledger);
  EXPECT_GT(r.round_energy[0], r.round_energy[2]);
}

TEST(MultihopSimTest, LatencyProportionalToHops) {
  const auto network = chain_network();
  MultihopSimConfig config;
  config.per_hop_delay_s = 0.1;
  MultihopSim sim(network, config);
  EnergyLedger ledger(network.size(), 0.5);
  const MultihopRoundReport r = sim.run_round(ledger);
  // Hops: 1, 2, 3 -> mean 2 -> 0.2 s.
  EXPECT_NEAR(r.mean_latency_s, 0.2, 1e-12);
}

TEST(MultihopSimTest, StrandedWhenSinkUnreachable) {
  // Sensors far from the sink with tiny range: all stranded.
  std::vector<geom::Point> pts{{5.0, 5.0}, {10.0, 5.0}};
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   6.0);
  MultihopSim sim(network);
  EnergyLedger ledger(network.size(), 0.5);
  const MultihopRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.stranded, 2u);
}

TEST(MultihopSimTest, GatewayDiesFirstInLifetime) {
  const auto network = chain_network();
  MultihopSimConfig config;
  config.initial_battery_j = 0.01;
  MultihopSim sim(network, config);
  const MultihopLifetimeReport life = sim.run_lifetime();
  EXPECT_GT(life.rounds_first_death, 0u);
  EXPECT_LE(life.delivery_ratio, 1.0);
  EXPECT_GT(life.delivered_total, 0u);
}

TEST(MultihopSimTest, ReroutesAroundDeadRelays) {
  // Diamond: two parallel 2-hop paths to the sink; killing one relay must
  // not strand the source.
  std::vector<geom::Point> pts{
      {40.0, 50.0},  // 0: gateway A
      {50.0, 40.0},  // 1: gateway B
      {38.0, 38.0},  // 2: source reaching both gateways but not the sink
  };
  const auto field = geom::Aabb::square(100.0);
  const net::SensorNetwork network(std::move(pts), field.center(), field,
                                   13.0);
  MultihopSim sim(network);
  EnergyLedger ledger(network.size(), 0.5);
  ledger.consume(0, 1.0);  // kill gateway A
  const MultihopRoundReport r = sim.run_round(ledger);
  EXPECT_EQ(r.stranded, 0u);
  EXPECT_EQ(r.delivered, 2u);  // gateway B + source
}

TEST(MultihopSimTest, LifetimeShorterThanMobileCollectionWouldBe) {
  // Relays burn rx+tx for subtree packets; a mobile scheme pays one tx.
  // Just verify the hotspot effect exists: first death well before the
  // battery/one-upload bound.
  const auto network = uniform_net(150, 150.0, 25.0, 5);
  MultihopSimConfig config;
  config.initial_battery_j = 0.05;
  MultihopSim sim(network, config);
  const MultihopLifetimeReport life = sim.run_lifetime();
  const double one_upload = network.radio().tx_packet(25.0);
  const auto upper_bound_if_single_hop =
      static_cast<std::size_t>(config.initial_battery_j / one_upload);
  EXPECT_LT(life.rounds_first_death, upper_bound_if_single_hop);
}

TEST(MultihopSimTest, EmptyNetworkLifetime) {
  const auto field = geom::Aabb::square(10.0);
  const net::SensorNetwork network({}, field.center(), field, 3.0);
  MultihopSim sim(network);
  const MultihopLifetimeReport life = sim.run_lifetime();
  EXPECT_EQ(life.rounds_first_death, 0u);
  EXPECT_EQ(life.delivered_total, 0u);
}

TEST(MultihopSimTest, LedgerSizeValidated) {
  const auto network = chain_network();
  MultihopSim sim(network);
  EnergyLedger wrong(7, 1.0);
  EXPECT_THROW((void)sim.run_round(wrong), mdg::PreconditionError);
}

}  // namespace
}  // namespace mdg::sim

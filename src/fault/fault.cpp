#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace mdg::fault {
namespace {

bool valid_prob(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }
bool valid_duration(double d) { return std::isfinite(d) && d >= 0.0; }

/// Exponential variate with the given mean (inverse-CDF on one draw).
double exponential(Rng& rng, double mean_s) {
  if (mean_s <= 0.0) {
    return 0.0;
  }
  // next_double() is in [0, 1), so the log argument stays positive.
  return -mean_s * std::log(1.0 - rng.next_double());
}

}  // namespace

core::Status FaultConfig::validate() const {
  if (!std::isfinite(horizon_s) || horizon_s <= 0.0) {
    return core::Status::invalid_argument("horizon must be positive");
  }
  if (!valid_prob(sensor_crash_prob)) {
    return core::Status::invalid_argument(
        "sensor-crash-prob must be in [0, 1]");
  }
  if (!valid_prob(pp_blackout_prob)) {
    return core::Status::invalid_argument("pp-blackout-prob must be in [0, 1]");
  }
  if (!valid_duration(pp_blackout_mean_s)) {
    return core::Status::invalid_argument(
        "pp-blackout-mean must be non-negative");
  }
  if (!std::isfinite(burst_episodes_mean) || burst_episodes_mean < 0.0) {
    return core::Status::invalid_argument(
        "burst-episodes must be non-negative");
  }
  if (!valid_duration(burst_mean_s)) {
    return core::Status::invalid_argument("burst-mean must be non-negative");
  }
  if (!valid_prob(burst_loss_prob)) {
    return core::Status::invalid_argument("burst-loss must be in [0, 1]");
  }
  if (!std::isfinite(stall_mean) || stall_mean < 0.0) {
    return core::Status::invalid_argument("stalls must be non-negative");
  }
  if (!valid_duration(stall_duration_s)) {
    return core::Status::invalid_argument(
        "stall-duration must be non-negative");
  }
  if (!valid_prob(breakdown_prob)) {
    return core::Status::invalid_argument("breakdown-prob must be in [0, 1]");
  }
  if (std::isnan(breakdown_frac) || breakdown_frac > 1.0) {
    return core::Status::invalid_argument(
        "breakdown-frac must be <= 1 (negative = disabled)");
  }
  if (!valid_duration(dwell_budget_s)) {
    return core::Status::invalid_argument(
        "dwell-budget must be non-negative");
  }
  if (!valid_duration(repoll_backoff_s)) {
    return core::Status::invalid_argument(
        "repoll-backoff must be non-negative");
  }
  return core::Status::ok();
}

FaultPlan FaultPlan::generate(const core::ShdgpInstance& instance,
                              const core::ShdgpSolution& solution,
                              const FaultConfig& config) {
  const core::Status status = config.validate();
  MDG_REQUIRE(status.is_ok(), "invalid fault config: " + status.to_string());

  FaultPlan plan;
  plan.config_ = config;
  const Rng root(config.seed);

  // Every fault class draws from its own fork stream in a fixed order,
  // so enabling one class never shifts another class's draws.
  constexpr std::uint64_t kCrashStream = 1;
  constexpr std::uint64_t kBlackoutStream = 2;
  constexpr std::uint64_t kBurstStream = 3;
  constexpr std::uint64_t kStallStream = 4;
  constexpr std::uint64_t kBreakdownStream = 5;

  const std::size_t sensors = instance.sensor_count();
  plan.crash_time_by_sensor_.assign(
      sensors, std::numeric_limits<double>::infinity());
  {
    Rng rng = root.fork(kCrashStream);
    for (std::size_t s = 0; s < sensors; ++s) {
      // Draw both values unconditionally so the stream position per
      // sensor is fixed regardless of which sensors crash.
      const bool crashes = rng.chance(config.sensor_crash_prob);
      const double t = rng.uniform(0.0, config.horizon_s);
      if (crashes) {
        plan.crash_time_by_sensor_[s] = t;
        plan.crashes_.push_back({s, t});
      }
    }
  }

  {
    Rng rng = root.fork(kBlackoutStream);
    for (std::size_t pp = 0; pp < solution.polling_points.size(); ++pp) {
      const bool hit = rng.chance(config.pp_blackout_prob);
      const double start = rng.uniform(0.0, config.horizon_s);
      const double duration = exponential(rng, config.pp_blackout_mean_s);
      if (hit && duration > 0.0) {
        plan.blackouts_.push_back({pp, start, start + duration});
      }
    }
  }

  {
    Rng rng = root.fork(kBurstStream);
    const std::size_t episodes = rng.poisson(config.burst_episodes_mean);
    for (std::size_t e = 0; e < episodes; ++e) {
      const double start = rng.uniform(0.0, config.horizon_s);
      const double duration = exponential(rng, config.burst_mean_s);
      if (duration > 0.0) {
        plan.bursts_.push_back({start, start + duration,
                                config.burst_loss_prob});
      }
    }
    std::sort(plan.bursts_.begin(), plan.bursts_.end(),
              [](const BurstLossEpisode& a, const BurstLossEpisode& b) {
                return a.start_s < b.start_s;
              });
  }

  {
    Rng rng = root.fork(kStallStream);
    const std::size_t stalls = rng.poisson(config.stall_mean);
    for (std::size_t i = 0; i < stalls; ++i) {
      const double at = rng.next_double() * solution.tour_length;
      const double duration = exponential(rng, config.stall_duration_s);
      if (duration > 0.0) {
        plan.stalls_.push_back({at, duration});
      }
    }
    std::sort(plan.stalls_.begin(), plan.stalls_.end(),
              [](const CollectorStall& a, const CollectorStall& b) {
                return a.distance_m < b.distance_m;
              });
  }

  {
    Rng rng = root.fork(kBreakdownStream);
    const bool drawn = rng.chance(config.breakdown_prob);
    const double frac = rng.next_double();
    if (config.breakdown_frac >= 0.0) {
      plan.breakdown_.enabled = true;
      plan.breakdown_.distance_m = config.breakdown_frac *
                                   solution.tour_length;
    } else if (drawn) {
      plan.breakdown_.enabled = true;
      plan.breakdown_.distance_m = frac * solution.tour_length;
    }
  }

  return plan;
}

bool FaultPlan::sensor_alive_at(std::size_t sensor, double time_s) const {
  if (sensor >= crash_time_by_sensor_.size()) {
    return true;  // plan generated for a smaller instance — inject nothing
  }
  return time_s < crash_time_by_sensor_[sensor];
}

bool FaultPlan::blackout_active(std::size_t pp_slot, double time_s) const {
  for (const BlackoutWindow& w : blackouts_) {
    if (w.pp_slot == pp_slot && time_s >= w.start_s && time_s < w.end_s) {
      return true;
    }
  }
  return false;
}

double FaultPlan::blackout_end(std::size_t pp_slot, double time_s) const {
  double end = time_s;
  for (const BlackoutWindow& w : blackouts_) {
    if (w.pp_slot == pp_slot && time_s >= w.start_s && time_s < w.end_s) {
      end = std::max(end, w.end_s);
    }
  }
  return end;
}

double FaultPlan::loss_prob_at(double time_s, double base) const {
  double prob = base;
  for (const BurstLossEpisode& e : bursts_) {
    if (time_s >= e.start_s && time_s < e.end_s) {
      prob = std::max(prob, e.loss_prob);
    }
  }
  return prob;
}

bool FaultPlan::burst_active(double time_s) const {
  for (const BurstLossEpisode& e : bursts_) {
    if (time_s >= e.start_s && time_s < e.end_s) {
      return true;
    }
  }
  return false;
}

double FaultPlan::stall_delay(double from_m, double to_m) const {
  double delay = 0.0;
  for (const CollectorStall& s : stalls_) {
    if (s.distance_m >= from_m && s.distance_m < to_m) {
      delay += s.duration_s;
    }
  }
  return delay;
}

}  // namespace mdg::fault

// Plain-text fault configs for chaos runs (mdg_cli simulate --faults).
//
// Line-oriented `key value` pairs behind a versioned header, mirroring
// the mdg-network format:
//
//   mdg-faults 1
//   seed 7
//   horizon 3600
//   sensor-crash-prob 0.10
//   pp-blackout-prob 0.25
//   pp-blackout-mean 45
//   burst-episodes 2
//   burst-mean 15
//   burst-loss 0.9
//   stalls 1
//   stall-duration 30
//   breakdown-prob 0
//   breakdown-frac 0.5
//   dwell-budget 120
//   repoll-backoff 2
//   max-repolls 8
//
// Every key is optional (defaults are the fault-free FaultConfig);
// unknown keys and unparsable values are input errors. Lines starting
// with '#' are comments. This is untrusted-boundary input, so the parser
// returns core::Status instead of throwing (see docs/FAULTS.md).
#pragma once

#include <iosfwd>
#include <string>

#include "core/status.h"
#include "fault/fault.h"

namespace mdg::fault {

struct ConfigReadOptions {
  /// When false, keep parsing after an error and report every problem in
  /// one Status message (one line per problem).
  bool fail_fast = true;
};

[[nodiscard]] core::StatusOr<FaultConfig> read_fault_config(
    std::istream& in, const ConfigReadOptions& options = {});

[[nodiscard]] core::StatusOr<FaultConfig> load_fault_config(
    const std::string& path, const ConfigReadOptions& options = {});

void write_fault_config(std::ostream& out, const FaultConfig& config);

}  // namespace mdg::fault

// Deterministic fault injection for chaos runs.
//
// A FaultConfig describes failure *rates*; FaultPlan::generate expands it
// into a concrete, fully-materialized schedule of failure events (sensor
// crashes, polling-point radio blackouts, burst-loss link episodes,
// collector stalls and a mid-tour breakdown) for one instance/solution
// pair. Generation draws from util::Rng fork streams in a fixed order, so
// the same (config, seed, instance, solution) always yields a
// byte-identical schedule regardless of which faults are enabled — the
// determinism contract of docs/FAULTS.md. Simulators only *query* a plan;
// they never draw fault randomness themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "core/status.h"

namespace mdg::fault {

/// Failure intensities over a simulated horizon. All probabilities are in
/// [0, 1]; all durations in seconds. The default config injects nothing.
struct FaultConfig {
  std::uint64_t seed = 2008;
  /// Time window the schedule covers. Events beyond the horizon do not
  /// exist; simulated time past it is fault-free.
  double horizon_s = 3600.0;

  /// Per-sensor probability of a crash (battery death, firmware hang) at
  /// a uniform time within the horizon. A crashed sensor stops
  /// generating and uploading; its buffered packets are stranded.
  double sensor_crash_prob = 0.0;

  /// Per-polling-point probability of one radio blackout window
  /// (interference, jamming) starting uniformly within the horizon.
  double pp_blackout_prob = 0.0;
  /// Mean blackout duration (exponentially distributed).
  double pp_blackout_mean_s = 30.0;

  /// Expected number of burst-loss link episodes over the horizon
  /// (Poisson); during an episode the upload-loss probability is raised
  /// to `burst_loss_prob`.
  double burst_episodes_mean = 0.0;
  double burst_mean_s = 20.0;    ///< mean episode duration (exponential)
  double burst_loss_prob = 0.9;  ///< loss probability inside an episode

  /// Expected number of collector stalls (obstacle, recharge top-up)
  /// over the tour (Poisson); each stall pauses the collector for an
  /// exponential duration at a uniform position along the tour.
  double stall_mean = 0.0;
  double stall_duration_s = 60.0;

  /// Probability that the collector breaks down mid-tour. The breakdown
  /// position is a uniform fraction of the tour length unless
  /// `breakdown_frac` pins it.
  double breakdown_prob = 0.0;
  /// When in [0, 1], deterministically break down after driving this
  /// fraction of the tour (overrides breakdown_prob). Negative = draw.
  double breakdown_frac = -1.0;

  // --- recovery policy (consumed by the simulator) ----------------------
  /// Max total time the collector waits at a blacked-out polling point
  /// before abandoning the stop for this round.
  double dwell_budget_s = 120.0;
  /// First re-poll wait; doubles on every retry (exponential backoff).
  double repoll_backoff_s = 2.0;
  /// Re-poll attempts per blacked-out stop before giving up (on top of
  /// the initial poll).
  std::size_t max_repolls = 8;

  /// Rejects NaN/negative rates, probabilities outside [0, 1], and a
  /// non-positive horizon.
  [[nodiscard]] core::Status validate() const;
};

struct SensorCrash {
  std::size_t sensor = 0;
  double time_s = 0.0;
};

struct BlackoutWindow {
  std::size_t pp_slot = 0;  ///< index into solution.polling_points
  double start_s = 0.0;
  double end_s = 0.0;
};

struct BurstLossEpisode {
  double start_s = 0.0;
  double end_s = 0.0;
  double loss_prob = 0.0;
};

struct CollectorStall {
  double distance_m = 0.0;  ///< odometer reading at which the stall hits
  double duration_s = 0.0;
};

struct CollectorBreakdown {
  bool enabled = false;
  double distance_m = 0.0;  ///< odometer reading at which the drive ends
};

/// A concrete, immutable fault schedule. Cheap to query from the
/// simulator hot loop: per-sensor crash times are indexed, windows are
/// scanned (they are few).
class FaultPlan {
 public:
  /// A plan that injects nothing (the default-constructed plan).
  FaultPlan() = default;

  /// Materializes `config` against one instance/solution pair. The
  /// config must validate; the solution must belong to the instance.
  [[nodiscard]] static FaultPlan generate(const core::ShdgpInstance& instance,
                                          const core::ShdgpSolution& solution,
                                          const FaultConfig& config);

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// False once the sensor's crash time has passed.
  [[nodiscard]] bool sensor_alive_at(std::size_t sensor, double time_s) const;

  /// True while polling point `pp_slot` is inside a blackout window.
  [[nodiscard]] bool blackout_active(std::size_t pp_slot,
                                     double time_s) const;
  /// End of the blackout window covering `time_s` (time_s itself when no
  /// window is active) — what a waiting collector is waiting for.
  [[nodiscard]] double blackout_end(std::size_t pp_slot, double time_s) const;

  /// Upload-loss probability at `time_s`: the strongest active burst
  /// episode, or `base` outside every episode.
  [[nodiscard]] double loss_prob_at(double time_s, double base) const;
  /// True when a burst episode elevates the loss probability at time_s.
  [[nodiscard]] bool burst_active(double time_s) const;

  /// Total stall delay incurred while driving from odometer reading
  /// `from_m` to `to_m` (breakdown-independent).
  [[nodiscard]] double stall_delay(double from_m, double to_m) const;

  [[nodiscard]] const CollectorBreakdown& breakdown() const {
    return breakdown_;
  }
  [[nodiscard]] const std::vector<SensorCrash>& crashes() const {
    return crashes_;
  }
  [[nodiscard]] const std::vector<BlackoutWindow>& blackouts() const {
    return blackouts_;
  }
  [[nodiscard]] const std::vector<BurstLossEpisode>& bursts() const {
    return bursts_;
  }
  [[nodiscard]] const std::vector<CollectorStall>& stalls() const {
    return stalls_;
  }

 private:
  FaultConfig config_;
  std::vector<SensorCrash> crashes_;          ///< sorted by sensor
  std::vector<double> crash_time_by_sensor_;  ///< +inf = never crashes
  std::vector<BlackoutWindow> blackouts_;     ///< sorted by pp_slot
  std::vector<BurstLossEpisode> bursts_;      ///< sorted by start
  std::vector<CollectorStall> stalls_;        ///< sorted by distance
  CollectorBreakdown breakdown_;
};

}  // namespace mdg::fault

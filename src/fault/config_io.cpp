#include "fault/config_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace mdg::fault {
namespace {

/// Collects problems; honours fail_fast by telling the caller to stop.
struct Problems {
  bool fail_fast = true;
  std::vector<std::string> messages;

  void add(std::size_t line, const std::string& what) {
    messages.push_back("line " + std::to_string(line) + ": " + what);
  }
  [[nodiscard]] bool should_stop() const {
    return fail_fast && !messages.empty();
  }
  [[nodiscard]] core::Status to_status() const {
    std::string joined;
    for (const std::string& m : messages) {
      if (!joined.empty()) {
        joined += "\n  ";
      }
      joined += m;
    }
    return core::Status::invalid_argument(joined);
  }
};

bool parse_double(const std::string& text, double& out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return false;
  }
  out = parsed;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      text[0] == '-') {
    return false;
  }
  out = parsed;
  return true;
}

}  // namespace

core::StatusOr<FaultConfig> read_fault_config(std::istream& in,
                                              const ConfigReadOptions& options) {
  FaultConfig config;
  Problems problems{.fail_fast = options.fail_fast};

  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key) || key[0] == '#') {
      continue;  // blank or comment line
    }
    std::string value;
    tokens >> value;
    std::string extra;
    if (tokens >> extra) {
      problems.add(line_no, "trailing tokens after '" + key + " " + value +
                                "'");
      if (problems.should_stop()) {
        return problems.to_status();
      }
      continue;
    }

    if (!header_seen) {
      if (key != "mdg-faults") {
        return core::Status::invalid_argument(
            "line " + std::to_string(line_no) +
            ": expected 'mdg-faults <version>' header, got '" + key + "'");
      }
      if (value != "1") {
        return core::Status::invalid_argument(
            "unsupported mdg-faults version '" + value + "'");
      }
      header_seen = true;
      continue;
    }

    if (key == "seed") {
      std::uint64_t seed = 0;
      if (!parse_u64(value, seed)) {
        problems.add(line_no, "seed expects an unsigned integer, got '" +
                                  value + "'");
      } else {
        config.seed = seed;
      }
    } else if (key == "max-repolls") {
      std::uint64_t n = 0;
      if (!parse_u64(value, n)) {
        problems.add(line_no,
                     "max-repolls expects an unsigned integer, got '" +
                         value + "'");
      } else {
        config.max_repolls = static_cast<std::size_t>(n);
      }
    } else {
      double number = 0.0;
      const bool numeric = parse_double(value, number);
      if (!numeric) {
        problems.add(line_no,
                     key + " expects a number, got '" + value + "'");
      } else if (key == "horizon") {
        config.horizon_s = number;
      } else if (key == "sensor-crash-prob") {
        config.sensor_crash_prob = number;
      } else if (key == "pp-blackout-prob") {
        config.pp_blackout_prob = number;
      } else if (key == "pp-blackout-mean") {
        config.pp_blackout_mean_s = number;
      } else if (key == "burst-episodes") {
        config.burst_episodes_mean = number;
      } else if (key == "burst-mean") {
        config.burst_mean_s = number;
      } else if (key == "burst-loss") {
        config.burst_loss_prob = number;
      } else if (key == "stalls") {
        config.stall_mean = number;
      } else if (key == "stall-duration") {
        config.stall_duration_s = number;
      } else if (key == "breakdown-prob") {
        config.breakdown_prob = number;
      } else if (key == "breakdown-frac") {
        config.breakdown_frac = number;
      } else if (key == "dwell-budget") {
        config.dwell_budget_s = number;
      } else if (key == "repoll-backoff") {
        config.repoll_backoff_s = number;
      } else {
        problems.add(line_no, "unknown key '" + key + "'");
      }
    }
    if (problems.should_stop()) {
      return problems.to_status();
    }
  }

  if (!header_seen) {
    return core::Status::data_loss(
        "empty fault config (missing 'mdg-faults 1' header)");
  }
  if (problems.messages.empty()) {
    const core::Status semantic = config.validate();
    if (!semantic.is_ok()) {
      return semantic;
    }
    return config;
  }
  return problems.to_status();
}

core::StatusOr<FaultConfig> load_fault_config(const std::string& path,
                                              const ConfigReadOptions& options) {
  std::ifstream in(path);
  if (!in.good()) {
    return core::Status::not_found("cannot open '" + path + "' for reading");
  }
  auto result = read_fault_config(in, options);
  if (!result.is_ok()) {
    return result.status().with_context(path);
  }
  return result;
}

void write_fault_config(std::ostream& out, const FaultConfig& config) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "mdg-faults 1\n";
  out << "seed " << config.seed << '\n';
  out << "horizon " << config.horizon_s << '\n';
  out << "sensor-crash-prob " << config.sensor_crash_prob << '\n';
  out << "pp-blackout-prob " << config.pp_blackout_prob << '\n';
  out << "pp-blackout-mean " << config.pp_blackout_mean_s << '\n';
  out << "burst-episodes " << config.burst_episodes_mean << '\n';
  out << "burst-mean " << config.burst_mean_s << '\n';
  out << "burst-loss " << config.burst_loss_prob << '\n';
  out << "stalls " << config.stall_mean << '\n';
  out << "stall-duration " << config.stall_duration_s << '\n';
  out << "breakdown-prob " << config.breakdown_prob << '\n';
  out << "breakdown-frac " << config.breakdown_frac << '\n';
  out << "dwell-budget " << config.dwell_budget_s << '\n';
  out << "repoll-backoff " << config.repoll_backoff_s << '\n';
  out << "max-repolls " << config.max_repolls << '\n';
}

}  // namespace mdg::fault

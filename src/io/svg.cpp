#include "io/svg.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace mdg::io {
namespace {

// Colour cycle for multi-collector subtours.
const char* kTourColors[] = {"#d62728", "#1f77b4", "#2ca02c",
                             "#9467bd", "#ff7f0e", "#8c564b"};

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << v;
  return out.str();
}

}  // namespace

SvgCanvas::SvgCanvas(const geom::Aabb& field, SvgOptions options)
    : field_(field), options_(options) {
  MDG_REQUIRE(options.pixels_per_meter > 0.0, "scale must be positive");
}

double SvgCanvas::x(double meters_x) const {
  return options_.padding_px +
         (meters_x - field_.lo.x) * options_.pixels_per_meter;
}

double SvgCanvas::y(double meters_y) const {
  return options_.padding_px +
         (field_.hi.y - meters_y) * options_.pixels_per_meter;
}

void SvgCanvas::add_circle(geom::Point center, double radius_m,
                           const std::string& fill, const std::string& stroke,
                           double opacity) {
  std::ostringstream el;
  el << "<circle cx=\"" << fmt(x(center.x)) << "\" cy=\"" << fmt(y(center.y))
     << "\" r=\"" << fmt(radius_m * options_.pixels_per_meter)
     << "\" fill=\"" << fill << "\" stroke=\"" << stroke << "\" opacity=\""
     << fmt(opacity) << "\"/>";
  elements_.push_back(el.str());
}

void SvgCanvas::add_line(geom::Point a, geom::Point b,
                         const std::string& stroke, double width_px,
                         double opacity) {
  std::ostringstream el;
  el << "<line x1=\"" << fmt(x(a.x)) << "\" y1=\"" << fmt(y(a.y))
     << "\" x2=\"" << fmt(x(b.x)) << "\" y2=\"" << fmt(y(b.y))
     << "\" stroke=\"" << stroke << "\" stroke-width=\"" << fmt(width_px)
     << "\" opacity=\"" << fmt(opacity) << "\"/>";
  elements_.push_back(el.str());
}

void SvgCanvas::add_polyline(const std::vector<geom::Point>& points,
                             const std::string& stroke, double width_px) {
  if (points.size() < 2) {
    return;
  }
  std::ostringstream el;
  el << "<polyline fill=\"none\" stroke=\"" << stroke
     << "\" stroke-width=\"" << fmt(width_px) << "\" points=\"";
  for (const geom::Point& p : points) {
    el << fmt(x(p.x)) << ',' << fmt(y(p.y)) << ' ';
  }
  el << "\"/>";
  elements_.push_back(el.str());
}

void SvgCanvas::add_rect(const geom::Aabb& box, const std::string& fill,
                         double opacity) {
  std::ostringstream el;
  el << "<rect x=\"" << fmt(x(box.lo.x)) << "\" y=\"" << fmt(y(box.hi.y))
     << "\" width=\"" << fmt(box.width() * options_.pixels_per_meter)
     << "\" height=\"" << fmt(box.height() * options_.pixels_per_meter)
     << "\" fill=\"" << fill << "\" opacity=\"" << fmt(opacity) << "\"/>";
  elements_.push_back(el.str());
}

void SvgCanvas::add_label(geom::Point at, const std::string& text,
                          int font_px) {
  std::ostringstream el;
  el << "<text x=\"" << fmt(x(at.x)) << "\" y=\"" << fmt(y(at.y))
     << "\" font-size=\"" << font_px << "\" font-family=\"sans-serif\">"
     << text << "</text>";
  elements_.push_back(el.str());
}

void SvgCanvas::draw_network(const net::SensorNetwork& network) {
  if (options_.draw_connectivity) {
    for (const graph::Edge& e : network.connectivity().edges()) {
      add_line(network.position(e.u), network.position(e.v), "#cccccc", 0.5,
               0.6);
    }
  }
  for (const geom::Point& p : network.positions()) {
    add_circle(p, 1.2 / options_.pixels_per_meter, "#555555");
  }
  // The sink: a distinctive square-ish mark (drawn as concentric rings).
  add_circle(network.sink(), 3.0 / options_.pixels_per_meter, "#000000");
  add_circle(network.sink(), 5.0 / options_.pixels_per_meter, "none",
             "#000000");
}

void SvgCanvas::draw_solution(const core::ShdgpInstance& instance,
                              const core::ShdgpSolution& solution) {
  const auto& network = instance.network();
  if (options_.draw_affiliations) {
    for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
      add_line(network.position(s),
               solution.polling_points[solution.assignment[s]], "#2ca02c",
               0.6, 0.5);
    }
  }
  if (options_.draw_range_disks) {
    for (const geom::Point& pp : solution.polling_points) {
      add_circle(pp, network.range(), "#1f77b4", "none", 0.08);
    }
  }
  for (const geom::Point& pp : solution.polling_points) {
    add_circle(pp, 2.2 / options_.pixels_per_meter, "#1f77b4");
  }
  add_polyline(solution.tour_coordinates(instance), "#d62728", 1.5);
  // Close the loop visually.
  const auto coords = solution.tour_coordinates(instance);
  if (coords.size() >= 2) {
    add_line(coords.back(), coords.front(), "#d62728", 1.5);
  }
}

void SvgCanvas::draw_multi_tour(const core::ShdgpInstance& instance,
                                const core::MultiTourPlan& plan) {
  for (std::size_t c = 0; c < plan.subtours.size(); ++c) {
    const auto& st = plan.subtours[c];
    if (st.stops.empty()) {
      continue;
    }
    std::vector<geom::Point> loop{instance.sink()};
    loop.insert(loop.end(), st.stops.begin(), st.stops.end());
    loop.push_back(instance.sink());
    add_polyline(loop,
                 kTourColors[c % (sizeof(kTourColors) / sizeof(char*))],
                 1.5);
  }
}

void SvgCanvas::draw_obstacles(const route::ObstacleMap& map) {
  for (const geom::Aabb& box : map.obstacles()) {
    add_rect(box, "#444444", 0.45);
  }
}

void SvgCanvas::draw_path(const std::vector<geom::Point>& polyline,
                          const std::string& stroke) {
  add_polyline(polyline, stroke, 1.5);
}

void SvgCanvas::write(std::ostream& out) const {
  const double w = field_.width() * options_.pixels_per_meter +
                   2.0 * options_.padding_px;
  const double h = field_.height() * options_.pixels_per_meter +
                   2.0 * options_.padding_px;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << fmt(w)
      << "\" height=\"" << fmt(h) << "\">\n";
  out << "<rect x=\"0\" y=\"0\" width=\"" << fmt(w) << "\" height=\""
      << fmt(h) << "\" fill=\"#ffffff\"/>\n";
  for (const std::string& el : elements_) {
    out << el << '\n';
  }
  out << "</svg>\n";
}

std::string SvgCanvas::to_string() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write(out);
  MDG_REQUIRE(out.good(), "failed writing '" + path + "'");
}

}  // namespace mdg::io

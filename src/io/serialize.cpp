#include "io/serialize.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/assert.h"

namespace mdg::io {
namespace {

/// Sanity cap on entity counts in untrusted files so a corrupted header
/// cannot drive a multi-gigabyte reserve before the first read fails.
constexpr std::size_t kMaxEntities = 10'000'000;

/// Semantic-problem collector (see LoadOptions::fail_fast).
struct Problems {
  bool fail_fast = true;
  std::vector<std::string> messages;

  void add(std::string what) { messages.push_back(std::move(what)); }
  [[nodiscard]] bool should_stop() const {
    return fail_fast && !messages.empty();
  }
  [[nodiscard]] core::Status to_status() const {
    std::string joined;
    for (const std::string& m : messages) {
      if (!joined.empty()) {
        joined += "\n  ";
      }
      joined += m;
    }
    return core::Status::invalid_argument(joined);
  }
};

/// Token-level reader; every syntactic problem is fatal (the stream
/// position is unrecoverable after a failed extraction).
struct TokenReader {
  std::istream& in;

  [[nodiscard]] core::Status expect(const std::string& expected) {
    std::string token;
    in >> token;
    if (in.fail() || token != expected) {
      if (token.empty()) {
        return core::Status::data_loss("truncated input: expected '" +
                                       expected + "'");
      }
      return core::Status::invalid_argument("expected '" + expected +
                                            "', got '" + token + "'");
    }
    return core::Status::ok();
  }

  template <typename T>
  [[nodiscard]] core::StatusOr<T> value(const char* what) {
    T parsed{};
    in >> parsed;
    if (in.fail()) {
      if (in.eof()) {
        return core::Status::data_loss(std::string("truncated input: missing ") +
                                       what);
      }
      return core::Status::invalid_argument(std::string("bad ") + what);
    }
    return parsed;
  }
};

#define MDG_IO_TRY(status_expr)            \
  do {                                     \
    core::Status mdg_io_s = (status_expr); \
    if (!mdg_io_s.is_ok()) {               \
      return mdg_io_s;                     \
    }                                      \
  } while (false)

#define MDG_IO_ASSIGN(lhs, expr)       \
  auto lhs##_or = (expr);              \
  if (!lhs##_or.is_ok()) {             \
    return lhs##_or.status();          \
  }                                    \
  auto lhs = std::move(lhs##_or).value()

bool finite(double v) { return std::isfinite(v); }

std::string fmt(double v) {
  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return out.str();
}

std::ostream& full_precision(std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  return out;
}

}  // namespace

void write_network(std::ostream& out, const net::SensorNetwork& network) {
  full_precision(out);
  out << "mdg-network 2\n";
  const geom::Aabb& f = network.field();
  out << "field " << f.lo.x << ' ' << f.lo.y << ' ' << f.hi.x << ' ' << f.hi.y
      << '\n';
  out << "sink " << network.sink().x << ' ' << network.sink().y << '\n';
  out << "range " << network.range() << '\n';
  const net::RadioModel& r = network.radio();
  out << "radio " << r.e_elec << ' ' << r.eps_amp << ' ' << r.eps_mp << ' '
      << r.packet_bits << '\n';
  out << "sensors " << network.size() << '\n';
  for (const geom::Point& p : network.positions()) {
    out << p.x << ' ' << p.y << '\n';
  }
}

core::StatusOr<net::SensorNetwork> try_read_network(
    std::istream& in, const LoadOptions& options) {
  TokenReader tok{in};
  Problems problems{.fail_fast = options.fail_fast};

  MDG_IO_TRY(tok.expect("mdg-network"));
  MDG_IO_ASSIGN(version, tok.value<int>("version"));
  if (version != 1 && version != 2) {
    return core::Status::invalid_argument(
        "unsupported mdg-network version " + std::to_string(version));
  }

  MDG_IO_TRY(tok.expect("field"));
  geom::Aabb field;
  MDG_IO_ASSIGN(flx, tok.value<double>("field"));
  MDG_IO_ASSIGN(fly, tok.value<double>("field"));
  MDG_IO_ASSIGN(fhx, tok.value<double>("field"));
  MDG_IO_ASSIGN(fhy, tok.value<double>("field"));
  field.lo = {flx, fly};
  field.hi = {fhx, fhy};
  if (!finite(flx) || !finite(fly) || !finite(fhx) || !finite(fhy)) {
    problems.add("field bounds must be finite");
  } else if (fhx < flx || fhy < fly) {
    problems.add("field upper bound below lower bound");
  }
  if (problems.should_stop()) {
    return problems.to_status();
  }

  MDG_IO_TRY(tok.expect("sink"));
  geom::Point sink;
  MDG_IO_ASSIGN(sx, tok.value<double>("sink"));
  MDG_IO_ASSIGN(sy, tok.value<double>("sink"));
  sink = {sx, sy};
  if (!finite(sx) || !finite(sy)) {
    problems.add("sink position must be finite");
  }
  if (problems.should_stop()) {
    return problems.to_status();
  }

  MDG_IO_TRY(tok.expect("range"));
  MDG_IO_ASSIGN(range, tok.value<double>("range"));
  if (!finite(range) || range <= 0.0) {
    problems.add("transmission range must be finite and positive, got " +
                 fmt(range));
  }
  if (problems.should_stop()) {
    return problems.to_status();
  }

  MDG_IO_TRY(tok.expect("radio"));
  net::RadioModel radio;
  MDG_IO_ASSIGN(e_elec, tok.value<double>("radio"));
  MDG_IO_ASSIGN(eps_amp, tok.value<double>("radio"));
  radio.e_elec = e_elec;
  radio.eps_amp = eps_amp;
  if (version >= 2) {
    MDG_IO_ASSIGN(eps_mp, tok.value<double>("radio"));
    radio.eps_mp = eps_mp;
  }
  MDG_IO_ASSIGN(packet_bits, tok.value<std::size_t>("radio"));
  radio.packet_bits = packet_bits;
  if (!finite(radio.e_elec) || radio.e_elec < 0.0 ||
      !finite(radio.eps_amp) || radio.eps_amp < 0.0 ||
      !finite(radio.eps_mp) || radio.eps_mp < 0.0) {
    problems.add("radio parameters must be finite and non-negative");
  }
  if (problems.should_stop()) {
    return problems.to_status();
  }

  MDG_IO_TRY(tok.expect("sensors"));
  MDG_IO_ASSIGN(count, tok.value<std::size_t>("sensor count"));
  if (count > kMaxEntities) {
    return core::Status::invalid_argument("implausible sensor count " +
                                          std::to_string(count));
  }
  std::vector<geom::Point> positions;
  positions.reserve(count);
  std::map<std::pair<double, double>, std::size_t> seen;
  for (std::size_t i = 0; i < count; ++i) {
    MDG_IO_ASSIGN(px, tok.value<double>("sensor position"));
    MDG_IO_ASSIGN(py, tok.value<double>("sensor position"));
    const geom::Point p{px, py};
    if (!finite(px) || !finite(py)) {
      problems.add("sensor " + std::to_string(i) +
                   ": position must be finite");
    } else {
      if (!field.contains(p)) {
        problems.add("sensor " + std::to_string(i) + ": position (" +
                     fmt(px) + ", " + fmt(py) +
                     ") outside the deployment field");
      }
      const auto [it, inserted] = seen.try_emplace({px, py}, i);
      if (!inserted) {
        problems.add("sensor " + std::to_string(i) +
                     ": duplicate position of sensor " +
                     std::to_string(it->second));
      }
    }
    if (problems.should_stop()) {
      return problems.to_status();
    }
    positions.push_back(p);
  }
  if (!problems.messages.empty()) {
    return problems.to_status();
  }
  return net::SensorNetwork(std::move(positions), sink, field, range, radio);
}

core::StatusOr<net::SensorNetwork> try_load_network(
    const std::string& path, const LoadOptions& options) {
  std::ifstream in(path);
  if (!in.good()) {
    return core::Status::not_found("cannot open '" + path + "' for reading");
  }
  auto result = try_read_network(in, options);
  if (!result.is_ok()) {
    return result.status().with_context(path);
  }
  return result;
}

net::SensorNetwork read_network(std::istream& in) {
  auto result = try_read_network(in);
  MDG_REQUIRE(result.is_ok(),
              "malformed input: " + result.status().message());
  return std::move(result).value();
}

void write_solution(std::ostream& out, const core::ShdgpSolution& solution) {
  full_precision(out);
  // Version 2 only when the solution actually carries relay state, so
  // every legacy single-hop solution keeps its exact version-1 bytes.
  const bool v2 = solution.relay_hops != 1 || solution.uses_relays();
  out << "mdg-solution " << (v2 ? 2 : 1) << '\n';
  out << "planner " << (solution.planner.empty() ? "-" : solution.planner)
      << '\n';
  out << "tour-length " << solution.tour_length << '\n';
  out << "optimal " << (solution.provably_optimal ? 1 : 0) << '\n';
  if (v2) {
    out << "relay-hops " << solution.relay_hops << '\n';
  }
  out << "polling " << solution.polling_points.size() << '\n';
  for (std::size_t i = 0; i < solution.polling_points.size(); ++i) {
    out << solution.polling_candidates[i] << ' '
        << solution.polling_points[i].x << ' ' << solution.polling_points[i].y
        << '\n';
  }
  out << "assignment " << solution.assignment.size() << '\n';
  for (std::size_t slot : solution.assignment) {
    out << slot << '\n';
  }
  out << "tour " << solution.tour.size() << '\n';
  for (std::size_t pos = 0; pos < solution.tour.size(); ++pos) {
    out << solution.tour.at(pos) << '\n';
  }
  if (v2) {
    out << "relays " << solution.relay_paths.size() << '\n';
    for (const std::vector<std::size_t>& path : solution.relay_paths) {
      out << path.size();
      for (std::size_t r : path) {
        out << ' ' << r;
      }
      out << '\n';
    }
  }
}

core::StatusOr<core::ShdgpSolution> try_read_solution(
    std::istream& in, const LoadOptions& options) {
  TokenReader tok{in};
  Problems problems{.fail_fast = options.fail_fast};

  MDG_IO_TRY(tok.expect("mdg-solution"));
  MDG_IO_ASSIGN(version, tok.value<int>("version"));
  if (version != 1 && version != 2) {
    return core::Status::invalid_argument(
        "unsupported mdg-solution version " + std::to_string(version));
  }

  core::ShdgpSolution solution;
  MDG_IO_TRY(tok.expect("planner"));
  in >> solution.planner;
  if (in.fail()) {
    return core::Status::data_loss("truncated input: missing planner name");
  }
  if (solution.planner == "-") {
    solution.planner.clear();
  }
  MDG_IO_TRY(tok.expect("tour-length"));
  MDG_IO_ASSIGN(tour_length, tok.value<double>("tour length"));
  solution.tour_length = tour_length;
  if (!finite(tour_length) || tour_length < 0.0) {
    problems.add("tour-length must be finite and non-negative, got " +
                 fmt(tour_length));
  }
  if (problems.should_stop()) {
    return problems.to_status();
  }
  MDG_IO_TRY(tok.expect("optimal"));
  MDG_IO_ASSIGN(optimal, tok.value<int>("optimal flag"));
  solution.provably_optimal = optimal != 0;

  // Bounded-relay sections exist only in version 2; version-1 files are
  // implicitly single-hop (relay_hops = 1, no paths).
  constexpr std::size_t kMaxRelayHops = 1024;
  if (version == 2) {
    MDG_IO_TRY(tok.expect("relay-hops"));
    MDG_IO_ASSIGN(hops, tok.value<std::size_t>("relay-hops"));
    if (hops > kMaxRelayHops) {
      return core::Status::invalid_argument("implausible relay-hops " +
                                            std::to_string(hops));
    }
    solution.relay_hops = hops;
  }

  MDG_IO_TRY(tok.expect("polling"));
  MDG_IO_ASSIGN(pps, tok.value<std::size_t>("polling count"));
  if (pps > kMaxEntities) {
    return core::Status::invalid_argument("implausible polling count " +
                                          std::to_string(pps));
  }
  solution.polling_candidates.reserve(pps);
  solution.polling_points.reserve(pps);
  for (std::size_t i = 0; i < pps; ++i) {
    MDG_IO_ASSIGN(candidate, tok.value<std::size_t>("candidate id"));
    MDG_IO_ASSIGN(px, tok.value<double>("polling point"));
    MDG_IO_ASSIGN(py, tok.value<double>("polling point"));
    if (!finite(px) || !finite(py)) {
      problems.add("polling point " + std::to_string(i) +
                   ": position must be finite");
      if (problems.should_stop()) {
        return problems.to_status();
      }
    }
    solution.polling_candidates.push_back(candidate);
    solution.polling_points.push_back({px, py});
  }

  MDG_IO_TRY(tok.expect("assignment"));
  MDG_IO_ASSIGN(sensors, tok.value<std::size_t>("assignment count"));
  if (sensors > kMaxEntities) {
    return core::Status::invalid_argument("implausible assignment count " +
                                          std::to_string(sensors));
  }
  solution.assignment.reserve(sensors);
  for (std::size_t i = 0; i < sensors; ++i) {
    MDG_IO_ASSIGN(slot, tok.value<std::size_t>("assignment"));
    if (slot >= pps) {
      problems.add("assignment " + std::to_string(i) + ": slot " +
                   std::to_string(slot) + " past polling count " +
                   std::to_string(pps));
      if (problems.should_stop()) {
        return problems.to_status();
      }
    }
    solution.assignment.push_back(slot);
  }

  MDG_IO_TRY(tok.expect("tour"));
  MDG_IO_ASSIGN(stops, tok.value<std::size_t>("tour size"));
  if (stops > kMaxEntities) {
    return core::Status::invalid_argument("implausible tour size " +
                                          std::to_string(stops));
  }
  if (stops != 0 && stops != pps + 1) {
    problems.add("tour size " + std::to_string(stops) +
                 " does not match sink + " + std::to_string(pps) +
                 " polling points");
    if (problems.should_stop()) {
      return problems.to_status();
    }
  }
  std::vector<std::size_t> order;
  order.reserve(stops);
  std::vector<bool> visited(stops, false);
  for (std::size_t i = 0; i < stops; ++i) {
    MDG_IO_ASSIGN(index, tok.value<std::size_t>("tour index"));
    if (index >= stops) {
      problems.add("tour position " + std::to_string(i) + ": index " +
                   std::to_string(index) + " out of range");
    } else if (visited[index]) {
      problems.add("tour position " + std::to_string(i) + ": index " +
                   std::to_string(index) + " visited twice");
    } else {
      visited[index] = true;
    }
    if (problems.should_stop()) {
      return problems.to_status();
    }
    order.push_back(index);
  }
  if (version == 2) {
    MDG_IO_TRY(tok.expect("relays"));
    MDG_IO_ASSIGN(relayed, tok.value<std::size_t>("relays count"));
    if (relayed > kMaxEntities) {
      return core::Status::invalid_argument("implausible relays count " +
                                            std::to_string(relayed));
    }
    if (relayed != 0 && relayed != sensors) {
      problems.add("relays count " + std::to_string(relayed) +
                   " does not match " + std::to_string(sensors) + " sensors");
      if (problems.should_stop()) {
        return problems.to_status();
      }
    }
    // A path may use at most relay_hops - 1 intermediates (and none at
    // all when the budget disables relaying).
    const std::size_t path_cap =
        std::max<std::size_t>(solution.relay_hops, 1) - 1;
    solution.relay_paths.reserve(relayed);
    for (std::size_t s = 0; s < relayed; ++s) {
      MDG_IO_ASSIGN(hops, tok.value<std::size_t>("relay path length"));
      if (hops > path_cap) {
        problems.add("relay path " + std::to_string(s) + ": " +
                     std::to_string(hops) +
                     " relays exceed the relay-hop budget " +
                     std::to_string(solution.relay_hops));
        if (problems.should_stop()) {
          return problems.to_status();
        }
      }
      std::vector<std::size_t> path;
      path.reserve(hops);
      for (std::size_t i = 0; i < hops; ++i) {
        MDG_IO_ASSIGN(relay, tok.value<std::size_t>("relay id"));
        if (relay >= sensors || relay == s) {
          problems.add("relay path " + std::to_string(s) + ": relay id " +
                       std::to_string(relay) + " invalid");
          if (problems.should_stop()) {
            return problems.to_status();
          }
        }
        path.push_back(relay);
      }
      solution.relay_paths.push_back(std::move(path));
    }
  }
  if (!problems.messages.empty()) {
    return problems.to_status();
  }
  solution.tour = tsp::Tour(std::move(order));
  return solution;
}

core::StatusOr<core::ShdgpSolution> try_load_solution(
    const std::string& path, const LoadOptions& options) {
  std::ifstream in(path);
  if (!in.good()) {
    return core::Status::not_found("cannot open '" + path + "' for reading");
  }
  auto result = try_read_solution(in, options);
  if (!result.is_ok()) {
    return result.status().with_context(path);
  }
  return result;
}

core::ShdgpSolution read_solution(std::istream& in) {
  auto result = try_read_solution(in);
  MDG_REQUIRE(result.is_ok(),
              "malformed input: " + result.status().message());
  return std::move(result).value();
}

std::string to_text(const net::SensorNetwork& network) {
  std::ostringstream out;
  write_network(out, network);
  return out.str();
}

std::string to_text(const core::ShdgpSolution& solution) {
  std::ostringstream out;
  write_solution(out, solution);
  return out.str();
}

void save_network(const std::string& path, const net::SensorNetwork& network) {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_network(out, network);
  MDG_REQUIRE(out.good(), "failed writing '" + path + "'");
}

net::SensorNetwork load_network(const std::string& path) {
  std::ifstream in(path);
  MDG_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return read_network(in);
}

void save_solution(const std::string& path,
                   const core::ShdgpSolution& solution) {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_solution(out, solution);
  MDG_REQUIRE(out.good(), "failed writing '" + path + "'");
}

core::ShdgpSolution load_solution(const std::string& path) {
  std::ifstream in(path);
  MDG_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return read_solution(in);
}

}  // namespace mdg::io

#include "io/serialize.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace mdg::io {
namespace {

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  in >> token;
  MDG_REQUIRE(!in.fail() && token == expected,
              "malformed input: expected '" + expected + "', got '" + token +
                  "'");
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value{};
  in >> value;
  MDG_REQUIRE(!in.fail(), std::string("malformed input: bad ") + what);
  return value;
}

std::ostream& full_precision(std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  return out;
}

}  // namespace

void write_network(std::ostream& out, const net::SensorNetwork& network) {
  full_precision(out);
  out << "mdg-network 2\n";
  const geom::Aabb& f = network.field();
  out << "field " << f.lo.x << ' ' << f.lo.y << ' ' << f.hi.x << ' ' << f.hi.y
      << '\n';
  out << "sink " << network.sink().x << ' ' << network.sink().y << '\n';
  out << "range " << network.range() << '\n';
  const net::RadioModel& r = network.radio();
  out << "radio " << r.e_elec << ' ' << r.eps_amp << ' ' << r.eps_mp << ' '
      << r.packet_bits << '\n';
  out << "sensors " << network.size() << '\n';
  for (const geom::Point& p : network.positions()) {
    out << p.x << ' ' << p.y << '\n';
  }
}

net::SensorNetwork read_network(std::istream& in) {
  expect_token(in, "mdg-network");
  const int version = read_value<int>(in, "version");
  MDG_REQUIRE(version == 1 || version == 2,
              "unsupported mdg-network version");

  expect_token(in, "field");
  geom::Aabb field;
  field.lo.x = read_value<double>(in, "field");
  field.lo.y = read_value<double>(in, "field");
  field.hi.x = read_value<double>(in, "field");
  field.hi.y = read_value<double>(in, "field");

  expect_token(in, "sink");
  geom::Point sink;
  sink.x = read_value<double>(in, "sink");
  sink.y = read_value<double>(in, "sink");

  expect_token(in, "range");
  const double range = read_value<double>(in, "range");

  expect_token(in, "radio");
  net::RadioModel radio;
  radio.e_elec = read_value<double>(in, "radio");
  radio.eps_amp = read_value<double>(in, "radio");
  if (version >= 2) {
    radio.eps_mp = read_value<double>(in, "radio");
  }
  radio.packet_bits = read_value<std::size_t>(in, "radio");

  expect_token(in, "sensors");
  const auto count = read_value<std::size_t>(in, "sensor count");
  std::vector<geom::Point> positions;
  positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    geom::Point p;
    p.x = read_value<double>(in, "sensor position");
    p.y = read_value<double>(in, "sensor position");
    positions.push_back(p);
  }
  return net::SensorNetwork(std::move(positions), sink, field, range, radio);
}

void write_solution(std::ostream& out, const core::ShdgpSolution& solution) {
  full_precision(out);
  out << "mdg-solution 1\n";
  out << "planner " << (solution.planner.empty() ? "-" : solution.planner)
      << '\n';
  out << "tour-length " << solution.tour_length << '\n';
  out << "optimal " << (solution.provably_optimal ? 1 : 0) << '\n';
  out << "polling " << solution.polling_points.size() << '\n';
  for (std::size_t i = 0; i < solution.polling_points.size(); ++i) {
    out << solution.polling_candidates[i] << ' '
        << solution.polling_points[i].x << ' ' << solution.polling_points[i].y
        << '\n';
  }
  out << "assignment " << solution.assignment.size() << '\n';
  for (std::size_t slot : solution.assignment) {
    out << slot << '\n';
  }
  out << "tour " << solution.tour.size() << '\n';
  for (std::size_t pos = 0; pos < solution.tour.size(); ++pos) {
    out << solution.tour.at(pos) << '\n';
  }
}

core::ShdgpSolution read_solution(std::istream& in) {
  expect_token(in, "mdg-solution");
  const int version = read_value<int>(in, "version");
  MDG_REQUIRE(version == 1, "unsupported mdg-solution version");

  core::ShdgpSolution solution;
  expect_token(in, "planner");
  in >> solution.planner;
  if (solution.planner == "-") {
    solution.planner.clear();
  }
  expect_token(in, "tour-length");
  solution.tour_length = read_value<double>(in, "tour length");
  expect_token(in, "optimal");
  solution.provably_optimal = read_value<int>(in, "optimal flag") != 0;

  expect_token(in, "polling");
  const auto pps = read_value<std::size_t>(in, "polling count");
  solution.polling_candidates.reserve(pps);
  solution.polling_points.reserve(pps);
  for (std::size_t i = 0; i < pps; ++i) {
    solution.polling_candidates.push_back(
        read_value<std::size_t>(in, "candidate id"));
    geom::Point p;
    p.x = read_value<double>(in, "polling point");
    p.y = read_value<double>(in, "polling point");
    solution.polling_points.push_back(p);
  }

  expect_token(in, "assignment");
  const auto sensors = read_value<std::size_t>(in, "assignment count");
  solution.assignment.reserve(sensors);
  for (std::size_t i = 0; i < sensors; ++i) {
    solution.assignment.push_back(read_value<std::size_t>(in, "assignment"));
  }

  expect_token(in, "tour");
  const auto stops = read_value<std::size_t>(in, "tour size");
  std::vector<std::size_t> order;
  order.reserve(stops);
  for (std::size_t i = 0; i < stops; ++i) {
    order.push_back(read_value<std::size_t>(in, "tour index"));
  }
  solution.tour = tsp::Tour(std::move(order));
  return solution;
}

void save_network(const std::string& path, const net::SensorNetwork& network) {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_network(out, network);
  MDG_REQUIRE(out.good(), "failed writing '" + path + "'");
}

net::SensorNetwork load_network(const std::string& path) {
  std::ifstream in(path);
  MDG_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return read_network(in);
}

void save_solution(const std::string& path,
                   const core::ShdgpSolution& solution) {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_solution(out, solution);
  MDG_REQUIRE(out.good(), "failed writing '" + path + "'");
}

core::ShdgpSolution load_solution(const std::string& path) {
  std::ifstream in(path);
  MDG_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  return read_solution(in);
}

}  // namespace mdg::io

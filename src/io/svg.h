// SVG rendering of deployments, plans and collector tours — the
// reproduction's counterpart of the paper's topology figures
// (Fig-1-style network/tour plots).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/multi_collector.h"
#include "core/solution.h"
#include "route/obstacle_map.h"

namespace mdg::io {

struct SvgOptions {
  double pixels_per_meter = 2.0;
  double padding_px = 20.0;
  bool draw_connectivity = false;   ///< unit-disk edges (dense!)
  bool draw_affiliations = true;    ///< sensor -> polling point spokes
  bool draw_range_disks = false;    ///< Rs disk around each polling point
};

class SvgCanvas {
 public:
  SvgCanvas(const geom::Aabb& field, SvgOptions options = {});

  /// Primitive layer (all coordinates in field metres).
  void add_circle(geom::Point center, double radius_m,
                  const std::string& fill, const std::string& stroke = "none",
                  double opacity = 1.0);
  void add_line(geom::Point a, geom::Point b, const std::string& stroke,
                double width_px = 1.0, double opacity = 1.0);
  void add_polyline(const std::vector<geom::Point>& points,
                    const std::string& stroke, double width_px = 2.0);
  void add_rect(const geom::Aabb& box, const std::string& fill,
                double opacity = 1.0);
  void add_label(geom::Point at, const std::string& text, int font_px = 10);

  /// Scene layer.
  void draw_network(const net::SensorNetwork& network);
  void draw_solution(const core::ShdgpInstance& instance,
                     const core::ShdgpSolution& solution);
  void draw_multi_tour(const core::ShdgpInstance& instance,
                       const core::MultiTourPlan& plan);
  void draw_obstacles(const route::ObstacleMap& map);
  void draw_path(const std::vector<geom::Point>& polyline,
                 const std::string& stroke = "#d62728");

  /// Serialises the document.
  void write(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  /// Convenience: write to a file path; throws on I/O failure.
  void save(const std::string& path) const;

 private:
  [[nodiscard]] double x(double meters_x) const;
  [[nodiscard]] double y(double meters_y) const;  // SVG y grows downward

  geom::Aabb field_;
  SvgOptions options_;
  std::vector<std::string> elements_;
};

}  // namespace mdg::io

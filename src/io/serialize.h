// Plain-text persistence for networks and solutions.
//
// A line-oriented, versioned, human-diffable format so experiment
// topologies can be pinned in files, shared between runs, and attached to
// bug reports. Floating-point values round-trip exactly (max_digits10).
#pragma once

#include <iosfwd>
#include <string>

#include "core/solution.h"
#include "core/status.h"
#include "net/sensor_network.h"

namespace mdg::io {

/// Options for the Status-returning loaders.
struct LoadOptions {
  /// Stop at the first problem (default). When false, semantic
  /// validation (NaN/Inf values, duplicate sensors, out-of-field
  /// positions, bad slots/ids) keeps scanning and reports every problem
  /// found in one diagnostic. Syntactic errors — a token that is not a
  /// number, a truncated file — always stop immediately because the
  /// stream position is lost.
  bool fail_fast = true;
};

/// Writes a network as:
///   mdg-network 2
///   field <lo.x> <lo.y> <hi.x> <hi.y>
///   sink <x> <y>
///   range <Rs>
///   radio <e_elec> <eps_amp> <eps_mp> <packet_bits>
///   sensors <N>
///   <x> <y>          (N lines)
/// Version 1 files (radio line without eps_mp) are still readable.
void write_network(std::ostream& out, const net::SensorNetwork& network);

/// Parses the write_network format. Throws PreconditionError on
/// malformed input.
[[nodiscard]] net::SensorNetwork read_network(std::istream& in);

/// Status-returning variant for untrusted input: malformed, truncated,
/// or semantically invalid files (NaN/Inf coordinates, duplicate sensor
/// positions, zero/negative range, sensors outside the field) produce a
/// diagnostic Status instead of an exception. Nothing is constructed
/// until the payload has been fully validated.
[[nodiscard]] core::StatusOr<net::SensorNetwork> try_read_network(
    std::istream& in, const LoadOptions& options = {});
[[nodiscard]] core::StatusOr<net::SensorNetwork> try_load_network(
    const std::string& path, const LoadOptions& options = {});

/// Writes a solution (references the instance only for the sink):
///   mdg-solution 1
///   planner <name>
///   tour-length <L>
///   polling <P>
///   <candidate-id> <x> <y>    (P lines)
///   assignment <N>
///   <slot>                    (N lines)
///   tour <P+1>
///   <index>                   (P+1 lines)
/// Bounded-relay solutions (relay_hops != 1 or any non-empty relay
/// path) are written as version 2, which inserts `relay-hops <d>`
/// after the `optimal` line and appends a `relays <N>` section after
/// the tour — one line per sensor: `<k> <relay-id> ...` in forwarding
/// order. Legacy single-hop solutions keep the byte-exact version-1
/// encoding (serve transcript goldens depend on this).
void write_solution(std::ostream& out, const core::ShdgpSolution& solution);

/// Parses the write_solution format.
[[nodiscard]] core::ShdgpSolution read_solution(std::istream& in);

/// Status-returning variant: structural problems (non-finite values,
/// assignment slots past the polling count, a tour that is not a
/// permutation over sink + polling points) produce a diagnostic Status.
[[nodiscard]] core::StatusOr<core::ShdgpSolution> try_read_solution(
    std::istream& in, const LoadOptions& options = {});
[[nodiscard]] core::StatusOr<core::ShdgpSolution> try_load_solution(
    const std::string& path, const LoadOptions& options = {});

/// In-memory variants of write_network / write_solution — the exact
/// same bytes a file would get. The serve layer builds reply payloads
/// from these so a cached reply and a freshly planned one can be
/// compared (and cached) as strings.
[[nodiscard]] std::string to_text(const net::SensorNetwork& network);
[[nodiscard]] std::string to_text(const core::ShdgpSolution& solution);

/// File helpers (throw on I/O failure).
void save_network(const std::string& path, const net::SensorNetwork& network);
[[nodiscard]] net::SensorNetwork load_network(const std::string& path);
void save_solution(const std::string& path,
                   const core::ShdgpSolution& solution);
[[nodiscard]] core::ShdgpSolution load_solution(const std::string& path);

}  // namespace mdg::io

// Plain-text persistence for networks and solutions.
//
// A line-oriented, versioned, human-diffable format so experiment
// topologies can be pinned in files, shared between runs, and attached to
// bug reports. Floating-point values round-trip exactly (max_digits10).
#pragma once

#include <iosfwd>
#include <string>

#include "core/solution.h"
#include "net/sensor_network.h"

namespace mdg::io {

/// Writes a network as:
///   mdg-network 2
///   field <lo.x> <lo.y> <hi.x> <hi.y>
///   sink <x> <y>
///   range <Rs>
///   radio <e_elec> <eps_amp> <eps_mp> <packet_bits>
///   sensors <N>
///   <x> <y>          (N lines)
/// Version 1 files (radio line without eps_mp) are still readable.
void write_network(std::ostream& out, const net::SensorNetwork& network);

/// Parses the write_network format. Throws PreconditionError on
/// malformed input.
[[nodiscard]] net::SensorNetwork read_network(std::istream& in);

/// Writes a solution (references the instance only for the sink):
///   mdg-solution 1
///   planner <name>
///   tour-length <L>
///   polling <P>
///   <candidate-id> <x> <y>    (P lines)
///   assignment <N>
///   <slot>                    (N lines)
///   tour <P+1>
///   <index>                   (P+1 lines)
void write_solution(std::ostream& out, const core::ShdgpSolution& solution);

/// Parses the write_solution format.
[[nodiscard]] core::ShdgpSolution read_solution(std::istream& in);

/// File helpers (throw on I/O failure).
void save_network(const std::string& path, const net::SensorNetwork& network);
[[nodiscard]] net::SensorNetwork load_network(const std::string& path);
void save_solution(const std::string& path,
                   const core::ShdgpSolution& solution);
[[nodiscard]] core::ShdgpSolution load_solution(const std::string& path);

}  // namespace mdg::io

#include "io/delta_io.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "util/assert.h"

namespace mdg::io {
namespace {

/// Same sanity cap as serialize.cpp: a corrupted op count must not
/// drive a huge reserve before the first read fails.
constexpr std::size_t kMaxOps = 10'000'000;

[[nodiscard]] core::Status truncated(const char* what) {
  return core::Status::data_loss(std::string("truncated input: missing ") +
                                 what);
}

template <typename T>
[[nodiscard]] core::StatusOr<T> read_value(std::istream& in,
                                           const char* what) {
  T parsed{};
  in >> parsed;
  if (in.fail()) {
    if (in.eof()) {
      return truncated(what);
    }
    return core::Status::invalid_argument(std::string("bad ") + what);
  }
  return parsed;
}

#define MDG_IO_ASSIGN(lhs, expr)     \
  auto lhs##_or = (expr);            \
  if (!lhs##_or.is_ok()) {           \
    return lhs##_or.status();        \
  }                                  \
  auto lhs = std::move(lhs##_or).value()

}  // namespace

void write_delta(std::ostream& out, const core::Delta& delta) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "mdg-delta 1\n";
  out << "ops " << delta.ops.size() << '\n';
  for (const core::DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case core::DeltaOpKind::kAddSensor:
        out << "add " << op.position.x << ' ' << op.position.y << '\n';
        break;
      case core::DeltaOpKind::kRemoveSensor:
        out << "remove " << op.sensor << '\n';
        break;
      case core::DeltaOpKind::kMoveSensor:
        out << "move " << op.sensor << ' ' << op.position.x << ' '
            << op.position.y << '\n';
        break;
      case core::DeltaOpKind::kSetRange:
        out << "range " << op.range << '\n';
        break;
    }
  }
}

core::StatusOr<core::Delta> try_read_delta(std::istream& in) {
  std::string token;
  in >> token;
  if (in.fail() || token != "mdg-delta") {
    if (token.empty()) {
      return truncated("'mdg-delta' header");
    }
    return core::Status::invalid_argument("expected 'mdg-delta', got '" +
                                          token + "'");
  }
  MDG_IO_ASSIGN(version, read_value<int>(in, "version"));
  if (version != 1) {
    return core::Status::invalid_argument("unsupported mdg-delta version " +
                                          std::to_string(version));
  }
  in >> token;
  if (in.fail() || token != "ops") {
    if (token == "mdg-delta" || in.eof()) {
      return truncated("'ops' count");
    }
    return core::Status::invalid_argument("expected 'ops', got '" + token +
                                          "'");
  }
  MDG_IO_ASSIGN(count, read_value<std::size_t>(in, "op count"));
  if (count > kMaxOps) {
    return core::Status::invalid_argument("implausible op count " +
                                          std::to_string(count));
  }
  core::Delta delta;
  delta.ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    in >> token;
    if (in.fail()) {
      return truncated("op kind");
    }
    const std::string at = "op " + std::to_string(i);
    if (token == "add") {
      MDG_IO_ASSIGN(x, read_value<double>(in, "add coordinates"));
      MDG_IO_ASSIGN(y, read_value<double>(in, "add coordinates"));
      if (!std::isfinite(x) || !std::isfinite(y)) {
        return core::Status::invalid_argument(at +
                                              ": coordinates must be finite");
      }
      delta.ops.push_back(core::DeltaOp::add_sensor({x, y}));
    } else if (token == "remove") {
      MDG_IO_ASSIGN(id, read_value<std::size_t>(in, "remove sensor id"));
      delta.ops.push_back(core::DeltaOp::remove_sensor(id));
    } else if (token == "move") {
      MDG_IO_ASSIGN(id, read_value<std::size_t>(in, "move sensor id"));
      MDG_IO_ASSIGN(x, read_value<double>(in, "move coordinates"));
      MDG_IO_ASSIGN(y, read_value<double>(in, "move coordinates"));
      if (!std::isfinite(x) || !std::isfinite(y)) {
        return core::Status::invalid_argument(at +
                                              ": coordinates must be finite");
      }
      delta.ops.push_back(core::DeltaOp::move_sensor(id, {x, y}));
    } else if (token == "range") {
      MDG_IO_ASSIGN(r, read_value<double>(in, "range value"));
      if (!std::isfinite(r) || r <= 0.0) {
        return core::Status::invalid_argument(
            at + ": range must be finite and positive");
      }
      delta.ops.push_back(core::DeltaOp::set_range(r));
    } else {
      return core::Status::invalid_argument(at + ": unknown op kind '" +
                                            token + "'");
    }
  }
  return delta;
}

core::StatusOr<core::Delta> try_load_delta(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return core::Status::not_found("cannot open '" + path + "' for reading");
  }
  auto result = try_read_delta(in);
  if (!result.is_ok()) {
    return result.status().with_context(path);
  }
  return result;
}

core::Delta read_delta(std::istream& in) {
  auto result = try_read_delta(in);
  MDG_REQUIRE(result.is_ok(), "malformed input: " + result.status().message());
  return std::move(result).value();
}

std::string to_text(const core::Delta& delta) {
  std::ostringstream out;
  write_delta(out, delta);
  return out.str();
}

void save_delta(const std::string& path, const core::Delta& delta) {
  std::ofstream out(path);
  MDG_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  write_delta(out, delta);
  MDG_REQUIRE(static_cast<bool>(out), "failed writing '" + path + "'");
}

}  // namespace mdg::io

// Plain-text persistence for churn deltas (core::Delta).
//
// The same line-oriented, versioned, human-diffable philosophy as
// serialize.h, so churn streams can be replayed from files, attached to
// bug reports, and fuzzed like every other untrusted input:
//   mdg-delta 1
//   ops <K>
//   add <x> <y>          |  remove <id>  |  move <id> <x> <y>  |  range <Rs>
// Floating-point values round-trip exactly (max_digits10). Sensor-id
// bounds depend on the instance the delta is applied to, so the loader
// checks syntax and value sanity (finite coordinates, positive range)
// and leaves id validation to core::apply_delta.
#pragma once

#include <iosfwd>
#include <string>

#include "core/delta.h"
#include "core/status.h"

namespace mdg::io {

void write_delta(std::ostream& out, const core::Delta& delta);

/// Parses the write_delta format. Throws PreconditionError on malformed
/// input.
[[nodiscard]] core::Delta read_delta(std::istream& in);

/// Status-returning variant for untrusted input: malformed or truncated
/// files and non-finite values produce a diagnostic Status instead of
/// an exception.
[[nodiscard]] core::StatusOr<core::Delta> try_read_delta(std::istream& in);
[[nodiscard]] core::StatusOr<core::Delta> try_load_delta(
    const std::string& path);

/// The exact bytes write_delta would put in a file.
[[nodiscard]] std::string to_text(const core::Delta& delta);

/// File helpers (throw on I/O failure).
void save_delta(const std::string& path, const core::Delta& delta);

}  // namespace mdg::io

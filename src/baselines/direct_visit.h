// Direct-visit baseline: the collector visits every sensor individually
// (one polling point per sensor) — the maximum-energy-saving, maximum-
// latency extreme the paper starts from.
#pragma once

#include "core/planner.h"
#include "tsp/solve.h"

namespace mdg::baselines {

class DirectVisitPlanner final : public core::Planner {
 public:
  explicit DirectVisitPlanner(tsp::TspEffort effort = tsp::TspEffort::kFull)
      : effort_(effort) {}

  [[nodiscard]] std::string name() const override { return "direct-visit"; }

  /// Each sensor is assigned the covering candidate nearest to it (its
  /// own site under the sensor-sites policy), so the tour spans all N
  /// sensors.
  [[nodiscard]] core::ShdgpSolution plan(
      const core::ShdgpInstance& instance) const override;

 private:
  tsp::TspEffort effort_;
};

}  // namespace mdg::baselines

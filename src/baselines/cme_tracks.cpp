#include "baselines/cme_tracks.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/bfs.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::baselines {

CmeScheme::CmeScheme(CmeOptions options) : options_(options) {
  MDG_REQUIRE(options.track_count >= 1, "CME needs at least one track");
}

CmeResult CmeScheme::run(const net::SensorNetwork& network) const {
  OBS_SPAN(obs::metric::kBaselineCmeRun);
  const geom::Aabb& field = network.field();
  const std::size_t tracks = options_.track_count;
  CmeResult result;

  // Track y-coordinates: outermost tracks on the border (single track
  // through the middle).
  std::vector<double> ys;
  if (tracks == 1) {
    ys.push_back(field.center().y);
  } else {
    const double pitch =
        field.height() / static_cast<double>(tracks - 1);
    for (std::size_t t = 0; t < tracks; ++t) {
      ys.push_back(field.lo.y + pitch * static_cast<double>(t));
    }
  }

  // Boustrophedon path: start at the sink, run each track alternately
  // left-to-right / right-to-left, return to the sink.
  result.path.push_back(network.sink());
  bool left_to_right = true;
  for (double y : ys) {
    const geom::Point a{left_to_right ? field.lo.x : field.hi.x, y};
    const geom::Point b{left_to_right ? field.hi.x : field.lo.x, y};
    result.path.push_back(a);
    result.path.push_back(b);
    left_to_right = !left_to_right;
  }
  result.path.push_back(network.sink());
  result.tour_length = geom::polyline_length(result.path);

  // Gateways: sensors within one hop of some track line (vertical
  // distance to the track <= Rs — the collector passes through the whole
  // horizontal extent).
  std::vector<std::size_t> gateways;
  for (std::size_t s = 0; s < network.size(); ++s) {
    const double y = network.position(s).y;
    for (double ty : ys) {
      if (std::abs(y - ty) <= network.range() * (1.0 + 1e-12)) {
        gateways.push_back(s);
        break;
      }
    }
  }

  result.upload_hops.assign(network.size(),
                            std::numeric_limits<std::size_t>::max());
  if (!gateways.empty()) {
    const graph::BfsResult bfs =
        graph::bfs_multi(network.connectivity(), gateways);
    for (std::size_t s = 0; s < network.size(); ++s) {
      if (bfs.reachable(s)) {
        // hops-to-gateway relays plus the final single-hop upload.
        result.upload_hops[s] = bfs.hops[s] + 1;
      }
    }
  }

  double hop_sum = 0.0;
  std::size_t reachable = 0;
  for (std::size_t h : result.upload_hops) {
    if (h != std::numeric_limits<std::size_t>::max()) {
      hop_sum += static_cast<double>(h);
      ++reachable;
    }
  }
  result.average_hops =
      reachable == 0 ? 0.0 : hop_sum / static_cast<double>(reachable);
  result.coverage = network.size() == 0
                        ? 1.0
                        : static_cast<double>(reachable) /
                              static_cast<double>(network.size());
  return result;
}

}  // namespace mdg::baselines

#include "baselines/direct_visit.h"

#include <algorithm>
#include <limits>

#include "cover/set_cover.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::baselines {

core::ShdgpSolution DirectVisitPlanner::plan(
    const core::ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanDirectVisit);
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();

  core::ShdgpSolution solution;
  solution.planner = name();

  // Per sensor, its nearest covering candidate (its own site when the
  // candidate set contains sensor sites).
  std::vector<std::size_t> chosen;
  chosen.reserve(network.size());
  for (std::size_t s = 0; s < network.size(); ++s) {
    const auto& pool = matrix.covering(s);
    MDG_ASSERT(!pool.empty(), "coverage matrix guarantees feasibility");
    std::size_t best = pool.front();
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t c : pool) {
      const double d2 =
          geom::distance_sq(matrix.candidate(c), network.position(s));
      if (d2 < best_d2) {
        best_d2 = d2;
        best = c;
      }
    }
    chosen.push_back(best);
  }
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());

  solution.polling_candidates = chosen;
  for (std::size_t c : chosen) {
    solution.polling_points.push_back(matrix.candidate(c));
  }
  solution.assignment =
      cover::assign_nearest(matrix, network, solution.polling_candidates);
  core::route_collector(instance, solution, effort_);
  return solution;
}

}  // namespace mdg::baselines

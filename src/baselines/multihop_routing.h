// Static multihop relay routing to the sink — the no-mobility baseline
// the paper motivates against.
//
// Every sensor forwards along its minimum-hop shortest-path tree toward
// the static sink. Per-round accounting: each sensor originates one
// packet; a node relays the packets of its whole SPT subtree.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/spt.h"
#include "net/sensor_network.h"

namespace mdg::baselines {

struct MultihopResult {
  double average_hops = 0.0;  ///< mean sink distance of reachable sensors
  std::size_t max_hops = 0;
  double coverage = 0.0;      ///< fraction of sensors that can reach the sink
  /// Per-node energy spent in one round (every sensor originates one
  /// packet; relays pay rx+tx per forwarded packet). Unreachable sensors
  /// spend their own tx only.
  std::vector<double> round_energy;
  /// Per-node packets transmitted in one round (own + relayed).
  std::vector<std::size_t> tx_load;
};

class MultihopRouting {
 public:
  /// Builds the SPT over the network using a virtual sink vertex
  /// connected to all of the sink's one-hop neighbours.
  explicit MultihopRouting(const net::SensorNetwork& network);

  [[nodiscard]] MultihopResult analyze() const;

  /// Hop count of sensor s to the sink (its upload to the sink's
  /// neighbour counts; reaching the sink itself is the final hop).
  /// SIZE_MAX when unreachable.
  [[nodiscard]] std::size_t hops_to_sink(std::size_t s) const;

  /// Next hop of s toward the sink; SIZE_MAX when s uploads directly to
  /// the sink or is unreachable.
  [[nodiscard]] std::size_t next_hop(std::size_t s) const;

 private:
  const net::SensorNetwork* network_;
  std::vector<std::size_t> hops_;    // to sink, SIZE_MAX unreachable
  std::vector<std::size_t> parent_;  // next hop, SIZE_MAX none
};

}  // namespace mdg::baselines

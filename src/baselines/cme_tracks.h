// CME baseline: Controlled Mobile Element with fixed parallel tracks.
//
// The collector sweeps the field along `track_count` equally spaced
// horizontal tracks (outermost tracks on the field border), switching
// tracks along the field edge — a boustrophedon path. Sensors within one
// hop of a track upload directly when the collector passes; everyone else
// relays multihop (no hop bound) toward the nearest track-covered sensor.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "net/sensor_network.h"

namespace mdg::baselines {

struct CmeOptions {
  std::size_t track_count = 5;
};

struct CmeResult {
  double tour_length = 0.0;  ///< boustrophedon path incl. return to sink
  /// Per sensor: hops from the sensor to the collector (1 = direct upload
  /// to the passing collector; 2 = one relay; ...). SIZE_MAX when the
  /// sensor cannot reach any track-covered sensor.
  std::vector<std::size_t> upload_hops;
  double average_hops = 0.0;   ///< over reachable sensors
  double coverage = 0.0;       ///< fraction of sensors that can deliver data
  std::vector<geom::Point> path;  ///< the collector's polyline (closed)
};

class CmeScheme {
 public:
  explicit CmeScheme(CmeOptions options = {});

  [[nodiscard]] CmeResult run(const net::SensorNetwork& network) const;

 private:
  CmeOptions options_;
};

}  // namespace mdg::baselines

#include "baselines/multihop_routing.h"

#include <algorithm>
#include <limits>

#include "graph/bfs.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::baselines {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}  // namespace

MultihopRouting::MultihopRouting(const net::SensorNetwork& network)
    : network_(&network) {
  const std::size_t n = network.size();
  hops_.assign(n, kNone);
  parent_.assign(n, kNone);
  if (n == 0 || network.sink_neighbors().empty()) {
    return;
  }
  // Multi-source BFS from the sink's one-hop neighbours: a gateway has
  // hop count 1 (its own upload), everyone else gateway-hops + 1.
  const graph::BfsResult bfs =
      graph::bfs_multi(network.connectivity(), network.sink_neighbors());
  for (std::size_t s = 0; s < n; ++s) {
    if (bfs.reachable(s)) {
      hops_[s] = bfs.hops[s] + 1;
      parent_[s] = bfs.parent[s];  // kUnreachable == kNone for gateways
    }
  }
}

std::size_t MultihopRouting::hops_to_sink(std::size_t s) const {
  MDG_REQUIRE(s < hops_.size(), "sensor index out of range");
  return hops_[s];
}

std::size_t MultihopRouting::next_hop(std::size_t s) const {
  MDG_REQUIRE(s < parent_.size(), "sensor index out of range");
  return parent_[s];
}

MultihopResult MultihopRouting::analyze() const {
  OBS_SPAN(obs::metric::kBaselineMultihopAnalyze);
  const auto& network = *network_;
  const std::size_t n = network.size();
  const auto& radio = network.radio();

  MultihopResult result;
  result.round_energy.assign(n, 0.0);
  result.tx_load.assign(n, 0);

  double hop_sum = 0.0;
  std::size_t reachable = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (hops_[s] != kNone) {
      hop_sum += static_cast<double>(hops_[s]);
      result.max_hops = std::max(result.max_hops, hops_[s]);
      ++reachable;
    }
  }
  result.average_hops =
      reachable == 0 ? 0.0 : hop_sum / static_cast<double>(reachable);
  result.coverage =
      n == 0 ? 1.0 : static_cast<double>(reachable) / static_cast<double>(n);

  // Route one packet per reachable sensor down the tree, charging tx to
  // every node on the path and rx to every intermediate relay.
  for (std::size_t s = 0; s < n; ++s) {
    if (hops_[s] == kNone) {
      continue;
    }
    std::size_t v = s;
    std::size_t steps = 0;
    for (;;) {
      const std::size_t nh = parent_[v];
      const geom::Point from = network.position(v);
      const geom::Point to =
          nh == kNone ? network.sink() : network.position(nh);
      result.round_energy[v] += radio.tx_packet(geom::distance(from, to));
      ++result.tx_load[v];
      if (nh == kNone) {
        break;  // delivered to the sink
      }
      result.round_energy[nh] += radio.rx_packet();
      v = nh;
      MDG_ASSERT(++steps <= n, "routing loop detected");
    }
  }
  return result;
}

}  // namespace mdg::baselines

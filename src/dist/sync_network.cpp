#include "dist/sync_network.h"

#include <algorithm>

#include "util/assert.h"

namespace mdg::dist {

void Outbox::broadcast(int tag, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  pending_.push_back({true, 0, Message{0, tag, a, b, c}});
}

void Outbox::unicast(std::size_t to, int tag, std::uint64_t a,
                     std::uint64_t b, std::uint64_t c) {
  pending_.push_back({false, to, Message{0, tag, a, b, c}});
}

SyncNetwork::SyncNetwork(const graph::Graph& graph)
    : graph_(&graph), inboxes_(graph.vertex_count()) {}

RoundStats SyncNetwork::run_round(const Handler& handler) {
  MDG_REQUIRE(handler != nullptr, "protocol handler required");
  const std::size_t n = graph_->vertex_count();
  RoundStats stats;
  stats.round = rounds_;

  std::vector<std::vector<Message>> next(n);
  for (std::size_t v = 0; v < n; ++v) {
    Outbox outbox;
    handler(v, inboxes_[v], outbox);
    for (Outbox::Pending& p : outbox.pending_) {
      p.msg.sender = v;
      if (p.broadcast) {
        ++stats.transmissions;
        for (const graph::Arc& arc : graph_->neighbors(v)) {
          next[arc.to].push_back(p.msg);
          ++stats.deliveries;
        }
      } else {
        MDG_REQUIRE(p.to < n, "unicast target out of range");
        const auto nbrs = graph_->neighbors(v);
        const bool adjacent =
            std::any_of(nbrs.begin(), nbrs.end(), [&](const graph::Arc& arc) {
              return arc.to == p.to;
            });
        MDG_REQUIRE(adjacent, "unicast target is not a neighbour");
        ++stats.transmissions;
        next[p.to].push_back(p.msg);
        ++stats.deliveries;
      }
    }
  }
  inboxes_ = std::move(next);
  total_transmissions_ += stats.transmissions;
  ++rounds_;
  return stats;
}

std::vector<RoundStats> SyncNetwork::run(const Handler& handler,
                                         const std::function<bool()>& quiescent,
                                         std::size_t max_rounds) {
  MDG_REQUIRE(quiescent != nullptr, "quiescence predicate required");
  std::vector<RoundStats> history;
  for (std::size_t r = 0; r < max_rounds; ++r) {
    history.push_back(run_round(handler));
    if (quiescent()) {
      break;
    }
  }
  return history;
}

}  // namespace mdg::dist

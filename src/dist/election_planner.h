// Distributed polling-point election (priority-based, PB-PSA style).
//
// The centralized planners assume the sink knows the whole topology. In
// the field, polling points must be elected by the sensors themselves
// with local communication only. This planner runs that protocol on the
// synchronous message-passing substrate:
//
//   Phase A  distributed BFS flood from the sink's one-hop neighbours
//            gives every sensor its hop distance to the sink;
//   Phase B  every sensor broadcasts its priority (neighbour count,
//            hop count, id) and computes the best priority in its one-hop
//            neighbourhood;
//   Phase C  local-maximum sensors declare themselves polling points
//            immediately; everyone else starts a back-off timer
//            proportional to its hop count, joins the nearest declaring
//            neighbour when the timer fires, or declares itself if no
//            neighbour declared (guaranteeing coverage, including on
//            disconnected deployments).
//
// The elected set is exactly a coverage: every sensor is a polling point
// or adjacent to one, so uploads stay single-hop. The sink then computes
// the collector tour over the elected points (it learns them from the
// join/declare traffic). The protocol's message cost is reported so the
// distributed-vs-centralized bench can reproduce the communication-
// complexity comparison.
#pragma once

#include <cstddef>

#include "core/planner.h"
#include "tsp/solve.h"

namespace mdg::dist {

struct ElectionStats {
  std::size_t rounds = 0;
  std::size_t transmissions = 0;
  double transmissions_per_node = 0.0;
};

struct ElectionPlannerOptions {
  tsp::TspEffort tsp_effort = tsp::TspEffort::kFull;
  /// Safety cap on protocol rounds (>= network diameter + max back-off).
  std::size_t max_rounds = 10'000;
};

class ElectionPlanner final : public core::Planner {
 public:
  explicit ElectionPlanner(ElectionPlannerOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override {
    return "distributed-election";
  }

  /// Requires an instance whose candidate set contains the sensor sites
  /// (the elected polling points *are* sensors).
  [[nodiscard]] core::ShdgpSolution plan(
      const core::ShdgpInstance& instance) const override;

  /// Protocol statistics of the most recent plan() call. Because plan()
  /// updates these, an ElectionPlanner instance is NOT safe to share
  /// across threads — use one instance per thread (the other planners
  /// are stateless and freely shareable).
  [[nodiscard]] const ElectionStats& last_stats() const { return stats_; }

 private:
  ElectionPlannerOptions options_;
  mutable ElectionStats stats_;
};

}  // namespace mdg::dist

// Synchronous message-passing substrate for distributed protocols.
//
// Models the standard synchronous-rounds abstraction used to analyse
// distributed WSN algorithms: in every round each node reads the messages
// its neighbours sent in the previous round and may send new ones
// (unicast to a neighbour or local broadcast). The engine counts message
// transmissions so protocols can report their communication complexity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mdg::dist {

/// One protocol message. `tag` discriminates message kinds; the three
/// payload words cover every protocol in this library (ids, hop counts,
/// scaled distances) without heap traffic.
struct Message {
  std::size_t sender = 0;
  int tag = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Per-node outbox handed to the handler each round.
class Outbox {
 public:
  /// Sends to every neighbour (one radio transmission in WSN terms).
  void broadcast(int tag, std::uint64_t a = 0, std::uint64_t b = 0,
                 std::uint64_t c = 0);
  /// Sends to one neighbour (`to` must be adjacent; checked by the
  /// engine at delivery).
  void unicast(std::size_t to, int tag, std::uint64_t a = 0,
               std::uint64_t b = 0, std::uint64_t c = 0);

 private:
  friend class SyncNetwork;
  struct Pending {
    bool broadcast = false;
    std::size_t to = 0;
    Message msg;
  };
  std::vector<Pending> pending_;
};

struct RoundStats {
  std::size_t round = 0;
  std::size_t transmissions = 0;  ///< radio sends (broadcast counts once)
  std::size_t deliveries = 0;     ///< messages landed in inboxes
};

class SyncNetwork {
 public:
  /// Binds to a connectivity graph (must outlive the network).
  explicit SyncNetwork(const graph::Graph& graph);

  /// handler(node, inbox, outbox): called once per node per round with
  /// the messages sent to it in the *previous* round.
  using Handler =
      std::function<void(std::size_t, std::span<const Message>, Outbox&)>;

  /// Executes one synchronous round; returns its statistics.
  RoundStats run_round(const Handler& handler);

  /// Runs rounds until `quiescent` returns true after a round or
  /// `max_rounds` is hit. Returns per-round statistics.
  std::vector<RoundStats> run(const Handler& handler,
                              const std::function<bool()>& quiescent,
                              std::size_t max_rounds);

  [[nodiscard]] std::size_t node_count() const {
    return graph_->vertex_count();
  }
  [[nodiscard]] std::size_t total_transmissions() const {
    return total_transmissions_;
  }
  [[nodiscard]] std::size_t rounds_executed() const { return rounds_; }

 private:
  const graph::Graph* graph_;
  /// inboxes_[v] = messages delivered to v at the start of this round.
  std::vector<std::vector<Message>> inboxes_;
  std::size_t total_transmissions_ = 0;
  std::size_t rounds_ = 0;
};

}  // namespace mdg::dist

#include "dist/election_planner.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "cover/set_cover.h"
#include "dist/sync_network.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::dist {
namespace {

// Message tags.
constexpr int kTagHop = 1;       // a = hop count of the sender
constexpr int kTagPriority = 2;  // a = degree, b = hop, c = id
constexpr int kTagDeclare = 3;   // sender declares itself a polling point
constexpr int kTagJoin = 4;      // a = chosen polling point id

struct NodeState {
  std::size_t hop = std::numeric_limits<std::size_t>::max();
  bool hop_dirty = false;       // must (re)broadcast hop this round
  bool priority_sent = false;
  // Best (degree, -hop, -id) seen in the 1-hop neighbourhood incl. self.
  std::size_t best_degree = 0;
  std::size_t best_hop = 0;
  std::size_t best_id = 0;
  bool has_priority_view = false;
  bool is_pp = false;
  bool declared = false;
  bool resolved = false;  // declared or joined
  std::size_t joined_pp = std::numeric_limits<std::size_t>::max();
  long long timer = -1;  // rounds until forced resolution; -1 = unset
  std::vector<std::size_t> declaring_neighbors;
};

/// Lexicographic priority: more neighbours first, then closer to the
/// sink, then lower id (all deterministic).
bool better_priority(std::size_t deg_a, std::size_t hop_a, std::size_t id_a,
                     std::size_t deg_b, std::size_t hop_b, std::size_t id_b) {
  return std::tuple(deg_a, hop_b, id_b) > std::tuple(deg_b, hop_a, id_a);
}

}  // namespace

core::ShdgpSolution ElectionPlanner::plan(
    const core::ShdgpInstance& instance) const {
  OBS_SPAN(obs::metric::kPlanElection);
  const auto& network = instance.network();
  const auto& matrix = instance.coverage();
  const std::size_t n = network.size();

  core::ShdgpSolution solution;
  solution.planner = name();
  stats_ = ElectionStats{};
  if (n == 0) {
    core::route_collector(instance, solution, options_.tsp_effort);
    return solution;
  }

  // Sensor id -> its own-site candidate id (required: elected PPs are
  // sensors).
  std::vector<std::size_t> own_site(n, matrix.candidate_count());
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c : matrix.covering(s)) {
      if (matrix.candidate(c) == network.position(s)) {
        own_site[s] = c;
        break;
      }
    }
    MDG_REQUIRE(own_site[s] != matrix.candidate_count(),
                "ElectionPlanner needs sensor-site candidates");
  }

  const graph::Graph& graph = network.connectivity();
  std::vector<NodeState> state(n);

  // Phase A seed: the sink's beacon reaches its one-hop neighbours.
  for (std::size_t s : network.sink_neighbors()) {
    state[s].hop = 1;
    state[s].hop_dirty = true;
  }
  // Sensors that can never hear the sink time out with the worst hop
  // (physically: a max back-off). Applied lazily when priorities fire.
  const std::size_t worst_hop = n + 1;

  std::size_t resolved_count = 0;
  bool bfs_stable = false;
  std::size_t bfs_quiet_rounds = 0;

  SyncNetwork bus(graph);
  const auto handler = [&](std::size_t v, std::span<const Message> inbox,
                           Outbox& out) {
    NodeState& me = state[v];
    // --- ingest ---
    for (const Message& msg : inbox) {
      switch (msg.tag) {
        case kTagHop: {
          const std::size_t theirs = static_cast<std::size_t>(msg.a);
          if (theirs + 1 < me.hop) {
            me.hop = theirs + 1;
            me.hop_dirty = true;
          }
          break;
        }
        case kTagPriority: {
          const auto deg = static_cast<std::size_t>(msg.a);
          const auto hop = static_cast<std::size_t>(msg.b);
          const auto id = static_cast<std::size_t>(msg.c);
          if (!me.has_priority_view ||
              better_priority(deg, hop, id, me.best_degree, me.best_hop,
                              me.best_id)) {
            me.best_degree = deg;
            me.best_hop = hop;
            me.best_id = id;
            me.has_priority_view = true;
          }
          break;
        }
        case kTagDeclare: {
          me.declaring_neighbors.push_back(msg.sender);
          break;
        }
        case kTagJoin:
          break;  // bookkeeping for the sink; nothing local to do
        default:
          MDG_ASSERT(false, "unknown protocol message tag");
      }
    }

    // --- Phase A: flood hop counts while they improve ---
    if (me.hop_dirty) {
      out.broadcast(kTagHop, me.hop);
      me.hop_dirty = false;
      return;  // keep phases cleanly separated per node
    }
    if (!bfs_stable) {
      return;  // wait for the flood to settle before electing
    }

    // --- Phase B: announce priority once ---
    if (!me.priority_sent) {
      if (me.hop == std::numeric_limits<std::size_t>::max()) {
        me.hop = worst_hop;  // never heard the sink
      }
      const std::size_t degree = graph.degree(v);
      // Start the local view with my own priority.
      if (!me.has_priority_view ||
          better_priority(degree, me.hop, v, me.best_degree, me.best_hop,
                          me.best_id)) {
        me.best_degree = degree;
        me.best_hop = me.hop;
        me.best_id = v;
        me.has_priority_view = true;
      }
      out.broadcast(kTagPriority, degree, me.hop, v);
      me.priority_sent = true;
      // Back-off: local maxima fire immediately next round; others wait
      // proportionally to their sink distance (closer sensors declare
      // earlier, pulling polling points toward the sink).
      me.timer = static_cast<long long>(me.hop);
      return;
    }
    if (me.resolved) {
      return;
    }

    // --- Phase C: declare or join ---
    const bool i_am_local_max = me.best_id == v;
    if (i_am_local_max && !me.declared) {
      me.is_pp = true;
      me.declared = true;
      me.resolved = true;
      ++resolved_count;
      out.broadcast(kTagDeclare);
      return;
    }
    if (me.timer > 0) {
      --me.timer;
      return;
    }
    // Timer expired: join the nearest declaring neighbour, or give up
    // waiting and declare myself.
    if (!me.declaring_neighbors.empty()) {
      std::size_t best = me.declaring_neighbors.front();
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t pp : me.declaring_neighbors) {
        const double d2 =
            geom::distance_sq(network.position(v), network.position(pp));
        if (d2 < best_d2) {
          best_d2 = d2;
          best = pp;
        }
      }
      me.joined_pp = best;
      me.resolved = true;
      ++resolved_count;
      out.unicast(best, kTagJoin, best);
      return;
    }
    me.is_pp = true;
    me.declared = true;
    me.resolved = true;
    ++resolved_count;
    out.broadcast(kTagDeclare);
  };

  // Drive rounds: first until the BFS flood stabilises (two quiet
  // rounds), then until every node resolved.
  std::size_t round_guard = 0;
  while (resolved_count < n && round_guard < options_.max_rounds) {
    const RoundStats rs = bus.run_round(handler);
    ++round_guard;
    if (!bfs_stable) {
      if (rs.transmissions == 0) {
        ++bfs_quiet_rounds;
        if (bfs_quiet_rounds >= 1) {
          bfs_stable = true;
        }
      } else {
        bfs_quiet_rounds = 0;
      }
    }
  }
  MDG_ASSERT(resolved_count == n, "election protocol did not terminate");

  stats_.rounds = bus.rounds_executed();
  stats_.transmissions = bus.total_transmissions();
  stats_.transmissions_per_node =
      static_cast<double>(stats_.transmissions) / static_cast<double>(n);

  // Harvest the elected polling points.
  std::vector<std::size_t> elected;  // candidate ids
  for (std::size_t v = 0; v < n; ++v) {
    if (state[v].is_pp) {
      elected.push_back(own_site[v]);
    }
  }
  std::sort(elected.begin(), elected.end());
  elected.erase(std::unique(elected.begin(), elected.end()), elected.end());

  solution.polling_candidates = elected;
  solution.polling_points.reserve(elected.size());
  for (std::size_t c : elected) {
    solution.polling_points.push_back(matrix.candidate(c));
  }
  // The join choices are exactly a nearest-PP assignment restricted to
  // neighbours; reuse the generic nearest assignment for the final
  // solution object (identical for elected sets, and it also handles
  // sensors adjacent to several PPs deterministically).
  solution.assignment =
      cover::assign_nearest(matrix, network, solution.polling_candidates);
  core::route_collector(instance, solution, options_.tsp_effort);
  return solution;
}

}  // namespace mdg::dist

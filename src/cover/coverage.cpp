#include "cover/coverage.h"

#include <algorithm>
#include <cmath>

#include "geom/disk.h"
#include "graph/khop.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace mdg::cover {

const char* to_string(CandidatePolicy policy) {
  switch (policy) {
    case CandidatePolicy::kSensorSites:
      return "sensor-sites";
    case CandidatePolicy::kGrid:
      return "grid";
    case CandidatePolicy::kSensorSitesAndGrid:
      return "sites+grid";
    case CandidatePolicy::kSensorSitesAndIntersections:
      return "sites+intersections";
  }
  return "unknown";
}

void CoverageMatrix::index_candidate(const net::SensorNetwork& network,
                                     geom::Point p) {
  std::vector<std::size_t> covered = network.coverable_from(p);
  if (covered.empty()) {
    return;  // a stop nobody can upload to is useless
  }
  std::sort(covered.begin(), covered.end());
  const std::size_t id = candidates_.size();
  candidates_.push_back(p);
  for (std::size_t s : covered) {
    covering_[s].push_back(id);
  }
  cover_sets_.push_back(std::move(covered));
}

namespace {

/// Below this many candidate positions the parallel build's chunking
/// overhead exceeds the coverage work itself (see ALGORITHMS.md §cutoffs).
constexpr std::size_t kParallelBuildBelow = 512;

}  // namespace

CoverageMatrix::CoverageMatrix(const net::SensorNetwork& network,
                               const CandidateOptions& options)
    : covering_(network.size()) {
  OBS_SPAN(obs::metric::kCoverMatrixBuild);
  MDG_REQUIRE(options.grid_spacing > 0.0, "grid spacing must be positive");
  const auto policy = options.policy;
  const bool want_sites = policy != CandidatePolicy::kGrid;
  const bool want_grid = policy == CandidatePolicy::kGrid ||
                         policy == CandidatePolicy::kSensorSitesAndGrid;
  const bool want_intersections =
      policy == CandidatePolicy::kSensorSitesAndIntersections;

  // Stage 1 (serial): enumerate candidate positions in the canonical
  // order. Cheap — just geometry, no coverage queries.
  std::vector<geom::Point> positions;
  if (want_sites) {
    positions.insert(positions.end(), network.positions().begin(),
                     network.positions().end());
  }
  if (want_grid) {
    const geom::Aabb& field = network.field();
    for (double y = field.lo.y + options.grid_spacing / 2.0; y < field.hi.y;
         y += options.grid_spacing) {
      for (double x = field.lo.x + options.grid_spacing / 2.0; x < field.hi.x;
           x += options.grid_spacing) {
        positions.push_back({x, y});
      }
    }
  }
  if (want_intersections) {
    // Positions covering two sensors at once: the intersection points of
    // their Rs-disks (only pairs within 2*Rs intersect).
    const double rs = network.range();
    for (std::size_t u = 0; u < network.size(); ++u) {
      network.spatial_index().for_each_in_radius(
          network.position(u), 2.0 * rs, [&](std::size_t v) {
            if (v <= u) {
              return;
            }
            const geom::Circle cu{network.position(u), rs};
            const geom::Circle cv{network.position(v), rs};
            for (geom::Point p : geom::circle_intersections(cu, cv)) {
              if (network.field().contains(p)) {
                positions.push_back(p);
              }
            }
          });
    }
  }

  // Stage 2 (parallel): the expensive part — each position's cover set.
  // Writes are slot-exclusive, so the result is independent of how work
  // is split across threads.
  const std::size_t threads =
      positions.size() >= kParallelBuildBelow ? planning_threads() : 1;
  MDG_OBS_GAUGE(obs::metric::kCoverMatrixThreads,
                static_cast<double>(threads));
  std::vector<std::vector<std::size_t>> covered(positions.size());
  const auto compute = [&](std::size_t i) {
    covered[i] = network.coverable_from(positions[i]);
    std::sort(covered[i].begin(), covered[i].end());
  };
  if (threads <= 1) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      compute(i);
    }
  } else {
    parallel_for(positions.size(), compute);
  }

  // Stage 3 (serial ordered merge): assign candidate ids in enumeration
  // order — byte-identical to the fully serial build at any thread count.
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (covered[i].empty()) {
      continue;  // a stop nobody can upload to is useless
    }
    const std::size_t id = candidates_.size();
    candidates_.push_back(positions[i]);
    for (std::size_t s : covered[i]) {
      covering_[s].push_back(id);
    }
    cover_sets_.push_back(std::move(covered[i]));
  }

  // Feasibility fallback: any sensor no candidate covers gets its own
  // site (relevant for coarse grid-only policies).
  for (std::size_t s = 0; s < network.size(); ++s) {
    if (covering_[s].empty()) {
      index_candidate(network, network.position(s));
    }
    MDG_ASSERT(!covering_[s].empty(),
               "a sensor's own position must cover it");
  }
}

CoverageMatrix CoverageMatrix::expand_relay_hops(
    const CoverageMatrix& base, const net::SensorNetwork& network,
    std::size_t relay_hops) {
  MDG_REQUIRE(base.sensor_count() == network.size(),
              "coverage matrix does not match the network");
  if (relay_hops == 1) {
    return base;  // single-hop SHDGP: the relation is the base relation
  }
  OBS_SPAN(obs::metric::kRelayClosureBuild);

  CoverageMatrix expanded;
  expanded.candidates_ = base.candidates_;
  expanded.cover_sets_.assign(base.candidate_count(), {});
  expanded.covering_.assign(network.size(), {});

  if (relay_hops == 0) {
    // Degenerate d = 0: the collector pauses exactly at the sensor, so
    // coverage is position identity (coincident sensors share stops).
    for (std::size_t c = 0; c < base.candidate_count(); ++c) {
      for (std::size_t s : base.covered_by(c)) {
        if (network.position(s) == base.candidate(c)) {
          expanded.cover_sets_[c].push_back(s);
          expanded.covering_[s].push_back(c);
        }
      }
    }
    for (std::size_t s = 0; s < network.size(); ++s) {
      MDG_REQUIRE(!expanded.covering_[s].empty(),
                  "relay-hops 0 needs a candidate at every sensor site "
                  "(use a sensor-site candidate policy)");
    }
    return expanded;
  }

  // d >= 2: candidate c gains every sensor within <= relay_hops - 1
  // hops of its single-hop cover set. Closure rows and per-candidate
  // unions are slot-exclusive, so the build is byte-identical at any
  // thread count.
  const graph::KHopClosure closure(network.connectivity(), relay_hops - 1);
  const std::size_t candidates = base.candidate_count();
  const auto expand_one = [&](std::size_t c) {
    std::vector<char> stamped(network.size(), 0);
    for (std::size_t t : base.covered_by(c)) {
      for (std::size_t s : closure.reach(t)) {
        stamped[s] = 1;
      }
    }
    std::vector<std::size_t>& covered = expanded.cover_sets_[c];
    for (std::size_t s = 0; s < stamped.size(); ++s) {
      if (stamped[s] != 0) {
        covered.push_back(s);
      }
    }
  };
  if (candidates < kParallelBuildBelow) {
    for (std::size_t c = 0; c < candidates; ++c) {
      expand_one(c);
    }
  } else {
    parallel_for(candidates, expand_one);
  }
  for (std::size_t c = 0; c < candidates; ++c) {
    for (std::size_t s : expanded.cover_sets_[c]) {
      expanded.covering_[s].push_back(c);
    }
  }
  for (std::size_t s = 0; s < network.size(); ++s) {
    // Coverage only grows with d, and the base guarantees feasibility.
    MDG_ASSERT(!expanded.covering_[s].empty(),
               "d-hop expansion lost a sensor's coverage");
  }
  return expanded;
}

geom::Point CoverageMatrix::candidate(std::size_t c) const {
  MDG_REQUIRE(c < candidates_.size(), "candidate index out of range");
  return candidates_[c];
}

const std::vector<std::size_t>& CoverageMatrix::covered_by(
    std::size_t c) const {
  MDG_REQUIRE(c < cover_sets_.size(), "candidate index out of range");
  return cover_sets_[c];
}

const std::vector<std::size_t>& CoverageMatrix::covering(std::size_t s) const {
  MDG_REQUIRE(s < covering_.size(), "sensor index out of range");
  return covering_[s];
}

bool CoverageMatrix::is_cover(const std::vector<std::size_t>& selected) const {
  std::vector<bool> covered(covering_.size(), false);
  for (std::size_t c : selected) {
    MDG_REQUIRE(c < cover_sets_.size(), "candidate index out of range");
    for (std::size_t s : cover_sets_[c]) {
      covered[s] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool b) { return b; });
}

}  // namespace mdg::cover

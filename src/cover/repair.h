// Partial set-cover repair: the greedy sub-cover, nearest-affiliation
// and nearest-neighbour stop-ordering kernels shared by breakdown
// recovery (core::replan_remaining) and incremental replanning
// (core::apply_delta).
//
// Both callers repair a *subset* of sensors against a candidate
// universe, so the kernels are templated over a CoverView instead of
// binding to cover::CoverageMatrix: recovery reads the instance's
// prebuilt matrix, while the delta path answers the same queries from a
// live geom::RemovalGrid without materialising any matrix. A CoverView
// provides:
//
//   std::size_t universe() const;            // sensor ids are < universe()
//   std::size_t candidate_limit() const;     // candidate ids are < limit
//   geom::Point position(std::size_t c);     // candidate position
//   geom::Point sensor_position(std::size_t s);
//   const std::vector<std::size_t>& covered(std::size_t c);   // sorted
//   const std::vector<std::size_t>& covering(std::size_t s);  // sorted
//
// Tie-breaking is part of the byte-determinism contract (DESIGN.md):
// greedy picks max gain, then smaller true distance to the anchor, then
// the lower candidate id; affiliation and stop ordering pick smaller
// distance then lower candidate id. These rules reproduce the original
// replan_remaining trajectory bit for bit — the chaos-run golden report
// (data/golden_report_fault30.json) pins that.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "geom/point.h"

namespace mdg::cover {

struct PartialCoverResult {
  /// Chosen candidate ids in selection order.
  std::vector<std::size_t> selected;
  /// Targets no candidate covers (ascending; empty in the sensor-sites
  /// policy because every sensor covers itself).
  std::vector<std::size_t> uncovered;
};

/// Greedy maximum-coverage over `targets` (sorted, unique sensor ids)
/// only: repeatedly picks the candidate covering the most
/// still-uncovered targets, tie-broken toward `anchor` and then by
/// candidate id. Degrades gracefully — uncoverable targets are reported,
/// never fatal.
template <class View>
[[nodiscard]] PartialCoverResult greedy_partial_cover(
    View& view, std::span<const std::size_t> targets, geom::Point anchor) {
  PartialCoverResult result;
  std::vector<bool> wanted(view.universe(), false);
  for (std::size_t s : targets) {
    wanted[s] = true;
  }
  std::size_t remaining = targets.size();
  while (remaining > 0) {
    std::size_t best = view.candidate_limit();
    std::size_t best_gain = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    // Only candidates covering some target can gain; scan via the
    // per-sensor covering lists to avoid a full candidate sweep.
    std::vector<std::size_t> contenders;
    for (std::size_t s : targets) {
      if (!wanted[s]) {
        continue;
      }
      const auto& covering = view.covering(s);
      contenders.insert(contenders.end(), covering.begin(), covering.end());
    }
    std::sort(contenders.begin(), contenders.end());
    contenders.erase(std::unique(contenders.begin(), contenders.end()),
                     contenders.end());
    for (std::size_t c : contenders) {
      std::size_t gain = 0;
      for (std::size_t s : view.covered(c)) {
        if (wanted[s]) {
          ++gain;
        }
      }
      if (gain == 0) {
        continue;
      }
      const double dist = geom::distance(view.position(c), anchor);
      if (gain > best_gain ||
          (gain == best_gain && (dist < best_dist ||
                                 (dist == best_dist && c < best)))) {
        best = c;
        best_gain = gain;
        best_dist = dist;
      }
    }
    if (best == view.candidate_limit()) {
      break;  // nothing covers the rest — degrade, don't crash
    }
    result.selected.push_back(best);
    for (std::size_t s : view.covered(best)) {
      if (wanted[s]) {
        wanted[s] = false;
        --remaining;
      }
    }
  }
  for (std::size_t s : targets) {
    if (wanted[s]) {
      result.uncovered.push_back(s);
    }
  }
  return result;
}

/// Affiliation: each target uploads at the nearest selected candidate
/// that covers it (smaller distance, then lower candidate id). Returns
/// the targets served per selected slot (parallel to `selected`;
/// uncoverable targets appear nowhere).
template <class View>
[[nodiscard]] std::vector<std::vector<std::size_t>> affiliate_nearest(
    View& view, std::span<const std::size_t> targets,
    const std::vector<std::size_t>& selected) {
  std::vector<std::vector<std::size_t>> sensors_of(selected.size());
  for (std::size_t s : targets) {
    double nearest = std::numeric_limits<double>::infinity();
    std::size_t pick = selected.size();
    for (std::size_t i = 0; i < selected.size(); ++i) {
      const auto& covered = view.covered(selected[i]);
      if (!std::binary_search(covered.begin(), covered.end(), s)) {
        continue;
      }
      const double d =
          geom::distance(view.sensor_position(s), view.position(selected[i]));
      if (d < nearest || (d == nearest && pick < selected.size() &&
                          selected[i] < selected[pick])) {
        nearest = d;
        pick = i;
      }
    }
    if (pick < selected.size()) {
      sensors_of[pick].push_back(s);
    }
  }
  return sensors_of;
}

struct OrderedStops {
  /// Indices into `selected` in visiting order (slots serving nobody
  /// are skipped).
  std::vector<std::size_t> order;
  /// start -> stops path length (metres; no return/sink leg).
  double length = 0.0;
  /// Position after the last stop (== start when order is empty).
  geom::Point cursor{};
};

/// Orders the selected stops nearest-neighbour from `start`, skipping
/// slots with an empty service set (smaller distance, then lower
/// candidate id).
template <class View>
[[nodiscard]] OrderedStops order_stops_nearest(
    View& view, const std::vector<std::size_t>& selected,
    const std::vector<std::vector<std::size_t>>& sensors_of,
    geom::Point start) {
  OrderedStops out;
  out.cursor = start;
  std::vector<bool> used(selected.size(), false);
  for (;;) {
    std::size_t pick = selected.size();
    double nearest = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (used[i] || sensors_of[i].empty()) {
        continue;
      }
      const double d = geom::distance(out.cursor, view.position(selected[i]));
      if (d < nearest || (d == nearest && pick < selected.size() &&
                          selected[i] < selected[pick])) {
        nearest = d;
        pick = i;
      }
    }
    if (pick == selected.size()) {
      break;
    }
    used[pick] = true;
    out.order.push_back(pick);
    out.length += nearest;
    out.cursor = view.position(selected[pick]);
  }
  return out;
}

}  // namespace mdg::cover

#include "cover/set_cover.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::cover {
namespace {

/// Heap key for lazy greedy. Ordered so the heap top is the candidate
/// the linear scan would pick: maximum gain, then minimum anchor
/// distance, then minimum id.
struct LazyEntry {
  std::size_t gain;
  double anchor_d2;
  std::size_t candidate;
};

struct LazyEntryWorse {
  bool operator()(const LazyEntry& a, const LazyEntry& b) const {
    if (a.gain != b.gain) {
      return a.gain < b.gain;
    }
    if (a.anchor_d2 != b.anchor_d2) {
      return a.anchor_d2 > b.anchor_d2;
    }
    return a.candidate > b.candidate;
  }
};

/// Below this many candidates the linear rescan beats the lazy heap —
/// the heap's allocation and sift costs outweigh the scan it avoids
/// (see ALGORITHMS.md §cutoffs).
constexpr std::size_t kLazyHeapBelow = 256;

/// The linear-rescan selection loop — the greedy core both public entry
/// points share (the heap path reproduces its picks exactly).
std::vector<std::size_t> greedy_select_linear(const CoverageMatrix& matrix,
                                              const GreedyOptions& options) {
  const std::size_t n_sensors = matrix.sensor_count();
  const std::size_t n_candidates = matrix.candidate_count();
  std::vector<std::size_t> selected;
  std::vector<bool> covered(n_sensors, false);
  std::size_t uncovered = n_sensors;
  // gain[c] = count of still-uncovered sensors candidate c covers. Lazy
  // re-evaluation keeps the loop near-linear in practice.
  std::vector<std::size_t> gain(n_candidates);
  for (std::size_t c = 0; c < n_candidates; ++c) {
    gain[c] = matrix.covered_by(c).size();
  }
  std::vector<bool> selected_mask(n_candidates, false);

  while (uncovered > 0) {
    // Find the candidate with maximum *current* gain, recomputing gains
    // that are stale.
    std::size_t best = n_candidates;
    std::size_t best_gain = 0;
    double best_anchor_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < n_candidates; ++c) {
      if (selected_mask[c] || gain[c] == 0) {
        continue;
      }
      if (gain[c] < best_gain) {
        continue;  // even the optimistic stale gain loses
      }
      // Refresh the gain (it only ever decreases).
      std::size_t fresh = 0;
      for (std::size_t s : matrix.covered_by(c)) {
        if (!covered[s]) {
          ++fresh;
        }
      }
      gain[c] = fresh;
      if (fresh == 0) {
        continue;
      }
      const double anchor_d2 =
          options.tie_break_toward_anchor
              ? geom::distance_sq(matrix.candidate(c), options.anchor)
              : 0.0;
      if (fresh > best_gain ||
          (fresh == best_gain && anchor_d2 < best_anchor_d2)) {
        best = c;
        best_gain = fresh;
        best_anchor_d2 = anchor_d2;
      }
    }
    MDG_ASSERT(best != n_candidates,
               "greedy cover stalled with sensors uncovered");
    selected_mask[best] = true;
    selected.push_back(best);
    for (std::size_t s : matrix.covered_by(best)) {
      if (!covered[s]) {
        covered[s] = true;
        --uncovered;
      }
    }
  }
  return selected;
}

}  // namespace

SetCoverResult greedy_set_cover(const CoverageMatrix& matrix,
                                const net::SensorNetwork& network,
                                const GreedyOptions& options) {
  OBS_SPAN(obs::metric::kCoverGreedy);
  const std::size_t n_sensors = matrix.sensor_count();
  const std::size_t n_candidates = matrix.candidate_count();
  MDG_REQUIRE(n_sensors == network.size(),
              "coverage matrix does not match the network");

  SetCoverResult result;
  if (n_candidates < kLazyHeapBelow) {
    result.selected = greedy_select_linear(matrix, options);
    MDG_OBS_COUNT(obs::metric::kCoverSelected, result.selected.size());
    MDG_OBS_COUNT(obs::metric::kCoverLazyRefreshes, 0);
    result.assignment = assign_nearest(matrix, network, result.selected);
    return result;
  }
  std::vector<bool> covered(n_sensors, false);
  std::size_t uncovered = n_sensors;
  std::size_t lazy_refreshes = 0;

  std::priority_queue<LazyEntry, std::vector<LazyEntry>, LazyEntryWorse> heap;
  {
    std::vector<LazyEntry> initial;
    initial.reserve(n_candidates);
    for (std::size_t c = 0; c < n_candidates; ++c) {
      const std::size_t gain = matrix.covered_by(c).size();
      if (gain == 0) {
        continue;
      }
      const double anchor_d2 =
          options.tie_break_toward_anchor
              ? geom::distance_sq(matrix.candidate(c), options.anchor)
              : 0.0;
      initial.push_back({gain, anchor_d2, c});
    }
    heap = std::priority_queue<LazyEntry, std::vector<LazyEntry>,
                               LazyEntryWorse>(LazyEntryWorse{},
                                               std::move(initial));
  }

  while (uncovered > 0) {
    MDG_ASSERT(!heap.empty(),
               "greedy cover stalled with sensors uncovered");
    LazyEntry top = heap.top();
    heap.pop();
    // Refresh the (only ever decreasing) gain.
    std::size_t fresh = 0;
    for (std::size_t s : matrix.covered_by(top.candidate)) {
      if (!covered[s]) {
        ++fresh;
      }
    }
    if (fresh == 0) {
      continue;  // fully absorbed by earlier selections
    }
    if (fresh < top.gain) {
      // Stale: re-queue with the exact gain and look again. Every other
      // candidate's true gain is bounded by its stored key, so nothing
      // better can be below the refreshed top.
      top.gain = fresh;
      heap.push(top);
      ++lazy_refreshes;
      continue;
    }
    result.selected.push_back(top.candidate);
    for (std::size_t s : matrix.covered_by(top.candidate)) {
      if (!covered[s]) {
        covered[s] = true;
        --uncovered;
      }
    }
  }

  MDG_OBS_COUNT(obs::metric::kCoverSelected, result.selected.size());
  MDG_OBS_COUNT(obs::metric::kCoverLazyRefreshes, lazy_refreshes);
  result.assignment = assign_nearest(matrix, network, result.selected);
  return result;
}

SetCoverResult greedy_set_cover_reference(const CoverageMatrix& matrix,
                                          const net::SensorNetwork& network,
                                          const GreedyOptions& options) {
  OBS_SPAN(obs::metric::kCoverGreedyReference);
  MDG_REQUIRE(matrix.sensor_count() == network.size(),
              "coverage matrix does not match the network");

  SetCoverResult result;
  result.selected = greedy_select_linear(matrix, options);
  result.assignment = assign_nearest(matrix, network, result.selected);
  return result;
}

std::vector<std::size_t> assign_nearest(
    const CoverageMatrix& matrix, const net::SensorNetwork& network,
    const std::vector<std::size_t>& selected) {
  OBS_SPAN(obs::metric::kCoverAssign);
  MDG_REQUIRE(matrix.is_cover(selected), "selected set is not a cover");
  // Map candidate id -> slot in `selected`.
  std::vector<std::size_t> slot(matrix.candidate_count(),
                                static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < selected.size(); ++i) {
    slot[selected[i]] = i;
  }
  std::vector<std::size_t> assignment(matrix.sensor_count());
  for (std::size_t s = 0; s < matrix.sensor_count(); ++s) {
    double best_d2 = std::numeric_limits<double>::infinity();
    std::size_t best_slot = static_cast<std::size_t>(-1);
    for (std::size_t c : matrix.covering(s)) {
      if (slot[c] == static_cast<std::size_t>(-1)) {
        continue;
      }
      const double d2 =
          geom::distance_sq(network.position(s), matrix.candidate(c));
      if (d2 < best_d2) {
        best_d2 = d2;
        best_slot = slot[c];
      }
    }
    MDG_ASSERT(best_slot != static_cast<std::size_t>(-1),
               "cover invariant violated during assignment");
    assignment[s] = best_slot;
  }
  return assignment;
}

namespace {

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// Capacitated assignment engine: greedy nearest placement, completed by
/// Kuhn-style augmenting paths (a sensor that finds every coverer full
/// tries to relocate one of the occupants). Finds a feasible placement
/// whenever one exists for the given selected set.
class CapacitatedAssigner {
 public:
  CapacitatedAssigner(const CoverageMatrix& matrix,
                      const net::SensorNetwork& network,
                      const std::vector<std::size_t>& selected,
                      std::size_t capacity)
      : matrix_(matrix),
        network_(network),
        selected_(selected),
        capacity_(capacity),
        slot_of_(matrix.candidate_count(), kNoSlot),
        assignment_(matrix.sensor_count(), kNoSlot),
        occupants_(selected.size()) {
    for (std::size_t i = 0; i < selected_.size(); ++i) {
      slot_of_[selected_[i]] = i;
    }
  }

  /// Returns the sensors that could not be placed.
  std::vector<std::size_t> run() {
    // Scarcest-first greedy placement toward the nearest free PP.
    const std::size_t n = matrix_.sensor_count();
    std::vector<std::size_t> order(n);
    std::vector<std::size_t> options(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
      order[s] = s;
      for (std::size_t c : matrix_.covering(s)) {
        if (slot_of_[c] != kNoSlot) {
          ++options[s];
        }
      }
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (options[a] != options[b]) {
                  return options[a] < options[b];
                }
                return a < b;
              });

    std::vector<std::size_t> unplaced;
    for (std::size_t s : order) {
      if (!place_nearest(s)) {
        // Try an augmenting path before giving up on s.
        std::vector<bool> visited(selected_.size(), false);
        if (!augment(s, visited)) {
          unplaced.push_back(s);
        }
      }
    }
    return unplaced;
  }

  [[nodiscard]] const std::vector<std::size_t>& assignment() const {
    return assignment_;
  }

 private:
  bool place_nearest(std::size_t s) {
    double best_d2 = std::numeric_limits<double>::infinity();
    std::size_t best_slot = kNoSlot;
    for (std::size_t c : matrix_.covering(s)) {
      const std::size_t slot = slot_of_[c];
      if (slot == kNoSlot || occupants_[slot].size() >= capacity_) {
        continue;
      }
      const double d2 =
          geom::distance_sq(network_.position(s), matrix_.candidate(c));
      if (d2 < best_d2) {
        best_d2 = d2;
        best_slot = slot;
      }
    }
    if (best_slot == kNoSlot) {
      return false;
    }
    attach(s, best_slot);
    return true;
  }

  /// Kuhn augmentation: try to place s by evicting an occupant of one of
  /// its (visited-guarded) full polling points to somewhere else.
  bool augment(std::size_t s, std::vector<bool>& visited) {
    for (std::size_t c : matrix_.covering(s)) {
      const std::size_t slot = slot_of_[c];
      if (slot == kNoSlot || visited[slot]) {
        continue;
      }
      visited[slot] = true;
      if (occupants_[slot].size() < capacity_) {
        attach(s, slot);
        return true;
      }
      // Copy: relocation mutates the occupant list.
      const std::vector<std::size_t> occupants = occupants_[slot];
      for (std::size_t t : occupants) {
        detach(t, slot);
        if (augment(t, visited)) {
          attach(s, slot);
          return true;
        }
        attach(t, slot);  // undo
      }
    }
    return false;
  }

  void attach(std::size_t s, std::size_t slot) {
    assignment_[s] = slot;
    occupants_[slot].push_back(s);
  }

  void detach(std::size_t s, std::size_t slot) {
    auto& list = occupants_[slot];
    list.erase(std::find(list.begin(), list.end(), s));
    assignment_[s] = kNoSlot;
  }

  const CoverageMatrix& matrix_;
  const net::SensorNetwork& network_;
  const std::vector<std::size_t>& selected_;
  std::size_t capacity_;
  std::vector<std::size_t> slot_of_;
  std::vector<std::size_t> assignment_;
  std::vector<std::vector<std::size_t>> occupants_;
};

}  // namespace

CapacitatedCoverResult enforce_capacity(const CoverageMatrix& matrix,
                                        const net::SensorNetwork& network,
                                        std::vector<std::size_t> selected,
                                        std::size_t capacity) {
  OBS_SPAN(obs::metric::kCoverCapacity);
  MDG_REQUIRE(capacity >= 1, "capacity must allow at least one sensor");
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());

  CapacitatedCoverResult result;
  result.selected = std::move(selected);
  for (;;) {
    CapacitatedAssigner assigner(matrix, network, result.selected, capacity);
    const std::vector<std::size_t> unplaced = assigner.run();
    if (unplaced.empty()) {
      result.assignment = assigner.assignment();
      // Drop polling points the capacitated assignment left empty (the
      // collector should not stop where nobody uploads) and remap slots.
      std::vector<std::size_t> load(result.selected.size(), 0);
      for (std::size_t slot : result.assignment) {
        ++load[slot];
      }
      std::vector<std::size_t> remap(result.selected.size(), kNoSlot);
      std::vector<std::size_t> kept;
      for (std::size_t i = 0; i < result.selected.size(); ++i) {
        if (load[i] > 0) {
          remap[i] = kept.size();
          kept.push_back(result.selected[i]);
        }
      }
      for (std::size_t& slot : result.assignment) {
        slot = remap[slot];
        MDG_ASSERT(slot != kNoSlot, "assigned slot cannot be empty");
      }
      result.selected = std::move(kept);
      return result;
    }
    // Add the candidate covering the most unplaced sensors (ties toward
    // lower id for determinism); it must not already be selected.
    std::vector<bool> is_selected(matrix.candidate_count(), false);
    for (std::size_t c : result.selected) {
      is_selected[c] = true;
    }
    std::vector<std::size_t> gain(matrix.candidate_count(), 0);
    for (std::size_t s : unplaced) {
      for (std::size_t c : matrix.covering(s)) {
        if (!is_selected[c]) {
          ++gain[c];
        }
      }
    }
    std::size_t best = matrix.candidate_count();
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < matrix.candidate_count(); ++c) {
      if (gain[c] > best_gain) {
        best_gain = gain[c];
        best = c;
      }
    }
    if (best == matrix.candidate_count()) {
      // Every candidate covering the unplaced sensors is already selected
      // (and saturated beyond repair by relocation). Unblocking requires
      // extra capacity for some *placed* sensor so a relocation chain can
      // free a slot: add any unselected candidate, largest coverage first.
      for (std::size_t c = 0; c < matrix.candidate_count(); ++c) {
        if (!is_selected[c] &&
            (best == matrix.candidate_count() ||
             matrix.covered_by(c).size() > matrix.covered_by(best).size())) {
          best = c;
        }
      }
    }
    MDG_ASSERT(best != matrix.candidate_count(),
               "capacitated cover infeasible: every candidate selected yet "
               "sensors remain unplaced (capacity too small for the "
               "candidate set)");
    MDG_OBS_COUNT(obs::metric::kCoverCapacityAdded, 1);
    result.selected.push_back(best);
    std::sort(result.selected.begin(), result.selected.end());
  }
}

std::size_t scattering_lower_bound(const net::SensorNetwork& network) {
  // Greedily pick sensors pairwise farther than 2*Rs apart. Each needs a
  // distinct polling point because no single disk of radius Rs contains
  // two of them.
  const double limit = 2.0 * network.range();
  std::vector<std::size_t> chosen;
  for (std::size_t s = 0; s < network.size(); ++s) {
    bool clashes = false;
    for (std::size_t t : chosen) {
      if (geom::within_range(network.position(s), network.position(t),
                             limit)) {
        clashes = true;
        break;
      }
    }
    if (!clashes) {
      chosen.push_back(s);
    }
  }
  return chosen.size();
}

}  // namespace mdg::cover

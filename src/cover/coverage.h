// Candidate polling positions and the sensor-coverage relation.
//
// A candidate position covers a sensor when the sensor lies within the
// transmission range Rs of that position — pausing there, the mobile
// collector can receive that sensor's upload in a single hop. The
// CoverageMatrix stores the bipartite relation both ways; every planner
// operates on it.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "net/sensor_network.h"

namespace mdg::cover {

/// Where candidate polling positions come from.
enum class CandidatePolicy {
  /// Positions of the sensors themselves (a collector stops right at a
  /// sensor). Always yields a feasible cover: a sensor covers itself.
  kSensorSites,
  /// A uniform grid of predefined stop positions over the field — the
  /// configuration the SHDG comparisons in follow-up papers describe
  /// ("stops at some selected points out of a set of predefined
  /// positions"). Sensors left uncovered by the grid (possible when the
  /// spacing exceeds Rs*sqrt(2)) fall back to their own site.
  kGrid,
  /// Union of sensor sites and grid positions.
  kSensorSitesAndGrid,
  /// Sensor sites plus pairwise disk-intersection points: positions from
  /// which two sensors at distance <= 2*Rs are simultaneously coverable.
  /// Densest candidate set; noticeably slower on big instances.
  kSensorSitesAndIntersections,
};

[[nodiscard]] const char* to_string(CandidatePolicy policy);

struct CandidateOptions {
  CandidatePolicy policy = CandidatePolicy::kSensorSites;
  /// Grid pitch for the grid policies (metres).
  double grid_spacing = 20.0;
};

class CoverageMatrix {
 public:
  /// Builds candidates per `options` and computes the coverage relation
  /// against `network`. Guarantees every sensor is covered by at least
  /// one candidate (falling back to the sensor's own site if needed).
  CoverageMatrix(const net::SensorNetwork& network,
                 const CandidateOptions& options);

  /// Bounded-relay (d-hop) expansion of `base`: the candidate set — ids
  /// and positions — is carried over verbatim, but candidate c covers
  /// sensor s when s can hand its data to a collector paused at c in at
  /// most `relay_hops` total hops over the sensor connectivity graph:
  /// s forwards through <= relay_hops - 1 intermediate sensors whose
  /// last element lies within Rs of c. relay_hops = 1 reproduces `base`
  /// exactly (the single-hop SHDGP relation); relay_hops = 0 degenerates
  /// to exact-position coverage (the collector must pause *at* the
  /// sensor), which requires a sensor-site candidate policy to stay
  /// feasible. Deterministic at any MDG_THREADS.
  [[nodiscard]] static CoverageMatrix expand_relay_hops(
      const CoverageMatrix& base, const net::SensorNetwork& network,
      std::size_t relay_hops);

  [[nodiscard]] std::size_t candidate_count() const {
    return candidates_.size();
  }
  [[nodiscard]] std::size_t sensor_count() const { return covering_.size(); }
  [[nodiscard]] const std::vector<geom::Point>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] geom::Point candidate(std::size_t c) const;

  /// Sensors covered by candidate c (sorted ascending).
  [[nodiscard]] const std::vector<std::size_t>& covered_by(
      std::size_t c) const;

  /// Candidates covering sensor s (sorted ascending); never empty.
  [[nodiscard]] const std::vector<std::size_t>& covering(std::size_t s) const;

  /// True when `selected` candidate ids jointly cover every sensor.
  [[nodiscard]] bool is_cover(const std::vector<std::size_t>& selected) const;

 private:
  CoverageMatrix() = default;  // used by expand_relay_hops

  void index_candidate(const net::SensorNetwork& network, geom::Point p);

  std::vector<geom::Point> candidates_;
  std::vector<std::vector<std::size_t>> cover_sets_;  // candidate -> sensors
  std::vector<std::vector<std::size_t>> covering_;    // sensor -> candidates
};

}  // namespace mdg::cover

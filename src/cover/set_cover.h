// Set-cover selection over a CoverageMatrix.
//
// Greedy maximum-coverage is the workhorse of the GreedyCoverPlanner; the
// scattering lower bound certifies how far any planner can possibly be
// from the minimum number of polling points.
#pragma once

#include <cstddef>
#include <vector>

#include "cover/coverage.h"
#include "geom/point.h"

namespace mdg::cover {

struct SetCoverResult {
  /// Selected candidate ids, in selection order.
  std::vector<std::size_t> selected;
  /// assignment[s] = index *into selected* of the candidate sensor s is
  /// affiliated with (its polling point).
  std::vector<std::size_t> assignment;
};

struct GreedyOptions {
  /// Tie-break equal-coverage candidates by distance to this point
  /// (typically the data sink) — pulls the polling points toward the
  /// sink, shortening the collector tour.
  bool tie_break_toward_anchor = true;
  geom::Point anchor{};
};

/// Greedy maximum-coverage: repeatedly pick the candidate covering the
/// most still-uncovered sensors (H_n-approximate for cardinality).
/// Sensors are assigned to the selected candidate that covers them and
/// lies nearest (so uploads use the shortest single hop).
///
/// Implemented as classic lazy greedy: a max-heap keyed on (gain, anchor
/// distance, id) whose entries are refreshed only when popped — gains
/// are monotone non-increasing, so a popped entry whose refreshed gain
/// still tops its stored key is the true argmax. Selects exactly the
/// same candidates, in the same order, as the linear-rescan reference.
[[nodiscard]] SetCoverResult greedy_set_cover(
    const CoverageMatrix& matrix, const net::SensorNetwork& network,
    const GreedyOptions& options = {});

/// The original linear-rescan greedy (one full pass over all candidates
/// per selection). Kept as the parity oracle for greedy_set_cover and as
/// the baseline kernel in the hot-path microbench; planners should call
/// greedy_set_cover.
[[nodiscard]] SetCoverResult greedy_set_cover_reference(
    const CoverageMatrix& matrix, const net::SensorNetwork& network,
    const GreedyOptions& options = {});

/// Lower bound on the number of polling points of *any* feasible
/// solution: sensors pairwise farther apart than 2*Rs can never share a
/// polling point, so a greedy scattering of such sensors gives a valid
/// bound.
[[nodiscard]] std::size_t scattering_lower_bound(
    const net::SensorNetwork& network);

/// Re-derives the nearest-PP assignment for an arbitrary selected set
/// (must be a cover). Used by planners that choose PPs by other means.
[[nodiscard]] std::vector<std::size_t> assign_nearest(
    const CoverageMatrix& matrix, const net::SensorNetwork& network,
    const std::vector<std::size_t>& selected);

/// Capacity-bounded polling: no polling point may serve more than
/// `capacity` sensors (bounded buffers / bounded per-stop dwell time).
///
/// Starting from `selected` (any set, typically an uncapacitated cover),
/// sensors are assigned scarcest-first to their nearest polling point
/// with spare capacity; whenever some sensors cannot be placed, the
/// candidate covering the most unplaced sensors is added and the
/// assignment re-run. Always feasible for capacity >= 1 when the
/// candidate set contains every sensor's own site.
struct CapacitatedCoverResult {
  std::vector<std::size_t> selected;
  std::vector<std::size_t> assignment;  ///< index into selected
};

[[nodiscard]] CapacitatedCoverResult enforce_capacity(
    const CoverageMatrix& matrix, const net::SensorNetwork& network,
    std::vector<std::size_t> selected, std::size_t capacity);

}  // namespace mdg::cover

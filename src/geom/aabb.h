// Axis-aligned bounding box for deployment fields.
#pragma once

#include <span>

#include "geom/point.h"

namespace mdg::geom {

struct Aabb {
  Point lo{0.0, 0.0};
  Point hi{0.0, 0.0};

  /// Box [0, side] x [0, side] — the paper's L x L square field.
  [[nodiscard]] static constexpr Aabb square(double side) {
    return {{0.0, 0.0}, {side, side}};
  }

  [[nodiscard]] constexpr double width() const { return hi.x - lo.x; }
  [[nodiscard]] constexpr double height() const { return hi.y - lo.y; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  [[nodiscard]] constexpr Point center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }

  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Clamps p into the box.
  [[nodiscard]] Point clamp(Point p) const;

  /// Smallest box containing all points ({0,0}-degenerate if empty).
  [[nodiscard]] static Aabb bounding(std::span<const Point> points);
};

}  // namespace mdg::geom

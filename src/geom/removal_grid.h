// Uniform grid over a fixed point set supporting O(1) removal and
// expected-O(1) nearest-live-point queries.
//
// The nearest-neighbour tour construction repeatedly asks "which
// unvisited point is closest to here?" while the unvisited set shrinks
// by one per step. A static index cannot answer that without filtering;
// this grid keeps each cell's live members compacted (swap-with-last
// removal), so the expanding-ring nearest query only ever touches
// points that are still in play.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/aabb.h"
#include "geom/point.h"

namespace mdg::geom {

class RemovalGrid {
 public:
  /// Indexes `points` with cells of size `cell_size` (> 0); all points
  /// start live. The span is copied.
  RemovalGrid(std::span<const Point> points, double cell_size);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] bool alive(std::size_t idx) const { return alive_[idx]; }

  /// Removes a live point from the index. Requires alive(idx).
  void remove(std::size_t idx);

  /// Index of the nearest live point to `center`, or npos when none is
  /// left. Exact ties break toward the lower index — the same rule as a
  /// full ascending-index scan with a strict `<` comparison.
  [[nodiscard]] std::size_t nearest(Point center) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

  [[nodiscard]] std::pair<long long, long long> cell_of(Point p) const;
  [[nodiscard]] std::size_t cell_slot(long long cx, long long cy) const;

  std::vector<Point> points_;
  double cell_size_;
  Aabb bounds_;
  long long cells_x_ = 0;
  long long cells_y_ = 0;
  // CSR layout; the live members of cell s are
  // cell_items_[cell_start_[s] .. live_end_[s]). cell_xs_/cell_ys_
  // mirror cell_items_ in SoA form (swapped in lockstep on removal) so
  // the nearest scan streams each live run through the vectorized
  // min-distance kernel.
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> live_end_;
  std::vector<std::size_t> cell_items_;
  std::vector<double> cell_xs_;
  std::vector<double> cell_ys_;
  std::vector<std::size_t> position_;  ///< index into cell_items_ per point
  std::vector<std::size_t> slot_;     ///< cell slot per point
  std::vector<char> alive_;
  std::size_t live_ = 0;
};

}  // namespace mdg::geom

// Uniform grid over a point set supporting O(1) removal, O(1)
// reactivation, amortised-O(1) insertion and expected-O(1)
// nearest-live-point queries.
//
// The nearest-neighbour tour construction repeatedly asks "which
// unvisited point is closest to here?" while the unvisited set shrinks
// by one per step. A static index cannot answer that without filtering;
// this grid keeps each cell's live members compacted (swap-with-last
// removal), so the expanding-ring nearest query only ever touches
// points that are still in play.
//
// The dynamic extension (PR 8) backs incremental replanning: each cell
// region is [start, live_end) live ∪ [live_end, used_end) dead ∪
// [used_end, capacity) free, so a removed point can be reactivated by
// swapping it back across the live boundary and a new point slots into
// the free tail. When a cell overflows — or a point lands outside the
// indexed bounds — the grid rebuilds deterministically from its own
// state with fresh slack, so the same operation sequence always yields
// the same structure. The classic two-argument constructor allocates
// zero slack and is bit-identical (layout and queries) to the
// removal-only grid it replaces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/aabb.h"
#include "geom/point.h"

namespace mdg::geom {

class RemovalGrid {
 public:
  /// Indexes `points` with cells of size `cell_size` (> 0); all points
  /// start live. The span is copied. No growth slack is allocated: the
  /// first insert() pays a rebuild (construction-only users never do).
  RemovalGrid(std::span<const Point> points, double cell_size);

  /// Growth-ready variant: cells carry `bounds` (which must contain
  /// every point, e.g. the deployment field so in-field inserts never
  /// fall outside) and proportional free slack, making insert() O(1)
  /// until a cell fills up.
  RemovalGrid(std::span<const Point> points, double cell_size, Aabb bounds);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] bool alive(std::size_t idx) const { return alive_[idx]; }
  [[nodiscard]] Point point(std::size_t idx) const { return points_[idx]; }

  /// Removes a live point from the index. Requires alive(idx).
  void remove(std::size_t idx);

  /// Returns a removed point to the live set at its stored position.
  /// Requires idx < size() and !alive(idx). O(1).
  void reactivate(std::size_t idx);

  /// Indexes a new live point and returns its index (== the old
  /// size()). Amortised O(1); triggers a deterministic rebuild when the
  /// target cell is full or `p` lies outside the indexed bounds.
  std::size_t insert(Point p);

  /// Index of the nearest live point to `center`, or npos when none is
  /// left. Exact ties break toward the lower index — the same rule as a
  /// full ascending-index scan with a strict `<` comparison.
  [[nodiscard]] std::size_t nearest(Point center) const;

  /// Fills `out` with the indices of every live point within `radius`
  /// of `center` (within_range semantics — inclusive with the boundary
  /// epsilon, matching the coverage predicate), sorted ascending.
  void collect_within(Point center, double radius,
                      std::vector<std::size_t>& out) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

  [[nodiscard]] std::pair<long long, long long> cell_of(Point p) const;
  [[nodiscard]] std::size_t cell_slot(long long cx, long long cy) const;
  void build(bool with_slack);
  void rebuild_for(Point p);

  std::vector<Point> points_;
  double cell_size_;
  Aabb bounds_;
  long long cells_x_ = 0;
  long long cells_y_ = 0;
  // CSR layout with optional free slack; cell s owns
  // cell_items_[cell_start_[s] .. cell_start_[s + 1]) of which
  // [cell_start_[s], live_end_[s]) are live and [live_end_[s],
  // used_end_[s]) are removed-but-reactivatable. cell_xs_/cell_ys_
  // mirror cell_items_ in SoA form (swapped in lockstep on removal) so
  // the nearest scan streams each live run through the vectorized
  // min-distance kernel.
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> live_end_;
  std::vector<std::size_t> used_end_;
  std::vector<std::size_t> cell_items_;
  std::vector<double> cell_xs_;
  std::vector<double> cell_ys_;
  std::vector<std::size_t> position_;  ///< index into cell_items_ per point
  std::vector<std::size_t> slot_;     ///< cell slot per point
  std::vector<char> alive_;
  std::size_t live_ = 0;
};

}  // namespace mdg::geom

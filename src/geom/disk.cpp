#include "geom/disk.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/rng.h"

namespace mdg::geom {

std::vector<Point> circle_intersections(const Circle& a, const Circle& b) {
  const double d = distance(a.center, b.center);
  if (d == 0.0) {
    return {};  // concentric: none or infinitely many — treat as none
  }
  if (d > a.radius + b.radius || d < std::abs(a.radius - b.radius)) {
    return {};
  }
  // Standard two-circle intersection: `h` is the half-chord length at the
  // foot point along the centre line.
  const double along =
      (d * d + a.radius * a.radius - b.radius * b.radius) / (2.0 * d);
  const double h_sq = a.radius * a.radius - along * along;
  const double h = h_sq > 0.0 ? std::sqrt(h_sq) : 0.0;
  const Point dir = (b.center - a.center) / d;
  const Point foot = a.center + dir * along;
  const Point perp{-dir.y, dir.x};
  return {foot + perp * h, foot - perp * h};
}

std::optional<Circle> circumcircle(Point a, Point b, Point c) {
  const double denom = 2.0 * cross(b - a, c - a);
  const double scale =
      std::max({norm(b - a), norm(c - a), norm(c - b), 1.0});
  if (std::abs(denom) < 1e-12 * scale * scale) {
    return std::nullopt;
  }
  const double a2 = dot(a, a);
  const double b2 = dot(b, b);
  const double c2 = dot(c, c);
  const Point center{
      (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / denom,
      (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / denom};
  return Circle{center, distance(center, a)};
}

namespace {

Circle circle_from_two(Point a, Point b) {
  return {midpoint(a, b), distance(a, b) * 0.5};
}

bool in_circle(const Circle& c, Point p) {
  // Slightly looser epsilon than Circle::contains; Welzl needs the
  // support points themselves to test inside.
  return distance(c.center, p) <= c.radius * (1.0 + 1e-9) + 1e-12;
}

Circle welzl_two_support(std::span<const Point> pts, Point p, Point q) {
  Circle c = circle_from_two(p, q);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!in_circle(c, pts[i])) {
      if (const auto cc = circumcircle(p, q, pts[i])) {
        c = *cc;
      }
    }
  }
  return c;
}

Circle welzl_one_support(std::span<const Point> pts, Point p) {
  Circle c{p, 0.0};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!in_circle(c, pts[i])) {
      if (c.radius == 0.0) {
        c = circle_from_two(p, pts[i]);
      } else {
        c = welzl_two_support(pts.first(i), p, pts[i]);
      }
    }
  }
  return c;
}

}  // namespace

std::optional<Circle> smallest_enclosing_circle(std::span<const Point> points) {
  if (points.empty()) {
    return std::nullopt;
  }
  // Deterministic shuffle gives Welzl's expected-linear behaviour without
  // nondeterminism across runs.
  std::vector<Point> pts(points.begin(), points.end());
  Rng rng(0xC0FFEEULL ^ (points.size() * 0x9e3779b97f4a7c15ULL));
  rng.shuffle(pts);

  Circle c{pts[0], 0.0};
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (!in_circle(c, pts[i])) {
      c = welzl_one_support(std::span<const Point>(pts).first(i), pts[i]);
    }
  }
  return c;
}

bool one_disk_coverable(std::span<const Point> points, double radius) {
  MDG_REQUIRE(radius >= 0.0, "radius must be non-negative");
  if (points.empty()) {
    return true;
  }
  const auto circle = smallest_enclosing_circle(points);
  return circle->radius <= radius * (1.0 + 1e-9);
}

}  // namespace mdg::geom

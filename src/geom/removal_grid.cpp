#include "geom/removal_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/points_soa.h"
#include "util/assert.h"

namespace mdg::geom {

RemovalGrid::RemovalGrid(std::span<const Point> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
  MDG_REQUIRE(cell_size > 0.0, "cell size must be positive");
  bounds_ = Aabb::bounding(points_);
  const std::size_t n = points_.size();
  alive_.assign(n, 1);
  live_ = n;
  if (n == 0) {
    cell_start_.assign(1, 0);
    live_end_.assign(1, 0);
    return;
  }
  cells_x_ =
      static_cast<long long>(std::floor(bounds_.width() / cell_size_)) + 1;
  cells_y_ =
      static_cast<long long>(std::floor(bounds_.height() / cell_size_)) + 1;

  const std::size_t total =
      static_cast<std::size_t>(cells_x_) * static_cast<std::size_t>(cells_y_);
  std::vector<std::size_t> counts(total, 0);
  slot_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(points_[i]);
    const std::size_t slot = cell_slot(cx, cy);
    MDG_ASSERT(slot != kNoCell, "point outside its own bounding box");
    slot_[i] = slot;
    ++counts[slot];
  }
  cell_start_.assign(total + 1, 0);
  for (std::size_t s = 0; s < total; ++s) {
    cell_start_[s + 1] = cell_start_[s] + counts[s];
  }
  live_end_.assign(cell_start_.begin() + 1, cell_start_.end());
  cell_items_.resize(n);
  position_.resize(n);
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = cursor[slot_[i]]++;
    cell_items_[at] = i;
    position_[i] = at;
  }
  cell_xs_.resize(n);
  cell_ys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell_xs_[i] = points_[cell_items_[i]].x;
    cell_ys_[i] = points_[cell_items_[i]].y;
  }
}

std::pair<long long, long long> RemovalGrid::cell_of(Point p) const {
  return {static_cast<long long>(std::floor((p.x - bounds_.lo.x) / cell_size_)),
          static_cast<long long>(
              std::floor((p.y - bounds_.lo.y) / cell_size_))};
}

std::size_t RemovalGrid::cell_slot(long long cx, long long cy) const {
  if (cx < 0 || cy < 0 || cx >= cells_x_ || cy >= cells_y_) {
    return kNoCell;
  }
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_x_) +
         static_cast<std::size_t>(cx);
}

void RemovalGrid::remove(std::size_t idx) {
  MDG_REQUIRE(idx < points_.size() && alive_[idx],
              "can only remove a live indexed point");
  const std::size_t slot = slot_[idx];
  const std::size_t last = live_end_[slot] - 1;
  const std::size_t at = position_[idx];
  // Swap with the last live member of the cell and shrink the live range.
  const std::size_t moved = cell_items_[last];
  cell_items_[at] = moved;
  position_[moved] = at;
  cell_items_[last] = idx;
  position_[idx] = last;
  std::swap(cell_xs_[at], cell_xs_[last]);
  std::swap(cell_ys_[at], cell_ys_[last]);
  --live_end_[slot];
  alive_[idx] = 0;
  --live_;
}

std::size_t RemovalGrid::nearest(Point center) const {
  if (live_ == 0) {
    return npos;
  }
  // Expanding search: a live point can hide in an unscanned cell only
  // while the scan radius is below its distance, so the best hit is
  // confirmed once it lies within the scanned radius.
  const double reach =
      std::sqrt(std::max({distance_sq(center, bounds_.lo),
                          distance_sq(center, bounds_.hi),
                          distance_sq(center, {bounds_.lo.x, bounds_.hi.y}),
                          distance_sq(center, {bounds_.hi.x, bounds_.lo.y})}));
  double radius = cell_size_;
  for (;;) {
    std::size_t best = npos;
    double best_d2 = std::numeric_limits<double>::infinity();
    const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
    const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
    for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
      for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
        const std::size_t slot = cell_slot(cx, cy);
        if (slot == kNoCell) {
          continue;
        }
        const std::size_t s = cell_start_[slot];
        const std::size_t len = live_end_[slot] - s;
        const MinScan m = min_distance_sq_by_id(
            std::span(cell_xs_).subspan(s, len),
            std::span(cell_ys_).subspan(s, len),
            std::span(cell_items_).subspan(s, len), center);
        if (m.position != MinScan::npos &&
            (m.distance_sq < best_d2 ||
             (m.distance_sq == best_d2 && m.position < best))) {
          best_d2 = m.distance_sq;
          best = m.position;
        }
      }
    }
    if (best != npos && best_d2 <= radius * radius) {
      return best;
    }
    if (radius >= reach) {
      return best;  // the scan covered every indexed point
    }
    radius *= 2.0;
  }
}

}  // namespace mdg::geom

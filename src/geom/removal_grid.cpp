#include "geom/removal_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/points_soa.h"
#include "util/assert.h"

namespace mdg::geom {

RemovalGrid::RemovalGrid(std::span<const Point> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
  MDG_REQUIRE(cell_size > 0.0, "cell size must be positive");
  bounds_ = Aabb::bounding(points_);
  alive_.assign(points_.size(), 1);
  live_ = points_.size();
  if (points_.empty()) {
    cell_start_.assign(1, 0);
    live_end_.assign(1, 0);
    used_end_.assign(1, 0);
    return;
  }
  build(/*with_slack=*/false);
}

RemovalGrid::RemovalGrid(std::span<const Point> points, double cell_size,
                         Aabb bounds)
    : points_(points.begin(), points.end()),
      cell_size_(cell_size),
      bounds_(bounds) {
  MDG_REQUIRE(cell_size > 0.0, "cell size must be positive");
  MDG_REQUIRE(bounds.width() >= 0.0 && bounds.height() >= 0.0,
              "bounds must be a valid box");
  // Grow the box if a point falls outside the caller's bounds — the
  // invariant every query relies on is that bounds_ contains every
  // indexed point.
  for (const Point& p : points_) {
    bounds_.lo.x = std::min(bounds_.lo.x, p.x);
    bounds_.lo.y = std::min(bounds_.lo.y, p.y);
    bounds_.hi.x = std::max(bounds_.hi.x, p.x);
    bounds_.hi.y = std::max(bounds_.hi.y, p.y);
  }
  alive_.assign(points_.size(), 1);
  live_ = points_.size();
  build(/*with_slack=*/true);
}

void RemovalGrid::build(bool with_slack) {
  const std::size_t n = points_.size();
  cells_x_ =
      static_cast<long long>(std::floor(bounds_.width() / cell_size_)) + 1;
  cells_y_ =
      static_cast<long long>(std::floor(bounds_.height() / cell_size_)) + 1;

  const std::size_t total =
      static_cast<std::size_t>(cells_x_) * static_cast<std::size_t>(cells_y_);
  std::vector<std::size_t> counts(total, 0);
  slot_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(points_[i]);
    const std::size_t slot = cell_slot(cx, cy);
    MDG_ASSERT(slot != kNoCell, "point outside its own bounding box");
    slot_[i] = slot;
    ++counts[slot];
  }
  cell_start_.assign(total + 1, 0);
  for (std::size_t s = 0; s < total; ++s) {
    // Occupied cells get proportional free slack so insert() stays O(1)
    // under churn; empty cells get none (an insert into one rebuilds).
    const std::size_t slack =
        (with_slack && counts[s] > 0)
            ? std::max<std::size_t>(2, counts[s] / 4)
            : 0;
    cell_start_[s + 1] = cell_start_[s] + counts[s] + slack;
  }
  const std::size_t capacity = cell_start_[total];
  cell_items_.assign(capacity, 0);
  cell_xs_.assign(capacity, 0.0);
  cell_ys_.assign(capacity, 0.0);
  position_.resize(n);

  // Live members first (ascending index), then the removed ones — the
  // [start, live_end) ∪ [live_end, used_end) split every operation
  // maintains afterwards.
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive_[i]) {
      continue;
    }
    const std::size_t at = cursor[slot_[i]]++;
    cell_items_[at] = i;
    position_[i] = at;
  }
  live_end_.assign(cursor.begin(), cursor.end());
  for (std::size_t i = 0; i < n; ++i) {
    if (alive_[i]) {
      continue;
    }
    const std::size_t at = cursor[slot_[i]]++;
    cell_items_[at] = i;
    position_[i] = at;
  }
  used_end_.assign(cursor.begin(), cursor.end());
  for (std::size_t s = 0; s < total; ++s) {
    for (std::size_t at = cell_start_[s]; at < used_end_[s]; ++at) {
      cell_xs_[at] = points_[cell_items_[at]].x;
      cell_ys_[at] = points_[cell_items_[at]].y;
    }
  }
}

std::pair<long long, long long> RemovalGrid::cell_of(Point p) const {
  return {static_cast<long long>(std::floor((p.x - bounds_.lo.x) / cell_size_)),
          static_cast<long long>(
              std::floor((p.y - bounds_.lo.y) / cell_size_))};
}

std::size_t RemovalGrid::cell_slot(long long cx, long long cy) const {
  if (cx < 0 || cy < 0 || cx >= cells_x_ || cy >= cells_y_) {
    return kNoCell;
  }
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_x_) +
         static_cast<std::size_t>(cx);
}

void RemovalGrid::remove(std::size_t idx) {
  MDG_REQUIRE(idx < points_.size() && alive_[idx],
              "can only remove a live indexed point");
  const std::size_t slot = slot_[idx];
  const std::size_t last = live_end_[slot] - 1;
  const std::size_t at = position_[idx];
  // Swap with the last live member of the cell and shrink the live range.
  const std::size_t moved = cell_items_[last];
  cell_items_[at] = moved;
  position_[moved] = at;
  cell_items_[last] = idx;
  position_[idx] = last;
  std::swap(cell_xs_[at], cell_xs_[last]);
  std::swap(cell_ys_[at], cell_ys_[last]);
  --live_end_[slot];
  alive_[idx] = 0;
  --live_;
}

void RemovalGrid::reactivate(std::size_t idx) {
  MDG_REQUIRE(idx < points_.size() && !alive_[idx],
              "can only reactivate a removed point");
  const std::size_t slot = slot_[idx];
  const std::size_t first_dead = live_end_[slot];
  const std::size_t at = position_[idx];
  MDG_ASSERT(at >= first_dead && at < used_end_[slot],
             "removed point outside its cell's dead range");
  // Mirror of remove(): swap with the first dead member and grow the
  // live range over it.
  const std::size_t moved = cell_items_[first_dead];
  cell_items_[at] = moved;
  position_[moved] = at;
  cell_items_[first_dead] = idx;
  position_[idx] = first_dead;
  std::swap(cell_xs_[at], cell_xs_[first_dead]);
  std::swap(cell_ys_[at], cell_ys_[first_dead]);
  ++live_end_[slot];
  alive_[idx] = 1;
  ++live_;
}

std::size_t RemovalGrid::insert(Point p) {
  const std::size_t idx = points_.size();
  points_.push_back(p);
  alive_.push_back(1);
  slot_.push_back(0);
  position_.push_back(0);
  ++live_;

  const std::size_t slot = [&] {
    if (cells_x_ == 0) {
      return kNoCell;  // built empty without bounds — no cells yet
    }
    const auto [cx, cy] = cell_of(p);
    return cell_slot(cx, cy);
  }();
  if (slot == kNoCell || used_end_[slot] == cell_start_[slot + 1]) {
    rebuild_for(p);
    return idx;
  }

  // Make room at the live/dead boundary: the first dead entry (if any)
  // relocates to the free tail, then the new point takes its place.
  const std::size_t le = live_end_[slot];
  const std::size_t ue = used_end_[slot];
  if (ue > le) {
    const std::size_t dead = cell_items_[le];
    cell_items_[ue] = dead;
    cell_xs_[ue] = cell_xs_[le];
    cell_ys_[ue] = cell_ys_[le];
    position_[dead] = ue;
  }
  cell_items_[le] = idx;
  cell_xs_[le] = p.x;
  cell_ys_[le] = p.y;
  position_[idx] = le;
  slot_[idx] = slot;
  ++live_end_[slot];
  ++used_end_[slot];
  return idx;
}

void RemovalGrid::rebuild_for(Point p) {
  bounds_.lo.x = std::min(bounds_.lo.x, p.x);
  bounds_.lo.y = std::min(bounds_.lo.y, p.y);
  bounds_.hi.x = std::max(bounds_.hi.x, p.x);
  bounds_.hi.y = std::max(bounds_.hi.y, p.y);
  build(/*with_slack=*/true);
}

std::size_t RemovalGrid::nearest(Point center) const {
  if (live_ == 0) {
    return npos;
  }
  // Expanding search: a live point can hide in an unscanned cell only
  // while the scan radius is below its distance, so the best hit is
  // confirmed once it lies within the scanned radius.
  const double reach =
      std::sqrt(std::max({distance_sq(center, bounds_.lo),
                          distance_sq(center, bounds_.hi),
                          distance_sq(center, {bounds_.lo.x, bounds_.hi.y}),
                          distance_sq(center, {bounds_.hi.x, bounds_.lo.y})}));
  double radius = cell_size_;
  for (;;) {
    std::size_t best = npos;
    double best_d2 = std::numeric_limits<double>::infinity();
    const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
    const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
    for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
      for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
        const std::size_t slot = cell_slot(cx, cy);
        if (slot == kNoCell) {
          continue;
        }
        const std::size_t s = cell_start_[slot];
        const std::size_t len = live_end_[slot] - s;
        const MinScan m = min_distance_sq_by_id(
            std::span(cell_xs_).subspan(s, len),
            std::span(cell_ys_).subspan(s, len),
            std::span(cell_items_).subspan(s, len), center);
        if (m.position != MinScan::npos &&
            (m.distance_sq < best_d2 ||
             (m.distance_sq == best_d2 && m.position < best))) {
          best_d2 = m.distance_sq;
          best = m.position;
        }
      }
    }
    if (best != npos && best_d2 <= radius * radius) {
      return best;
    }
    if (radius >= reach) {
      return best;  // the scan covered every indexed point
    }
    radius *= 2.0;
  }
}

void RemovalGrid::collect_within(Point center, double radius,
                                 std::vector<std::size_t>& out) const {
  out.clear();
  if (live_ == 0 || cells_x_ == 0) {
    return;
  }
  const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
  const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
  for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
    for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
      const std::size_t slot = cell_slot(cx, cy);
      if (slot == kNoCell) {
        continue;
      }
      const std::size_t s = cell_start_[slot];
      const std::size_t len = live_end_[slot] - s;
      range_collect(std::span(cell_xs_).subspan(s, len),
                    std::span(cell_ys_).subspan(s, len), center, radius,
                    std::span(cell_items_).subspan(s, len), out);
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace mdg::geom

#include "geom/points_soa.h"

#include <cmath>
#include <limits>

// Restrict-qualified loop pointers let the auto-vectorizer assume the
// output never aliases the coordinate streams.
#if defined(__GNUC__) || defined(__clang__)
#define MDG_RESTRICT __restrict__
#else
#define MDG_RESTRICT
#endif

namespace mdg::geom {

PointsSoA::PointsSoA(std::span<const Point> points) {
  xs_.resize(points.size());
  ys_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    xs_[i] = points[i].x;
    ys_[i] = points[i].y;
  }
}

std::vector<Point> PointsSoA::to_points() const {
  std::vector<Point> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[i] = {xs_[i], ys_[i]};
  }
  return out;
}

void distance_sq_batch(std::span<const double> xs, std::span<const double> ys,
                       Point origin, std::span<double> out) {
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  double* MDG_RESTRICT po = out.data();
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    po[i] = dx * dx + dy * dy;
  }
}

void distance_batch(std::span<const double> xs, std::span<const double> ys,
                    Point origin, std::span<double> out) {
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  double* MDG_RESTRICT po = out.data();
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    po[i] = std::sqrt(dx * dx + dy * dy);
  }
}

std::size_t range_count(std::span<const double> xs, std::span<const double> ys,
                        Point origin, double radius) {
  const double bound = range_bound_sq(radius);
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  const std::size_t n = xs.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    count += static_cast<std::size_t>(dx * dx + dy * dy <= bound);
  }
  return count;
}

void range_collect(std::span<const double> xs, std::span<const double> ys,
                   Point origin, double radius, std::size_t base,
                   std::vector<std::size_t>& out) {
  const double bound = range_bound_sq(radius);
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    if (dx * dx + dy * dy <= bound) {
      out.push_back(base + i);
    }
  }
}

void range_collect(std::span<const double> xs, std::span<const double> ys,
                   Point origin, double radius,
                   std::span<const std::size_t> ids,
                   std::vector<std::size_t>& out) {
  const double bound = range_bound_sq(radius);
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    if (dx * dx + dy * dy <= bound) {
      out.push_back(ids[i]);
    }
  }
}

void range_collect_sq(std::span<const double> xs, std::span<const double> ys,
                      Point origin, double radius,
                      std::span<const std::size_t> ids, std::size_t skip,
                      std::vector<std::pair<double, std::size_t>>& out) {
  const double bound = range_bound_sq(radius);
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    const double d2 = dx * dx + dy * dy;
    if (d2 <= bound && ids[i] != skip) {
      out.emplace_back(d2, ids[i]);
    }
  }
}

MinScan min_distance_sq(std::span<const double> xs, std::span<const double> ys,
                        Point origin) {
  const std::size_t n = xs.size();
  if (n == 0) {
    return {};
  }
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  // Pass 1: a pure min reduction (exact, so vectorization cannot change
  // the value). Pass 2: the lowest position attaining it, recomputed
  // scalar with the identical expression.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    const double d2 = dx * dx + dy * dy;
    best = d2 < best ? d2 : best;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    if (dx * dx + dy * dy == best) {
      return {best, i};
    }
  }
  return {};  // unreachable: some element attains the minimum
}

MinScan min_distance_sq_by_id(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const std::size_t> ids, Point origin) {
  const std::size_t n = xs.size();
  if (n == 0) {
    return {};
  }
  const double ox = origin.x;
  const double oy = origin.y;
  const double* MDG_RESTRICT px = xs.data();
  const double* MDG_RESTRICT py = ys.data();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    const double d2 = dx * dx + dy * dy;
    best = d2 < best ? d2 : best;
  }
  // The ids are in arbitrary order (e.g. swap-with-last removal), so the
  // tie-break scans every attaining entry for the lowest id.
  std::size_t best_id = MinScan::npos;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - ox;
    const double dy = py[i] - oy;
    if (dx * dx + dy * dy == best && ids[i] < best_id) {
      best_id = ids[i];
    }
  }
  return {best, best_id};
}

void distance_sq_batch_reference(std::span<const double> xs,
                                 std::span<const double> ys, Point origin,
                                 std::span<double> out) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = distance_sq({xs[i], ys[i]}, origin);
  }
}

std::size_t range_count_reference(std::span<const double> xs,
                                  std::span<const double> ys, Point origin,
                                  double radius) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (within_range({xs[i], ys[i]}, origin, radius)) {
      ++count;
    }
  }
  return count;
}

MinScan min_distance_sq_reference(std::span<const double> xs,
                                  std::span<const double> ys, Point origin) {
  MinScan best;
  best.distance_sq = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d2 = distance_sq({xs[i], ys[i]}, origin);
    if (d2 < best.distance_sq) {
      best.distance_sq = d2;
      best.position = i;
    }
  }
  if (best.position == MinScan::npos) {
    return {};
  }
  return best;
}

MinScan min_distance_sq_by_id_reference(std::span<const double> xs,
                                        std::span<const double> ys,
                                        std::span<const std::size_t> ids,
                                        Point origin) {
  MinScan best;
  best.distance_sq = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d2 = distance_sq({xs[i], ys[i]}, origin);
    if (d2 < best.distance_sq ||
        (d2 == best.distance_sq && ids[i] < best.position)) {
      best.distance_sq = d2;
      best.position = ids[i];
    }
  }
  if (best.position == MinScan::npos) {
    return {};
  }
  return best;
}

}  // namespace mdg::geom

// Disk (circle) primitives used for coverage reasoning.
//
// A polling point "covers" a sensor when the sensor lies inside the disk
// of radius Rs centred at the point. Candidate-generation uses
// circle-circle intersections (positions that cover two sensors at once)
// and Welzl's smallest-enclosing-circle (the best single position for a
// whole group, the "substitute" step of the spanning-tour planner).
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geom/point.h"

namespace mdg::geom {

struct Circle {
  Point center{};
  double radius = 0.0;

  /// Inclusive containment with the library-wide boundary epsilon.
  [[nodiscard]] bool contains(Point p) const {
    return within_range(center, p, radius);
  }
};

/// Intersection points of two circles. Empty when the circles are
/// disjoint or one contains the other; one point (twice) when tangent.
[[nodiscard]] std::vector<Point> circle_intersections(const Circle& a,
                                                      const Circle& b);

/// Smallest circle enclosing every point (Welzl, expected linear time
/// after an internal deterministic shuffle). Returns radius 0 circle at
/// the single point for size-1 input; nullopt for empty input.
[[nodiscard]] std::optional<Circle> smallest_enclosing_circle(
    std::span<const Point> points);

/// True when one disk of radius `radius` can cover all points, i.e. the
/// smallest enclosing circle has radius <= `radius` (with epsilon).
/// Vacuously true for empty input.
[[nodiscard]] bool one_disk_coverable(std::span<const Point> points,
                                      double radius);

/// Circle through three points; nullopt when (nearly) collinear.
[[nodiscard]] std::optional<Circle> circumcircle(Point a, Point b, Point c);

}  // namespace mdg::geom

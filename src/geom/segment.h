// Segment predicates for obstacle-aware collector routing.
#pragma once

#include "geom/point.h"

namespace mdg::geom {

/// Orientation of the triple (a, b, c): > 0 counter-clockwise, < 0
/// clockwise, 0 collinear (within a relative epsilon).
[[nodiscard]] int orientation(Point a, Point b, Point c);

/// True when q lies on the closed segment pr (assumes collinearity).
[[nodiscard]] bool on_segment(Point p, Point q, Point r);

/// True when closed segments ab and cd share at least one point.
[[nodiscard]] bool segments_intersect(Point a, Point b, Point c, Point d);

/// True when the *open* interior of segment ab crosses the open interior
/// of cd (shared endpoints and touching at endpoints do not count).
/// This is the predicate visibility graphs need: grazing an obstacle
/// corner is allowed, cutting through an edge is not.
[[nodiscard]] bool segments_properly_intersect(Point a, Point b, Point c,
                                               Point d);

}  // namespace mdg::geom

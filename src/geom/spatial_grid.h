// Uniform spatial hash grid for O(1)-expected radius queries.
//
// Unit-disk connectivity, candidate-coverage computation and the
// nearest-polling-point lookups all reduce to "which points lie within r of
// p"; the grid makes those queries linear in the local density instead of
// O(N) per query.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "geom/aabb.h"
#include "geom/point.h"

namespace mdg::geom {

class SpatialGrid {
 public:
  /// Indexes `points` with cells of size `cell_size` (> 0). The point span
  /// is copied; the grid is immutable afterwards. A cell size equal to the
  /// query radius is the classic sweet spot.
  SpatialGrid(std::span<const Point> points, double cell_size);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Indices of all points within `radius` of `center` (inclusive, with
  /// the same boundary epsilon as within_range). Order unspecified.
  [[nodiscard]] std::vector<std::size_t> query(Point center,
                                               double radius) const;

  /// Appends the indices of all points within `radius` of `center` to
  /// `out` — same hits and order as for_each_in_radius, but each cell's
  /// contiguous coordinate run is scanned through the vectorized SoA
  /// range kernel instead of gathering AoS points. The hot path behind
  /// query(); exposed so callers can reuse one output buffer.
  void collect_in_radius(Point center, double radius,
                         std::vector<std::size_t>& out) const;

  /// Appends `(distance_sq, index)` for every point within `radius` of
  /// `center`, skipping index `skip` (pass npos to keep everything).
  /// Feeds the k-nearest-neighbour build without a second distance pass.
  void collect_in_radius_sq(
      Point center, double radius, std::size_t skip,
      std::vector<std::pair<double, std::size_t>>& out) const;

  /// Calls visit(index) for each point within `radius` of `center`;
  /// avoids allocating when the caller only needs to scan.
  template <typename Visitor>
  void for_each_in_radius(Point center, double radius, Visitor&& visit) const {
    const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
    const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
    for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
      for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
        const auto slot = cell_slot(cx, cy);
        if (slot == kNoCell) {
          continue;
        }
        for (std::size_t i = cell_start_[slot]; i < cell_start_[slot + 1];
             ++i) {
          const std::size_t idx = cell_points_[i];
          if (within_range(points_[idx], center, radius)) {
            visit(idx);
          }
        }
      }
    }
  }

  /// Index of the nearest point to `center`, or npos when the grid is
  /// empty. Ties broken by lower index.
  [[nodiscard]] std::size_t nearest(Point center) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

  [[nodiscard]] std::pair<long long, long long> cell_of(Point p) const;
  /// Dense slot of cell (cx, cy), or kNoCell when outside the grid.
  [[nodiscard]] std::size_t cell_slot(long long cx, long long cy) const;

  std::vector<Point> points_;
  double cell_size_;
  Aabb bounds_;
  long long cells_x_ = 0;
  long long cells_y_ = 0;
  // CSR layout: cell_start_[slot]..cell_start_[slot+1] indexes into
  // cell_points_. cell_xs_/cell_ys_ mirror cell_points_ in SoA form so a
  // cell scan reads two contiguous streams (points_soa.h kernels).
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> cell_points_;
  std::vector<double> cell_xs_;
  std::vector<double> cell_ys_;
};

}  // namespace mdg::geom

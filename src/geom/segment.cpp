#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace mdg::geom {

int orientation(Point a, Point b, Point c) {
  const double value = cross(b - a, c - a);
  const double scale =
      std::max({std::abs(b.x - a.x), std::abs(b.y - a.y),
                std::abs(c.x - a.x), std::abs(c.y - a.y), 1.0});
  if (std::abs(value) <= 1e-12 * scale * scale) {
    return 0;
  }
  return value > 0.0 ? 1 : -1;
}

bool on_segment(Point p, Point q, Point r) {
  return q.x <= std::max(p.x, r.x) + 1e-12 &&
         q.x >= std::min(p.x, r.x) - 1e-12 &&
         q.y <= std::max(p.y, r.y) + 1e-12 &&
         q.y >= std::min(p.y, r.y) - 1e-12;
}

bool segments_intersect(Point a, Point b, Point c, Point d) {
  const int o1 = orientation(a, b, c);
  const int o2 = orientation(a, b, d);
  const int o3 = orientation(c, d, a);
  const int o4 = orientation(c, d, b);
  if (o1 != o2 && o3 != o4) {
    return true;
  }
  if (o1 == 0 && on_segment(a, c, b)) return true;
  if (o2 == 0 && on_segment(a, d, b)) return true;
  if (o3 == 0 && on_segment(c, a, d)) return true;
  if (o4 == 0 && on_segment(c, b, d)) return true;
  return false;
}

bool segments_properly_intersect(Point a, Point b, Point c, Point d) {
  const int o1 = orientation(a, b, c);
  const int o2 = orientation(a, b, d);
  const int o3 = orientation(c, d, a);
  const int o4 = orientation(c, d, b);
  // Strict straddling on both segments: interiors cross.
  return o1 * o2 < 0 && o3 * o4 < 0;
}

}  // namespace mdg::geom

#include "geom/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace mdg::geom {

SpatialGrid::SpatialGrid(std::span<const Point> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
  MDG_REQUIRE(cell_size > 0.0, "cell size must be positive");
  bounds_ = Aabb::bounding(points_);
  if (points_.empty()) {
    cell_start_.assign(1, 0);
    return;
  }
  cells_x_ =
      static_cast<long long>(std::floor(bounds_.width() / cell_size_)) + 1;
  cells_y_ =
      static_cast<long long>(std::floor(bounds_.height() / cell_size_)) + 1;

  const std::size_t total =
      static_cast<std::size_t>(cells_x_) * static_cast<std::size_t>(cells_y_);
  // Counting sort of points into cells (CSR layout).
  std::vector<std::size_t> counts(total, 0);
  std::vector<std::size_t> slots(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto [cx, cy] = cell_of(points_[i]);
    const std::size_t slot = cell_slot(cx, cy);
    MDG_ASSERT(slot != kNoCell, "point outside its own bounding box");
    slots[i] = slot;
    ++counts[slot];
  }
  cell_start_.assign(total + 1, 0);
  for (std::size_t s = 0; s < total; ++s) {
    cell_start_[s + 1] = cell_start_[s] + counts[s];
  }
  cell_points_.resize(points_.size());
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_points_[cursor[slots[i]]++] = i;
  }
}

std::pair<long long, long long> SpatialGrid::cell_of(Point p) const {
  return {static_cast<long long>(std::floor((p.x - bounds_.lo.x) / cell_size_)),
          static_cast<long long>(
              std::floor((p.y - bounds_.lo.y) / cell_size_))};
}

std::size_t SpatialGrid::cell_slot(long long cx, long long cy) const {
  if (cx < 0 || cy < 0 || cx >= cells_x_ || cy >= cells_y_) {
    return kNoCell;
  }
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_x_) +
         static_cast<std::size_t>(cx);
}

std::vector<std::size_t> SpatialGrid::query(Point center, double radius) const {
  std::vector<std::size_t> hits;
  for_each_in_radius(center, radius,
                     [&hits](std::size_t idx) { hits.push_back(idx); });
  return hits;
}

std::size_t SpatialGrid::nearest(Point center) const {
  if (points_.empty()) {
    return npos;
  }
  // Expanding search: grow the radius until a hit is confirmed nearest
  // (a closer point can hide in an unscanned cell only while the scan
  // radius is below its distance) or the scan provably covered every
  // indexed point.
  const double reach =
      std::sqrt(std::max({distance_sq(center, bounds_.lo),
                          distance_sq(center, bounds_.hi),
                          distance_sq(center, {bounds_.lo.x, bounds_.hi.y}),
                          distance_sq(center, {bounds_.hi.x, bounds_.lo.y})}));
  double radius = cell_size_;
  for (;;) {
    std::size_t best = npos;
    double best_d2 = std::numeric_limits<double>::infinity();
    for_each_in_radius(center, radius, [&](std::size_t idx) {
      const double d2 = distance_sq(points_[idx], center);
      if (d2 < best_d2 || (d2 == best_d2 && idx < best)) {
        best_d2 = d2;
        best = idx;
      }
    });
    if (best != npos && std::sqrt(best_d2) <= radius) {
      return best;
    }
    if (radius >= reach) {
      return best;  // the scan covered the whole indexed set
    }
    radius *= 2.0;
  }
}

}  // namespace mdg::geom

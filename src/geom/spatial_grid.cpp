#include "geom/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/points_soa.h"
#include "util/assert.h"

namespace mdg::geom {

SpatialGrid::SpatialGrid(std::span<const Point> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
  MDG_REQUIRE(cell_size > 0.0, "cell size must be positive");
  bounds_ = Aabb::bounding(points_);
  if (points_.empty()) {
    cell_start_.assign(1, 0);
    return;
  }
  cells_x_ =
      static_cast<long long>(std::floor(bounds_.width() / cell_size_)) + 1;
  cells_y_ =
      static_cast<long long>(std::floor(bounds_.height() / cell_size_)) + 1;

  const std::size_t total =
      static_cast<std::size_t>(cells_x_) * static_cast<std::size_t>(cells_y_);
  // Counting sort of points into cells (CSR layout).
  std::vector<std::size_t> counts(total, 0);
  std::vector<std::size_t> slots(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto [cx, cy] = cell_of(points_[i]);
    const std::size_t slot = cell_slot(cx, cy);
    MDG_ASSERT(slot != kNoCell, "point outside its own bounding box");
    slots[i] = slot;
    ++counts[slot];
  }
  cell_start_.assign(total + 1, 0);
  for (std::size_t s = 0; s < total; ++s) {
    cell_start_[s + 1] = cell_start_[s] + counts[s];
  }
  cell_points_.resize(points_.size());
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_points_[cursor[slots[i]]++] = i;
  }
  // SoA mirror of cell_points_: each cell's coordinates as contiguous
  // runs, so radius scans stream instead of gathering through points_.
  cell_xs_.resize(points_.size());
  cell_ys_.resize(points_.size());
  for (std::size_t i = 0; i < cell_points_.size(); ++i) {
    cell_xs_[i] = points_[cell_points_[i]].x;
    cell_ys_[i] = points_[cell_points_[i]].y;
  }
}

std::pair<long long, long long> SpatialGrid::cell_of(Point p) const {
  return {static_cast<long long>(std::floor((p.x - bounds_.lo.x) / cell_size_)),
          static_cast<long long>(
              std::floor((p.y - bounds_.lo.y) / cell_size_))};
}

std::size_t SpatialGrid::cell_slot(long long cx, long long cy) const {
  if (cx < 0 || cy < 0 || cx >= cells_x_ || cy >= cells_y_) {
    return kNoCell;
  }
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cells_x_) +
         static_cast<std::size_t>(cx);
}

std::vector<std::size_t> SpatialGrid::query(Point center, double radius) const {
  std::vector<std::size_t> hits;
  collect_in_radius(center, radius, hits);
  return hits;
}

void SpatialGrid::collect_in_radius(Point center, double radius,
                                    std::vector<std::size_t>& out) const {
  const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
  const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
  for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
    for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
      const auto slot = cell_slot(cx, cy);
      if (slot == kNoCell) {
        continue;
      }
      const std::size_t s = cell_start_[slot];
      const std::size_t len = cell_start_[slot + 1] - s;
      range_collect(std::span(cell_xs_).subspan(s, len),
                    std::span(cell_ys_).subspan(s, len), center, radius,
                    std::span(cell_points_).subspan(s, len), out);
    }
  }
}

void SpatialGrid::collect_in_radius_sq(
    Point center, double radius, std::size_t skip,
    std::vector<std::pair<double, std::size_t>>& out) const {
  const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
  const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
  for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
    for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
      const auto slot = cell_slot(cx, cy);
      if (slot == kNoCell) {
        continue;
      }
      const std::size_t s = cell_start_[slot];
      const std::size_t len = cell_start_[slot + 1] - s;
      range_collect_sq(std::span(cell_xs_).subspan(s, len),
                       std::span(cell_ys_).subspan(s, len), center, radius,
                       std::span(cell_points_).subspan(s, len), skip, out);
    }
  }
}

std::size_t SpatialGrid::nearest(Point center) const {
  if (points_.empty()) {
    return npos;
  }
  // Expanding search: grow the radius until a hit is confirmed nearest
  // (a closer point can hide in an unscanned cell only while the scan
  // radius is below its distance) or the scan provably covered every
  // indexed point.
  const double reach =
      std::sqrt(std::max({distance_sq(center, bounds_.lo),
                          distance_sq(center, bounds_.hi),
                          distance_sq(center, {bounds_.lo.x, bounds_.hi.y}),
                          distance_sq(center, {bounds_.hi.x, bounds_.lo.y})}));
  double radius = cell_size_;
  for (;;) {
    // Min over every point in the scanned cells (a superset of the
    // radius ball, so the confirmed-nearest logic below is unchanged);
    // each cell run is one vectorized min scan, ties to lowest index.
    std::size_t best = npos;
    double best_d2 = std::numeric_limits<double>::infinity();
    const auto [cx_lo, cy_lo] = cell_of({center.x - radius, center.y - radius});
    const auto [cx_hi, cy_hi] = cell_of({center.x + radius, center.y + radius});
    for (long long cy = cy_lo; cy <= cy_hi; ++cy) {
      for (long long cx = cx_lo; cx <= cx_hi; ++cx) {
        const auto slot = cell_slot(cx, cy);
        if (slot == kNoCell) {
          continue;
        }
        const std::size_t s = cell_start_[slot];
        const std::size_t len = cell_start_[slot + 1] - s;
        const MinScan m = min_distance_sq(std::span(cell_xs_).subspan(s, len),
                                          std::span(cell_ys_).subspan(s, len),
                                          center);
        if (m.position == MinScan::npos) {
          continue;
        }
        // Within a run, cell_points_ ascends (the counting sort is
        // stable), so the lowest position is also the lowest index.
        const std::size_t idx = cell_points_[s + m.position];
        if (m.distance_sq < best_d2 ||
            (m.distance_sq == best_d2 && idx < best)) {
          best_d2 = m.distance_sq;
          best = idx;
        }
      }
    }
    if (best != npos && std::sqrt(best_d2) <= radius) {
      return best;
    }
    if (radius >= reach) {
      return best;  // the scan covered the whole indexed set
    }
    radius *= 2.0;
  }
}

}  // namespace mdg::geom

// Structure-of-arrays point storage and the batch distance kernels the
// million-node hot paths run on.
//
// The AoS geom::Point API stays the interchange format; PointsSoA is the
// compute layout. Splitting x[] and y[] turns every one-against-many
// distance evaluation into two contiguous streams the compiler
// auto-vectorizes (SSE2 by default, AVX2/AVX-512 under -DMDG_NATIVE=ON),
// and every kernel below is written so the vectorized and scalar
// executions are bit-identical: each element's result is computed with
// the same operand order as the scalar geom::distance_sq, reductions
// only use exact operations (min of doubles), and tie-breaks re-scan
// scalar — so plans are byte-identical across ISAs and configurations
// (the CI native-parity job enforces this; see DESIGN.md
// §determinism-under-parallelism).
//
// Every kernel has a *_reference twin — the naive scalar loop — kept as
// the parity oracle for tests/geom/points_soa_test.cpp.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geom/point.h"

namespace mdg::geom {

/// Separate x/y coordinate arrays over a fixed point set.
class PointsSoA {
 public:
  PointsSoA() = default;
  explicit PointsSoA(std::span<const Point> points);

  [[nodiscard]] std::size_t size() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] std::span<const double> xs() const { return xs_; }
  [[nodiscard]] std::span<const double> ys() const { return ys_; }
  [[nodiscard]] double x(std::size_t i) const { return xs_[i]; }
  [[nodiscard]] double y(std::size_t i) const { return ys_[i]; }

  /// Adapter back to the AoS API.
  [[nodiscard]] Point point(std::size_t i) const { return {xs_[i], ys_[i]}; }
  [[nodiscard]] std::vector<Point> to_points() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// out[i] = squared distance from (xs[i], ys[i]) to `origin`; identical
/// to distance_sq({xs[i], ys[i]}, origin) element for element.
void distance_sq_batch(std::span<const double> xs, std::span<const double> ys,
                       Point origin, std::span<double> out);

/// out[i] = Euclidean distance from (xs[i], ys[i]) to `origin`.
void distance_batch(std::span<const double> xs, std::span<const double> ys,
                    Point origin, std::span<double> out);

/// Number of points within `radius` of `origin` (within_range semantics:
/// inclusive with the boundary epsilon).
[[nodiscard]] std::size_t range_count(std::span<const double> xs,
                                      std::span<const double> ys, Point origin,
                                      double radius);

/// Appends `base + i` (ascending i) for every point within `radius` of
/// `origin`. The compacted-index form grid structures use on a
/// contiguous cell run.
void range_collect(std::span<const double> xs, std::span<const double> ys,
                   Point origin, double radius, std::size_t base,
                   std::vector<std::size_t>& out);

/// As above but appends `ids[i]` — for cell runs whose points carry
/// non-contiguous external indices.
void range_collect(std::span<const double> xs, std::span<const double> ys,
                   Point origin, double radius,
                   std::span<const std::size_t> ids,
                   std::vector<std::size_t>& out);

/// Appends `(distance_sq, ids[i])` (ascending i) for every point within
/// `radius` of `origin`, skipping the entry whose id equals `skip`.
void range_collect_sq(std::span<const double> xs, std::span<const double> ys,
                      Point origin, double radius,
                      std::span<const std::size_t> ids, std::size_t skip,
                      std::vector<std::pair<double, std::size_t>>& out);

/// Minimum squared distance over the span and the lowest position
/// attaining it (exact ties toward the lower position). npos when empty.
struct MinScan {
  double distance_sq = 0.0;
  std::size_t position = static_cast<std::size_t>(-1);
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};
[[nodiscard]] MinScan min_distance_sq(std::span<const double> xs,
                                      std::span<const double> ys,
                                      Point origin);

/// As min_distance_sq, but over entries carrying external ids in
/// arbitrary order: the returned `position` holds the LOWEST id whose
/// entry attains the minimum (not the span position). npos when empty.
[[nodiscard]] MinScan min_distance_sq_by_id(std::span<const double> xs,
                                            std::span<const double> ys,
                                            std::span<const std::size_t> ids,
                                            Point origin);

// --- scalar parity oracles (tests only; never the hot path) -------------
void distance_sq_batch_reference(std::span<const double> xs,
                                 std::span<const double> ys, Point origin,
                                 std::span<double> out);
[[nodiscard]] std::size_t range_count_reference(std::span<const double> xs,
                                                std::span<const double> ys,
                                                Point origin, double radius);
[[nodiscard]] MinScan min_distance_sq_reference(std::span<const double> xs,
                                                std::span<const double> ys,
                                                Point origin);
[[nodiscard]] MinScan min_distance_sq_by_id_reference(
    std::span<const double> xs, std::span<const double> ys,
    std::span<const std::size_t> ids, Point origin);

}  // namespace mdg::geom

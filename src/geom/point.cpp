#include "geom/point.h"

namespace mdg::geom {

Point centroid(std::span<const Point> points) {
  if (points.empty()) {
    return {};
  }
  Point sum{};
  for (Point p : points) {
    sum = sum + p;
  }
  return sum / static_cast<double>(points.size());
}

double polyline_length(std::span<const Point> points) {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += distance(points[i - 1], points[i]);
  }
  return total;
}

double closed_tour_length(std::span<const Point> points) {
  if (points.size() < 2) {
    return 0.0;
  }
  return polyline_length(points) + distance(points.back(), points.front());
}

bool within_range(Point a, Point b, double range) {
  return distance_sq(a, b) <= range_bound_sq(range);
}

}  // namespace mdg::geom

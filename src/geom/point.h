// 2-D point/vector primitives for the planar deployment field.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace mdg::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point a, double s) {
    return {a.x * s, a.y * s};
  }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr Point operator/(Point a, double s) {
    return {a.x / s, a.y / s};
  }
  friend constexpr bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance (cheap; use for comparisons).
[[nodiscard]] constexpr double distance_sq(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
[[nodiscard]] inline double distance(Point a, Point b) {
  return std::sqrt(distance_sq(a, b));
}

/// Euclidean norm of the vector.
[[nodiscard]] inline double norm(Point p) {
  return std::sqrt(p.x * p.x + p.y * p.y);
}

/// Dot product.
[[nodiscard]] constexpr double dot(Point a, Point b) {
  return a.x * b.x + a.y * b.y;
}

/// z-component of the 2-D cross product (signed parallelogram area).
[[nodiscard]] constexpr double cross(Point a, Point b) {
  return a.x * b.y - a.y * b.x;
}

/// Linear interpolation: a at t=0, b at t=1.
[[nodiscard]] constexpr Point lerp(Point a, Point b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Midpoint of the segment ab.
[[nodiscard]] constexpr Point midpoint(Point a, Point b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Centroid of a non-empty point set; {0,0} if empty.
[[nodiscard]] Point centroid(std::span<const Point> points);

/// Total length of the open polyline p0→p1→…→pk.
[[nodiscard]] double polyline_length(std::span<const Point> points);

/// Total length of the closed polygonal tour p0→p1→…→pk→p0.
[[nodiscard]] double closed_tour_length(std::span<const Point> points);

/// The inclusive squared bound within_range tests against: a relative
/// epsilon keeps sensors exactly at the range boundary connected despite
/// rounding in coordinate generation. Single source of truth — the SoA
/// batch kernels (points_soa.h) must agree with within_range bit for bit.
[[nodiscard]] constexpr double range_bound_sq(double range) {
  const double r = range * (1.0 + 1e-12);
  return r * r;
}

/// True when the two points are within `range` of each other (inclusive,
/// with a tiny epsilon so sensors exactly at the range boundary count as
/// connected, matching unit-disk-graph conventions).
[[nodiscard]] bool within_range(Point a, Point b, double range);

}  // namespace mdg::geom

#include "geom/aabb.h"

#include <algorithm>

namespace mdg::geom {

Point Aabb::clamp(Point p) const {
  return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
}

Aabb Aabb::bounding(std::span<const Point> points) {
  if (points.empty()) {
    return {};
  }
  Aabb box{points[0], points[0]};
  for (Point p : points.subspan(1)) {
    box.lo.x = std::min(box.lo.x, p.x);
    box.lo.y = std::min(box.lo.y, p.y);
    box.hi.x = std::max(box.hi.x, p.x);
    box.hi.y = std::max(box.hi.y, p.y);
  }
  return box;
}

}  // namespace mdg::geom

#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>

#include "graph/bfs.h"
#include "util/assert.h"

namespace mdg::graph {

DijkstraResult dijkstra_multi(const Graph& g,
                              std::span<const std::size_t> sources) {
  MDG_REQUIRE(!sources.empty(), "Dijkstra needs at least one source");
  DijkstraResult result;
  result.dist.assign(g.vertex_count(),
                     std::numeric_limits<double>::infinity());
  result.parent.assign(g.vertex_count(), kUnreachable);

  using Entry = std::pair<double, std::size_t>;  // (dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t s : sources) {
    MDG_REQUIRE(s < g.vertex_count(), "Dijkstra source out of range");
    if (result.dist[s] != 0.0) {
      result.dist[s] = 0.0;
      heap.emplace(0.0, s);
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > result.dist[v]) {
      continue;  // stale entry
    }
    for (const Arc& arc : g.neighbors(v)) {
      const double nd = d + arc.weight;
      if (nd < result.dist[arc.to]) {
        result.dist[arc.to] = nd;
        result.parent[arc.to] = v;
        heap.emplace(nd, arc.to);
      }
    }
  }
  return result;
}

DijkstraResult dijkstra(const Graph& g, std::size_t source) {
  const std::size_t sources[] = {source};
  return dijkstra_multi(g, sources);
}

std::vector<std::size_t> extract_path(const DijkstraResult& result,
                                      std::size_t target) {
  MDG_REQUIRE(target < result.dist.size(), "target out of range");
  if (!result.reachable(target)) {
    return {};
  }
  std::vector<std::size_t> path{target};
  while (result.parent[path.back()] != kUnreachable) {
    path.push_back(result.parent[path.back()]);
    MDG_ASSERT(path.size() <= result.dist.size(), "parent cycle detected");
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace mdg::graph

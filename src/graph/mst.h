// Minimum spanning trees.
//
// Two variants are needed: sparse Prim over a connectivity Graph (TSP
// 2-approximation inside the tour library works on the complete geometric
// graph, so a dense O(n^2) Prim over points is provided too — it beats a
// heap-based Prim on complete graphs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"

namespace mdg::graph {

struct MstResult {
  std::vector<Edge> edges;  ///< n-1 edges per connected component tree
  double total_weight = 0.0;
};

/// Prim over a sparse graph; spans every component (a spanning forest
/// when disconnected).
[[nodiscard]] MstResult minimum_spanning_forest(const Graph& g);

/// Dense Prim over the complete Euclidean graph of `points` (O(n^2) time,
/// O(n) memory). Returns n-1 edges for n >= 1 points.
[[nodiscard]] MstResult euclidean_mst(std::span<const geom::Point> points);

/// Adjacency lists of a tree/forest given by `edges` over n vertices.
[[nodiscard]] std::vector<std::vector<std::size_t>> tree_adjacency(
    std::size_t vertex_count, std::span<const Edge> edges);

}  // namespace mdg::graph

#include "graph/khop.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/assert.h"
#include "util/thread_pool.h"

namespace mdg::graph {
namespace {

/// Below this many vertices the per-chunk dispatch overhead of the
/// parallel build exceeds the BFS work itself.
constexpr std::size_t kParallelBuildBelow = 512;

}  // namespace

KHopClosure::KHopClosure(const Graph& g, std::size_t max_hops)
    : max_hops_(max_hops) {
  const std::size_t n = g.vertex_count();

  // Stage 1 (parallel): each vertex's bounded neighbourhood into its own
  // slot. Writes are slot-exclusive, so the rows are independent of how
  // the loop is split across threads.
  std::vector<std::vector<std::size_t>> rows(n);
  const auto compute = [&](std::size_t v) {
    rows[v] = k_hop_neighborhood(g, v, max_hops_);
    std::sort(rows[v].begin(), rows[v].end());
  };
  if (n < kParallelBuildBelow) {
    for (std::size_t v = 0; v < n; ++v) {
      compute(v);
    }
  } else {
    parallel_for(n, compute);
  }

  // Stage 2 (serial ordered flatten): CSR rows in vertex order.
  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + rows[v].size();
  }
  targets_.reserve(offsets_[n]);
  for (std::size_t v = 0; v < n; ++v) {
    targets_.insert(targets_.end(), rows[v].begin(), rows[v].end());
  }
}

std::span<const std::size_t> KHopClosure::reach(std::size_t v) const {
  MDG_REQUIRE(v + 1 < offsets_.size(), "vertex index out of range");
  return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

}  // namespace mdg::graph

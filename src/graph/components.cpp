#include "graph/components.h"

#include <algorithm>
#include <deque>

#include "util/assert.h"

namespace mdg::graph {

Components connected_components(const Graph& g) {
  constexpr std::size_t kUnlabeled = static_cast<std::size_t>(-1);
  Components result;
  result.label.assign(g.vertex_count(), kUnlabeled);
  for (std::size_t start = 0; start < g.vertex_count(); ++start) {
    if (result.label[start] != kUnlabeled) {
      continue;
    }
    const std::size_t label = result.count++;
    std::deque<std::size_t> frontier{start};
    result.label[start] = label;
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop_front();
      for (const Arc& arc : g.neighbors(v)) {
        if (result.label[arc.to] == kUnlabeled) {
          result.label[arc.to] = label;
          frontier.push_back(arc.to);
        }
      }
    }
  }
  return result;
}

std::vector<std::size_t> Components::members(std::size_t c) const {
  MDG_REQUIRE(c < count, "component index out of range");
  std::vector<std::size_t> verts;
  for (std::size_t v = 0; v < label.size(); ++v) {
    if (label[v] == c) {
      verts.push_back(v);
    }
  }
  return verts;
}

std::size_t Components::largest_size() const {
  std::vector<std::size_t> sizes(count, 0);
  for (std::size_t l : label) {
    ++sizes[l];
  }
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

}  // namespace mdg::graph

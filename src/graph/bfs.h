// Breadth-first search utilities: hop distances and parents.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mdg::graph {

/// Marker for vertices unreachable from the BFS source(s).
inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

struct BfsResult {
  /// hops[v] = minimum hop count from the nearest source; kUnreachable if
  /// disconnected from all sources.
  std::vector<std::size_t> hops;
  /// parent[v] = predecessor on one shortest hop path; kUnreachable for
  /// sources and unreachable vertices.
  std::vector<std::size_t> parent;

  [[nodiscard]] bool reachable(std::size_t v) const {
    return hops[v] != kUnreachable;
  }
};

/// Single-source BFS.
[[nodiscard]] BfsResult bfs(const Graph& g, std::size_t source);

/// Multi-source BFS: hop distance to the nearest source. Sources must be
/// non-empty and in range.
[[nodiscard]] BfsResult bfs_multi(const Graph& g,
                                  std::span<const std::size_t> sources);

/// All vertices within `max_hops` of `source` (including the source, hop
/// 0), in ascending hop order.
[[nodiscard]] std::vector<std::size_t> k_hop_neighborhood(const Graph& g,
                                                          std::size_t source,
                                                          std::size_t max_hops);

}  // namespace mdg::graph

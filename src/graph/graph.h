// Immutable undirected graph in CSR (compressed sparse row) form.
//
// The WSN connectivity graph is built once per topology and then queried
// heavily (BFS layers, shortest-path trees, component checks), so a
// cache-friendly CSR layout beats adjacency lists of vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mdg::graph {

/// One endpoint record: neighbour id plus edge weight (Euclidean length
/// for WSN graphs).
struct Arc {
  std::size_t to = 0;
  double weight = 0.0;
};

struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  double weight = 0.0;
};

class Graph {
 public:
  /// Builds from an undirected edge list over vertices [0, n). Self-loops
  /// and negative weights are rejected; parallel edges are allowed but
  /// the WSN builders never produce them.
  Graph(std::size_t vertex_count, std::span<const Edge> edges);

  [[nodiscard]] std::size_t vertex_count() const { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const { return arcs_.size() / 2; }

  /// Neighbours of v with weights, as a contiguous span.
  [[nodiscard]] std::span<const Arc> neighbors(std::size_t v) const;

  [[nodiscard]] std::size_t degree(std::size_t v) const {
    return neighbors(v).size();
  }

  /// Mean vertex degree; 0 for the empty graph.
  [[nodiscard]] double average_degree() const;

  /// The original edge list (u < v normalized).
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;             // both directions
  std::vector<Edge> edges_;           // normalized originals
};

}  // namespace mdg::graph

#include "graph/graph.h"

#include <algorithm>

#include "util/assert.h"

namespace mdg::graph {

Graph::Graph(std::size_t vertex_count, std::span<const Edge> edges) {
  edges_.reserve(edges.size());
  for (const Edge& e : edges) {
    MDG_REQUIRE(e.u < vertex_count && e.v < vertex_count,
                "edge endpoint out of range");
    MDG_REQUIRE(e.u != e.v, "self-loops are not allowed");
    MDG_REQUIRE(e.weight >= 0.0, "edge weights must be non-negative");
    edges_.push_back(
        e.u < e.v ? e : Edge{e.v, e.u, e.weight});
  }

  std::vector<std::size_t> degree(vertex_count, 0);
  for (const Edge& e : edges_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  offsets_.assign(vertex_count + 1, 0);
  for (std::size_t v = 0; v < vertex_count; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
  }
  arcs_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    arcs_[cursor[e.u]++] = {e.v, e.weight};
    arcs_[cursor[e.v]++] = {e.u, e.weight};
  }
}

std::span<const Arc> Graph::neighbors(std::size_t v) const {
  MDG_REQUIRE(v < vertex_count(), "vertex out of range");
  return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

double Graph::average_degree() const {
  if (vertex_count() == 0) {
    return 0.0;
  }
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(vertex_count());
}

}  // namespace mdg::graph

#include "graph/mst.h"

#include <limits>
#include <queue>

#include "util/assert.h"

namespace mdg::graph {

MstResult minimum_spanning_forest(const Graph& g) {
  MstResult result;
  const std::size_t n = g.vertex_count();
  std::vector<bool> in_tree(n, false);
  using Entry = std::pair<double, std::pair<std::size_t, std::size_t>>;
  for (std::size_t root = 0; root < n; ++root) {
    if (in_tree[root]) {
      continue;
    }
    // Prim from this component's root.
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    in_tree[root] = true;
    for (const Arc& arc : g.neighbors(root)) {
      heap.push({arc.weight, {root, arc.to}});
    }
    while (!heap.empty()) {
      const auto [w, uv] = heap.top();
      heap.pop();
      const auto [u, v] = uv;
      if (in_tree[v]) {
        continue;
      }
      in_tree[v] = true;
      result.edges.push_back({u, v, w});
      result.total_weight += w;
      for (const Arc& arc : g.neighbors(v)) {
        if (!in_tree[arc.to]) {
          heap.push({arc.weight, {v, arc.to}});
        }
      }
    }
  }
  return result;
}

MstResult euclidean_mst(std::span<const geom::Point> points) {
  MstResult result;
  const std::size_t n = points.size();
  if (n <= 1) {
    return result;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);   // squared distance to the tree
  std::vector<std::size_t> link(n, 0);  // closest tree vertex
  std::vector<bool> in_tree(n, false);

  std::size_t current = 0;
  in_tree[0] = true;
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t next = static_cast<std::size_t>(-1);
    double next_d = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) {
        continue;
      }
      const double d = geom::distance_sq(points[current], points[v]);
      if (d < best[v]) {
        best[v] = d;
        link[v] = current;
      }
      if (best[v] < next_d) {
        next_d = best[v];
        next = v;
      }
    }
    MDG_ASSERT(next != static_cast<std::size_t>(-1), "dense Prim stalled");
    in_tree[next] = true;
    const double w = std::sqrt(next_d);
    result.edges.push_back({link[next], next, w});
    result.total_weight += w;
    current = next;
  }
  return result;
}

std::vector<std::vector<std::size_t>> tree_adjacency(
    std::size_t vertex_count, std::span<const Edge> edges) {
  std::vector<std::vector<std::size_t>> adj(vertex_count);
  for (const Edge& e : edges) {
    MDG_REQUIRE(e.u < vertex_count && e.v < vertex_count,
                "tree edge endpoint out of range");
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  return adj;
}

}  // namespace mdg::graph

// Connected-component labelling.
//
// Mobile collection works on disconnected deployments (the collector just
// drives between islands); the multihop baseline does not. Component
// labels let the harness report both fairly.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace mdg::graph {

struct Components {
  /// label[v] in [0, count), assigned in discovery order from vertex 0.
  std::vector<std::size_t> label;
  std::size_t count = 0;

  /// Vertices of component c.
  [[nodiscard]] std::vector<std::size_t> members(std::size_t c) const;
  /// Size of the largest component (0 for the empty graph).
  [[nodiscard]] std::size_t largest_size() const;
};

[[nodiscard]] Components connected_components(const Graph& g);

/// True when the graph has one component containing every vertex (the
/// empty graph counts as connected).
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace mdg::graph

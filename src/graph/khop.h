// Bounded-hop reachability closure over a CSR graph.
//
// KHopClosure materializes, for every vertex v, the sorted set of
// vertices within <= max_hops of v (hop 0 is v itself) — the d-hop
// neighbourhood relation bounded-relay planning is built on. The
// closure is itself stored in CSR form (one offsets array, one flat
// targets array), so a planner can stream reach(v) spans with no
// per-query allocation.
//
// The build parallelizes over source vertices with util::parallel_for;
// every vertex's row is computed independently into its own slot and
// the rows are flattened in vertex order afterwards, so the result is
// byte-identical at any MDG_THREADS setting (the determinism contract
// of DESIGN.md; the TSan CI job runs this build at MDG_THREADS=4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mdg::graph {

class KHopClosure {
 public:
  /// Builds the <= max_hops reachability sets of every vertex of `g`.
  /// max_hops = 0 degenerates to reach(v) = {v}.
  KHopClosure(const Graph& g, std::size_t max_hops);

  [[nodiscard]] std::size_t vertex_count() const {
    return offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t max_hops() const { return max_hops_; }

  /// Vertices within <= max_hops of v (always includes v), sorted
  /// ascending by vertex id.
  [[nodiscard]] std::span<const std::size_t> reach(std::size_t v) const;

  /// Total closure size (sum of all reach-set sizes).
  [[nodiscard]] std::size_t total_reach() const { return targets_.size(); }

 private:
  std::size_t max_hops_;
  std::vector<std::size_t> offsets_;  ///< CSR row starts, length n + 1
  std::vector<std::size_t> targets_;  ///< concatenated sorted reach sets
};

}  // namespace mdg::graph

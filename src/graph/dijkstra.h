// Dijkstra shortest paths over weighted connectivity graphs.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mdg::graph {

struct DijkstraResult {
  /// dist[v] = weighted distance from the nearest source; +inf when
  /// unreachable.
  std::vector<double> dist;
  /// parent[v] on one shortest path; kUnreachable (see bfs.h) for sources
  /// and unreachable vertices.
  std::vector<std::size_t> parent;

  [[nodiscard]] bool reachable(std::size_t v) const {
    return dist[v] != std::numeric_limits<double>::infinity();
  }
};

/// Single-source Dijkstra.
[[nodiscard]] DijkstraResult dijkstra(const Graph& g, std::size_t source);

/// Multi-source Dijkstra (distance to the nearest source).
[[nodiscard]] DijkstraResult dijkstra_multi(
    const Graph& g, std::span<const std::size_t> sources);

/// Reconstructs the path source→…→target from a result; empty when
/// unreachable.
[[nodiscard]] std::vector<std::size_t> extract_path(
    const DijkstraResult& result, std::size_t target);

}  // namespace mdg::graph

// Shortest-path tree toward the static data sink — the substrate of the
// multihop relay-routing baseline the paper motivates against.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"

namespace mdg::graph {

/// Minimum-hop shortest-path tree rooted at `sink` over graph g.
class ShortestPathTree {
 public:
  ShortestPathTree(const Graph& g, std::size_t sink);

  [[nodiscard]] std::size_t sink() const { return sink_; }

  /// Hop count of v to the sink; kUnreachable when disconnected.
  [[nodiscard]] std::size_t hops(std::size_t v) const { return bfs_.hops[v]; }

  /// Next hop of v toward the sink; kUnreachable for the sink itself and
  /// for disconnected vertices.
  [[nodiscard]] std::size_t next_hop(std::size_t v) const {
    return bfs_.parent[v];
  }

  [[nodiscard]] bool reachable(std::size_t v) const {
    return bfs_.reachable(v);
  }

  /// Vertices that cannot reach the sink.
  [[nodiscard]] std::vector<std::size_t> disconnected() const;

  /// Mean hop count over all *reachable* vertices excluding the sink
  /// (the paper's "5.3 hops on average" style metric). 0 when none.
  [[nodiscard]] double average_hops() const;

  /// Maximum hop count among reachable vertices (the tree depth).
  [[nodiscard]] std::size_t depth() const;

  /// descendants[v] = number of tree vertices whose sink path passes
  /// through v, v included. The sink's count equals the number of
  /// reachable vertices. Relay load is proportional to this.
  [[nodiscard]] std::vector<std::size_t> subtree_sizes() const;

 private:
  std::size_t sink_;
  BfsResult bfs_;
};

}  // namespace mdg::graph

#include "graph/bfs.h"

#include <deque>

#include "util/assert.h"

namespace mdg::graph {

BfsResult bfs_multi(const Graph& g, std::span<const std::size_t> sources) {
  MDG_REQUIRE(!sources.empty(), "BFS needs at least one source");
  BfsResult result;
  result.hops.assign(g.vertex_count(), kUnreachable);
  result.parent.assign(g.vertex_count(), kUnreachable);

  std::deque<std::size_t> frontier;
  for (std::size_t s : sources) {
    MDG_REQUIRE(s < g.vertex_count(), "BFS source out of range");
    if (result.hops[s] == kUnreachable) {
      result.hops[s] = 0;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop_front();
    for (const Arc& arc : g.neighbors(v)) {
      if (result.hops[arc.to] == kUnreachable) {
        result.hops[arc.to] = result.hops[v] + 1;
        result.parent[arc.to] = v;
        frontier.push_back(arc.to);
      }
    }
  }
  return result;
}

BfsResult bfs(const Graph& g, std::size_t source) {
  const std::size_t sources[] = {source};
  return bfs_multi(g, sources);
}

std::vector<std::size_t> k_hop_neighborhood(const Graph& g, std::size_t source,
                                            std::size_t max_hops) {
  MDG_REQUIRE(source < g.vertex_count(), "source out of range");
  std::vector<std::size_t> hops(g.vertex_count(), kUnreachable);
  std::vector<std::size_t> order;
  std::deque<std::size_t> frontier;
  hops[source] = 0;
  frontier.push_back(source);
  order.push_back(source);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop_front();
    if (hops[v] == max_hops) {
      continue;
    }
    for (const Arc& arc : g.neighbors(v)) {
      if (hops[arc.to] == kUnreachable) {
        hops[arc.to] = hops[v] + 1;
        frontier.push_back(arc.to);
        order.push_back(arc.to);
      }
    }
  }
  return order;
}

}  // namespace mdg::graph

#include "graph/spt.h"

#include <algorithm>

#include "util/assert.h"

namespace mdg::graph {

ShortestPathTree::ShortestPathTree(const Graph& g, std::size_t sink)
    : sink_(sink), bfs_(bfs(g, sink)) {}

std::vector<std::size_t> ShortestPathTree::disconnected() const {
  std::vector<std::size_t> result;
  for (std::size_t v = 0; v < bfs_.hops.size(); ++v) {
    if (!bfs_.reachable(v)) {
      result.push_back(v);
    }
  }
  return result;
}

double ShortestPathTree::average_hops() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t v = 0; v < bfs_.hops.size(); ++v) {
    if (v != sink_ && bfs_.reachable(v)) {
      sum += static_cast<double>(bfs_.hops[v]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t ShortestPathTree::depth() const {
  std::size_t deepest = 0;
  for (std::size_t v = 0; v < bfs_.hops.size(); ++v) {
    if (bfs_.reachable(v)) {
      deepest = std::max(deepest, bfs_.hops[v]);
    }
  }
  return deepest;
}

std::vector<std::size_t> ShortestPathTree::subtree_sizes() const {
  const std::size_t n = bfs_.hops.size();
  std::vector<std::size_t> sizes(n, 0);
  // Process vertices from deepest to shallowest so children accumulate
  // into parents in one pass.
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (bfs_.reachable(v)) {
      order.push_back(v);
      sizes[v] = 1;
    }
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return bfs_.hops[a] > bfs_.hops[b];
  });
  for (std::size_t v : order) {
    const std::size_t p = bfs_.parent[v];
    if (p != kUnreachable) {
      sizes[p] += sizes[v];
    }
  }
  return sizes;
}

}  // namespace mdg::graph

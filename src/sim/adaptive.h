// Adaptive re-planning over the network's lifetime.
//
// A static collector tour keeps stopping at polling points whose
// affiliated sensors have died; re-planning on the surviving sensors
// keeps rounds short as the network decays. This module runs the whole
// battery lifetime under either policy and records the decay of round
// duration and delivery — the graceful-degradation property mobile
// collection has and static multihop lacks.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/planner.h"
#include "net/sensor_network.h"
#include "sim/mobile_sim.h"

namespace mdg::sim {

struct AdaptiveConfig {
  MobileSimConfig mobile;
  /// Re-plan on the alive sensors every this many rounds (0 = never:
  /// the static policy; the initial plan is used for the whole run).
  std::size_t replan_every_rounds = 0;
};

struct AdaptiveReport {
  std::size_t rounds = 0;            ///< rounds completed
  std::size_t replans = 0;           ///< plans computed (incl. initial)
  std::size_t delivered_total = 0;
  std::size_t rounds_first_death = 0;
  /// Round duration sampled every round (seconds).
  std::vector<double> round_duration_s;
  /// Alive sensors after each round.
  std::vector<std::size_t> alive_after_round;
};

/// Runs gathering rounds until fewer than `stop_fraction` of the sensors
/// survive (or max_rounds). `planner` is invoked on the alive
/// subnetwork at every re-plan.
[[nodiscard]] AdaptiveReport run_adaptive_lifetime(
    const net::SensorNetwork& network, const core::Planner& planner,
    const AdaptiveConfig& config, double stop_fraction = 0.5,
    std::size_t max_rounds = 1'000'000);

}  // namespace mdg::sim

// Discrete-event simulation of polling-based mobile data collection.
//
// One gathering round: the M-collector leaves the sink, drives the
// planned tour at constant speed, pauses at every polling point while the
// affiliated sensors upload their buffered packets one at a time
// (single-hop, sensor -> collector), and finally returns to the sink.
// Sensors generate data at a constant rate between rounds and buffer it
// until their polling point is served.
//
// Chaos mode: when MobileSimConfig::fault_plan points at a
// fault::FaultPlan, the round replays that plan's failure schedule —
// crashed sensors stop generating and uploading, blacked-out polling
// points are re-polled with exponential backoff until a dwell budget
// runs out, burst episodes elevate the link-loss probability, stalls
// delay the drive, and a mid-tour breakdown triggers online recovery
// via core::replan_remaining (see docs/FAULTS.md).
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/solution.h"
#include "sim/energy.h"
#include "util/rng.h"

namespace mdg::fault {
class FaultPlan;
}  // namespace mdg::fault

namespace mdg::sim {

struct MobileSimConfig {
  double speed_m_per_s = 1.0;       ///< collector cruise speed
  /// Acceleration/deceleration magnitude for the trapezoidal speed
  /// profile (the collector stops at every polling point). 0 models an
  /// ideal vehicle that is instantly at cruise speed.
  double accel_m_per_s2 = 0.0;
  double packet_upload_s = 0.05;    ///< airtime per packet upload
  double data_rate_pkt_per_s = 0.0; ///< per-sensor generation rate; 0 means
                                    ///< exactly one packet per round
  /// When false, the simulator generates no traffic of its own; the
  /// caller injects packets with add_packets() (external workloads such
  /// as net::WorkloadGenerator).
  bool auto_generate = true;
  std::size_t buffer_capacity = 64; ///< per-sensor packet buffer
  double initial_battery_j = 0.5;   ///< per-sensor battery
  /// Probability that one upload attempt is lost (collector NACKs and
  /// the sensor retransmits, paying energy and airtime again).
  double upload_loss_prob = 0.0;
  /// Retransmission cap per packet; a packet still unacknowledged after
  /// this many attempts is dropped (counted in MobileRoundReport). With
  /// upload_loss_prob = 1.0 every packet exhausts this cap and is lost.
  std::size_t max_upload_attempts = 8;
  /// Seed for the loss process (deterministic per simulator instance).
  std::uint64_t loss_seed = 0x10552008;
  /// Optional fault schedule to replay (non-owning; must outlive the
  /// simulator; nullptr = fault-free). The dwell-budget/backoff recovery
  /// policy comes from the plan's FaultConfig.
  const fault::FaultPlan* fault_plan = nullptr;
};

struct MobileRoundReport {
  double duration_s = 0.0;       ///< departure to return
  double travel_s = 0.0;         ///< time in motion (incl. stall delays)
  double service_s = 0.0;        ///< time paused for uploads
  std::size_t delivered = 0;     ///< packets handed to the collector
  std::size_t dropped = 0;       ///< packets lost to buffer overflow
  std::size_t retransmissions = 0;  ///< extra attempts due to link loss
  std::size_t lost = 0;          ///< packets dropped after max attempts
  std::size_t max_buffer = 0;    ///< worst per-sensor buffer occupancy seen
  std::vector<double> round_energy;  ///< per-sensor energy spent this round

  // --- fault accounting (all zero / 1.0 on fault-free rounds) -----------
  std::size_t offered = 0;       ///< packets buffered when service began
  /// delivered / offered for this round (1.0 when nothing was offered).
  double delivered_fraction = 1.0;
  std::size_t sensor_crashes = 0;   ///< fault crashes effective this round
  std::size_t orphaned_sensors = 0; ///< crashed with packets still buffered
  std::size_t lost_crash = 0;       ///< packets stranded in crashed sensors
  std::size_t lost_burst = 0;       ///< subset of `lost` during bursts
  std::size_t repoll_attempts = 0;  ///< re-polls at blacked-out stops
  std::size_t blackout_timeouts = 0;  ///< stops abandoned (budget spent)
  double blackout_wait_s = 0.0;     ///< time spent waiting out blackouts
  bool breakdown = false;           ///< the collector broke down mid-tour
  double recovery_length_m = 0.0;   ///< spliced recovery tour length
  std::size_t recovery_stops = 0;   ///< stops on the recovery tour
  /// Sensors the recovery pass could not re-cover (graceful-degradation
  /// residue; 0 when recovery was feasible or no breakdown happened).
  std::size_t unrecovered_sensors = 0;
};

struct MobileLifetimeReport {
  std::size_t rounds_first_death = 0;   ///< completed before a sensor died
  std::size_t rounds_10pct_death = 0;   ///< before 10% of sensors died
  double time_first_death_s = 0.0;
  std::size_t delivered_total = 0;
};

class MobileCollectionSim {
 public:
  /// Binds to a planned solution; instance and solution must outlive the
  /// simulator. The solution must pass validate().
  MobileCollectionSim(const core::ShdgpInstance& instance,
                      const core::ShdgpSolution& solution,
                      MobileSimConfig config = {});

  /// Simulates one gathering round starting at `start_time`; consumes
  /// battery from `ledger` (dead sensors neither generate nor upload).
  [[nodiscard]] MobileRoundReport run_round(EnergyLedger& ledger,
                                            double start_time = 0.0);

  /// Deposits externally-generated packets into a sensor's buffer
  /// (clamped at capacity). Returns how many were dropped.
  std::size_t add_packets(std::size_t sensor, std::size_t count);

  /// Current buffer occupancy of a sensor.
  [[nodiscard]] std::size_t buffered(std::size_t sensor) const;

  /// Runs rounds back-to-back until the first sensor dies (or
  /// `max_rounds` as a safety stop).
  [[nodiscard]] MobileLifetimeReport run_lifetime(
      std::size_t max_rounds = 2'000'000);

  /// Steady-state round duration ignoring energy: solves the fixed point
  /// duration = travel + uploads(rate * duration). Returns +inf when the
  /// offered load saturates the collector (rate too high).
  [[nodiscard]] double steady_state_round_duration() const;

  /// Largest per-sensor data rate the collector can sustain.
  [[nodiscard]] double sustainable_rate() const;

  /// Time to drive a stop-to-stop leg of `distance` metres under the
  /// trapezoidal profile (cruise-only when accel is 0).
  [[nodiscard]] double leg_travel_time(double distance) const;

  /// Driving time for the whole tour (all legs, no uploads).
  [[nodiscard]] double tour_travel_time() const { return travel_time_; }

  [[nodiscard]] const MobileSimConfig& config() const { return config_; }

 private:
  /// True when the sensor is up at `time_s` (battery and fault plan).
  [[nodiscard]] bool sensor_up(const EnergyLedger& ledger, std::size_t sensor,
                               double time_s) const;
  /// Serves one pause: every listed sensor uploads its buffer, through
  /// its planned relay chain when the solution carries one. `planned`
  /// distinguishes tour stops (relay chains apply) from recovery stops
  /// (replan_remaining re-covers sensors single-hop, so chains do not).
  /// Returns the service seconds spent.
  double serve_stop(geom::Point stop, const std::vector<std::size_t>& sensors,
                    double now, EnergyLedger& ledger,
                    MobileRoundReport& report, bool planned);
  /// Mid-tour breakdown: replans over live unserved sensors, drives the
  /// spliced recovery tour, returns the clock after arriving at the sink.
  double run_recovery(geom::Point breakdown_position, double now,
                      EnergyLedger& ledger, MobileRoundReport& report);

  const core::ShdgpInstance* instance_;
  const core::ShdgpSolution* solution_;
  MobileSimConfig config_;
  /// Tour stops in visiting order: coordinates + the sensors affiliated
  /// with each stop + the polling-point slot (for blackout lookups).
  std::vector<geom::Point> stop_positions_;
  std::vector<std::vector<std::size_t>> stop_sensors_;
  std::vector<std::size_t> stop_slots_;
  double tour_length_ = 0.0;
  double travel_time_ = 0.0;  ///< full-tour driving time under kinematics
  /// Per-sensor buffered packets (persists across rounds).
  std::vector<std::size_t> buffer_;
  /// Fractional packet accumulation for rate-driven generation.
  std::vector<double> residual_;
  double last_generation_time_ = 0.0;
  Rng loss_rng_;
  std::uint64_t round_counter_ = 0;
  /// A breakdown fires once per simulator lifetime (the next round runs
  /// the repaired/replacement collector).
  bool breakdown_done_ = false;
};

}  // namespace mdg::sim

// Round-based simulation of the static multihop baseline with battery
// depletion and route repair.
//
// Each round every live sensor originates one packet and forwards it
// along the current minimum-hop tree to the sink; relays pay rx+tx. When
// nodes die the routing tree is rebuilt over the survivors, so the
// simulation captures the hotspot-collapse dynamics (nodes around the
// sink die first and strand the rest) that motivate mobile collection.
#pragma once

#include <cstddef>
#include <vector>

#include "net/sensor_network.h"
#include "sim/energy.h"

namespace mdg::fault {
class FaultPlan;
}  // namespace mdg::fault

namespace mdg::sim {

struct MultihopSimConfig {
  double initial_battery_j = 0.5;
  double per_hop_delay_s = 0.02;  ///< queueing+tx latency per relay hop
  /// Simulated duration of one round; only used to advance the fault
  /// clock (sensor crashes take effect at round granularity).
  double round_period_s = 60.0;
  /// Optional fault schedule (non-owning; nullptr = fault-free). Crashed
  /// sensors neither originate nor relay, and routes are rebuilt around
  /// them like battery deaths.
  const fault::FaultPlan* fault_plan = nullptr;
};

struct MultihopRoundReport {
  std::size_t delivered = 0;   ///< packets that reached the sink
  std::size_t stranded = 0;    ///< live sensors with no route
  double mean_latency_s = 0.0; ///< over delivered packets
  std::vector<double> round_energy;
};

struct MultihopLifetimeReport {
  std::size_t rounds_first_death = 0;
  std::size_t rounds_10pct_death = 0;
  std::size_t delivered_total = 0;
  /// Fraction of originated packets delivered over the whole run.
  double delivery_ratio = 1.0;
};

class MultihopSim {
 public:
  explicit MultihopSim(const net::SensorNetwork& network,
                       MultihopSimConfig config = {});

  /// One gathering round against the supplied ledger; routes are over
  /// currently-alive nodes only.
  [[nodiscard]] MultihopRoundReport run_round(EnergyLedger& ledger);

  /// Runs rounds until 10% of sensors died (or max_rounds).
  [[nodiscard]] MultihopLifetimeReport run_lifetime(
      std::size_t max_rounds = 2'000'000);

 private:
  void rebuild_routes(const EnergyLedger& ledger);
  /// Battery alive and (under a fault plan) not yet crashed at the
  /// current simulated clock.
  [[nodiscard]] bool node_up(std::size_t v, const EnergyLedger& ledger) const;
  [[nodiscard]] std::size_t up_count(const EnergyLedger& ledger) const;

  const net::SensorNetwork* network_;
  MultihopSimConfig config_;
  std::vector<std::size_t> hops_;    // to sink over live nodes
  std::vector<std::size_t> parent_;  // next hop, SIZE_MAX = direct/none
  std::size_t routes_up_count_ = 0;  // up count routes were built for
  double clock_s_ = 0.0;             // advances round_period_s per round
};

}  // namespace mdg::sim

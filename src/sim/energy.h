// Per-node battery accounting shared by both simulators.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mdg::core {
struct ShdgpSolution;
class ShdgpInstance;
}  // namespace mdg::core

namespace mdg::sim {

class EnergyLedger {
 public:
  /// All nodes start with `initial_joules` in the battery.
  EnergyLedger(std::size_t nodes, double initial_joules);

  [[nodiscard]] std::size_t size() const { return remaining_.size(); }
  [[nodiscard]] double initial() const { return initial_; }
  [[nodiscard]] double remaining(std::size_t node) const;
  [[nodiscard]] double consumed(std::size_t node) const;
  [[nodiscard]] bool alive(std::size_t node) const;
  [[nodiscard]] std::size_t alive_count() const;

  /// Draws `joules` from the node. A node whose battery reaches zero (or
  /// below) is dead; draws on a dead node are ignored (it cannot act).
  /// Returns whether the node is still alive afterwards.
  bool consume(std::size_t node, double joules);

  /// Consumed energy across all nodes.
  [[nodiscard]] std::vector<double> consumed_all() const;

 private:
  double initial_;
  std::vector<double> remaining_;
  std::size_t alive_ = 0;
};

/// Analytic per-sensor joules for one lossless gathering round in which
/// every sensor delivers exactly one packet through its planned relay
/// chain: the origin pays tx for the first leg, every relay pays rx+tx
/// for its forwarding leg. Index = spender, so a busy relay's entry
/// aggregates every chain crossing it. Exactly matches what the mobile
/// simulator's ledger draws under those conditions (the conservation
/// test pins this), and feeds the bench_b1_relay energy frontier.
[[nodiscard]] std::vector<double> relay_round_energy(
    const core::ShdgpInstance& instance, const core::ShdgpSolution& solution);

}  // namespace mdg::sim

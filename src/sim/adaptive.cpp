#include "sim/adaptive.h"

#include <cmath>

#include "core/instance.h"
#include "util/assert.h"

namespace mdg::sim {
namespace {

/// One plan epoch: the alive subnetwork, its plan, and the per-original-
/// sensor upload cost and stop mapping derived from it.
struct Epoch {
  double travel_time = 0.0;
  /// upload_cost[original sensor] — 0 when the sensor is not part of
  /// this epoch's plan (was dead at planning time).
  std::vector<double> upload_cost;
  std::size_t planned_sensors = 0;
};

Epoch build_epoch(const net::SensorNetwork& network,
                  const core::Planner& planner, const AdaptiveConfig& config,
                  const std::vector<bool>& alive) {
  // Alive subnetwork with an index map back to original ids.
  std::vector<geom::Point> positions;
  std::vector<std::size_t> original;
  for (std::size_t s = 0; s < network.size(); ++s) {
    if (alive[s]) {
      positions.push_back(network.position(s));
      original.push_back(s);
    }
  }
  Epoch epoch;
  epoch.upload_cost.assign(network.size(), 0.0);
  epoch.planned_sensors = positions.size();
  if (positions.empty()) {
    return epoch;
  }
  const net::SensorNetwork sub(std::move(positions), network.sink(),
                               network.field(), network.range(),
                               network.radio());
  const core::ShdgpInstance instance(sub);
  const core::ShdgpSolution plan = planner.plan(instance);
  plan.validate(instance);

  // Travel time under the kinematic model, over the planned tour.
  const MobileCollectionSim probe(instance, plan, config.mobile);
  epoch.travel_time = probe.tour_travel_time();

  for (std::size_t i = 0; i < sub.size(); ++i) {
    const double hop = geom::distance(
        sub.position(i), plan.polling_points[plan.assignment[i]]);
    epoch.upload_cost[original[i]] = network.radio().tx_packet(hop);
  }
  return epoch;
}

}  // namespace

AdaptiveReport run_adaptive_lifetime(const net::SensorNetwork& network,
                                     const core::Planner& planner,
                                     const AdaptiveConfig& config,
                                     double stop_fraction,
                                     std::size_t max_rounds) {
  MDG_REQUIRE(stop_fraction >= 0.0 && stop_fraction < 1.0,
              "stop fraction must be in [0, 1)");
  const std::size_t n = network.size();
  AdaptiveReport report;
  if (n == 0) {
    return report;
  }
  EnergyLedger ledger(n, config.mobile.initial_battery_j);
  std::vector<bool> alive(n, true);
  const auto floor_count = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) * stop_fraction));

  Epoch epoch = build_epoch(network, planner, config, alive);
  ++report.replans;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Periodic re-plan (never at round 0: the initial plan is fresh).
    if (config.replan_every_rounds > 0 && round > 0 &&
        round % config.replan_every_rounds == 0) {
      for (std::size_t s = 0; s < n; ++s) {
        alive[s] = ledger.alive(s);
      }
      epoch = build_epoch(network, planner, config, alive);
      ++report.replans;
    }

    // One round: planned, still-alive sensors upload once.
    std::size_t delivered = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (epoch.upload_cost[s] > 0.0 && ledger.alive(s)) {
        ledger.consume(s, epoch.upload_cost[s]);
        ++delivered;
      }
    }
    report.delivered_total += delivered;
    ++report.rounds;
    report.round_duration_s.push_back(
        epoch.travel_time +
        static_cast<double>(delivered) * config.mobile.packet_upload_s);
    report.alive_after_round.push_back(ledger.alive_count());

    if (report.rounds_first_death == 0 && ledger.alive_count() < n) {
      report.rounds_first_death = round + 1;
    }
    if (ledger.alive_count() < floor_count || delivered == 0) {
      break;
    }
  }
  return report;
}

}  // namespace mdg::sim

#include "sim/multihop_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "fault/fault.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::sim {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}  // namespace

MultihopSim::MultihopSim(const net::SensorNetwork& network,
                         MultihopSimConfig config)
    : network_(&network), config_(config) {
  MDG_REQUIRE(config.per_hop_delay_s >= 0.0, "delay cannot be negative");
  MDG_REQUIRE(config.round_period_s >= 0.0, "round period cannot be negative");
  hops_.assign(network.size(), kNone);
  parent_.assign(network.size(), kNone);
}

bool MultihopSim::node_up(std::size_t v, const EnergyLedger& ledger) const {
  if (!ledger.alive(v)) {
    return false;
  }
  return config_.fault_plan == nullptr ||
         config_.fault_plan->sensor_alive_at(v, clock_s_);
}

std::size_t MultihopSim::up_count(const EnergyLedger& ledger) const {
  if (config_.fault_plan == nullptr) {
    return ledger.alive_count();
  }
  std::size_t count = 0;
  for (std::size_t v = 0; v < ledger.size(); ++v) {
    if (node_up(v, ledger)) {
      ++count;
    }
  }
  return count;
}

void MultihopSim::rebuild_routes(const EnergyLedger& ledger) {
  const auto& network = *network_;
  std::fill(hops_.begin(), hops_.end(), kNone);
  std::fill(parent_.begin(), parent_.end(), kNone);

  // Multi-source BFS from live sink neighbours over live nodes only.
  std::deque<std::size_t> frontier;
  for (std::size_t s : network.sink_neighbors()) {
    if (node_up(s, ledger)) {
      hops_[s] = 1;  // the gateway's own upload
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop_front();
    for (const graph::Arc& arc : network.connectivity().neighbors(v)) {
      if (hops_[arc.to] == kNone && node_up(arc.to, ledger)) {
        hops_[arc.to] = hops_[v] + 1;
        parent_[arc.to] = v;
        frontier.push_back(arc.to);
      }
    }
  }
  routes_up_count_ = up_count(ledger);
}

MultihopRoundReport MultihopSim::run_round(EnergyLedger& ledger) {
  OBS_SPAN(obs::metric::kSimMultihopRound);
  const auto& network = *network_;
  const auto& radio = network.radio();
  const std::size_t n = network.size();
  MDG_REQUIRE(ledger.size() == n, "ledger does not match the network");

  if (routes_up_count_ != up_count(ledger) || (n > 0 && hops_.size() != n)) {
    rebuild_routes(ledger);
  }

  MultihopRoundReport report;
  report.round_energy.assign(n, 0.0);
  double latency_sum = 0.0;

  for (std::size_t s = 0; s < n; ++s) {
    if (!node_up(s, ledger)) {
      continue;
    }
    if (hops_[s] == kNone) {
      ++report.stranded;
      continue;
    }
    // Walk the packet toward the sink; a relay dying en route drops it.
    std::size_t v = s;
    bool delivered = false;
    std::size_t steps = 0;
    for (;;) {
      if (!node_up(v, ledger)) {
        break;  // the relay chain broke this round
      }
      const std::size_t nh = parent_[v];
      const geom::Point from = network.position(v);
      const geom::Point to =
          nh == kNone ? network.sink() : network.position(nh);
      const double tx = radio.tx_packet(geom::distance(from, to));
      report.round_energy[v] += tx;
      ledger.consume(v, tx);
      if (nh == kNone) {
        delivered = true;
        break;
      }
      const double rx = radio.rx_packet();
      report.round_energy[nh] += rx;
      ledger.consume(nh, rx);
      v = nh;
      MDG_ASSERT(++steps <= n, "routing loop detected");
    }
    if (delivered) {
      ++report.delivered;
      latency_sum +=
          static_cast<double>(hops_[s]) * config_.per_hop_delay_s;
    }
  }
  report.mean_latency_s = report.delivered == 0
                              ? 0.0
                              : latency_sum /
                                    static_cast<double>(report.delivered);
  clock_s_ += config_.round_period_s;
  return report;
}

MultihopLifetimeReport MultihopSim::run_lifetime(std::size_t max_rounds) {
  const std::size_t n = network_->size();
  MultihopLifetimeReport report;
  if (n == 0) {
    return report;
  }
  EnergyLedger ledger(n, config_.initial_battery_j);
  rebuild_routes(ledger);
  const auto death_floor =
      static_cast<std::size_t>(std::ceil(static_cast<double>(n) * 0.9));
  std::size_t originated = 0;
  bool first_death_seen = false;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::size_t live_before = up_count(ledger);
    if (live_before == 0) {
      break;
    }
    originated += live_before;
    const MultihopRoundReport r = run_round(ledger);
    report.delivered_total += r.delivered;
    if (!first_death_seen && ledger.alive_count() < n) {
      report.rounds_first_death = round + 1;
      first_death_seen = true;
    }
    if (ledger.alive_count() < death_floor) {
      report.rounds_10pct_death = round + 1;
      break;
    }
    // A fully-stranded network makes no further progress.
    if (r.delivered == 0) {
      if (!first_death_seen) {
        report.rounds_first_death = round + 1;
      }
      report.rounds_10pct_death = round + 1;
      break;
    }
  }
  if (!first_death_seen && report.rounds_first_death == 0) {
    report.rounds_first_death = max_rounds;
  }
  if (report.rounds_10pct_death == 0) {
    report.rounds_10pct_death = report.rounds_first_death;
  }
  report.delivery_ratio =
      originated == 0 ? 1.0
                      : static_cast<double>(report.delivered_total) /
                            static_cast<double>(originated);
  return report;
}

}  // namespace mdg::sim

#include "sim/event_queue.h"

#include "util/assert.h"

namespace mdg::sim {

void EventQueue::schedule(double when, Callback fn) {
  MDG_REQUIRE(fn != nullptr, "cannot schedule an empty callback");
  MDG_REQUIRE(when >= now_, "cannot schedule into the past");
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay, Callback fn) {
  MDG_REQUIRE(delay >= 0.0, "delay must be non-negative");
  schedule(now_ + delay, std::move(fn));
}

double EventQueue::run() {
  while (!heap_.empty()) {
    // Copy out before pop: the callback may push new entries.
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.when;
    entry.fn();
  }
  return now_;
}

double EventQueue::run_until(double deadline) {
  MDG_REQUIRE(deadline >= now_, "deadline is in the past");
  while (!heap_.empty() && heap_.top().when <= deadline) {
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.when;
    entry.fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace mdg::sim

// Minimal discrete-event scheduler.
//
// Events are (time, callback) pairs; ties are broken by insertion order
// so simulations are deterministic. Callbacks may schedule further
// events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mdg::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (must not be before now()).
  void schedule(double when, Callback fn);

  /// Schedules `fn` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Callback fn);

  /// Runs events in time order until the queue drains. Returns the time
  /// of the last event (now() if the queue was empty).
  double run();

  /// Runs events with time <= `deadline`; later events stay queued.
  /// Advances now() to min(deadline, last event time).
  double run_until(double deadline);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace mdg::sim

#include "sim/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "fault/fault.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::sim {

FleetSim::FleetSim(const core::ShdgpInstance& instance,
                   const core::ShdgpSolution& solution,
                   const core::MultiTourPlan& plan, MobileSimConfig config)
    : instance_(&instance), config_(config) {
  MDG_REQUIRE(config.speed_m_per_s > 0.0, "collector speed must be positive");
  MDG_REQUIRE(config.accel_m_per_s2 >= 0.0,
              "acceleration cannot be negative");
  solution.validate(instance);

  // Polling-point position -> its affiliated sensors.
  const auto key = [](geom::Point p) { return std::pair(p.x, p.y); };
  std::map<std::pair<double, double>, std::vector<std::size_t>> affiliated;
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    affiliated[key(solution.polling_points[solution.assignment[s]])]
        .push_back(s);
  }

  std::size_t stops_seen = 0;
  for (const core::Subtour& st : plan.subtours) {
    Route route;
    geom::Point cursor = instance.sink();
    for (const geom::Point& stop : st.stops) {
      const auto it = affiliated.find(key(stop));
      MDG_REQUIRE(it != affiliated.end(),
                  "subtour stop is not a polling point of the solution");
      route.stops.push_back(stop);
      route.stop_sensors.push_back(it->second);
      route.travel_time += leg_time(geom::distance(cursor, stop));
      cursor = stop;
      ++stops_seen;
    }
    if (!st.stops.empty()) {
      route.travel_time += leg_time(geom::distance(cursor, instance.sink()));
    }
    routes_.push_back(std::move(route));
  }
  MDG_REQUIRE(stops_seen == solution.polling_points.size(),
              "the split must cover every polling point exactly once");
}

double FleetSim::leg_time(double distance) const {
  const double v = config_.speed_m_per_s;
  const double a = config_.accel_m_per_s2;
  if (a == 0.0) {
    return distance / v;
  }
  const double ramp = v * v / a;
  return distance >= ramp ? distance / v + v / a
                          : 2.0 * std::sqrt(distance / a);
}

double FleetSim::collector_round_time(std::size_t c) const {
  MDG_REQUIRE(c < routes_.size(), "collector index out of range");
  std::size_t sensors = 0;
  for (const auto& group : routes_[c].stop_sensors) {
    sensors += group.size();
  }
  return routes_[c].travel_time +
         static_cast<double>(sensors) * config_.packet_upload_s;
}

FleetRoundReport FleetSim::run_round(EnergyLedger& ledger) const {
  OBS_SPAN(obs::metric::kSimFleetRound);
  const auto& network = instance_->network();
  MDG_REQUIRE(ledger.size() == network.size(),
              "ledger does not match the network");

  FleetRoundReport report;
  report.round_energy.assign(network.size(), 0.0);
  report.collector_duration_s.assign(routes_.size(), 0.0);

  const auto& radio = network.radio();
  for (std::size_t c = 0; c < routes_.size(); ++c) {
    const Route& route = routes_[c];
    double duration = route.travel_time;
    for (std::size_t i = 0; i < route.stops.size(); ++i) {
      for (std::size_t s : route.stop_sensors[i]) {
        if (!ledger.alive(s)) {
          continue;
        }
        // Fault wiring is round-granular here: a sensor crashed at any
        // point of the schedule skips the whole round (the fleet sim
        // has no per-stop clock; the mobile sim models fine-grained
        // timing).
        if (config_.fault_plan != nullptr &&
            !config_.fault_plan->sensor_alive_at(s, 0.0)) {
          continue;
        }
        const double joules = radio.tx_packet(
            geom::distance(network.position(s), route.stops[i]));
        report.round_energy[s] += joules;
        ledger.consume(s, joules);
        ++report.delivered;
        duration += config_.packet_upload_s;
      }
    }
    report.collector_duration_s[c] = duration;
    report.duration_s = std::max(report.duration_s, duration);
  }
  return report;
}

}  // namespace mdg::sim

// Concurrent simulation of a multi-collector fleet.
//
// Every collector drives its own subtour (from MultiCollectorPlanner)
// simultaneously; a gathering round ends when the slowest collector is
// home. Sensor energy is identical to the single-collector case (uploads
// do not change), so the fleet buys latency, not lifetime — this
// simulator quantifies exactly that.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/multi_collector.h"
#include "core/solution.h"
#include "sim/energy.h"
#include "sim/mobile_sim.h"

namespace mdg::sim {

struct FleetRoundReport {
  double duration_s = 0.0;  ///< slowest collector's departure-to-return
  std::vector<double> collector_duration_s;  ///< per collector
  std::size_t delivered = 0;
  std::vector<double> round_energy;  ///< per sensor
};

class FleetSim {
 public:
  /// Binds to a validated solution and a split of its polling points.
  /// Every subtour stop must be one of the solution's polling points and
  /// each polling point must appear on exactly one subtour.
  FleetSim(const core::ShdgpInstance& instance,
           const core::ShdgpSolution& solution,
           const core::MultiTourPlan& plan, MobileSimConfig config = {});

  [[nodiscard]] std::size_t collector_count() const {
    return routes_.size();
  }

  /// One synchronized gathering round (one packet per live sensor).
  [[nodiscard]] FleetRoundReport run_round(EnergyLedger& ledger) const;

  /// Driving + service time of collector c's round (ignoring deaths).
  [[nodiscard]] double collector_round_time(std::size_t c) const;

 private:
  struct Route {
    std::vector<geom::Point> stops;
    std::vector<std::vector<std::size_t>> stop_sensors;
    double travel_time = 0.0;
  };

  [[nodiscard]] double leg_time(double distance) const;

  const core::ShdgpInstance* instance_;
  MobileSimConfig config_;
  std::vector<Route> routes_;
};

}  // namespace mdg::sim

#include "sim/mobile_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/replan.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "util/assert.h"

namespace mdg::sim {

MobileCollectionSim::MobileCollectionSim(const core::ShdgpInstance& instance,
                                         const core::ShdgpSolution& solution,
                                         MobileSimConfig config)
    : instance_(&instance),
      solution_(&solution),
      config_(config),
      loss_rng_(config.loss_seed) {
  MDG_REQUIRE(config.speed_m_per_s > 0.0, "collector speed must be positive");
  MDG_REQUIRE(config.accel_m_per_s2 >= 0.0,
              "acceleration cannot be negative");
  MDG_REQUIRE(config.packet_upload_s >= 0.0, "upload time cannot be negative");
  MDG_REQUIRE(config.upload_loss_prob >= 0.0 && config.upload_loss_prob <= 1.0,
              "loss probability must be in [0, 1]");
  MDG_REQUIRE(config.max_upload_attempts >= 1,
              "need at least one upload attempt");
  MDG_REQUIRE(config.data_rate_pkt_per_s >= 0.0, "rate cannot be negative");
  MDG_REQUIRE(config.buffer_capacity >= 1, "buffers must hold one packet");
  solution.validate(instance);

  // Stops in visiting order with their affiliated sensors.
  std::vector<geom::Point> all;
  all.push_back(instance.sink());
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  std::vector<std::vector<std::size_t>> by_slot(
      solution.polling_points.size());
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    by_slot[solution.assignment[s]].push_back(s);
  }
  for (std::size_t pos = 1; pos < solution.tour.size(); ++pos) {
    const std::size_t slot = solution.tour.at(pos) - 1;
    stop_positions_.push_back(all[solution.tour.at(pos)]);
    stop_sensors_.push_back(by_slot[slot]);
    stop_slots_.push_back(slot);
  }
  tour_length_ = solution.tour_length;
  buffer_.assign(instance.sensor_count(), 0);
  residual_.assign(instance.sensor_count(), 0.0);

  geom::Point cursor = instance.sink();
  for (const geom::Point& stop : stop_positions_) {
    travel_time_ += leg_travel_time(geom::distance(cursor, stop));
    cursor = stop;
  }
  travel_time_ += leg_travel_time(geom::distance(cursor, instance.sink()));
}

double MobileCollectionSim::leg_travel_time(double distance) const {
  MDG_REQUIRE(distance >= 0.0, "distance cannot be negative");
  const double v = config_.speed_m_per_s;
  const double a = config_.accel_m_per_s2;
  if (a == 0.0) {
    return distance / v;  // ideal vehicle: cruise the whole leg
  }
  // Trapezoidal profile with a full stop at both ends: accelerate at a,
  // cruise at v, decelerate at a. Short legs never reach cruise speed
  // (triangular profile).
  const double ramp_distance = v * v / a;  // accel + decel combined
  if (distance >= ramp_distance) {
    return distance / v + v / a;
  }
  return 2.0 * std::sqrt(distance / a);
}

bool MobileCollectionSim::sensor_up(const EnergyLedger& ledger,
                                    std::size_t sensor, double time_s) const {
  if (!ledger.alive(sensor)) {
    return false;
  }
  return config_.fault_plan == nullptr ||
         config_.fault_plan->sensor_alive_at(sensor, time_s);
}

double MobileCollectionSim::serve_stop(geom::Point stop,
                                       const std::vector<std::size_t>& sensors,
                                       double now, EnergyLedger& ledger,
                                       MobileRoundReport& report,
                                       bool planned) {
  const auto& net = instance_->network();
  const auto& rad = net.radio();
  const fault::FaultPlan* plan = config_.fault_plan;
  const double loss_prob =
      plan == nullptr ? config_.upload_loss_prob
                      : plan->loss_prob_at(now, config_.upload_loss_prob);
  const bool burst = plan != nullptr && plan->burst_active(now);
  const std::vector<std::size_t> no_path;
  double service = 0.0;
  for (std::size_t s : sensors) {
    if (!sensor_up(ledger, s, now)) {
      continue;
    }
    const std::vector<std::size_t>& path =
        planned && s < solution_->relay_paths.size()
            ? solution_->relay_paths[s]
            : no_path;
    // A dead relay in the chain means the stop cannot hear this sensor
    // at all: skip it, buffers survive to a later round.
    const bool chain_up =
        std::all_of(path.begin(), path.end(), [&](std::size_t r) {
          return sensor_up(ledger, r, now);
        });
    if (!chain_up) {
      continue;
    }
    // Per-attempt energy along the chain: the origin transmits to the
    // first relay (or straight to the collector); every relay receives
    // and retransmits toward the next leg.
    const geom::Point first =
        path.empty() ? stop : net.position(path.front());
    const double origin_joules =
        rad.tx_packet(geom::distance(net.position(s), first));
    std::vector<double> relay_joules(path.size());
    for (std::size_t i = 0; i < path.size(); ++i) {
      const geom::Point next =
          i + 1 < path.size() ? net.position(path[i + 1]) : stop;
      relay_joules[i] =
          rad.relay_packet(geom::distance(net.position(path[i]), next));
    }
    // Each attempt occupies the channel once per hop (the ack is
    // end-to-end, so one loss draw covers the whole chain).
    const double attempt_airtime =
        config_.packet_upload_s * static_cast<double>(path.size() + 1);
    bool sensor_died = false;
    bool relay_died = false;
    while (buffer_[s] > 0 && !sensor_died && !relay_died) {
      // One packet: attempt until acknowledged, the retry budget is
      // spent, or a battery along the chain dies mid-burst.
      bool acked = false;
      std::size_t attempts = 0;
      while (attempts < config_.max_upload_attempts) {
        ++attempts;
        report.round_energy[s] += origin_joules;
        service += attempt_airtime;
        const bool alive = ledger.consume(s, origin_joules);
        for (std::size_t i = 0; i < path.size(); ++i) {
          report.round_energy[path[i]] += relay_joules[i];
          if (!ledger.consume(path[i], relay_joules[i])) {
            relay_died = true;  // the chain breaks after this packet
          }
        }
        const bool lost_attempt =
            loss_prob > 0.0 && loss_rng_.chance(loss_prob);
        if (!lost_attempt) {
          acked = true;
        }
        if (!alive) {
          sensor_died = true;  // stop after this packet
        }
        if (acked || sensor_died || relay_died) {
          break;
        }
      }
      report.retransmissions += attempts - 1;
      --buffer_[s];
      if (acked) {
        ++report.delivered;
      } else {
        ++report.lost;
        if (burst) {
          ++report.lost_burst;
        }
      }
    }
  }
  return service;
}

double MobileCollectionSim::run_recovery(geom::Point breakdown_position,
                                         double now, EnergyLedger& ledger,
                                         MobileRoundReport& report) {
  // Still-live, still-unserved sensors: anything with buffered data and
  // a working radio can still be re-covered.
  std::vector<std::size_t> unserved;
  for (std::size_t s = 0; s < buffer_.size(); ++s) {
    if (buffer_[s] > 0 && sensor_up(ledger, s, now)) {
      unserved.push_back(s);
    }
  }
  const core::RecoveryPlan recovery =
      core::replan_remaining(*instance_, breakdown_position, unserved);
  report.recovery_length_m = recovery.length_m;
  report.recovery_stops = recovery.stops.size();
  report.unrecovered_sensors = recovery.uncovered.size();

  geom::Point where = breakdown_position;
  for (std::size_t j = 0; j < recovery.stops.size(); ++j) {
    const double travel =
        leg_travel_time(geom::distance(where, recovery.stops[j]));
    report.travel_s += travel;
    now += travel;
    const double service =
        serve_stop(recovery.stops[j], recovery.stop_sensors[j], now, ledger,
                   report, /*planned=*/false);
    report.service_s += service;
    now += service;
    where = recovery.stops[j];
  }
  const double home = leg_travel_time(geom::distance(where, instance_->sink()));
  report.travel_s += home;
  return now + home;
}

MobileRoundReport MobileCollectionSim::run_round(EnergyLedger& ledger,
                                                 double start_time) {
  OBS_SPAN(obs::metric::kSimMobileRound);
  const auto& network = instance_->network();
  MDG_REQUIRE(ledger.size() == network.size(),
              "ledger does not match the network");
  const fault::FaultPlan* plan = config_.fault_plan;

  MobileRoundReport report;
  report.round_energy.assign(network.size(), 0.0);

  // One-packet-per-round mode: generation happens at departure.
  if (config_.auto_generate && config_.data_rate_pkt_per_s == 0.0) {
    for (std::size_t s = 0; s < buffer_.size(); ++s) {
      if (!sensor_up(ledger, s, start_time)) {
        continue;
      }
      if (buffer_[s] < config_.buffer_capacity) {
        ++buffer_[s];
      } else {
        ++report.dropped;
      }
    }
  }
  for (std::size_t b : buffer_) {
    report.offered += b;
  }

  const geom::Point sink = instance_->sink();
  double clock = start_time;
  double odometer = 0.0;  // metres driven on the planned tour
  geom::Point where = sink;
  bool broke = false;
  for (std::size_t i = 0; i < stop_positions_.size() && !broke; ++i) {
    const geom::Point stop = stop_positions_[i];
    const double leg = geom::distance(where, stop);
    if (plan != nullptr && plan->breakdown().enabled && !breakdown_done_ &&
        odometer + leg >= plan->breakdown().distance_m) {
      // The drive ends mid-leg; switch to the online recovery plan.
      const double driven =
          std::clamp(plan->breakdown().distance_m - odometer, 0.0, leg);
      const geom::Point at =
          leg > 0.0 ? where + (stop - where) * (driven / leg) : where;
      const double partial = leg_travel_time(driven) +
                             plan->stall_delay(odometer, odometer + driven);
      report.travel_s += partial;
      clock += partial;
      breakdown_done_ = true;
      broke = true;
      report.breakdown = true;
      clock = run_recovery(at, clock, ledger, report);
      where = sink;
      break;
    }
    {
      double travel = leg_travel_time(leg);
      if (plan != nullptr) {
        travel += plan->stall_delay(odometer, odometer + leg);
      }
      report.travel_s += travel;
      clock += travel;
      odometer += leg;
    }
    // Radio blackout at this polling point: re-poll with exponential
    // backoff until the blackout lifts or the dwell budget is spent.
    if (plan != nullptr && plan->blackout_active(stop_slots_[i], clock)) {
      const fault::FaultConfig& fc = plan->config();
      double waited = 0.0;
      double backoff = fc.repoll_backoff_s;
      std::size_t repolls = 0;
      while (plan->blackout_active(stop_slots_[i], clock) &&
             repolls < fc.max_repolls && waited < fc.dwell_budget_s) {
        const double wait = std::min(backoff, fc.dwell_budget_s - waited);
        if (wait <= 0.0) {
          break;
        }
        clock += wait;
        waited += wait;
        backoff *= 2.0;
        ++repolls;
        ++report.repoll_attempts;
      }
      report.blackout_wait_s += waited;
      if (plan->blackout_active(stop_slots_[i], clock)) {
        ++report.blackout_timeouts;  // abandon: buffers survive the round
        where = stop;
        continue;
      }
    }
    const double service = serve_stop(stop, stop_sensors_[i], clock, ledger,
                                      report, /*planned=*/true);
    report.service_s += service;
    clock += service;
    where = stop;
  }
  if (!broke) {
    // Return leg.
    const double leg = geom::distance(where, sink);
    double home = leg_travel_time(leg);
    if (plan != nullptr && plan->breakdown().enabled && !breakdown_done_ &&
        odometer + leg >= plan->breakdown().distance_m) {
      // Breakdown on the way home: whatever is still buffered (e.g.
      // stops abandoned to blackouts) gets one recovery chance.
      const double driven =
          std::clamp(plan->breakdown().distance_m - odometer, 0.0, leg);
      const geom::Point at =
          leg > 0.0 ? where + (sink - where) * (driven / leg) : where;
      const double partial = leg_travel_time(driven) +
                             plan->stall_delay(odometer, odometer + driven);
      report.travel_s += partial;
      clock += partial;
      breakdown_done_ = true;
      report.breakdown = true;
      clock = run_recovery(at, clock, ledger, report);
    } else {
      if (plan != nullptr) {
        home += plan->stall_delay(odometer, odometer + leg);
      }
      report.travel_s += home;
      clock += home;
    }
  }

  report.duration_s = clock - start_time;

  // Rate-driven generation: deposit the packets produced during this
  // round (they will be collected next round), tracked per sensor.
  if (config_.auto_generate && config_.data_rate_pkt_per_s > 0.0) {
    for (std::size_t s = 0; s < buffer_.size(); ++s) {
      if (!sensor_up(ledger, s, clock)) {
        continue;
      }
      residual_[s] += config_.data_rate_pkt_per_s * report.duration_s;
      const double whole = std::floor(residual_[s]);
      residual_[s] -= whole;
      const auto packets = static_cast<std::size_t>(whole);
      const std::size_t space = config_.buffer_capacity - buffer_[s];
      const std::size_t stored = std::min(packets, space);
      buffer_[s] += stored;
      report.dropped += packets - stored;
    }
  }

  // Crash accounting: a crashed sensor's buffered packets are stranded
  // with the hardware.
  if (plan != nullptr) {
    for (const fault::SensorCrash& crash : plan->crashes()) {
      if (crash.time_s >= start_time && crash.time_s < clock) {
        ++report.sensor_crashes;
      }
    }
    for (std::size_t s = 0; s < buffer_.size(); ++s) {
      if (!plan->sensor_alive_at(s, clock) && buffer_[s] > 0) {
        ++report.orphaned_sensors;
        report.lost_crash += buffer_[s];
        buffer_[s] = 0;
      }
    }
  }

  for (std::size_t b : buffer_) {
    report.max_buffer = std::max(report.max_buffer, b);
  }
  report.delivered_fraction =
      report.offered == 0
          ? 1.0
          : static_cast<double>(report.delivered) /
                static_cast<double>(report.offered);
  last_generation_time_ = clock;
  ++round_counter_;
  MDG_OBS_COUNT(obs::metric::kSimMobileDelivered, report.delivered);
  MDG_OBS_COUNT(obs::metric::kSimMobileDropped, report.dropped);
  MDG_OBS_GAUGE(obs::metric::kSimMobileBufferPeak,
                static_cast<double>(report.max_buffer));
  if (plan != nullptr) {
    // fault.* rows appear (possibly at zero) on every chaos round, so
    // chaos reports always carry the full fault section.
    MDG_OBS_COUNT(obs::metric::kFaultSensorCrashes, report.sensor_crashes);
    MDG_OBS_COUNT(obs::metric::kFaultOrphanedSensors,
                  report.orphaned_sensors);
    MDG_OBS_COUNT(obs::metric::kFaultLostCrash, report.lost_crash);
    MDG_OBS_COUNT(obs::metric::kFaultLostBurst, report.lost_burst);
    MDG_OBS_COUNT(obs::metric::kFaultRepollAttempts, report.repoll_attempts);
    MDG_OBS_COUNT(obs::metric::kFaultPpTimeouts, report.blackout_timeouts);
    MDG_OBS_COUNT(obs::metric::kFaultBreakdowns, report.breakdown ? 1 : 0);
    if (report.breakdown) {
      MDG_OBS_GAUGE(obs::metric::kFaultRecoveryLengthM,
                    report.recovery_length_m);
    }
    MDG_OBS_GAUGE(obs::metric::kFaultDeliveredFraction,
                  report.delivered_fraction);
  }
  return report;
}

std::size_t MobileCollectionSim::add_packets(std::size_t sensor,
                                             std::size_t count) {
  MDG_REQUIRE(sensor < buffer_.size(), "sensor index out of range");
  const std::size_t space = config_.buffer_capacity - buffer_[sensor];
  const std::size_t stored = std::min(count, space);
  buffer_[sensor] += stored;
  return count - stored;
}

std::size_t MobileCollectionSim::buffered(std::size_t sensor) const {
  MDG_REQUIRE(sensor < buffer_.size(), "sensor index out of range");
  return buffer_[sensor];
}

MobileLifetimeReport MobileCollectionSim::run_lifetime(std::size_t max_rounds) {
  const std::size_t n = instance_->sensor_count();
  MobileLifetimeReport report;
  if (n == 0) {
    return report;
  }
  EnergyLedger ledger(n, config_.initial_battery_j);
  const auto death_floor =
      static_cast<std::size_t>(std::ceil(static_cast<double>(n) * 0.9));
  double clock = 0.0;
  bool first_death_seen = false;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const MobileRoundReport r = run_round(ledger, clock);
    clock += r.duration_s;
    report.delivered_total += r.delivered;
    if (!first_death_seen && ledger.alive_count() < n) {
      report.rounds_first_death = round + 1;
      report.time_first_death_s = clock;
      first_death_seen = true;
    }
    if (ledger.alive_count() < death_floor) {
      report.rounds_10pct_death = round + 1;
      break;
    }
  }
  if (!first_death_seen) {
    report.rounds_first_death = max_rounds;
    report.time_first_death_s = clock;
  }
  if (report.rounds_10pct_death == 0) {
    report.rounds_10pct_death = report.rounds_first_death;
  }
  return report;
}

double MobileCollectionSim::steady_state_round_duration() const {
  const double travel = travel_time_;
  const auto n = static_cast<double>(instance_->sensor_count());
  if (config_.data_rate_pkt_per_s == 0.0) {
    return travel + n * config_.packet_upload_s;
  }
  const double load =
      n * config_.data_rate_pkt_per_s * config_.packet_upload_s;
  if (load >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return travel / (1.0 - load);
}

double MobileCollectionSim::sustainable_rate() const {
  const auto n = static_cast<double>(instance_->sensor_count());
  if (n == 0.0 || config_.packet_upload_s == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / (n * config_.packet_upload_s);
}

}  // namespace mdg::sim

#include "sim/mobile_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/span.h"
#include "sim/event_queue.h"
#include "util/assert.h"

namespace mdg::sim {

MobileCollectionSim::MobileCollectionSim(const core::ShdgpInstance& instance,
                                         const core::ShdgpSolution& solution,
                                         MobileSimConfig config)
    : instance_(&instance),
      solution_(&solution),
      config_(config),
      loss_rng_(config.loss_seed) {
  MDG_REQUIRE(config.speed_m_per_s > 0.0, "collector speed must be positive");
  MDG_REQUIRE(config.accel_m_per_s2 >= 0.0,
              "acceleration cannot be negative");
  MDG_REQUIRE(config.packet_upload_s >= 0.0, "upload time cannot be negative");
  MDG_REQUIRE(config.upload_loss_prob >= 0.0 && config.upload_loss_prob < 1.0,
              "loss probability must be in [0, 1)");
  MDG_REQUIRE(config.max_upload_attempts >= 1,
              "need at least one upload attempt");
  MDG_REQUIRE(config.data_rate_pkt_per_s >= 0.0, "rate cannot be negative");
  MDG_REQUIRE(config.buffer_capacity >= 1, "buffers must hold one packet");
  solution.validate(instance);

  // Stops in visiting order with their affiliated sensors.
  std::vector<geom::Point> all;
  all.push_back(instance.sink());
  all.insert(all.end(), solution.polling_points.begin(),
             solution.polling_points.end());
  std::vector<std::vector<std::size_t>> by_slot(
      solution.polling_points.size());
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    by_slot[solution.assignment[s]].push_back(s);
  }
  for (std::size_t pos = 1; pos < solution.tour.size(); ++pos) {
    const std::size_t slot = solution.tour.at(pos) - 1;
    stop_positions_.push_back(all[solution.tour.at(pos)]);
    stop_sensors_.push_back(by_slot[slot]);
  }
  tour_length_ = solution.tour_length;
  buffer_.assign(instance.sensor_count(), 0);
  residual_.assign(instance.sensor_count(), 0.0);

  geom::Point cursor = instance.sink();
  for (const geom::Point& stop : stop_positions_) {
    travel_time_ += leg_travel_time(geom::distance(cursor, stop));
    cursor = stop;
  }
  travel_time_ += leg_travel_time(geom::distance(cursor, instance.sink()));
}

double MobileCollectionSim::leg_travel_time(double distance) const {
  MDG_REQUIRE(distance >= 0.0, "distance cannot be negative");
  const double v = config_.speed_m_per_s;
  const double a = config_.accel_m_per_s2;
  if (a == 0.0) {
    return distance / v;  // ideal vehicle: cruise the whole leg
  }
  // Trapezoidal profile with a full stop at both ends: accelerate at a,
  // cruise at v, decelerate at a. Short legs never reach cruise speed
  // (triangular profile).
  const double ramp_distance = v * v / a;  // accel + decel combined
  if (distance >= ramp_distance) {
    return distance / v + v / a;
  }
  return 2.0 * std::sqrt(distance / a);
}

MobileRoundReport MobileCollectionSim::run_round(EnergyLedger& ledger,
                                                 double start_time) {
  OBS_SPAN(obs::metric::kSimMobileRound);
  const auto& network = instance_->network();
  MDG_REQUIRE(ledger.size() == network.size(),
              "ledger does not match the network");

  MobileRoundReport report;
  report.round_energy.assign(network.size(), 0.0);

  EventQueue queue;
  // One-packet-per-round mode: generation happens at departure.
  if (config_.auto_generate && config_.data_rate_pkt_per_s == 0.0) {
    queue.schedule(start_time, [this, &ledger, &report] {
      for (std::size_t s = 0; s < buffer_.size(); ++s) {
        if (!ledger.alive(s)) {
          continue;
        }
        if (buffer_[s] < config_.buffer_capacity) {
          ++buffer_[s];
        } else {
          ++report.dropped;
        }
      }
    });
  }

  const geom::Point sink = instance_->sink();
  double clock = start_time;  // event scheduling cursor
  geom::Point where = sink;
  for (std::size_t i = 0; i < stop_positions_.size(); ++i) {
    const geom::Point stop = stop_positions_[i];
    const double travel = leg_travel_time(geom::distance(where, stop));
    report.travel_s += travel;
    clock += travel;
    // Arrival at stop i: catch up generation, then serve uploads.
    double service = 0.0;
    queue.schedule(clock, [this, i, stop, &ledger, &report, &service] {
      const auto& net = instance_->network();
      const auto& rad = net.radio();
      for (std::size_t s : stop_sensors_[i]) {
        if (!ledger.alive(s)) {
          continue;
        }
        const double hop = geom::distance(net.position(s), stop);
        const double joules = rad.tx_packet(hop);
        bool sensor_died = false;
        while (buffer_[s] > 0 && !sensor_died) {
          // One packet: attempt until acknowledged, the retry budget is
          // spent, or the battery dies mid-burst.
          bool acked = false;
          std::size_t attempts = 0;
          while (attempts < config_.max_upload_attempts) {
            ++attempts;
            report.round_energy[s] += joules;
            service += config_.packet_upload_s;
            const bool alive = ledger.consume(s, joules);
            const bool lost_attempt =
                config_.upload_loss_prob > 0.0 &&
                loss_rng_.chance(config_.upload_loss_prob);
            if (!lost_attempt) {
              acked = true;
            }
            if (!alive) {
              sensor_died = true;  // stop after this packet
            }
            if (acked || sensor_died) {
              break;
            }
          }
          report.retransmissions += attempts - 1;
          --buffer_[s];
          if (acked) {
            ++report.delivered;
          } else {
            ++report.lost;
          }
        }
      }
    });
    queue.run();
    report.service_s += service;
    clock += service;
    where = stop;
  }
  // Return leg.
  const double home = leg_travel_time(geom::distance(where, sink));
  report.travel_s += home;
  clock += home;
  queue.run();

  report.duration_s = clock - start_time;

  // Rate-driven generation: deposit the packets produced during this
  // round (they will be collected next round), tracked per sensor.
  if (config_.auto_generate && config_.data_rate_pkt_per_s > 0.0) {
    for (std::size_t s = 0; s < buffer_.size(); ++s) {
      if (!ledger.alive(s)) {
        continue;
      }
      residual_[s] += config_.data_rate_pkt_per_s * report.duration_s;
      const double whole = std::floor(residual_[s]);
      residual_[s] -= whole;
      const auto packets = static_cast<std::size_t>(whole);
      const std::size_t space = config_.buffer_capacity - buffer_[s];
      const std::size_t stored = std::min(packets, space);
      buffer_[s] += stored;
      report.dropped += packets - stored;
    }
  }
  for (std::size_t b : buffer_) {
    report.max_buffer = std::max(report.max_buffer, b);
  }
  last_generation_time_ = clock;
  MDG_OBS_COUNT(obs::metric::kSimMobileDelivered, report.delivered);
  MDG_OBS_COUNT(obs::metric::kSimMobileDropped, report.dropped);
  MDG_OBS_GAUGE(obs::metric::kSimMobileBufferPeak,
                static_cast<double>(report.max_buffer));
  return report;
}

std::size_t MobileCollectionSim::add_packets(std::size_t sensor,
                                             std::size_t count) {
  MDG_REQUIRE(sensor < buffer_.size(), "sensor index out of range");
  const std::size_t space = config_.buffer_capacity - buffer_[sensor];
  const std::size_t stored = std::min(count, space);
  buffer_[sensor] += stored;
  return count - stored;
}

std::size_t MobileCollectionSim::buffered(std::size_t sensor) const {
  MDG_REQUIRE(sensor < buffer_.size(), "sensor index out of range");
  return buffer_[sensor];
}

MobileLifetimeReport MobileCollectionSim::run_lifetime(std::size_t max_rounds) {
  const std::size_t n = instance_->sensor_count();
  MobileLifetimeReport report;
  if (n == 0) {
    return report;
  }
  EnergyLedger ledger(n, config_.initial_battery_j);
  const auto death_floor =
      static_cast<std::size_t>(std::ceil(static_cast<double>(n) * 0.9));
  double clock = 0.0;
  bool first_death_seen = false;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const MobileRoundReport r = run_round(ledger, clock);
    clock += r.duration_s;
    report.delivered_total += r.delivered;
    if (!first_death_seen && ledger.alive_count() < n) {
      report.rounds_first_death = round + 1;
      report.time_first_death_s = clock;
      first_death_seen = true;
    }
    if (ledger.alive_count() < death_floor) {
      report.rounds_10pct_death = round + 1;
      break;
    }
  }
  if (!first_death_seen) {
    report.rounds_first_death = max_rounds;
    report.time_first_death_s = clock;
  }
  if (report.rounds_10pct_death == 0) {
    report.rounds_10pct_death = report.rounds_first_death;
  }
  return report;
}

double MobileCollectionSim::steady_state_round_duration() const {
  const double travel = travel_time_;
  const auto n = static_cast<double>(instance_->sensor_count());
  if (config_.data_rate_pkt_per_s == 0.0) {
    return travel + n * config_.packet_upload_s;
  }
  const double load =
      n * config_.data_rate_pkt_per_s * config_.packet_upload_s;
  if (load >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return travel / (1.0 - load);
}

double MobileCollectionSim::sustainable_rate() const {
  const auto n = static_cast<double>(instance_->sensor_count());
  if (n == 0.0 || config_.packet_upload_s == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 1.0 / (n * config_.packet_upload_s);
}

}  // namespace mdg::sim

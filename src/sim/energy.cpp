#include "sim/energy.h"

#include "util/assert.h"

namespace mdg::sim {

EnergyLedger::EnergyLedger(std::size_t nodes, double initial_joules)
    : initial_(initial_joules), remaining_(nodes, initial_joules),
      alive_(nodes) {
  MDG_REQUIRE(initial_joules > 0.0, "batteries must start charged");
}

double EnergyLedger::remaining(std::size_t node) const {
  MDG_REQUIRE(node < remaining_.size(), "node out of range");
  return remaining_[node] > 0.0 ? remaining_[node] : 0.0;
}

double EnergyLedger::consumed(std::size_t node) const {
  return initial_ - remaining(node);
}

bool EnergyLedger::alive(std::size_t node) const {
  MDG_REQUIRE(node < remaining_.size(), "node out of range");
  return remaining_[node] > 0.0;
}

std::size_t EnergyLedger::alive_count() const { return alive_; }

bool EnergyLedger::consume(std::size_t node, double joules) {
  MDG_REQUIRE(node < remaining_.size(), "node out of range");
  MDG_REQUIRE(joules >= 0.0, "cannot consume negative energy");
  if (remaining_[node] <= 0.0) {
    return false;
  }
  remaining_[node] -= joules;
  if (remaining_[node] <= 0.0) {
    --alive_;
    return false;
  }
  return true;
}

std::vector<double> EnergyLedger::consumed_all() const {
  std::vector<double> out(remaining_.size());
  for (std::size_t v = 0; v < remaining_.size(); ++v) {
    out[v] = consumed(v);
  }
  return out;
}

}  // namespace mdg::sim

#include "sim/energy.h"

#include "core/instance.h"
#include "core/solution.h"
#include "util/assert.h"

namespace mdg::sim {

EnergyLedger::EnergyLedger(std::size_t nodes, double initial_joules)
    : initial_(initial_joules), remaining_(nodes, initial_joules),
      alive_(nodes) {
  MDG_REQUIRE(initial_joules > 0.0, "batteries must start charged");
}

double EnergyLedger::remaining(std::size_t node) const {
  MDG_REQUIRE(node < remaining_.size(), "node out of range");
  return remaining_[node] > 0.0 ? remaining_[node] : 0.0;
}

double EnergyLedger::consumed(std::size_t node) const {
  return initial_ - remaining(node);
}

bool EnergyLedger::alive(std::size_t node) const {
  MDG_REQUIRE(node < remaining_.size(), "node out of range");
  return remaining_[node] > 0.0;
}

std::size_t EnergyLedger::alive_count() const { return alive_; }

bool EnergyLedger::consume(std::size_t node, double joules) {
  MDG_REQUIRE(node < remaining_.size(), "node out of range");
  MDG_REQUIRE(joules >= 0.0, "cannot consume negative energy");
  if (remaining_[node] <= 0.0) {
    return false;
  }
  remaining_[node] -= joules;
  if (remaining_[node] <= 0.0) {
    --alive_;
    return false;
  }
  return true;
}

std::vector<double> EnergyLedger::consumed_all() const {
  std::vector<double> out(remaining_.size());
  for (std::size_t v = 0; v < remaining_.size(); ++v) {
    out[v] = consumed(v);
  }
  return out;
}

std::vector<double> relay_round_energy(const core::ShdgpInstance& instance,
                                       const core::ShdgpSolution& solution) {
  const net::SensorNetwork& network = instance.network();
  const net::RadioModel& radio = network.radio();
  std::vector<double> joules(network.size(), 0.0);
  const std::vector<std::size_t> no_path;
  for (std::size_t s = 0; s < solution.assignment.size(); ++s) {
    const geom::Point pp = solution.polling_points[solution.assignment[s]];
    const std::vector<std::size_t>& path =
        s < solution.relay_paths.size() ? solution.relay_paths[s] : no_path;
    const geom::Point first =
        path.empty() ? pp : network.position(path.front());
    joules[s] += radio.tx_packet(geom::distance(network.position(s), first));
    for (std::size_t i = 0; i < path.size(); ++i) {
      const geom::Point next =
          i + 1 < path.size() ? network.position(path[i + 1]) : pp;
      joules[path[i]] +=
          radio.relay_packet(geom::distance(network.position(path[i]), next));
    }
  }
  return joules;
}

}  // namespace mdg::sim

// Aligned-console + CSV table output for benchmark harnesses.
//
// Every bench binary reproduces one table/figure of the paper; Table gives
// them a uniform way to print the series the paper reports and optionally
// dump machine-readable CSV next to it.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace mdg {

/// A value in a table cell: text, integer, or real (printed with fixed
/// precision).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  /// `title` is printed as a header line; `precision` controls how many
  /// decimals real-valued cells get.
  explicit Table(std::string title, int precision = 2);

  /// Sets the column headers. Must be called before adding rows.
  void set_header(std::vector<std::string> names);

  /// Appends one row; the cell count must match the header.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return header_.size(); }

  /// Renders an aligned, boxed table.
  void print(std::ostream& out) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(std::ostream& out) const;

  /// Formats a single cell with this table's precision.
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

 private:
  std::string title_;
  int precision_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace mdg

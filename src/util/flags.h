// Tiny command-line flag parser for examples and bench drivers.
//
// Supports --name=value and --name value forms plus boolean switches
// (--verbose / --verbose=false). Unknown flags are an error so typos in
// experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mdg {

class Flags {
 public:
  /// Parses argv. Throws PreconditionError on malformed input or on flags
  /// not subsequently declared via the typed getters (checked by
  /// finish()).
  Flags(int argc, const char* const* argv);

  /// Typed getters; each also *declares* the flag as known.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& default_value);
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long default_value);
  [[nodiscard]] double get_double(const std::string& name,
                                  double default_value);
  [[nodiscard]] bool get_bool(const std::string& name, bool default_value);

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Verifies every flag the user passed was declared by a getter. Call
  /// after all getters.
  void finish() const;

  [[nodiscard]] const std::string& program_name() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace mdg

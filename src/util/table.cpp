#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace mdg {

Table::Table(std::string title, int precision)
    : title_(std::move(title)), precision_(precision) {
  MDG_REQUIRE(precision >= 0 && precision <= 12, "unreasonable precision");
}

void Table::set_header(std::vector<std::string> names) {
  MDG_REQUIRE(rows_.empty(), "set_header() must precede add_row()");
  MDG_REQUIRE(!names.empty(), "a table needs at least one column");
  header_ = std::move(names);
}

void Table::add_row(std::vector<Cell> cells) {
  MDG_REQUIRE(!header_.empty(), "set_header() before add_row()");
  MDG_REQUIRE(cells.size() == header_.size(),
              "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) {
    return *text;
  }
  if (const auto* integer = std::get_if<long long>(&cell)) {
    return std::to_string(*integer);
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  const auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    out << '\n';
  };

  out << "== " << title_ << " ==\n";
  rule();
  line(header_);
  rule();
  for (const auto& row : rendered) {
    line(row);
  }
  rule();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') {
      quoted += '"';
    }
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void Table::write_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(header_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(format_cell(row[c]));
    }
    out << '\n';
  }
}

}  // namespace mdg

#include "util/flags.h"

#include <cstdlib>

#include "util/assert.h"

namespace mdg {

Flags::Flags(int argc, const char* const* argv) {
  MDG_REQUIRE(argc >= 1 && argv != nullptr, "argv must hold a program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    MDG_REQUIRE(!arg.empty(), "bare '--' is not a valid flag");
    const auto eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // --name value form, unless the next token is another flag (then the
      // flag is a boolean switch).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    MDG_REQUIRE(!values_.contains(name), "flag --" + name + " given twice");
    values_[name] = value;
    consumed_[name] = false;
  }
}

std::optional<std::string> Flags::raw(const std::string& name) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) {
  return raw(name).value_or(default_value);
}

long long Flags::get_int(const std::string& name, long long default_value) {
  const auto value = raw(name);
  if (!value) {
    return default_value;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  MDG_REQUIRE(end != nullptr && *end == '\0' && !value->empty(),
              "flag --" + name + " expects an integer, got '" + *value + "'");
  return parsed;
}

double Flags::get_double(const std::string& name, double default_value) {
  const auto value = raw(name);
  if (!value) {
    return default_value;
  }
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  MDG_REQUIRE(end != nullptr && *end == '\0' && !value->empty(),
              "flag --" + name + " expects a number, got '" + *value + "'");
  return parsed;
}

bool Flags::get_bool(const std::string& name, bool default_value) {
  const auto value = raw(name);
  if (!value) {
    return default_value;
  }
  if (*value == "true" || *value == "1" || *value == "yes" ||
      *value == "on") {
    return true;
  }
  if (*value == "false" || *value == "0" || *value == "no" ||
      *value == "off") {
    return false;
  }
  MDG_REQUIRE(false, "flag --" + name + " expects a boolean, got '" + *value +
                         "'");
  return default_value;  // unreachable
}

void Flags::finish() const {
  for (const auto& [name, used] : consumed_) {
    MDG_REQUIRE(used, "unknown flag --" + name);
  }
}

}  // namespace mdg

// Streaming and batch statistics used by the Monte-Carlo harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mdg {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples. Mergeable so per-thread accumulators can be combined.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a batch of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary over the samples. Returns a zeroed Summary for an
/// empty span.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Linear-interpolated percentile of *sorted* samples, q in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// Mean of samples; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> samples);

/// Jain's fairness index in (0, 1]: 1 means perfectly uniform values.
/// Used to quantify how evenly energy consumption spreads across sensors.
/// Returns 1 for empty or all-zero input.
[[nodiscard]] double jain_fairness(std::span<const double> values);

}  // namespace mdg

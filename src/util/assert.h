// Lightweight contract checking for the mdg library.
//
// MDG_REQUIRE validates caller-supplied arguments (precondition violations
// are programming errors on the caller's side); MDG_ASSERT checks internal
// invariants. Both throw so that tests can exercise the failure paths, and
// both stay enabled in Release builds: planner correctness depends on these
// invariants and the checks are never on a hot inner loop.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mdg {

/// Thrown when a function precondition is violated by the caller.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant of the library does not hold.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);

}  // namespace detail
}  // namespace mdg

#define MDG_REQUIRE(expr, msg)                                            \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mdg::detail::throw_precondition(#expr, __FILE__, __LINE__, msg);  \
    }                                                                     \
  } while (false)

#define MDG_ASSERT(expr, msg)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::mdg::detail::throw_invariant(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)

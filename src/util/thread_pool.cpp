#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "util/assert.h"

namespace mdg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MDG_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::unique_lock lock(mutex_);
    MDG_REQUIRE(!shutting_down_, "pool is shutting down");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::unique_lock lock(mutex_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop();
  }
  run_task(std::move(task));
  return true;
}

void ThreadPool::run_task(std::function<void()> task) {
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::unique_lock lock(mutex_);
    if (error && !first_error_) {
      first_error_ = error;
    }
    --in_flight_;
    if (in_flight_ == 0) {
      all_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    run_task(std::move(task));
  }
}

namespace {

/// Completion state one parallel_for call waits on. Chunks signal their
/// own latch, never the pool-wide idle state, so a nested call only
/// waits for its own iterations.
struct ForLatch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr chunk_error) {
    std::unique_lock lock(mutex);
    if (chunk_error && !error) {
      error = chunk_error;
    }
    if (--remaining == 0) {
      done.notify_all();
    }
  }
};

void run_parallel(ThreadPool& pool, std::size_t n, std::size_t workers,
                  const std::function<void(std::size_t)>& fn) {
  // Dynamic chunking: enough chunks for balance, few enough for low
  // overhead.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto latch = std::make_shared<ForLatch>();
  latch->remaining = chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([next, latch, &fn, n, chunk_size] {
      std::exception_ptr error;
      try {
        for (;;) {
          const std::size_t begin = next->fetch_add(chunk_size);
          if (begin >= n) {
            break;
          }
          const std::size_t end = std::min(begin + chunk_size, n);
          for (std::size_t i = begin; i < end; ++i) {
            fn(i);
          }
        }
      } catch (...) {
        error = std::current_exception();
        // Drain the index space so sibling chunks stop promptly.
        next->store(n);
      }
      latch->finish_one(error);
    });
  }
  // Help drain the queue while waiting: the tasks we pick up may belong
  // to this loop or to a sibling one — either way the system makes
  // progress and no worker (or caller) ever blocks on foreign work.
  for (;;) {
    {
      std::unique_lock lock(latch->mutex);
      if (latch->remaining == 0) {
        break;
      }
    }
    if (!pool.try_run_one()) {
      std::unique_lock lock(latch->mutex);
      latch->done.wait_for(lock, std::chrono::milliseconds(1),
                           [&] { return latch->remaining == 0; });
    }
  }
  if (latch->error) {
    std::rethrow_exception(latch->error);
  }
}

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  run_parallel(pool, n, workers, fn);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t workers =
      std::min(default_pool().thread_count(), planning_threads());
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  run_parallel(default_pool(), n, workers, fn);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

namespace {

/// 0 = no explicit override (fall back to MDG_THREADS, then hardware).
std::atomic<std::size_t> g_planning_override{0};

std::size_t env_planning_threads() {
  static const std::size_t cached = [] {
    const char* env = std::getenv("MDG_THREADS");
    if (env != nullptr) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    }
    return std::size_t{0};
  }();
  return cached;
}

}  // namespace

std::size_t planning_threads() {
  const std::size_t override = g_planning_override.load();
  if (override > 0) {
    return override;
  }
  const std::size_t env = env_planning_threads();
  if (env > 0) {
    return env;
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void set_planning_threads(std::size_t threads) {
  g_planning_override.store(threads);
}

ScopedPlanningThreads::ScopedPlanningThreads(std::size_t threads)
    : saved_(g_planning_override.load()) {
  g_planning_override.store(threads);
}

ScopedPlanningThreads::~ScopedPlanningThreads() {
  g_planning_override.store(saved_);
}

}  // namespace mdg

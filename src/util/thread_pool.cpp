#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/assert.h"

namespace mdg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MDG_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    std::unique_lock lock(mutex_);
    MDG_REQUIRE(!shutting_down_, "pool is shutting down");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  // Dynamic chunking: enough chunks for balance, few enough for low
  // overhead.
  const std::size_t chunks = std::min(n, workers * 4);
  std::atomic<std::size_t> next{0};
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&next, &fn, n, chunk_size] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk_size);
        if (begin >= n) {
          return;
        }
        const std::size_t end = std::min(begin + chunk_size, n);
        for (std::size_t i = begin; i < end; ++i) {
          fn(i);
        }
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(default_pool(), n, fn);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mdg

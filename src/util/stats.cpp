#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace mdg {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double percentile_sorted(std::span<const double> sorted, double q) {
  MDG_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) {
    return s;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats acc;
  for (double x : sorted) {
    acc.add(x);
  }
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

double mean_of(std::span<const double> samples) {
  RunningStats acc;
  for (double x : samples) {
    acc.add(x);
  }
  return acc.mean();
}

double jain_fairness(std::span<const double> values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq == 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace mdg

// Deterministic pseudo-random number generation for reproducible
// Monte-Carlo experiments.
//
// The evaluation harness runs hundreds of independent trials per data
// point, potentially in parallel; each trial derives its own Rng from a
// (base_seed, trial_index) pair so results are identical regardless of the
// execution schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace mdg {

/// xoshiro256** PRNG seeded via SplitMix64. Satisfies the C++
/// UniformRandomBitGenerator requirements so it can also feed <random>
/// distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Any seed (including 0) is valid; SplitMix64
  /// expansion guarantees a non-degenerate internal state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Deterministically derives an independent stream for a sub-task, e.g.
  /// one Monte-Carlo trial: Rng(base).fork(trial) is schedule-independent.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Index uniform in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p);

  /// Poisson-distributed count with mean `lambda` >= 0 (Knuth's method
  /// for small means, normal approximation beyond lambda = 30).
  std::size_t poisson(double lambda);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mdg

// Minimal work-sharing thread pool plus a blocking parallel_for.
//
// The evaluation harness averages each data point over hundreds of
// independent Monte-Carlo trials; those trials are embarrassingly parallel
// and run via parallel_for with per-trial forked RNG streams so results are
// bit-identical at any thread count (including 1).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mdg {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (fail-fast, matching the harness's needs).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool, returning when all calls
/// completed. Work is chunked to limit scheduling overhead. fn must be
/// safe to invoke concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload using a process-wide default pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// The process-wide pool used by the convenience overload.
ThreadPool& default_pool();

}  // namespace mdg

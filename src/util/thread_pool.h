// Work-sharing thread pool plus a blocking, nestable parallel_for.
//
// The evaluation harness averages each data point over hundreds of
// independent Monte-Carlo trials, and the planners themselves fan out
// coverage builds and multi-start tour portfolios; both layers funnel
// through parallel_for with per-index forked state so results are
// bit-identical at any thread count (including 1).
//
// Nesting is safe: a parallel_for issued from inside a pool task does
// not block a worker on unrelated work — the calling thread helps drain
// the queue until its own iterations are done. Exceptions thrown by
// tasks are captured and rethrown to the waiting caller (wait_idle for
// submit(), the parallel_for call itself for its iterations).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mdg {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. If the task throws, the first exception is
  /// captured and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised since the previous wait_idle().
  /// The pool stays usable after an exception (drained and reusable).
  void wait_idle();

  /// Runs one queued task on the calling thread if any is pending.
  /// Returns false when the queue was empty. Lets waiting callers help
  /// drain the queue, which is what makes nested parallel_for safe.
  bool try_run_one();

 private:
  void worker_loop();
  void run_task(std::function<void()> task);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, n) across the pool, returning when all calls
/// completed. Work is chunked to limit scheduling overhead; the calling
/// thread helps execute queued work while it waits, so calls may be
/// nested freely. fn must be safe to invoke concurrently for distinct i.
/// The first exception thrown by any iteration is rethrown here after
/// every iteration has settled.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload on the process-wide default pool, capped at
/// planning_threads(). With planning_threads() <= 1 the loop runs
/// serially on the calling thread — the reference execution every
/// parallel kernel must match bit-for-bit.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// The process-wide pool used by the convenience overload. Sized to
/// hardware concurrency; planning_threads() caps how much of it each
/// parallel_for uses.
ThreadPool& default_pool();

/// Process-wide planning parallelism: the explicit set_planning_threads
/// value if any, else the MDG_THREADS environment variable, else
/// hardware concurrency. Always >= 1.
[[nodiscard]] std::size_t planning_threads();

/// Overrides planning_threads() (0 = back to auto: MDG_THREADS env or
/// hardware concurrency). Wired to the --threads flag on the CLI and
/// bench drivers. Affects scheduling only — planner output is
/// byte-identical at every setting by design.
void set_planning_threads(std::size_t threads);

/// RAII planning-thread override for tests and baseline measurements.
class ScopedPlanningThreads {
 public:
  explicit ScopedPlanningThreads(std::size_t threads);
  ~ScopedPlanningThreads();
  ScopedPlanningThreads(const ScopedPlanningThreads&) = delete;
  ScopedPlanningThreads& operator=(const ScopedPlanningThreads&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace mdg

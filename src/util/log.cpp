#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mdg {
namespace {

std::atomic<int> g_level{-1};  // -1: not yet initialised from env

LogLevel init_from_env() {
  const char* env = std::getenv("MDG_LOG_LEVEL");
  return env == nullptr ? LogLevel::kOff : parse_log_level(env);
}

}  // namespace

LogLevel log_level() {
  int current = g_level.load(std::memory_order_relaxed);
  if (current < 0) {
    const LogLevel from_env = init_from_env();
    int expected = -1;
    g_level.compare_exchange_strong(expected, static_cast<int>(from_env),
                                    std::memory_order_relaxed);
    current = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(current);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level()) &&
         log_level() != LogLevel::kOff;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // Serialise whole lines; interleaved characters from worker threads
  // would make the log useless.
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::cerr << "[mdg:" << to_string(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace mdg

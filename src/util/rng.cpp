#include "util/rng.h"

#include <cmath>

namespace mdg {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the child stream id into a copy of the parent state through
  // SplitMix64 so sibling streams are decorrelated.
  std::uint64_t mix = state_[0] ^ (0xd1342543de82ef95ULL * (stream + 1));
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MDG_REQUIRE(lo < hi, "uniform() needs lo < hi");
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  MDG_REQUIRE(lo <= hi, "uniform_int() needs lo <= hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) {  // full 64-bit range
    return next_u64();
  }
  // Debiased modulo (Lemire-style rejection).
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span + 1) % span;
  std::uint64_t draw = next_u64();
  while (draw > limit) {
    draw = next_u64();
  }
  return lo + draw % span;
}

std::size_t Rng::index(std::size_t n) {
  MDG_REQUIRE(n > 0, "index() needs a non-empty range");
  return static_cast<std::size_t>(uniform_int(0, n - 1));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  MDG_REQUIRE(stddev >= 0.0, "normal() needs stddev >= 0");
  return mean + stddev * normal();
}

bool Rng::chance(double p) {
  MDG_REQUIRE(p >= 0.0 && p <= 1.0, "chance() needs p in [0, 1]");
  return next_double() < p;
}

std::size_t Rng::poisson(double lambda) {
  MDG_REQUIRE(lambda >= 0.0, "poisson() needs lambda >= 0");
  if (lambda == 0.0) {
    return 0;
  }
  if (lambda > 30.0) {
    // Normal approximation with continuity correction.
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0 : static_cast<std::size_t>(draw + 0.5);
  }
  // Knuth: multiply uniforms until the product drops below e^-lambda.
  const double limit = std::exp(-lambda);
  std::size_t count = 0;
  double product = next_double();
  while (product > limit) {
    ++count;
    product *= next_double();
  }
  return count;
}

}  // namespace mdg

#include "util/assert.h"

namespace mdg::detail {
namespace {

std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream out;
  out << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    out << " — " << msg;
  }
  return out.str();
}

}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw InvariantError(format("invariant", expr, file, line, msg));
}

}  // namespace mdg::detail

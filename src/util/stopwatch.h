// Wall-clock stopwatch for harness timing columns.
#pragma once

#include <chrono>

namespace mdg {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset.
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  [[nodiscard]] double elapsed_s() const { return elapsed_ms() / 1e3; }

  /// Times a callable, returning milliseconds.
  template <typename F>
  [[nodiscard]] static double time_ms(F&& fn) {
    const Stopwatch watch;
    fn();
    return watch.elapsed_ms();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mdg

// Minimal leveled logging for long-running solvers.
//
// Library code stays silent by default; the exact planner and other
// slow paths emit progress at kDebug so operators can watch a stuck
// solve (`MDG_LOG_LEVEL=debug ./bench_t1_optimal_gap`). Output goes to
// stderr to keep bench tables on stdout clean.
#pragma once

#include <sstream>
#include <string>

namespace mdg {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Current threshold. Initialised once from the MDG_LOG_LEVEL
/// environment variable (debug|info|warning|error|off, default off).
[[nodiscard]] LogLevel log_level();

/// Overrides the threshold at runtime (tests, tools).
void set_log_level(LogLevel level);

/// Parses a level name; returns kOff for unknown names.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

[[nodiscard]] const char* to_string(LogLevel level);

/// True when `level` would currently be emitted.
[[nodiscard]] bool log_enabled(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace mdg

/// Usage: MDG_LOG(kInfo) << "tour " << length << " m";
/// The stream expression is only evaluated when the level is enabled.
#define MDG_LOG(level_name)                                                  \
  for (bool mdg_log_once =                                                   \
           ::mdg::log_enabled(::mdg::LogLevel::level_name);                  \
       mdg_log_once; mdg_log_once = false)                                   \
  ::mdg::detail::LogLine(::mdg::LogLevel::level_name)

namespace mdg::detail {

/// One log statement: accumulates and emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mdg::detail

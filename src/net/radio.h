// First-order radio energy model (Heinzelman et al.), the standard WSN
// energy accounting of the paper's era, with the optional two-ray
// extension:
//
//   E_tx(b, d) = E_elec * b + eps_amp * b * d^2          (d <  d0)
//   E_tx(b, d) = E_elec * b + eps_mp  * b * d^4          (d >= d0)
//   E_rx(b)    = E_elec * b
//
// d0 = sqrt(eps_amp / eps_mp) is the crossover where the two amplifier
// laws meet; eps_mp = 0 disables the multipath term (the plain
// free-space model). All energies in joules, payload b in bits,
// distance d in metres.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace mdg::net {

struct RadioModel {
  double e_elec = 50e-9;    ///< J/bit electronics energy
  double eps_amp = 100e-12; ///< J/bit/m^2 free-space amplifier energy
  double eps_mp = 0.0;      ///< J/bit/m^4 multipath amplifier (0 = off)
  std::size_t packet_bits = 4000;  ///< payload of one data packet

  /// Distance where the multipath law takes over; +inf when disabled.
  [[nodiscard]] double crossover_distance() const {
    return eps_mp > 0.0 ? std::sqrt(eps_amp / eps_mp)
                        : std::numeric_limits<double>::infinity();
  }

  /// Energy to transmit `bits` over distance `d` metres.
  [[nodiscard]] double tx_energy(std::size_t bits, double d) const {
    const double b = static_cast<double>(bits);
    if (eps_mp > 0.0 && d >= crossover_distance()) {
      return e_elec * b + eps_mp * b * d * d * d * d;
    }
    return e_elec * b + eps_amp * b * d * d;
  }

  /// Energy to receive `bits`.
  [[nodiscard]] double rx_energy(std::size_t bits) const {
    return e_elec * static_cast<double>(bits);
  }

  /// Energy for one packet transmission over distance d.
  [[nodiscard]] double tx_packet(double d) const {
    return tx_energy(packet_bits, d);
  }

  /// Energy for one packet reception.
  [[nodiscard]] double rx_packet() const { return rx_energy(packet_bits); }

  /// Energy a relay spends moving one packet one hop onward (rx + tx).
  [[nodiscard]] double relay_packet(double d) const {
    return rx_packet() + tx_packet(d);
  }
};

}  // namespace mdg::net

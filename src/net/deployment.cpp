#include "net/deployment.h"

#include <cmath>

#include "util/assert.h"

namespace mdg::net {

std::vector<geom::Point> deploy_uniform(std::size_t count,
                                        const geom::Aabb& field, Rng& rng) {
  MDG_REQUIRE(field.width() > 0.0 && field.height() > 0.0,
              "field must have positive area");
  std::vector<geom::Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(
        {rng.uniform(field.lo.x, field.hi.x), rng.uniform(field.lo.y, field.hi.y)});
  }
  return points;
}

std::vector<geom::Point> deploy_grid_jitter(std::size_t count,
                                            const geom::Aabb& field,
                                            double jitter, Rng& rng) {
  MDG_REQUIRE(jitter >= 0.0 && jitter <= 0.5, "jitter must be in [0, 0.5]");
  if (count == 0) {
    return {};
  }
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(count))));
  const double pitch_x = field.width() / static_cast<double>(side);
  const double pitch_y = field.height() / static_cast<double>(side);
  std::vector<geom::Point> points;
  points.reserve(count);
  for (std::size_t row = 0; row < side && points.size() < count; ++row) {
    for (std::size_t col = 0; col < side && points.size() < count; ++col) {
      geom::Point p{
          field.lo.x + (static_cast<double>(col) + 0.5) * pitch_x,
          field.lo.y + (static_cast<double>(row) + 0.5) * pitch_y};
      if (jitter > 0.0) {
        p.x += rng.uniform(-jitter, jitter) * pitch_x;
        p.y += rng.uniform(-jitter, jitter) * pitch_y;
      }
      points.push_back(field.clamp(p));
    }
  }
  return points;
}

std::vector<geom::Point> deploy_gaussian_clusters(std::size_t count,
                                                  const geom::Aabb& field,
                                                  std::size_t clusters,
                                                  double stddev, Rng& rng) {
  MDG_REQUIRE(clusters > 0, "need at least one cluster");
  MDG_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  std::vector<geom::Point> centers = deploy_uniform(clusters, field, rng);
  std::vector<geom::Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const geom::Point c = centers[i % clusters];
    points.push_back(field.clamp(
        {rng.normal(c.x, stddev), rng.normal(c.y, stddev)}));
  }
  return points;
}

std::vector<geom::Point> deploy_two_islands(std::size_t count,
                                            const geom::Aabb& field,
                                            double gap_fraction, Rng& rng) {
  MDG_REQUIRE(gap_fraction > 0.0 && gap_fraction < 1.0,
              "gap fraction must be in (0, 1)");
  const double island_width = field.width() * (1.0 - gap_fraction) / 2.0;
  const geom::Aabb left{{field.lo.x, field.lo.y},
                        {field.lo.x + island_width, field.hi.y}};
  const geom::Aabb right{{field.hi.x - island_width, field.lo.y},
                         {field.hi.x, field.hi.y}};
  std::vector<geom::Point> points = deploy_uniform(count / 2, left, rng);
  const std::vector<geom::Point> other =
      deploy_uniform(count - count / 2, right, rng);
  points.insert(points.end(), other.begin(), other.end());
  return points;
}

}  // namespace mdg::net

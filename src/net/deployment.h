// Sensor deployment generators.
//
// The paper's evaluation uses N sensors uniformly random over an L x L
// field with the sink at the centre; the extra generators (grid-with-
// jitter, Gaussian clusters, two-island) exercise the planners on the
// non-uniform and *disconnected* topologies that motivate mobile
// collection in the first place.
#pragma once

#include <vector>

#include "geom/aabb.h"
#include "geom/point.h"
#include "util/rng.h"

namespace mdg::net {

/// N points i.i.d. uniform over the field.
[[nodiscard]] std::vector<geom::Point> deploy_uniform(std::size_t count,
                                                      const geom::Aabb& field,
                                                      Rng& rng);

/// Near-regular grid: points on a ceil(sqrt(N))-grid, jittered by
/// `jitter` (as a fraction of the grid pitch, in [0, 0.5]), truncated to
/// exactly `count` points inside the field.
[[nodiscard]] std::vector<geom::Point> deploy_grid_jitter(
    std::size_t count, const geom::Aabb& field, double jitter, Rng& rng);

/// `clusters` Gaussian blobs with the given standard deviation; centres
/// uniform over the field, samples clamped into the field.
[[nodiscard]] std::vector<geom::Point> deploy_gaussian_clusters(
    std::size_t count, const geom::Aabb& field, std::size_t clusters,
    double stddev, Rng& rng);

/// Two equally-sized uniform islands in opposite field corners separated
/// by an empty gap of width `gap_fraction` * field width — guaranteed
/// disconnected for transmission ranges below the gap.
[[nodiscard]] std::vector<geom::Point> deploy_two_islands(
    std::size_t count, const geom::Aabb& field, double gap_fraction, Rng& rng);

}  // namespace mdg::net

#include "net/sensor_network.h"

#include <algorithm>

#include "net/deployment.h"
#include "util/assert.h"

namespace mdg::net {
namespace {

graph::Graph build_unit_disk_graph(const std::vector<geom::Point>& positions,
                                   const geom::SpatialGrid& grid,
                                   double range) {
  std::vector<graph::Edge> edges;
  for (std::size_t u = 0; u < positions.size(); ++u) {
    grid.for_each_in_radius(positions[u], range, [&](std::size_t v) {
      if (v > u) {  // each undirected pair once; also drops self
        edges.push_back({u, v, geom::distance(positions[u], positions[v])});
      }
    });
  }
  return graph::Graph(positions.size(), edges);
}

}  // namespace

SensorNetwork::SensorNetwork(std::vector<geom::Point> positions,
                             geom::Point sink, geom::Aabb field, double range,
                             RadioModel radio)
    : positions_(std::move(positions)),
      sink_(sink),
      field_(field),
      range_(range),
      radio_(radio),
      grid_(positions_, range > 0.0 ? range : 1.0),
      graph_(build_unit_disk_graph(positions_, grid_, range_)),
      components_(graph::connected_components(graph_)) {
  MDG_REQUIRE(range > 0.0, "transmission range must be positive");
  for (const geom::Point& p : positions_) {
    MDG_REQUIRE(field_.contains(p), "sensor outside the deployment field");
  }
  sink_neighbors_ = sensors_within(sink_, range_);
  std::sort(sink_neighbors_.begin(), sink_neighbors_.end());
}

geom::Point SensorNetwork::position(std::size_t v) const {
  MDG_REQUIRE(v < positions_.size(), "sensor index out of range");
  return positions_[v];
}

std::vector<std::size_t> SensorNetwork::sensors_within(geom::Point center,
                                                       double radius) const {
  return grid_.query(center, radius);
}

std::optional<std::size_t> SensorNetwork::nearest_to_sink() const {
  const std::size_t idx = grid_.nearest(sink_);
  if (idx == geom::SpatialGrid::npos) {
    return std::nullopt;
  }
  return idx;
}

bool SensorNetwork::sink_reachable_by_all() const {
  if (positions_.empty()) {
    return true;
  }
  if (sink_neighbors_.empty()) {
    return false;
  }
  // Every component must contain at least one sink neighbour.
  std::vector<bool> has_gateway(components_.count, false);
  for (std::size_t v : sink_neighbors_) {
    has_gateway[components_.label[v]] = true;
  }
  return std::all_of(has_gateway.begin(), has_gateway.end(),
                     [](bool ok) { return ok; });
}

SensorNetwork make_uniform_network(std::size_t count, double side,
                                   double range, Rng& rng, RadioModel radio) {
  const geom::Aabb field = geom::Aabb::square(side);
  return SensorNetwork(deploy_uniform(count, field, rng), field.center(),
                       field, range, radio);
}

}  // namespace mdg::net

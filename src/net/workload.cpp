#include "net/workload.h"

#include <algorithm>

#include "util/assert.h"

namespace mdg::net {

WorkloadGenerator::WorkloadGenerator(const net::SensorNetwork& network,
                                     WorkloadConfig config,
                                     std::uint64_t seed)
    : network_(&network), config_(config), rng_(seed) {
  MDG_REQUIRE(config.base_rate >= 0.0, "base rate cannot be negative");
  MDG_REQUIRE(config.events_per_round >= 0.0,
              "event rate cannot be negative");
  MDG_REQUIRE(config.event_radius > 0.0, "event radius must be positive");
  MDG_REQUIRE(config.event_intensity >= 0.0,
              "event intensity cannot be negative");
  MDG_REQUIRE(config.event_duration_rounds >= 1,
              "events must last at least one round");
}

std::vector<std::size_t> WorkloadGenerator::next_round() {
  const auto& network = *network_;
  std::vector<std::size_t> packets(network.size(), 0);

  // Background traffic.
  if (config_.base_rate > 0.0) {
    for (std::size_t s = 0; s < network.size(); ++s) {
      packets[s] += rng_.poisson(config_.base_rate);
    }
  }

  // Ignite new events.
  const std::size_t births = rng_.poisson(config_.events_per_round);
  for (std::size_t b = 0; b < births; ++b) {
    const geom::Aabb& field = network.field();
    events_.push_back({{rng_.uniform(field.lo.x, field.hi.x),
                        rng_.uniform(field.lo.y, field.hi.y)},
                       config_.event_duration_rounds});
  }

  // Burning events excite their neighbourhoods.
  for (Event& event : events_) {
    network.spatial_index().for_each_in_radius(
        event.center, config_.event_radius, [&](std::size_t s) {
          const double d =
              geom::distance(network.position(s), event.center);
          const double kernel =
              std::max(0.0, 1.0 - d / config_.event_radius);
          packets[s] += rng_.poisson(config_.event_intensity * kernel);
        });
    --event.rounds_left;
  }
  events_.erase(std::remove_if(events_.begin(), events_.end(),
                               [](const Event& e) {
                                 return e.rounds_left == 0;
                               }),
                events_.end());

  for (std::size_t count : packets) {
    total_ += count;
  }
  return packets;
}

}  // namespace mdg::net

// The wireless sensor network model: sensor positions, a static data
// sink, a common transmission range, and the induced unit-disk
// connectivity graph.
//
// This is the object every planner, baseline and simulator consumes. The
// sink participates in *uploads* (a collector tour starts and ends there,
// and the multihop baseline routes to it) but is not a sensor: the
// connectivity graph is over sensors only, with sink adjacency exposed
// separately, matching the papers' node-count conventions.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "geom/aabb.h"
#include "geom/point.h"
#include "geom/spatial_grid.h"
#include "graph/components.h"
#include "graph/graph.h"
#include "net/radio.h"
#include "util/rng.h"

namespace mdg::net {

class SensorNetwork {
 public:
  /// Builds the network and its unit-disk graph. `range` (Rs) must be
  /// positive; `positions` must all lie inside `field`.
  SensorNetwork(std::vector<geom::Point> positions, geom::Point sink,
                geom::Aabb field, double range,
                RadioModel radio = RadioModel{});

  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] const std::vector<geom::Point>& positions() const {
    return positions_;
  }
  [[nodiscard]] geom::Point position(std::size_t v) const;
  [[nodiscard]] geom::Point sink() const { return sink_; }
  [[nodiscard]] const geom::Aabb& field() const { return field_; }
  [[nodiscard]] double range() const { return range_; }
  [[nodiscard]] const RadioModel& radio() const { return radio_; }

  /// Unit-disk connectivity among sensors (edge weight = distance).
  [[nodiscard]] const graph::Graph& connectivity() const { return graph_; }

  /// Sensors within transmission range of the sink (they can upload to a
  /// static sink in one hop).
  [[nodiscard]] const std::vector<std::size_t>& sink_neighbors() const {
    return sink_neighbors_;
  }

  /// Sensors within `radius` of an arbitrary query point.
  [[nodiscard]] std::vector<std::size_t> sensors_within(geom::Point center,
                                                        double radius) const;

  /// Sensors within the transmission range of `center` — the set a
  /// collector pausing at `center` can poll in a single hop.
  [[nodiscard]] std::vector<std::size_t> coverable_from(
      geom::Point center) const {
    return sensors_within(center, range_);
  }

  /// Sensor nearest to the sink (the natural SPT root); nullopt when the
  /// network is empty.
  [[nodiscard]] std::optional<std::size_t> nearest_to_sink() const;

  /// Connected components of the sensor connectivity graph.
  [[nodiscard]] const graph::Components& components() const {
    return components_;
  }

  /// True when every sensor can reach the sink by multihop relay (i.e.
  /// one component containing a sink neighbour covers everything).
  [[nodiscard]] bool sink_reachable_by_all() const;

  /// Spatial index over sensor positions (cell size = Rs).
  [[nodiscard]] const geom::SpatialGrid& spatial_index() const {
    return grid_;
  }

 private:
  std::vector<geom::Point> positions_;
  geom::Point sink_;
  geom::Aabb field_;
  double range_;
  RadioModel radio_;
  geom::SpatialGrid grid_;
  graph::Graph graph_;
  graph::Components components_;
  std::vector<std::size_t> sink_neighbors_;
};

/// Convenience builder matching the papers' standard setup: N uniform
/// sensors over an L x L square with the sink at the centre.
[[nodiscard]] SensorNetwork make_uniform_network(std::size_t count,
                                                 double side, double range,
                                                 Rng& rng,
                                                 RadioModel radio = RadioModel{});

}  // namespace mdg::net

#include "tsp/lower_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/mst.h"
#include "util/assert.h"

namespace mdg::tsp {

double mst_lower_bound(std::span<const geom::Point> points) {
  return graph::euclidean_mst(points).total_weight;
}

namespace {

// One 1-tree evaluation under node potentials pi: MST over vertices
// 1..n-1 with modified weights d(i,j) + pi[i] + pi[j], plus the two
// cheapest modified edges from vertex 0, minus 2 * sum(pi).
// Returns the bound value and each vertex's degree in the 1-tree.
double one_tree_value(std::span<const geom::Point> points,
                      const std::vector<double>& pi,
                      std::vector<int>& degree) {
  const std::size_t n = points.size();
  degree.assign(n, 0);

  // Dense Prim over vertices 1..n-1 with modified weights.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> link(n, 1);
  std::vector<bool> in_tree(n, false);
  const auto mod = [&](std::size_t i, std::size_t j) {
    return geom::distance(points[i], points[j]) + pi[i] + pi[j];
  };

  double tree_weight = 0.0;
  in_tree[1] = true;
  std::size_t current = 1;
  for (std::size_t step = 2; step < n; ++step) {
    std::size_t next = 0;
    double next_d = kInf;
    for (std::size_t v = 1; v < n; ++v) {
      if (in_tree[v]) {
        continue;
      }
      const double w = mod(current, v);
      if (w < best[v]) {
        best[v] = w;
        link[v] = current;
      }
      if (best[v] < next_d) {
        next_d = best[v];
        next = v;
      }
    }
    MDG_ASSERT(next != 0, "1-tree Prim stalled");
    in_tree[next] = true;
    tree_weight += next_d;
    ++degree[next];
    ++degree[link[next]];
    current = next;
  }

  // Two cheapest modified edges from vertex 0.
  double first = kInf;
  double second = kInf;
  std::size_t first_v = 1;
  std::size_t second_v = 1;
  for (std::size_t v = 1; v < n; ++v) {
    const double w = mod(0, v);
    if (w < first) {
      second = first;
      second_v = first_v;
      first = w;
      first_v = v;
    } else if (w < second) {
      second = w;
      second_v = v;
    }
  }
  degree[0] += 2;
  ++degree[first_v];
  ++degree[second_v];

  double pi_sum = 0.0;
  for (double p : pi) {
    pi_sum += p;
  }
  return tree_weight + first + second - 2.0 * pi_sum;
}

}  // namespace

double one_tree_lower_bound(std::span<const geom::Point> points,
                            std::size_t iterations) {
  const std::size_t n = points.size();
  if (n < 3) {
    if (n == 2) {
      return 2.0 * geom::distance(points[0], points[1]);
    }
    return 0.0;
  }
  std::vector<double> pi(n, 0.0);
  std::vector<int> degree;
  double best_bound = -std::numeric_limits<double>::infinity();

  // Step size seeded from the plain 1-tree value, decayed geometrically —
  // the classic Held–Karp ascent schedule.
  double bound = one_tree_value(points, pi, degree);
  best_bound = bound;
  double step = std::abs(bound) / (2.0 * static_cast<double>(n)) + 1e-9;
  for (std::size_t it = 0; it < iterations; ++it) {
    bool is_tour = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (degree[v] != 2) {
        is_tour = false;
      }
      pi[v] += step * static_cast<double>(degree[v] - 2);
    }
    if (is_tour) {
      break;  // the 1-tree is a tour: the bound is tight
    }
    bound = one_tree_value(points, pi, degree);
    best_bound = std::max(best_bound, bound);
    step *= 0.9;
  }
  return std::max(best_bound, 0.0);
}

}  // namespace mdg::tsp

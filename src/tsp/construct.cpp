#include "tsp/construct.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/mst.h"
#include "util/assert.h"

namespace mdg::tsp {

Tour nearest_neighbor(std::span<const geom::Point> points, std::size_t start) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  MDG_REQUIRE(start < n, "start index out of range");
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::size_t current = start;
  visited[current] = true;
  order.push_back(current);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t best = n;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (visited[v]) {
        continue;
      }
      const double d2 = geom::distance_sq(points[current], points[v]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = v;
      }
    }
    MDG_ASSERT(best != n, "nearest-neighbour stalled");
    visited[best] = true;
    order.push_back(best);
    current = best;
  }
  Tour tour(std::move(order));
  tour.rotate_to_front(start);
  return tour;
}

Tour greedy_edge(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  if (n == 1) {
    return Tour::identity(1);
  }
  struct Candidate {
    double d2;
    std::size_t u;
    std::size_t v;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(n * (n - 1) / 2);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      candidates.push_back({geom::distance_sq(points[u], points[v]), u, v});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.d2 < b.d2; });

  // Union-find over path fragments to reject premature cycles.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<std::size_t> degree(n, 0);
  std::vector<std::vector<std::size_t>> adj(n);
  std::size_t accepted = 0;
  for (const Candidate& c : candidates) {
    if (accepted == n - 1) {
      break;
    }
    if (degree[c.u] >= 2 || degree[c.v] >= 2) {
      continue;
    }
    const std::size_t ru = find(c.u);
    const std::size_t rv = find(c.v);
    if (ru == rv) {
      continue;  // would close a sub-cycle early
    }
    parent[ru] = rv;
    ++degree[c.u];
    ++degree[c.v];
    adj[c.u].push_back(c.v);
    adj[c.v].push_back(c.u);
    ++accepted;
  }
  MDG_ASSERT(accepted == n - 1, "greedy edge failed to build a Hamilton path");

  // Walk the resulting Hamilton path from one endpoint.
  std::size_t start = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (degree[v] == 1) {
      start = v;
      break;
    }
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::size_t current = start;
  for (;;) {
    visited[current] = true;
    order.push_back(current);
    std::size_t next = n;
    for (std::size_t nb : adj[current]) {
      if (!visited[nb]) {
        next = nb;
        break;
      }
    }
    if (next == n) {
      break;
    }
    current = next;
  }
  MDG_ASSERT(order.size() == n, "greedy edge path does not span all points");
  Tour tour(std::move(order));
  tour.rotate_to_front(0);
  return tour;
}

Tour cheapest_insertion(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  if (n <= 2) {
    return Tour::identity(n);
  }
  // Seed with the closest pair.
  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double d2 = geom::distance_sq(points[u], points[v]);
      if (d2 < best_d2) {
        best_d2 = d2;
        seed_a = u;
        seed_b = v;
      }
    }
  }
  std::vector<std::size_t> order{seed_a, seed_b};
  std::vector<bool> on_tour(n, false);
  on_tour[seed_a] = true;
  on_tour[seed_b] = true;

  while (order.size() < n) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_vertex = n;
    std::size_t best_slot = 0;  // insert before order[best_slot+1]
    for (std::size_t v = 0; v < n; ++v) {
      if (on_tour[v]) {
        continue;
      }
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::size_t a = order[pos];
        const std::size_t b = order[(pos + 1) % order.size()];
        const double cost = geom::distance(points[a], points[v]) +
                            geom::distance(points[v], points[b]) -
                            geom::distance(points[a], points[b]);
        if (cost < best_cost) {
          best_cost = cost;
          best_vertex = v;
          best_slot = pos;
        }
      }
    }
    MDG_ASSERT(best_vertex != n, "cheapest insertion stalled");
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(best_slot) + 1,
                 best_vertex);
    on_tour[best_vertex] = true;
  }
  Tour tour(std::move(order));
  tour.rotate_to_front(0);
  return tour;
}

Tour mst_preorder(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n == 0) {
    return Tour{};
  }
  const graph::MstResult mst = graph::euclidean_mst(points);
  const auto adj = graph::tree_adjacency(n, mst.edges);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  // Iterative DFS preorder from the depot.
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    if (visited[v]) {
      continue;
    }
    visited[v] = true;
    order.push_back(v);
    // Push children in reverse so closer-indexed children pop first
    // (deterministic output).
    for (auto it = adj[v].rbegin(); it != adj[v].rend(); ++it) {
      if (!visited[*it]) {
        stack.push_back(*it);
      }
    }
  }
  MDG_ASSERT(order.size() == n, "MST preorder missed vertices");
  return Tour(std::move(order));
}

Tour christofides_greedy(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  if (n <= 3) {
    return Tour::identity(n);
  }
  const graph::MstResult mst = graph::euclidean_mst(points);

  // Degree parity over the MST.
  std::vector<std::size_t> degree(n, 0);
  for (const graph::Edge& e : mst.edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<std::size_t> odd;
  for (std::size_t v = 0; v < n; ++v) {
    if (degree[v] % 2 == 1) {
      odd.push_back(v);
    }
  }
  MDG_ASSERT(odd.size() % 2 == 0, "odd-degree vertices come in pairs");

  // Greedy perfect matching on the odd set: repeatedly match the
  // globally closest unmatched pair.
  std::vector<graph::Edge> matching;
  {
    struct Pair {
      double d2;
      std::size_t u;
      std::size_t v;
    };
    std::vector<Pair> pairs;
    pairs.reserve(odd.size() * (odd.size() - 1) / 2);
    for (std::size_t i = 0; i < odd.size(); ++i) {
      for (std::size_t j = i + 1; j < odd.size(); ++j) {
        pairs.push_back({geom::distance_sq(points[odd[i]], points[odd[j]]),
                         odd[i], odd[j]});
      }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& a, const Pair& b) { return a.d2 < b.d2; });
    std::vector<bool> matched(n, false);
    for (const Pair& p : pairs) {
      if (!matched[p.u] && !matched[p.v]) {
        matched[p.u] = true;
        matched[p.v] = true;
        matching.push_back({p.u, p.v, std::sqrt(p.d2)});
      }
    }
  }

  // Multigraph MST + matching has all-even degrees: walk an Eulerian
  // circuit (Hierholzer) and shortcut repeated vertices.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);
  std::size_t edge_id = 0;
  const auto add_edge = [&](std::size_t u, std::size_t v) {
    adj[u].push_back({v, edge_id});
    adj[v].push_back({u, edge_id});
    ++edge_id;
  };
  for (const graph::Edge& e : mst.edges) {
    add_edge(e.u, e.v);
  }
  for (const graph::Edge& e : matching) {
    add_edge(e.u, e.v);
  }
  std::vector<bool> used(edge_id, false);
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::size_t> stack{0};
  std::vector<std::size_t> circuit;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    bool advanced = false;
    while (cursor[v] < adj[v].size()) {
      const auto [to, id] = adj[v][cursor[v]++];
      if (!used[id]) {
        used[id] = true;
        stack.push_back(to);
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      circuit.push_back(v);
      stack.pop_back();
    }
  }

  // Shortcut: keep the first occurrence of each vertex.
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t v : circuit) {
    if (!seen[v]) {
      seen[v] = true;
      order.push_back(v);
    }
  }
  MDG_ASSERT(order.size() == n, "Euler shortcut missed vertices");
  Tour tour(std::move(order));
  tour.rotate_to_front(0);
  return tour;
}

Tour random_tour(std::size_t n, Rng& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Tour tour(std::move(order));
  if (n > 0) {
    tour.rotate_to_front(0);
  }
  return tour;
}

}  // namespace mdg::tsp
